//! Query execution under the paper's measurement protocol (§5.1.5):
//! a per-run timeout and averaging over repetitions.

use sgq_algebra::ast::PathExpr;
use sgq_common::{Result, SgqError};
use sgq_core::pipeline::{rewrite_path, RewriteOptions, RewriteOutcome};
use sgq_engine::GraphEngine;
use sgq_graph::{GraphDatabase, GraphSchema};
use sgq_obs::QueryTraceBuilder;
use sgq_query::cqt::Ucqt;
use sgq_ra::exec::ExecContext;
use sgq_ra::RelStore;
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

// The backend / approach axes are workspace vocabulary shared with the
// serving layer (the plan-cache key and the experiment records must
// agree on their meaning): both re-export `sgq_common::axes`.
pub use sgq_common::{Approach, Backend};

/// Timeout / repetition configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Per-run timeout in milliseconds (the paper used 30 minutes; the
    /// harness scales this down).
    pub timeout_ms: u64,
    /// Repetitions averaged per measurement (the paper used 5).
    pub repetitions: usize,
    /// Row/pair materialisation budget (0 = unlimited).
    pub max_rows: usize,
    /// Rewrite options for the schema approach.
    pub rewrite: RewriteOptions,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            timeout_ms: 2_000,
            repetitions: 3,
            max_rows: 20_000_000,
            rewrite: RewriteOptions::default(),
        }
    }
}

/// Pre-loaded backend state for one database.
pub struct Session<'a> {
    /// The schema the database conforms to.
    pub schema: &'a GraphSchema,
    /// The database itself (graph backend).
    pub db: &'a GraphDatabase,
    /// The relational load of the database.
    pub store: RelStore,
}

impl<'a> Session<'a> {
    /// Loads both backends.
    pub fn new(schema: &'a GraphSchema, db: &'a GraphDatabase) -> Self {
        Session {
            schema,
            db,
            store: RelStore::load(db),
        }
    }
}

/// One measurement: average milliseconds and the result cardinality, or a
/// timeout/budget failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Measurement {
    /// Mean runtime over the repetitions, with the answer cardinality.
    Feasible {
        /// Mean runtime in milliseconds.
        ms: f64,
        /// Number of result rows.
        rows: usize,
    },
    /// The query exceeded the timeout or the materialisation budget.
    Infeasible,
}

impl Measurement {
    /// Runtime if feasible.
    pub fn ms(&self) -> Option<f64> {
        match self {
            Measurement::Feasible { ms, .. } => Some(*ms),
            Measurement::Infeasible => None,
        }
    }
}

/// Resolves the query a given approach executes: the baseline UCQT or the
/// rewrite outcome.
pub fn query_for(
    schema: &GraphSchema,
    expr: &PathExpr,
    approach: Approach,
    rewrite: RewriteOptions,
) -> Option<Ucqt> {
    match approach {
        Approach::Baseline => Some(Ucqt::path_query(expr.clone())),
        Approach::Schema => match rewrite_path(schema, expr, rewrite).outcome {
            RewriteOutcome::Enriched(q) | RewriteOutcome::Reverted(q) => Some(q),
            RewriteOutcome::Empty => None,
        },
    }
}

/// Runs `expr` once on the chosen backend with the timeout applied.
pub fn run_once(
    session: &Session<'_>,
    query: &Ucqt,
    backend: Backend,
    config: &RunConfig,
) -> Result<usize> {
    match backend {
        Backend::Graph => {
            let mut engine = GraphEngine::with_timeout(session.db, config.timeout_ms);
            set_graph_budget(&mut engine, config.max_rows);
            let rows = engine.run_ucqt(query)?;
            Ok(rows.len())
        }
        Backend::Relational | Backend::RelationalUnoptimized => {
            let plan = prepare_relational(session, query, backend)?;
            execute_prepared(session, &plan, config)
        }
    }
}

/// Translates, (optionally) optimises and lowers a query into a physical
/// plan for the relational backends. Planning happens once per query;
/// repetitions then only interpret the plan.
pub fn prepare_relational(
    session: &Session<'_>,
    query: &Ucqt,
    backend: Backend,
) -> Result<sgq_ra::PhysPlan> {
    let mut names = NameGen::new(&session.store.symbols);
    let term = ucqt_to_term(query, &mut names)?;
    let term = if backend == Backend::Relational {
        sgq_ra::optimize::optimize(&term, &session.store)
    } else {
        term
    };
    sgq_ra::plan(&term, &session.store)
}

/// Interprets a prepared physical plan under the run protocol's timeout
/// and row budget, returning the result cardinality.
pub fn execute_prepared(
    session: &Session<'_>,
    plan: &sgq_ra::PhysPlan,
    config: &RunConfig,
) -> Result<usize> {
    let mut ctx = ExecContext::with_timeout(config.timeout_ms);
    ctx.max_rows = config.max_rows;
    let rel = sgq_ra::execute_plan(plan, &session.store, &mut ctx)?;
    Ok(rel.len())
}

fn set_graph_budget(engine: &mut GraphEngine<'_>, max_pairs: usize) {
    engine.set_max_pairs(max_pairs);
}

/// Runs a query under the full protocol: rewrite (if schema approach),
/// repetitions, averaging, timeout classification. Relational queries
/// are planned once ([`prepare_relational`]) and interpreted per
/// repetition.
pub fn run_query(
    session: &Session<'_>,
    expr: &PathExpr,
    approach: Approach,
    backend: Backend,
    config: &RunConfig,
) -> Measurement {
    let Some(query) = query_for(session.schema, expr, approach, config.rewrite) else {
        // The schema proves the query empty: essentially free.
        return Measurement::Feasible { ms: 0.0, rows: 0 };
    };
    // The same phase spans the service traces with also time the
    // measurement protocol: one "prepare" span for planning, one
    // "execute" span per repetition.
    let mut tb = QueryTraceBuilder::standalone("harness-run");
    let prepare = tb.begin("prepare");
    let plan = match backend {
        Backend::Graph => None,
        Backend::Relational | Backend::RelationalUnoptimized => {
            match prepare_relational(session, &query, backend) {
                Ok(p) => Some(p),
                Err(SgqError::Timeout { .. })
                | Err(SgqError::RowBudget { .. })
                | Err(SgqError::Execution(_)) => {
                    return Measurement::Infeasible;
                }
                Err(other) => panic!("unexpected planning failure: {other}"),
            }
        }
    };
    tb.end(prepare);
    let mut total_ms = 0.0;
    let mut rows = 0usize;
    for _ in 0..config.repetitions.max(1) {
        let span = tb.begin("execute");
        let result = match &plan {
            None => run_once(session, &query, backend, config),
            Some(p) => execute_prepared(session, p, config),
        };
        let dur_us = tb.end(span);
        match result {
            Ok(n) => {
                rows = n;
                total_ms += dur_us as f64 / 1e3;
            }
            Err(SgqError::Timeout { .. })
            | Err(SgqError::RowBudget { .. })
            | Err(SgqError::Execution(_)) => {
                return Measurement::Infeasible;
            }
            Err(other) => panic!("unexpected engine failure: {other}"),
        }
    }
    Measurement::Feasible {
        ms: total_ms / config.repetitions.max(1) as f64,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_datasets::yago::{self, YagoConfig};

    #[test]
    fn baseline_and_schema_agree_on_yago() {
        let (schema, db) = yago::generate(YagoConfig::tiny());
        let session = Session::new(&schema, &db);
        let config = RunConfig {
            timeout_ms: 10_000,
            repetitions: 1,
            ..Default::default()
        };
        for text in [
            "livesIn/isLocatedIn+/dealsWith+",
            "owns/isLocatedIn+",
            "influences+",
        ] {
            let expr = parse_path(text, &schema).unwrap();
            let mut cardinalities = Vec::new();
            for backend in [Backend::Graph, Backend::Relational] {
                for approach in [Approach::Baseline, Approach::Schema] {
                    match run_query(&session, &expr, approach, backend, &config) {
                        Measurement::Feasible { rows, .. } => cardinalities.push(rows),
                        Measurement::Infeasible => panic!("tiny dataset must be feasible"),
                    }
                }
            }
            assert!(
                cardinalities.windows(2).all(|w| w[0] == w[1]),
                "backends/approaches disagree for {text}: {cardinalities:?}"
            );
        }
    }

    #[test]
    fn timeout_classifies_as_infeasible() {
        let (schema, db) = yago::generate(YagoConfig::tiny());
        let session = Session::new(&schema, &db);
        let config = RunConfig {
            timeout_ms: 0,
            repetitions: 1,
            ..Default::default()
        };
        let expr = parse_path("influences+", &schema).unwrap();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let m = run_query(&session, &expr, Approach::Baseline, Backend::Graph, &config);
        assert_eq!(m, Measurement::Infeasible);
    }

    #[test]
    fn unoptimized_backend_still_correct() {
        let (schema, db) = yago::generate(YagoConfig::tiny());
        let session = Session::new(&schema, &db);
        let config = RunConfig {
            timeout_ms: 10_000,
            repetitions: 1,
            ..Default::default()
        };
        let expr = parse_path("owns/isLocatedIn", &schema).unwrap();
        let a = run_query(
            &session,
            &expr,
            Approach::Baseline,
            Backend::Relational,
            &config,
        );
        let b = run_query(
            &session,
            &expr,
            Approach::Baseline,
            Backend::RelationalUnoptimized,
            &config,
        );
        match (a, b) {
            (Measurement::Feasible { rows: ra, .. }, Measurement::Feasible { rows: rb, .. }) => {
                assert_eq!(ra, rb)
            }
            other => panic!("{other:?}"),
        }
    }
}
