//! Serialisable raw measurements.
//!
//! Every experiment run can be dumped as JSON (`--out results.json`) so
//! the numbers in the experiment reports are auditable and regenerable.
//! Escaping and number rendering come from the workspace JSON writer
//! ([`sgq_common::json`]; see DESIGN.md — the workspace is
//! dependency-free, so there is no `serde`); this module only streams
//! the record layout.

use std::fmt::Write as _;

use sgq_common::json;

use crate::runner::{Approach, Backend, Measurement};

/// One (query, scale factor, approach, backend) measurement.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Query label (e.g. `IC13`).
    pub query: String,
    /// Recursive (`RQ`) or non-recursive (`NQ`).
    pub kind: String,
    /// Dataset scale factor (`None` for YAGO).
    pub scale_factor: Option<f64>,
    /// `B` (baseline) or `S` (schema).
    pub approach: String,
    /// Executing backend.
    pub backend: String,
    /// Mean runtime in milliseconds; `None` when infeasible.
    pub ms: Option<f64>,
    /// Result cardinality; `None` when infeasible.
    pub rows: Option<usize>,
    /// Whether the rewrite reverted (§5.2) — only set for `S` runs.
    pub reverted: Option<bool>,
}

impl RunRecord {
    /// Builds a record from a measurement.
    pub fn new(
        query: &str,
        kind: &str,
        scale_factor: Option<f64>,
        approach: Approach,
        backend: Backend,
        measurement: Measurement,
        reverted: Option<bool>,
    ) -> Self {
        let (ms, rows) = match measurement {
            Measurement::Feasible { ms, rows } => (Some(ms), Some(rows)),
            Measurement::Infeasible => (None, None),
        };
        RunRecord {
            query: query.to_string(),
            kind: kind.to_string(),
            scale_factor,
            approach: approach.to_string(),
            backend: backend.to_string(),
            ms,
            rows,
            reverted,
        }
    }

    /// Whether this run finished within the budget.
    pub fn feasible(&self) -> bool {
        self.ms.is_some()
    }
}

/// Renders an optional JSON number (runtimes are finite by construction).
fn json_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => json::number(v),
        None => "null".to_string(),
    }
}

/// Serialises records as pretty JSON.
pub fn to_json(records: &[RunRecord]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        let fields = [
            ("query", json::escape(&r.query)),
            ("kind", json::escape(&r.kind)),
            ("scale_factor", json_f64(r.scale_factor)),
            ("approach", json::escape(&r.approach)),
            ("backend", json::escape(&r.backend)),
            ("ms", json_f64(r.ms)),
            ("rows", r.rows.map_or("null".to_string(), |n| n.to_string())),
            (
                "reverted",
                r.reverted.map_or("null".to_string(), |b| b.to_string()),
            ),
        ];
        for (j, (key, value)) in fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    {}: {value}", json::escape(key));
        }
        out.push_str("\n  }");
    }
    out.push_str("\n]");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let r = RunRecord::new(
            "IC13",
            "RQ",
            Some(1.0),
            Approach::Schema,
            Backend::Relational,
            Measurement::Feasible { ms: 12.5, rows: 42 },
            Some(true),
        );
        assert!(r.feasible());
        let json = to_json(&[r]);
        assert!(json.contains("\"IC13\""));
        assert!(json.contains("12.5"));
        assert!(json.contains("\"reverted\": true"));
    }

    #[test]
    fn infeasible_record() {
        let r = RunRecord::new(
            "Y1",
            "RQ",
            None,
            Approach::Baseline,
            Backend::Graph,
            Measurement::Infeasible,
            None,
        );
        assert!(!r.feasible());
        assert!(r.ms.is_none());
        let json = to_json(&[r]);
        assert!(json.contains("\"ms\": null"), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json::escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
