//! Serialisable raw measurements.
//!
//! Every experiment run can be dumped as JSON (`--out results.json`) so
//! the numbers in EXPERIMENTS.md are auditable and regenerable — the
//! reason `serde`/`serde_json` are dependencies (see DESIGN.md).

use serde::Serialize;

use crate::runner::{Approach, Backend, Measurement};

/// One (query, scale factor, approach, backend) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct RunRecord {
    /// Query label (e.g. `IC13`).
    pub query: String,
    /// Recursive (`RQ`) or non-recursive (`NQ`).
    pub kind: String,
    /// Dataset scale factor (`None` for YAGO).
    pub scale_factor: Option<f64>,
    /// `B` (baseline) or `S` (schema).
    pub approach: String,
    /// Executing backend.
    pub backend: String,
    /// Mean runtime in milliseconds; `None` when infeasible.
    pub ms: Option<f64>,
    /// Result cardinality; `None` when infeasible.
    pub rows: Option<usize>,
    /// Whether the rewrite reverted (§5.2) — only set for `S` runs.
    pub reverted: Option<bool>,
}

impl RunRecord {
    /// Builds a record from a measurement.
    pub fn new(
        query: &str,
        kind: &str,
        scale_factor: Option<f64>,
        approach: Approach,
        backend: Backend,
        measurement: Measurement,
        reverted: Option<bool>,
    ) -> Self {
        let (ms, rows) = match measurement {
            Measurement::Feasible { ms, rows } => (Some(ms), Some(rows)),
            Measurement::Infeasible => (None, None),
        };
        RunRecord {
            query: query.to_string(),
            kind: kind.to_string(),
            scale_factor,
            approach: approach.to_string(),
            backend: backend.to_string(),
            ms,
            rows,
            reverted,
        }
    }

    /// Whether this run finished within the budget.
    pub fn feasible(&self) -> bool {
        self.ms.is_some()
    }
}

/// Serialises records as pretty JSON.
pub fn to_json(records: &[RunRecord]) -> String {
    serde_json::to_string_pretty(records).expect("records serialise")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let r = RunRecord::new(
            "IC13",
            "RQ",
            Some(1.0),
            Approach::Schema,
            Backend::Relational,
            Measurement::Feasible { ms: 12.5, rows: 42 },
            Some(true),
        );
        assert!(r.feasible());
        let json = to_json(&[r]);
        assert!(json.contains("\"IC13\""));
        assert!(json.contains("12.5"));
    }

    #[test]
    fn infeasible_record() {
        let r = RunRecord::new(
            "Y1",
            "RQ",
            None,
            Approach::Baseline,
            Backend::Graph,
            Measurement::Infeasible,
            None,
        );
        assert!(!r.feasible());
        assert!(r.ms.is_none());
    }
}
