//! The `layouts` experiment: the physical-storage-layout ablation over
//! the bundled catalogs.
//!
//! Every query of the YAGO and LDBC catalogs is schema-rewritten once,
//! then planned and executed against three stores loaded from the same
//! database under each [`LayoutKind`] — per-label (the Fig. 11 default),
//! polymorphic (one global edge table with a label bitmask) and
//! denormalised (precomputed endpoint-label slices). Each layout plans
//! with its own capabilities (masked multi scans, denorm slice scans),
//! so the plans differ; the results must agree **bit-for-bit** (the
//! canonical set semantics make this exact), and any divergence panics.
//! Per-layout timings and estimated plan costs are tabulated together
//! with the layout the schema-driven [`LayoutAdvisor`] picks for the
//! catalog.
//!
//! The smoke variant ([`layouts_smoke`]) is the CI gate: both catalogs
//! at smoke scale, every query bit-identical across all three layouts,
//! and at least one query planning measurably cheaper (estimated cost)
//! under a non-default layout.

use std::fmt::Write as _;

use sgq_core::pipeline::RewriteOptions;
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_datasets::CatalogQuery;
use sgq_graph::{GraphDatabase, GraphSchema};
use sgq_obs::QueryTraceBuilder;
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_ra::optimize::optimize;
use sgq_ra::{plan, LayoutAdvisor, LayoutKind, RelStore};
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

use crate::runner::{query_for, Approach};

/// Configuration for the `layouts` experiment.
#[derive(Debug, Clone, Copy)]
pub struct LayoutsConfig {
    /// LDBC scale factor to replay.
    pub ldbc_sf: f64,
    /// Scaling of the YAGO dataset relative to the default size.
    pub yago_scale: f64,
    /// Timed executions per (query, layout); the best run is kept.
    pub repeats: usize,
    /// Per-query execution timeout (ms).
    pub timeout_ms: u64,
}

impl Default for LayoutsConfig {
    fn default() -> Self {
        LayoutsConfig {
            ldbc_sf: 0.3,
            yago_scale: 0.3,
            repeats: 3,
            timeout_ms: 10_000,
        }
    }
}

impl LayoutsConfig {
    /// The small configuration used by CI (`layouts --smoke`).
    pub fn smoke() -> Self {
        LayoutsConfig {
            ldbc_sf: 0.1,
            yago_scale: 0.05,
            repeats: 1,
            timeout_ms: 10_000,
        }
    }
}

/// One query measured under every storage layout.
#[derive(Debug, Clone)]
pub struct LayoutRecord {
    /// Catalog the query came from (`YAGO` / `LDBC`).
    pub dataset: &'static str,
    /// Query label as in Tab. 4.
    pub query: String,
    /// Result rows (identical across all layouts by construction).
    pub rows: usize,
    /// Best-of-`repeats` execution time per layout, in
    /// [`LayoutKind::ALL`] order (ms).
    pub ms: [f64; 3],
    /// Estimated root plan cost per layout, in [`LayoutKind::ALL`]
    /// order — deterministic, unlike the timings.
    pub plan_cost: [f64; 3],
    /// The layout the schema-driven advisor picked for this catalog.
    pub advised: LayoutKind,
}

impl LayoutRecord {
    /// Measured time under the per-label baseline (ms).
    pub fn per_label_ms(&self) -> f64 {
        self.ms[0]
    }

    /// Measured time under the advisor's pick (ms).
    pub fn advised_ms(&self) -> f64 {
        self.ms[layout_idx(self.advised)]
    }

    /// The best measured speedup of a non-default layout over the
    /// per-label baseline (>1 means some non-default layout was faster).
    pub fn best_speedup(&self) -> f64 {
        let fastest = self.ms[1].min(self.ms[2]);
        self.per_label_ms() / fastest.max(1e-9)
    }

    /// Whether some non-default layout *plans* measurably cheaper than
    /// the per-label baseline: at least `margin` (e.g. 0.1 = 10%) off
    /// the estimated cost. Deterministic, so usable as a CI gate.
    pub fn plans_cheaper(&self, margin: f64) -> bool {
        let cheapest = self.plan_cost[1].min(self.plan_cost[2]);
        cheapest <= self.plan_cost[0] * (1.0 - margin)
    }
}

/// The position of `kind` in [`LayoutKind::ALL`].
fn layout_idx(kind: LayoutKind) -> usize {
    LayoutKind::ALL
        .iter()
        .position(|&k| k == kind)
        .expect("ALL covers every layout kind")
}

fn catalog_records(
    dataset: &'static str,
    schema: &GraphSchema,
    db: &GraphDatabase,
    queries: &[CatalogQuery],
    cfg: &LayoutsConfig,
) -> Vec<LayoutRecord> {
    let stores: Vec<RelStore> = LayoutKind::ALL
        .iter()
        .map(|&k| RelStore::load_with_layout(db, k))
        .collect();
    let advised = LayoutAdvisor::choose(schema, &stores[0].stats);
    let mut records = Vec::new();
    for q in queries {
        let Some(ucqt) = query_for(schema, &q.expr, Approach::Schema, RewriteOptions::default())
        else {
            continue;
        };
        let mut names = NameGen::new(&stores[0].symbols);
        let Ok(term) = ucqt_to_term(&ucqt, &mut names) else {
            continue;
        };
        let mut ms = [f64::INFINITY; 3];
        let mut plan_cost = [0.0f64; 3];
        let mut results: Vec<sgq_ra::Relation> = Vec::new();
        let mut timed_out = false;
        for (i, store) in stores.iter().enumerate() {
            // Each layout lowers with its own capabilities — plan per
            // store, not once.
            let Ok(p) = plan(&optimize(&term, store), store) else {
                timed_out = true;
                break;
            };
            plan_cost[i] = p.est.cost;
            let mut tb = QueryTraceBuilder::standalone(q.name);
            let mut run = None;
            for _ in 0..cfg.repeats.max(1) {
                let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
                let span = tb.begin("exec");
                let Ok(rel) = execute_plan(&p, store, &mut ctx) else {
                    run = None;
                    break;
                };
                let elapsed = tb.end(span) as f64 / 1e3;
                ms[i] = ms[i].min(elapsed);
                run = Some(rel);
            }
            let Some(rel) = run else {
                timed_out = true;
                break;
            };
            results.push(rel);
        }
        if timed_out {
            continue; // nothing to compare for this query
        }
        for (i, rel) in results.iter().enumerate().skip(1) {
            assert_eq!(
                &results[0],
                rel,
                "{dataset}/{}: layout {} diverged from per-label",
                q.name,
                LayoutKind::ALL[i]
            );
        }
        records.push(LayoutRecord {
            dataset,
            query: q.name.to_string(),
            rows: results[0].len(),
            ms,
            plan_cost,
            advised,
        });
    }
    records
}

/// Runs the experiment over both catalogs, returning the raw records.
pub fn run_layouts(cfg: &LayoutsConfig) -> Vec<LayoutRecord> {
    let mut records = Vec::new();
    let (schema, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    let queries = yago::queries(&schema).expect("catalog parses");
    records.extend(catalog_records("YAGO", &schema, &db, &queries, cfg));
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(cfg.ldbc_sf));
    let queries = ldbc::queries(&schema).expect("catalog parses");
    records.extend(catalog_records("LDBC", &schema, &db, &queries, cfg));
    records
}

/// Median of `values` (0.0 when empty); sorts in place.
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.total_cmp(b));
    values[values.len() / 2]
}

/// Renders the records as a table plus a per-layout summary.
pub fn render_layouts(records: &[LayoutRecord], cfg: &LayoutsConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "storage layouts: per-label vs polymorphic vs denormalized \
         (YAGO x{}, LDBC SF {}, best of {} runs)",
        cfg.yago_scale,
        cfg.ldbc_sf,
        cfg.repeats.max(1)
    );
    let _ = writeln!(
        out,
        "{:<7} {:<14} {:>10} {:>12} {:>12} {:>12} {:<13} {:>9}",
        "dataset",
        "query",
        "rows",
        "per-label",
        "polymorphic",
        "denormalized",
        "advised",
        "speedup"
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:<7} {:<14} {:>10} {:>9.2} ms {:>9.2} ms {:>9.2} ms {:<13} {:>8.2}x",
            r.dataset,
            r.query,
            r.rows,
            r.ms[0],
            r.ms[1],
            r.ms[2],
            r.advised.name(),
            r.best_speedup()
        );
    }
    let mut per_label: Vec<f64> = records.iter().map(|r| r.per_label_ms()).collect();
    let mut advised: Vec<f64> = records.iter().map(|r| r.advised_ms()).collect();
    let best = records
        .iter()
        .map(LayoutRecord::best_speedup)
        .fold(0.0f64, f64::max);
    let cheaper = records.iter().filter(|r| r.plans_cheaper(0.1)).count();
    let _ = writeln!(
        out,
        "median per-label {:.2} ms, median advised {:.2} ms; \
         best non-default speedup {:.2}x; {} of {} queries plan >=10% cheaper off-default",
        median(&mut per_label),
        median(&mut advised),
        best,
        cheaper,
        records.len()
    );
    out
}

/// The full experiment: run and render.
pub fn layouts(cfg: &LayoutsConfig) -> String {
    render_layouts(&run_layouts(cfg), cfg)
}

/// The CI gate: both catalogs at smoke scale, every query bit-identical
/// across all three layouts (asserted inside the run), and at least one
/// query planning measurably (>= 10% estimated cost) cheaper under a
/// non-default layout.
pub fn layouts_smoke() -> String {
    let cfg = LayoutsConfig::smoke();
    let records = run_layouts(&cfg);
    assert!(
        !records.is_empty(),
        "layouts smoke produced no comparable queries"
    );
    assert!(
        records.iter().any(|r| r.plans_cheaper(0.1)),
        "layouts smoke: no query planned measurably cheaper under a \
         non-default layout — the layout-specific strategies never fired"
    );
    let mut out = render_layouts(&records, &cfg);
    out.push_str("layouts --smoke gate: PASS (all layouts bit-identical on both catalogs)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layouts_smoke_gate_holds() {
        let report = layouts_smoke();
        assert!(report.contains("PASS"), "{report}");
    }

    #[test]
    fn advisor_prefers_denormalized_on_both_catalogs() {
        // Both bundled schemas overload edge labels across several
        // endpoint-label triples, so the advisor picks the denormalised
        // layout — the record carries it for the report.
        let records = run_layouts(&LayoutsConfig::smoke());
        assert!(records
            .iter()
            .all(|r| r.advised == LayoutKind::Denormalized));
    }
}
