//! The `estimates` experiment: cardinality-estimation quality (q-error)
//! of the statistics-v2 cost model against the v1 textbook heuristics.
//!
//! For every query of the YAGO and LDBC catalogs, the schema-rewritten
//! query is translated and planned twice — once with
//! [`RelStore::v1_estimates`](sgq_ra::RelStore) selecting the legacy
//! formulas (flat 10% selection selectivity, `V(c) ≈ min(|rel|, |V|)`,
//! constant fixpoint growth) and once with the measured statistics
//! (triple counts, distinct endpoint counts, closure depth bounds). Each
//! plan's root estimate is compared against the actually executed row
//! count; the per-query q-error `max(est, actual) / min(est, actual)`
//! (floored at one row) is recorded, rendered as a table, and dumped as
//! JSON.
//!
//! A third, *warm-memo* pass measures feedback-driven re-optimisation:
//! after the cold pass executes every query once with the cardinality
//! feedback memo recording, each query is planned again — estimates now
//! come from observed cardinalities — and re-executed. The pass records
//! the warm root estimate, whether the physical strategy changed, and
//! the cold/warm execution times. The smoke variant
//! ([`estimates_smoke`]) is the CI gate: it panics unless the v2 median
//! q-error beats the v1 median on both bundled catalogs, the warm-memo
//! median q-error is no worse than cold v2, and at least one catalog
//! query switches to a faster physical plan after feedback.

use std::fmt::Write as _;

use sgq_common::json::JsonValue;
use sgq_core::pipeline::RewriteOptions;
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_datasets::CatalogQuery;
use sgq_graph::{GraphDatabase, GraphSchema};
use sgq_obs::QueryTraceBuilder;
use sgq_ra::cost::q_error;
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_ra::optimize::optimize;
use sgq_ra::term::RaTerm;
use sgq_ra::{plan, PhysPlan, RelStore};
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

use crate::runner::{query_for, Approach};

/// Configuration for the `estimates` experiment.
#[derive(Debug, Clone, Copy)]
pub struct EstimatesConfig {
    /// LDBC scale factor to replay.
    pub ldbc_sf: f64,
    /// Scaling of the YAGO dataset relative to the default size.
    pub yago_scale: f64,
    /// Per-query execution timeout (ms) when measuring actual rows.
    pub timeout_ms: u64,
    /// Row-materialisation budget per execution (0 = unlimited).
    pub max_rows: usize,
}

impl Default for EstimatesConfig {
    fn default() -> Self {
        EstimatesConfig {
            ldbc_sf: 0.3,
            yago_scale: 0.3,
            timeout_ms: 10_000,
            max_rows: 20_000_000,
        }
    }
}

impl EstimatesConfig {
    /// The small configuration used by CI (`estimates --smoke`).
    pub fn smoke() -> Self {
        EstimatesConfig {
            ldbc_sf: 0.1,
            yago_scale: 0.05,
            timeout_ms: 10_000,
            max_rows: 20_000_000,
        }
    }
}

/// One per-query estimation measurement.
#[derive(Debug, Clone)]
pub struct EstRecord {
    /// Catalog the query came from (`YAGO` / `LDBC`).
    pub dataset: &'static str,
    /// Query label as in Tab. 4.
    pub query: String,
    /// Root estimate under the v1 heuristics.
    pub est_v1: f64,
    /// Root estimate under statistics v2.
    pub est_v2: f64,
    /// Root estimate after the feedback memo was warmed by one
    /// execution of every catalog query.
    pub est_warm: f64,
    /// Executed result cardinality (`None` when the query exceeded the
    /// timeout or row budget).
    pub actual: Option<usize>,
    /// Whether the warm re-plan chose a different physical strategy
    /// than the cold v2 plan.
    pub switched: bool,
    /// Execution time of the cold v2 plan (µs).
    pub cold_micros: u64,
    /// Execution time of the warm re-plan (µs, `None` when infeasible).
    pub warm_micros: Option<u64>,
}

impl EstRecord {
    /// q-error of the v1 estimate (`None` while infeasible).
    pub fn q_v1(&self) -> Option<f64> {
        self.actual.map(|a| q_error(self.est_v1, a as f64))
    }

    /// q-error of the v2 estimate.
    pub fn q_v2(&self) -> Option<f64> {
        self.actual.map(|a| q_error(self.est_v2, a as f64))
    }

    /// q-error of the warm-memo estimate.
    pub fn q_warm(&self) -> Option<f64> {
        self.actual.map(|a| q_error(self.est_warm, a as f64))
    }
}

/// Median of `values` (0.0 when empty).
fn median(values: &mut [f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("q-errors are finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Median q-error of the feasible records under each estimator:
/// `(median_v1, median_v2, feasible_count)`.
pub fn median_q(records: &[EstRecord]) -> (f64, f64, usize) {
    let mut v1: Vec<f64> = records.iter().filter_map(EstRecord::q_v1).collect();
    let mut v2: Vec<f64> = records.iter().filter_map(EstRecord::q_v2).collect();
    let n = v1.len();
    (median(&mut v1), median(&mut v2), n)
}

/// Median warm-memo q-error over the feasible records.
pub fn median_q_warm(records: &[EstRecord]) -> f64 {
    let mut warm: Vec<f64> = records.iter().filter_map(EstRecord::q_warm).collect();
    median(&mut warm)
}

/// The physical shape of a plan with the estimate annotations stripped:
/// operator kinds, join keys, build sides and filters — what the warm
/// re-plan can change. Two plans with equal signatures execute the same
/// strategy.
fn strategy_signature(p: &PhysPlan, store: &RelStore, db: &GraphDatabase) -> String {
    sgq_ra::explain::explain_plan(p, store, db)
        .lines()
        .map(|l| l.split(" (cost").next().unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
}

fn catalog_records(
    dataset: &'static str,
    schema: &GraphSchema,
    db: &GraphDatabase,
    queries: &[CatalogQuery],
    cfg: &EstimatesConfig,
) -> Vec<EstRecord> {
    struct ColdRun {
        name: String,
        term: RaTerm,
        est_v1: f64,
        est_v2: f64,
        signature: String,
        plan_cold: PhysPlan,
        actual: Option<usize>,
        cold_micros: u64,
    }
    let mut store = RelStore::load(db);
    // Cold pass: feedback disabled so the v1/v2 estimates stay
    // formula-pure even across queries sharing subtrees.
    store.feedback.set_enabled(false);
    let mut runs = Vec::new();
    for q in queries {
        // The schema-rewritten query is the one whose plans carry the
        // label filters the triple counts speak about; a rewrite that
        // proves the query empty has nothing to estimate.
        let Some(ucqt) = query_for(schema, &q.expr, Approach::Schema, RewriteOptions::default())
        else {
            continue;
        };
        let mut names = NameGen::new(&store.symbols);
        let Ok(term) = ucqt_to_term(&ucqt, &mut names) else {
            continue;
        };
        // Optimise and plan under each estimator: join orders may differ,
        // the estimate measured is each plan's own root estimate.
        store.v1_estimates = true;
        let Ok(plan_v1) = plan(&optimize(&term, &store), &store) else {
            continue;
        };
        store.v1_estimates = false;
        let Ok(plan_cold) = plan(&optimize(&term, &store), &store) else {
            continue;
        };
        let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
        ctx.max_rows = cfg.max_rows;
        let mut tb = QueryTraceBuilder::standalone(q.name);
        let span = tb.begin("execute");
        let actual = execute_plan(&plan_cold, &store, &mut ctx)
            .ok()
            .map(|r| r.len());
        let cold_micros = tb.end(span);
        runs.push(ColdRun {
            name: q.name.to_string(),
            term,
            est_v1: plan_v1.est.rows,
            est_v2: plan_cold.est.rows,
            signature: strategy_signature(&plan_cold, &store, db),
            plan_cold,
            actual,
            cold_micros,
        });
    }
    // Training pass: one execution per query with the memo recording
    // populates it with the true cardinality of every static subtree.
    store.feedback.clear();
    store.feedback.set_enabled(true);
    for r in &runs {
        let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
        ctx.max_rows = cfg.max_rows;
        let _ = execute_plan(&r.plan_cold, &store, &mut ctx);
    }
    // Warm pass: re-optimise and re-plan with memoised estimates — the
    // physical strategy may change — and re-execute.
    let mut records = Vec::new();
    for r in runs {
        let (est_warm, switched, warm_micros) = match plan(&optimize(&r.term, &store), &store) {
            Ok(plan_warm) => {
                let switched = strategy_signature(&plan_warm, &store, db) != r.signature;
                let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
                ctx.max_rows = cfg.max_rows;
                let mut tb = QueryTraceBuilder::standalone(&r.name);
                let span = tb.begin("execute");
                let warm_micros = execute_plan(&plan_warm, &store, &mut ctx)
                    .ok()
                    .map(|_| tb.end(span));
                (plan_warm.est.rows, switched, warm_micros)
            }
            Err(_) => (r.est_v2, false, None),
        };
        records.push(EstRecord {
            dataset,
            query: r.name,
            est_v1: r.est_v1,
            est_v2: r.est_v2,
            est_warm,
            actual: r.actual,
            switched,
            cold_micros: r.cold_micros,
            warm_micros,
        });
    }
    records
}

/// Runs the experiment over both catalogs, returning the raw records.
pub fn run_estimates(cfg: &EstimatesConfig) -> Vec<EstRecord> {
    let mut records = Vec::new();
    let (schema, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    let queries = yago::queries(&schema).expect("catalog parses");
    records.extend(catalog_records("YAGO", &schema, &db, &queries, cfg));
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(cfg.ldbc_sf));
    let queries = ldbc::queries(&schema).expect("catalog parses");
    records.extend(catalog_records("LDBC", &schema, &db, &queries, cfg));
    records
}

/// Renders the records as a table plus a machine-readable JSON line.
pub fn render_estimates(records: &[EstRecord], cfg: &EstimatesConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Cardinality estimation quality: stats v2 vs v1 heuristics \
         (YAGO x{}, LDBC SF{})\n",
        cfg.yago_scale, cfg.ldbc_sf
    );
    let _ = writeln!(
        out,
        "{:<6} {:<6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>8}",
        "data", "query", "est v1", "est v2", "est warm", "actual", "q v1", "q v2", "q warm", "plan"
    );
    for r in records {
        let switch = if r.switched { "switch" } else { "-" };
        match r.actual {
            Some(actual) => {
                let _ = writeln!(
                    out,
                    "{:<6} {:<6} {:>12.1} {:>12.1} {:>12.1} {:>12} {:>8.2} {:>8.2} {:>8.2} {:>8}",
                    r.dataset,
                    r.query,
                    r.est_v1,
                    r.est_v2,
                    r.est_warm,
                    actual,
                    r.q_v1().expect("feasible"),
                    r.q_v2().expect("feasible"),
                    r.q_warm().expect("feasible"),
                    switch
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "{:<6} {:<6} {:>12.1} {:>12.1} {:>12.1} {:>12} {:>8} {:>8} {:>8} {:>8}",
                    r.dataset,
                    r.query,
                    r.est_v1,
                    r.est_v2,
                    r.est_warm,
                    "timeout",
                    "-",
                    "-",
                    "-",
                    switch
                );
            }
        }
    }
    let mut json_runs = Vec::new();
    for r in records {
        json_runs.push(JsonValue::obj([
            ("dataset", JsonValue::str(r.dataset)),
            ("query", JsonValue::str(r.query.clone())),
            ("est_v1", JsonValue::Num(r.est_v1)),
            ("est_v2", JsonValue::Num(r.est_v2)),
            ("est_warm", JsonValue::Num(r.est_warm)),
            (
                "actual",
                r.actual
                    .map_or(JsonValue::Null, |a| JsonValue::Int(a as u64)),
            ),
            ("q_v1", r.q_v1().map_or(JsonValue::Null, JsonValue::Num)),
            ("q_v2", r.q_v2().map_or(JsonValue::Null, JsonValue::Num)),
            ("q_warm", r.q_warm().map_or(JsonValue::Null, JsonValue::Num)),
            ("plan_switched", JsonValue::Bool(r.switched)),
            ("cold_micros", JsonValue::Int(r.cold_micros)),
            (
                "warm_micros",
                r.warm_micros.map_or(JsonValue::Null, JsonValue::Int),
            ),
        ]));
    }
    for dataset in ["YAGO", "LDBC"] {
        let subset: Vec<EstRecord> = records
            .iter()
            .filter(|r| r.dataset == dataset)
            .cloned()
            .collect();
        let (m1, m2, n) = median_q(&subset);
        let mw = median_q_warm(&subset);
        let _ = writeln!(
            out,
            "\n{dataset}: median q-error over {n} feasible queries: \
             v1 = {m1:.2}, v2 = {m2:.2}, warm = {mw:.2}"
        );
    }
    let (m1, m2, n) = median_q(records);
    let mw = median_q_warm(records);
    let switches = records.iter().filter(|r| r.switched).count();
    let faster = records
        .iter()
        .filter(|r| r.switched && r.warm_micros.is_some_and(|w| w < r.cold_micros))
        .count();
    let _ = writeln!(
        out,
        "overall: median q-error over {n} feasible queries: \
         v1 = {m1:.2}, v2 = {m2:.2}, warm = {mw:.2}"
    );
    let _ = writeln!(
        out,
        "feedback: {switches} queries switched physical strategy after \
         memo warm-up ({faster} measurably faster)"
    );
    let summary = JsonValue::obj([
        ("median_q_v1", JsonValue::Num(m1)),
        ("median_q_v2", JsonValue::Num(m2)),
        ("median_q_warm", JsonValue::Num(mw)),
        ("plan_switches", JsonValue::Int(switches as u64)),
        ("plan_switches_faster", JsonValue::Int(faster as u64)),
        ("feasible_queries", JsonValue::Int(n as u64)),
    ]);
    let _ = writeln!(
        out,
        "\nruns as JSON: {}",
        JsonValue::obj([("summary", summary), ("runs", JsonValue::Arr(json_runs)),]).render()
    );
    out
}

/// The full experiment: both catalogs, table + JSON.
pub fn estimates(cfg: &EstimatesConfig) -> String {
    let records = run_estimates(cfg);
    render_estimates(&records, cfg)
}

/// CI gate: on the smoke-sized catalogs, the statistics-v2 median q-error
/// must beat the v1 heuristics on each dataset and overall, the
/// warm-memo median q-error must be no worse than cold v2, and at least
/// one catalog query must switch to a measurably faster physical plan
/// after feedback. Panics on regression so a broken estimator fails the
/// build.
pub fn estimates_smoke() -> String {
    let cfg = EstimatesConfig::smoke();
    let records = run_estimates(&cfg);
    for dataset in ["YAGO", "LDBC"] {
        let subset: Vec<EstRecord> = records
            .iter()
            .filter(|r| r.dataset == dataset)
            .cloned()
            .collect();
        let (m1, m2, n) = median_q(&subset);
        assert!(n > 0, "estimates smoke: no feasible {dataset} queries");
        assert!(
            m2 <= m1,
            "estimates smoke: stats v2 median q-error regressed on {dataset}: \
             v2 = {m2:.3} > v1 = {m1:.3}"
        );
        let mw = median_q_warm(&subset);
        assert!(
            mw <= m2,
            "estimates smoke: warm-memo median q-error regressed on {dataset}: \
             warm = {mw:.3} > v2 = {m2:.3}"
        );
    }
    let (m1, m2, _) = median_q(&records);
    assert!(
        m2 < m1,
        "estimates smoke: stats v2 must beat the v1 heuristics overall: \
         v2 = {m2:.3} !< v1 = {m1:.3}"
    );
    assert!(
        records
            .iter()
            .any(|r| r.switched && r.warm_micros.is_some_and(|w| w < r.cold_micros)),
        "estimates smoke: feedback must switch at least one query to a \
         measurably faster physical plan"
    );
    render_estimates(&records, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_smoke_gate_holds() {
        let s = estimates_smoke();
        assert!(s.contains("median q-error"), "{s}");
        assert!(s.contains("\"median_q_v2\""), "{s}");
        assert!(s.contains("YAGO"), "{s}");
        assert!(s.contains("LDBC"), "{s}");
    }

    #[test]
    fn median_of_records() {
        let rec = |q: &str, est_v1: f64, est_v2: f64, actual: Option<usize>| EstRecord {
            dataset: "YAGO",
            query: q.to_string(),
            est_v1,
            est_v2,
            est_warm: est_v2,
            actual,
            switched: false,
            cold_micros: 0,
            warm_micros: None,
        };
        let records = vec![
            rec("a", 10.0, 2.0, Some(2)),   // q1 = 5, q2 = 1
            rec("b", 30.0, 10.0, Some(10)), // q1 = 3, q2 = 1
            rec("c", 1.0, 1.0, None),       // infeasible: excluded
        ];
        let (m1, m2, n) = median_q(&records);
        assert_eq!(n, 2);
        assert_eq!(m1, 4.0);
        assert_eq!(m2, 1.0);
    }
}
