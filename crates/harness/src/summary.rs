//! Box-plot statistics (Tabs. 7/8, the quartiles behind Figs. 13/14).

/// Five-number summary plus count and mean, computed over runtimes in
/// milliseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of measurements.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Summary {
    /// Computes the summary; returns `None` for an empty sample.
    pub fn compute(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("runtimes are finite"));
        let n = v.len();
        Some(Summary {
            count: n,
            min: v[0],
            q1: percentile(&v, 0.25),
            median: percentile(&v, 0.5),
            q3: percentile(&v, 0.75),
            max: v[n - 1],
            mean: v.iter().sum::<f64>() / n as f64,
        })
    }

    /// One row in the Tab. 7/8 style (values in seconds, as the paper
    /// reports them).
    pub fn row_seconds(&self, label: &str) -> String {
        format!(
            "{:<22} {:>6} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            label,
            self.count,
            self.min / 1e3,
            self.q1 / 1e3,
            self.median / 1e3,
            self.q3 / 1e3,
            self.max / 1e3,
            self.mean / 1e3,
        )
    }

    /// The header matching [`Summary::row_seconds`].
    pub fn header() -> String {
        format!(
            "{:<22} {:>6} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "Series", "Count", "Min", "Q1", "Median", "Q3", "Max", "Mean"
        )
    }
}

/// Linear-interpolation percentile over a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_number_summary() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let s = Summary::compute(&v).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn interpolated_quartiles() {
        let v = [1.0, 2.0, 3.0, 4.0];
        let s = Summary::compute(&v).unwrap();
        assert!((s.q1 - 1.75).abs() < 1e-9);
        assert!((s.median - 2.5).abs() < 1e-9);
        assert!((s.q3 - 3.25).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton() {
        assert!(Summary::compute(&[]).is_none());
        let s = Summary::compute(&[7.0]).unwrap();
        assert_eq!(s.q1, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn row_renders_in_seconds() {
        let s = Summary::compute(&[1000.0]).unwrap();
        let row = s.row_seconds("x");
        assert!(row.contains("1.0000"), "{row}");
    }
}
