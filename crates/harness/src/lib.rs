//! The experiment harness: reproduces every table and figure of the
//! paper's evaluation (§5).
//!
//! * [`runner`] — runs one query (baseline vs schema-rewritten) on either
//!   backend under the timeout/repetition protocol of §5.1.5,
//! * [`summary`] — box-plot statistics (Tabs. 7/8, Figs. 13/14),
//! * [`experiments`] — one function per table/figure, each returning a
//!   printable report,
//! * [`estimates`] — the cardinality-estimation quality experiment:
//!   per-query q-error of the stats-v2 cost model vs the v1 heuristics
//!   over both catalogs (CI-gated via `estimates --smoke`),
//! * [`mod@parallel`] — morsel-driven intra-query parallelism: DOP=N vs
//!   serial execution over both catalogs, bit-identical results asserted
//!   (CI-gated via `parallel --smoke`),
//! * [`layouts`] — the physical-storage-layout ablation: every catalog
//!   query planned and executed under the per-label, polymorphic and
//!   denormalised layouts, bit-identical results asserted, timings and
//!   plan costs tabulated against the schema-driven advisor's pick
//!   (CI-gated via `layouts --smoke`),
//! * [`observe`] — the observability stack end to end: traced catalog
//!   replay, Chrome-trace export validation, span-vs-analyze agreement
//!   and the disabled-tracer overhead budget (CI-gated via
//!   `observe --smoke`),
//! * [`chaos`] — deterministic fault injection over the LDBC catalog:
//!   seeded fault schedules at every `faultpoint!` site, asserting each
//!   query completes bit-identically to the fault-free reference or
//!   fails classified-retryable, with zero worker deaths and a balanced
//!   memory governor (CI-gated via `chaos --smoke`),
//! * [`records`] — serialisable raw measurements (dumped via
//!   `sgq-experiments --out results.json` so every number is
//!   regenerable).

#![warn(missing_docs)]

pub mod chaos;
pub mod estimates;
pub mod experiments;
pub mod layouts;
pub mod observe;
pub mod parallel;
pub mod records;
pub mod runner;
pub mod summary;

pub use records::RunRecord;
pub use runner::{run_query, Approach, Backend, RunConfig};
pub use summary::Summary;
