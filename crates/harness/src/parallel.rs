//! The `parallel` experiment: morsel-driven intra-query parallelism
//! soundness and scaling over the bundled catalogs.
//!
//! For every query of the YAGO and LDBC catalogs, the schema-rewritten
//! query is planned once and executed twice — serially (`DOP = 1`) and
//! with morsel-parallel operators (`DOP = N` over the shared task
//! scheduler). The runs must agree **bit-for-bit** (same columns, same
//! row buffer contents — the canonical set semantics make this exact,
//! not just set-equal); any divergence panics. Per-query timings and the
//! morsel counts are tabulated, with a sample speedup summary at the
//! end. The smoke variant ([`parallel_smoke`]) is the CI gate: both
//! catalogs at smoke scale with the cost gate forced open so even tiny
//! probes split into morsels, `DOP = 2` against `DOP = 1`.

use std::fmt::Write as _;

use sgq_core::pipeline::RewriteOptions;
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_datasets::CatalogQuery;
use sgq_graph::{GraphDatabase, GraphSchema};
use sgq_obs::QueryTraceBuilder;
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_ra::optimize::optimize;
use sgq_ra::{plan, RelStore};
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

use crate::runner::{query_for, Approach};

/// Configuration for the `parallel` experiment.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// LDBC scale factor to replay.
    pub ldbc_sf: f64,
    /// Scaling of the YAGO dataset relative to the default size.
    pub yago_scale: f64,
    /// Degree of parallelism for the parallel run.
    pub dop: usize,
    /// Probe-row threshold below which operators stay serial; the smoke
    /// variant forces 1 so tiny fixtures still exercise the morsel path.
    pub parallel_threshold: usize,
    /// Morsel size cap (rows).
    pub morsel_rows: usize,
    /// Per-query execution timeout (ms).
    pub timeout_ms: u64,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            ldbc_sf: 0.3,
            yago_scale: 0.3,
            dop: 4,
            parallel_threshold: 1_024,
            morsel_rows: sgq_ra::parallel::MORSEL_ROWS,
            timeout_ms: 10_000,
        }
    }
}

impl ParallelConfig {
    /// The small configuration used by CI (`parallel --smoke`).
    pub fn smoke() -> Self {
        ParallelConfig {
            ldbc_sf: 0.1,
            yago_scale: 0.05,
            dop: 2,
            parallel_threshold: 1,
            morsel_rows: 256,
            timeout_ms: 10_000,
        }
    }
}

/// One per-query serial-vs-parallel measurement.
#[derive(Debug, Clone)]
pub struct ParRecord {
    /// Catalog the query came from (`YAGO` / `LDBC`).
    pub dataset: &'static str,
    /// Query label as in Tab. 4.
    pub query: String,
    /// Result rows (identical across both runs by construction).
    pub rows: usize,
    /// Serial execution time (ms).
    pub serial_ms: f64,
    /// Parallel execution time (ms).
    pub parallel_ms: f64,
    /// Morsel tasks the parallel run dispatched.
    pub morsels: usize,
}

fn catalog_records(
    dataset: &'static str,
    schema: &GraphSchema,
    db: &GraphDatabase,
    queries: &[CatalogQuery],
    cfg: &ParallelConfig,
) -> Vec<ParRecord> {
    let store = RelStore::load(db);
    let mut records = Vec::new();
    for q in queries {
        let Some(ucqt) = query_for(schema, &q.expr, Approach::Schema, RewriteOptions::default())
        else {
            continue;
        };
        let mut names = NameGen::new(&store.symbols);
        let Ok(term) = ucqt_to_term(&ucqt, &mut names) else {
            continue;
        };
        let Ok(p) = plan(&optimize(&term, &store), &store) else {
            continue;
        };
        let mut tb = QueryTraceBuilder::standalone(q.name);
        let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
        let span = tb.begin("serial");
        let Ok(serial) = execute_plan(&p, &store, &mut ctx) else {
            continue; // timed out serially; nothing to compare
        };
        let serial_ms = tb.end(span) as f64 / 1e3;

        let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
        ctx.dop = cfg.dop;
        ctx.parallel_threshold = cfg.parallel_threshold;
        ctx.morsel_rows = cfg.morsel_rows.max(1);
        let span = tb.begin("parallel");
        let parallel = execute_plan(&p, &store, &mut ctx)
            .unwrap_or_else(|e| panic!("{dataset}/{}: parallel run failed: {e}", q.name));
        let parallel_ms = tb.end(span) as f64 / 1e3;
        assert_eq!(
            serial, parallel,
            "{dataset}/{}: DOP={} diverged from serial execution",
            q.name, cfg.dop
        );
        records.push(ParRecord {
            dataset,
            query: q.name.to_string(),
            rows: serial.len(),
            serial_ms,
            parallel_ms,
            morsels: ctx.morsels_executed,
        });
    }
    records
}

/// Runs the experiment over both catalogs, returning the raw records.
pub fn run_parallel(cfg: &ParallelConfig) -> Vec<ParRecord> {
    let mut records = Vec::new();
    let (schema, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    let queries = yago::queries(&schema).expect("catalog parses");
    records.extend(catalog_records("YAGO", &schema, &db, &queries, cfg));
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(cfg.ldbc_sf));
    let queries = ldbc::queries(&schema).expect("catalog parses");
    records.extend(catalog_records("LDBC", &schema, &db, &queries, cfg));
    records
}

/// Renders the records as a table plus a speedup summary.
pub fn render_parallel(records: &[ParRecord], cfg: &ParallelConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "parallel execution: DOP={} vs serial (YAGO x{}, LDBC SF {}, {} hardware threads)",
        cfg.dop,
        cfg.yago_scale,
        cfg.ldbc_sf,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let _ = writeln!(
        out,
        "{:<7} {:<14} {:>10} {:>12} {:>12} {:>8} {:>9}",
        "dataset", "query", "rows", "serial ms", "parallel ms", "morsels", "speedup"
    );
    for r in records {
        let _ = writeln!(
            out,
            "{:<7} {:<14} {:>10} {:>12.2} {:>12.2} {:>8} {:>8.2}x",
            r.dataset,
            r.query,
            r.rows,
            r.serial_ms,
            r.parallel_ms,
            r.morsels,
            r.serial_ms / r.parallel_ms.max(1e-9)
        );
    }
    let parallelised: Vec<&ParRecord> = records.iter().filter(|r| r.morsels > 0).collect();
    let (s, p) = parallelised
        .iter()
        .fold((0.0, 0.0), |(s, p), r| (s + r.serial_ms, p + r.parallel_ms));
    let _ = writeln!(
        out,
        "{} of {} queries ran parallel sections; sample speedup over them: {:.2}x",
        parallelised.len(),
        records.len(),
        s / p.max(1e-9)
    );
    out
}

/// The full experiment: run and render.
pub fn parallel(cfg: &ParallelConfig) -> String {
    render_parallel(&run_parallel(cfg), cfg)
}

/// The CI gate: both catalogs at smoke scale, every query bit-identical
/// between DOP=2 and serial execution (asserted inside the run), and at
/// least one query actually exercising the morsel path.
pub fn parallel_smoke() -> String {
    let cfg = ParallelConfig::smoke();
    let records = run_parallel(&cfg);
    assert!(
        !records.is_empty(),
        "parallel smoke produced no comparable queries"
    );
    assert!(
        records.iter().any(|r| r.morsels > 0),
        "parallel smoke never dispatched a morsel — the forced gate is broken"
    );
    let mut out = render_parallel(&records, &cfg);
    out.push_str("parallel --smoke gate: PASS (all queries bit-identical to serial)\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_smoke_gate_holds() {
        let report = parallel_smoke();
        assert!(report.contains("PASS"), "{report}");
    }
}
