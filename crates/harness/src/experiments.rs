//! One function per table/figure of the paper's evaluation (§5).
//!
//! Every function returns a printable report; suite functions also return
//! the raw [`RunRecord`]s so the binary can dump them as JSON.

use std::fmt::Write as _;

use sgq_core::pipeline::{rewrite_path, RewriteOptions};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_datasets::stats::{dataset_stats, DatasetStats};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_datasets::CatalogQuery;
use sgq_ra::exec::ExecContext;
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

use crate::records::RunRecord;
use crate::runner::{run_query, Approach, Backend, Measurement, RunConfig, Session};
use crate::summary::Summary;

/// Configuration shared by the experiment suite.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Timeout/repetition protocol.
    pub run: RunConfig,
    /// LDBC scale factors to evaluate (subset of the paper's six).
    pub ldbc_sfs: Vec<f64>,
    /// Scaling of the YAGO dataset relative to the default size.
    pub yago_scale: f64,
    /// The backend for the single-backend experiments (the paper's main
    /// backend is PostgreSQL → our relational engine).
    pub backend: Backend,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            run: RunConfig::default(),
            ldbc_sfs: ldbc::SCALE_FACTORS.to_vec(),
            yago_scale: 1.0,
            backend: Backend::Relational,
        }
    }
}

/// Tab. 3: dataset characteristics.
pub fn table3(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 3: Summary of dataset characteristics");
    let _ = writeln!(out, "{}", DatasetStats::header());
    let (_, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    let _ = writeln!(out, "{}", dataset_stats("YAGO", None, &db).row());
    for &sf in &cfg.ldbc_sfs {
        let (_, db) = ldbc::generate(LdbcConfig::at_scale(sf));
        let _ = writeln!(out, "{}", dataset_stats("LDBC-SNB", Some(sf), &db).row());
    }
    out
}

/// Runs the full LDBC suite: 30 queries × scale factors × {B, S}.
pub fn ldbc_suite(cfg: &ExperimentConfig) -> Vec<RunRecord> {
    let mut records = Vec::new();
    for &sf in &cfg.ldbc_sfs {
        let (schema, db) = ldbc::generate(LdbcConfig::at_scale(sf));
        let session = Session::new(&schema, &db);
        let queries = ldbc::queries(&schema).expect("catalog parses");
        for q in &queries {
            records.extend(run_both(&session, q, Some(sf), cfg.backend, &cfg.run));
        }
    }
    records
}

/// Runs the YAGO suite: 18 queries × {B, S} (Fig. 12's data).
pub fn yago_suite(cfg: &ExperimentConfig) -> Vec<RunRecord> {
    let (schema, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    let session = Session::new(&schema, &db);
    let queries = yago::queries(&schema).expect("catalog parses");
    let mut records = Vec::new();
    for q in &queries {
        records.extend(run_both(&session, q, None, cfg.backend, &cfg.run));
    }
    records
}

fn run_both(
    session: &Session<'_>,
    q: &CatalogQuery,
    sf: Option<f64>,
    backend: Backend,
    run: &RunConfig,
) -> Vec<RunRecord> {
    let kind = q.kind().to_string();
    let rewritten = rewrite_path(session.schema, &q.expr, run.rewrite);
    let reverted = rewritten.outcome.is_reverted();
    [Approach::Baseline, Approach::Schema]
        .into_iter()
        .map(|approach| {
            let m = run_query(session, &q.expr, approach, backend, run);
            RunRecord::new(
                q.name,
                &kind,
                sf,
                approach,
                backend,
                m,
                (approach == Approach::Schema).then_some(reverted),
            )
        })
        .collect()
}

/// Tab. 5: feasibility counts per scale factor, split RQ/NQ and B/S.
pub fn table5(records: &[RunRecord], cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 5: LDBC query feasibility across scale factors");
    let _ = writeln!(
        out,
        "{:>5} | {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>8} | {:>12} {:>8}",
        "SF", "RQ-B count", "%", "RQ-S count", "%", "NQ-B count", "%", "NQ-S count", "%"
    );
    for &sf in &cfg.ldbc_sfs {
        let cell = |kind: &str, approach: &str| {
            let total = records
                .iter()
                .filter(|r| r.scale_factor == Some(sf) && r.kind == kind && r.approach == approach)
                .count();
            let ok = records
                .iter()
                .filter(|r| {
                    r.scale_factor == Some(sf)
                        && r.kind == kind
                        && r.approach == approach
                        && r.feasible()
                })
                .count();
            let pct = if total == 0 {
                0.0
            } else {
                100.0 * ok as f64 / total as f64
            };
            (ok, pct)
        };
        let (rqb, rqbp) = cell("RQ", "B");
        let (rqs, rqsp) = cell("RQ", "S");
        let (nqb, nqbp) = cell("NQ", "B");
        let (nqs, nqsp) = cell("NQ", "S");
        let _ = writeln!(
            out,
            "{sf:>5} | {rqb:>12} {rqbp:>7.1}% | {rqs:>12} {rqsp:>7.1}% | {nqb:>12} {nqbp:>7.1}% | {nqs:>12} {nqsp:>7.1}%"
        );
    }
    out
}

/// Tab. 6: statistics on the fixed-length paths generated for the YAGO
/// queries (computed from the rewriter, no execution involved).
pub fn table6(cfg: &ExperimentConfig) -> String {
    let schema = yago::schema();
    let queries = yago::queries(&schema).expect("catalog parses");
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 6: Statistics on generated fixed-length paths (YAGO)"
    );
    let _ = writeln!(
        out,
        "{:<6} {:>7} {:>5} {:>5} {:>5}  outcome",
        "Query", "#Paths", "Min", "Avg", "Max"
    );
    let mut eliminated = 0usize;
    for q in &queries {
        let r = rewrite_path(&schema, &q.expr, cfg.run.rewrite);
        let stats = &r.report.plus_stats;
        let outcome = if r.outcome.is_reverted() {
            "reverted"
        } else if stats.path_lengths.is_empty() {
            "no elimination"
        } else {
            eliminated += 1;
            if r.report.still_recursive {
                "partial elimination"
            } else {
                "closure eliminated"
            }
        };
        match (stats.min(), stats.avg(), stats.max()) {
            (Some(min), Some(avg), Some(max)) => {
                let _ = writeln!(
                    out,
                    "{:<6} {:>7} {:>5} {:>5.1} {:>5}  {outcome}",
                    q.name,
                    stats.count(),
                    min,
                    avg,
                    max
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "{:<6} {:>7} {:>5} {:>5} {:>5}  {outcome}",
                    q.name, 0, "-", "-", "-"
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "Transitive closure replaced by fixed-length paths in {eliminated} of {} queries.",
        queries.len()
    );
    out
}

/// Tab. 7: runtime summary, recursive vs non-recursive, B vs S.
pub fn table7(records: &[RunRecord], timeout_ms: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 7: Query runtime summary statistics (seconds; infeasible runs counted at the timeout, as in the paper's Max = 1800s)"
    );
    let _ = writeln!(out, "{}", Summary::header());
    for kind in ["RQ", "NQ"] {
        for approach in ["B", "S"] {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.kind == kind && r.approach == approach)
                .map(|r| r.ms.unwrap_or(timeout_ms as f64))
                .collect();
            if let Some(s) = Summary::compute(&values) {
                let label = format!(
                    "{} {}",
                    if kind == "RQ" {
                        "Recursive"
                    } else {
                        "Non-recursive"
                    },
                    if approach == "B" {
                        "baseline"
                    } else {
                        "schema"
                    }
                );
                let _ = writeln!(out, "{}", s.row_seconds(&label));
            }
        }
    }
    if let Some(ratio) = mean_ratio(records, "RQ", timeout_ms) {
        let _ = writeln!(out, "Recursive: schema is {ratio:.2}x faster on average");
    }
    if let Some(ratio) = mean_ratio(records, "NQ", timeout_ms) {
        let _ = writeln!(
            out,
            "Non-recursive: schema is {ratio:.2}x faster on average"
        );
    }
    out
}

fn mean_ratio(records: &[RunRecord], kind: &str, timeout_ms: u64) -> Option<f64> {
    let mean = |approach: &str| {
        let v: Vec<f64> = records
            .iter()
            .filter(|r| r.kind == kind && r.approach == approach)
            .map(|r| r.ms.unwrap_or(timeout_ms as f64))
            .collect();
        Summary::compute(&v).map(|s| s.mean)
    };
    Some(mean("B")? / mean("S")?.max(1e-9))
}

/// Tab. 8: overall runtime analysis.
pub fn table8(records: &[RunRecord], timeout_ms: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 8: Overall analysis of query runtime (seconds)");
    let _ = writeln!(out, "{}", Summary::header());
    for approach in ["B", "S"] {
        let values: Vec<f64> = records
            .iter()
            .filter(|r| r.approach == approach)
            .map(|r| r.ms.unwrap_or(timeout_ms as f64))
            .collect();
        if let Some(s) = Summary::compute(&values) {
            let label = if approach == "B" {
                "Baseline"
            } else {
                "Schema"
            };
            let _ = writeln!(out, "{}", s.row_seconds(label));
        }
    }
    out
}

/// Fig. 12: per-query YAGO runtimes, baseline vs schema.
pub fn fig12(records: &[RunRecord], timeout_ms: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 12: Query runtime for the YAGO dataset (ms)");
    let _ = writeln!(
        out,
        "{:<6} {:>12} {:>12} {:>9}",
        "Query", "Baseline", "Schema", "Speedup"
    );
    let mut speedups: Vec<f64> = Vec::new();
    let names: Vec<&str> = {
        let mut v: Vec<&str> = records.iter().map(|r| r.query.as_str()).collect();
        v.dedup();
        v
    };
    for name in names {
        let get = |approach: &str| {
            records
                .iter()
                .find(|r| r.query == name && r.approach == approach)
                .and_then(|r| r.ms)
        };
        let b = get("B").unwrap_or(timeout_ms as f64);
        let s = get("S").unwrap_or(timeout_ms as f64);
        let speedup = b / s.max(1e-9);
        speedups.push(speedup);
        let _ = writeln!(out, "{name:<6} {b:>12.3} {s:>12.3} {speedup:>8.2}x");
    }
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len().max(1) as f64).exp();
    let arith = speedups.iter().sum::<f64>() / speedups.len().max(1) as f64;
    let _ = writeln!(
        out,
        "Average speedup: {arith:.2}x (arithmetic), {geo:.2}x (geometric); paper reports 6.1x"
    );
    out
}

/// Fig. 13: per-scale-factor box-plot statistics (B vs S).
pub fn fig13(records: &[RunRecord], cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 13: Box plot of LDBC query runtime per scale factor (seconds, feasible runs only)"
    );
    let _ = writeln!(out, "{}", Summary::header());
    for &sf in &cfg.ldbc_sfs {
        for approach in ["B", "S"] {
            let values: Vec<f64> = records
                .iter()
                .filter(|r| r.scale_factor == Some(sf) && r.approach == approach)
                .filter_map(|r| r.ms)
                .collect();
            if let Some(s) = Summary::compute(&values) {
                let _ = writeln!(out, "{}", s.row_seconds(&format!("SF{sf} {approach}")));
            }
        }
    }
    out
}

/// Fig. 14: graph vs relational backends on the Cypher-expressible
/// chain-shaped queries (§5.5).
pub fn fig14(cfg: &ExperimentConfig) -> (Vec<RunRecord>, String) {
    let sfs: Vec<f64> = cfg
        .ldbc_sfs
        .iter()
        .copied()
        .filter(|&sf| sf <= 3.0)
        .collect();
    let mut records = Vec::new();
    let schema = ldbc::schema();
    let chain_queries: Vec<CatalogQuery> = ldbc::queries(&schema)
        .expect("catalog parses")
        .into_iter()
        .filter(|q| sgq_translate::cypher_expressible(&q.ucqt()))
        .collect();
    for &sf in &sfs {
        let (schema, db) = ldbc::generate(LdbcConfig::at_scale(sf));
        let session = Session::new(&schema, &db);
        let queries = ldbc::queries(&schema).expect("catalog parses");
        for q in queries
            .iter()
            .filter(|q| chain_queries.iter().any(|c| c.name == q.name))
        {
            for backend in [Backend::Graph, Backend::Relational] {
                let kind = q.kind().to_string();
                for approach in [Approach::Baseline, Approach::Schema] {
                    let m = run_query(&session, &q.expr, approach, backend, &cfg.run);
                    records.push(RunRecord::new(
                        q.name,
                        &kind,
                        Some(sf),
                        approach,
                        backend,
                        m,
                        None,
                    ));
                }
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 14: Query runtimes on the graph (G, Neo4j stand-in) and relational (P, PostgreSQL stand-in) backends"
    );
    let _ = writeln!(
        out,
        "({} of 30 Tab. 4 queries are chain-shaped / Cypher-expressible)",
        chain_queries.len()
    );
    let _ = writeln!(out, "{}", Summary::header());
    for &sf in &sfs {
        for (backend, tag) in [(Backend::Graph, "G"), (Backend::Relational, "P")] {
            for approach in ["B", "S"] {
                let values: Vec<f64> = records
                    .iter()
                    .filter(|r| {
                        r.scale_factor == Some(sf)
                            && r.backend == backend.to_string()
                            && r.approach == approach
                    })
                    .filter_map(|r| r.ms)
                    .collect();
                if let Some(s) = Summary::compute(&values) {
                    let _ = writeln!(out, "{}", s.row_seconds(&format!("SF{sf} {tag}{approach}")));
                }
            }
        }
    }
    (records, out)
}

/// Figs. 15 & 16: the SQL and Cypher translations of Q1 (baseline) and Q2
/// (schema-enriched) — `knows/workAt/isLocatedIn`.
pub fn fig15_16() -> String {
    let schema = ldbc::schema();
    let expr =
        sgq_algebra::parser::parse_path("knows/workAt/isLocatedIn", &schema).expect("Q1 parses");
    let baseline = sgq_query::cqt::Ucqt::path_query(expr.clone());
    let enriched = match rewrite_path(&schema, &expr, RewriteOptions::default()).outcome {
        sgq_core::pipeline::RewriteOutcome::Enriched(q) => q,
        other => panic!("Q1 must enrich, got {other:?}"),
    };
    // No store is involved: the SQL text is the product, so a standalone
    // symbol table provides the column-id space.
    let symbols = sgq_ra::SymbolTable::new();
    let mut names = NameGen::new(&symbols);
    let t_base = ucqt_to_term(&baseline, &mut names).expect("translates");
    let t_schema = ucqt_to_term(&enriched, &mut names).expect("translates");
    let mut out = String::new();
    out.push_str("Figure 15 — SQL translations\n\n-- BASELINE (Q1)\n");
    out.push_str(&sgq_translate::to_sql(&t_base, &schema, &symbols));
    out.push_str("\n\n-- SCHEMA-ENRICHED (Q2)\n");
    out.push_str(&sgq_translate::to_sql(&t_schema, &schema, &symbols));
    out.push_str("\n\nFigure 16 — Cypher translations\n\n// BASELINE (Q1)\n");
    out.push_str(&sgq_translate::to_cypher_resolved(&baseline, &schema).expect("chain"));
    out.push_str("\n\n// SCHEMA-ENRICHED (Q2)\n");
    out.push_str(&sgq_translate::to_cypher_resolved(&enriched, &schema).expect("chain"));
    out.push('\n');
    out
}

/// Fig. 17: execution plans with estimated cost/rows and actual rows for
/// Q1 and Q2 on an LDBC instance.
pub fn fig17(sf: f64) -> String {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(sf));
    let store = sgq_ra::RelStore::load(&db);
    let expr =
        sgq_algebra::parser::parse_path("knows/workAt/isLocatedIn", &schema).expect("Q1 parses");
    let baseline = sgq_query::cqt::Ucqt::path_query(expr.clone());
    let enriched = match rewrite_path(&schema, &expr, RewriteOptions::default()).outcome {
        sgq_core::pipeline::RewriteOutcome::Enriched(q) => q,
        other => panic!("Q1 must enrich, got {other:?}"),
    };
    let mut names = NameGen::new(&store.symbols);
    let t_base = sgq_ra::optimize::optimize(
        &ucqt_to_term(&baseline, &mut names).expect("translates"),
        &store,
    );
    let t_schema = sgq_ra::optimize::optimize(
        &ucqt_to_term(&enriched, &mut names).expect("translates"),
        &store,
    );
    let (rel_b, plan_b) = sgq_ra::explain::explain_analyze(&t_base, &store, &db).expect("executes");
    let (rel_s, plan_s) =
        sgq_ra::explain::explain_analyze(&t_schema, &store, &db).expect("executes");
    let mut out = String::new();
    let _ = writeln!(out, "Figure 17 — execution plans (LDBC SF {sf})\n");
    let _ = writeln!(
        out,
        "// BASELINE QUERY EXECUTION PLAN (Q1) — {} rows",
        rel_b.len()
    );
    out.push_str(&plan_b);
    let _ = writeln!(
        out,
        "\n// SCHEMA-ENRICHED QUERY EXECUTION PLAN (Q2) — {} rows",
        rel_s.len()
    );
    out.push_str(&plan_s);
    let mut ctx = ExecContext::new();
    let _ = sgq_ra::execute(&t_base, &store, &mut ctx);
    let base_rows = ctx.rows_materialized();
    let mut ctx = ExecContext::new();
    let _ = sgq_ra::execute(&t_schema, &store, &mut ctx);
    let schema_rows = ctx.rows_materialized();
    let _ = writeln!(
        out,
        "\nIntermediate rows materialised: baseline = {base_rows}, schema-enriched = {schema_rows}"
    );
    // The paper's headline number (isLocatedIn: 11,118,487 rows -> 7,955
    // after the Organisation semi-join): the same reduction on our store.
    let isl = schema.edge_label("isLocatedIn").expect("label exists");
    let company = schema.node_label("Company").expect("label exists");
    let isl_table = store.edge_table(isl);
    let filtered = isl_table.semijoin(
        &store
            .node_table(company)
            .with_cols(vec![sgq_ra::SymbolTable::SR]),
    );
    let _ = writeln!(
        out,
        "isLocatedIn relation: {} rows, reduced to {} by the Company semi-join",
        isl_table.len(),
        filtered.len()
    );
    out
}

/// §5.2: the revert lists for both catalogs.
pub fn reverts(cfg: &ExperimentConfig) -> String {
    let mut out = String::new();
    let schema = ldbc::schema();
    let mut reverted = Vec::new();
    for q in ldbc::queries(&schema).expect("catalog parses") {
        if rewrite_path(&schema, &q.expr, cfg.run.rewrite)
            .outcome
            .is_reverted()
        {
            reverted.push(q.name);
        }
    }
    let _ = writeln!(
        out,
        "LDBC queries reverting to their initial form ({} of 30): {}",
        reverted.len(),
        reverted.join(", ")
    );
    let yschema = yago::schema();
    let mut yreverted = Vec::new();
    for q in yago::queries(&yschema).expect("catalog parses") {
        if rewrite_path(&yschema, &q.expr, cfg.run.rewrite)
            .outcome
            .is_reverted()
        {
            yreverted.push(q.name);
        }
    }
    let _ = writeln!(
        out,
        "YAGO queries reverting to their initial form ({} of 18): {}",
        yreverted.len(),
        yreverted.join(", ")
    );
    let _ = writeln!(
        out,
        "(paper §5.2: 10 of 30 LDBC queries and 1 of 18 YAGO queries revert)"
    );
    out
}

/// Physical plan showcase on the Fig. 2 database: join strategy
/// selection (CSR index vs merge vs hash, cost-chosen build sides),
/// fused filtered scans, and fixpoint work counters with and without
/// the adjacency indexes. Ends with the LDBC smoke assertion: at least
/// one catalog query must plan a CSR `IndexJoin`.
pub fn physical_plans() -> String {
    use sgq_ra::exec::{execute_plan, ExecContext};
    use sgq_ra::term::{closure_fixpoint, RaTerm};

    let db = sgq_graph::database::fig2_yago_database();
    let mut store = sgq_ra::RelStore::load(&db);
    let s = &store.symbols;
    let scan = |label: &str, src: &str, tgt: &str| RaTerm::EdgeScan {
        label: db.edge_label_id(label).expect("label exists"),
        src: s.col(src),
        tgt: s.col(tgt),
    };
    let mut out = String::new();
    let _ = writeln!(out, "Physical execution plans (Fig. 2 database)\n");

    // 1. A selective probe against a base scan: the cost model replaces
    //    the scan with direct CSR neighbour probes — no materialisation,
    //    no hash table.
    let misaligned = RaTerm::join(scan("owns", "x", "y"), scan("isLocatedIn", "y", "z"));
    let _ = writeln!(
        out,
        "-- owns(x,y) ⋈ isLocatedIn(y,z): the 1-row owns side probes the CSR"
    );
    out.push_str(&sgq_ra::explain::explain(&misaligned, &store, &db));

    // 2. The scan-based strategies, shown with the indexes ablated:
    //    merge when the shared column leads both sorted inputs, hash
    //    with the cost-chosen build side otherwise.
    store.index_joins = false;
    let aligned = RaTerm::join(scan("isLocatedIn", "x", "y"), scan("owns", "x", "z"));
    let _ = writeln!(
        out,
        "\n-- isLocatedIn(x,y) ⋈ owns(x,z), indexes ablated: sorted on x on both sides"
    );
    out.push_str(&sgq_ra::explain::explain(&aligned, &store, &db));
    let _ = writeln!(
        out,
        "\n-- owns(x,y) ⋈ isLocatedIn(y,z), indexes ablated: y does not lead the left side"
    );
    out.push_str(&sgq_ra::explain::explain(&misaligned, &store, &db));
    store.index_joins = true;

    // 3. The transitive closure. With the CSR the step probes the
    //    load-time index every round — zero per-query hash builds; the
    //    ablation falls back to building (and caching) the step's hash
    //    table.
    let closure = closure_fixpoint(
        s.recvar("X"),
        scan("isLocatedIn", "x", "y"),
        s.col("x"),
        s.col("y"),
        s.col("m"),
    );
    let _ = writeln!(out, "\n-- µX. isLocatedIn ∪ π(X ⋈ isLocatedIn)");
    let plan_index = sgq_ra::plan(&closure, &store).expect("closure plans");
    out.push_str(&sgq_ra::explain::explain_plan(&plan_index, &store, &db));
    store.index_joins = false;
    let plan_hash = sgq_ra::plan(&closure, &store).expect("closure plans");
    store.index_joins = true;

    let mut ctx_index = ExecContext::new();
    let r_index = execute_plan(&plan_index, &store, &mut ctx_index).expect("executes");
    let mut cached = ExecContext::new();
    let r1 = execute_plan(&plan_hash, &store, &mut cached).expect("executes");
    let mut uncached = ExecContext::new();
    uncached.no_fixpoint_cache = true;
    let r2 = execute_plan(&plan_hash, &store, &mut uncached).expect("executes");
    assert_eq!(r1, r2, "build-side caching must not change results");
    assert_eq!(r1, r_index, "index joins must not change results");
    let _ = writeln!(
        out,
        "\nClosure over {} rounds: {} hash builds with the CSR index \
         ({} with cached hash builds, {} uncached), {} rows materialised \
         ({} / {} for the hash plans)",
        ctx_index.fixpoint_rounds,
        ctx_index.hash_builds,
        cached.hash_builds,
        uncached.hash_builds,
        ctx_index.rows_materialized(),
        cached.rows_materialized(),
        uncached.rows_materialized(),
    );

    // 4. The µ-RA pushdown composed with the physical layer: the label
    //    filter migrates into the fixpoint base, then fuses into the
    //    scan (or becomes an index-join endpoint filter).
    let filtered = RaTerm::semijoin(
        closure,
        RaTerm::NodeScan {
            labels: vec![db.node_label_id("CITY").expect("label exists")],
            col: s.col("x"),
        },
    );
    let optimized = sgq_ra::optimize::optimize(&filtered, &store);
    let _ = writeln!(
        out,
        "\n-- (µX. isLocatedIn ∪ π(X ⋈ isLocatedIn)) ⋉ CITY, optimised"
    );
    out.push_str(&sgq_ra::explain::explain(&optimized, &store, &db));

    // 5. CI smoke: on the LDBC catalog the cost model must choose a CSR
    //    index join for at least one query, from measured statistics
    //    alone.
    out.push_str(&ldbc_index_join_smoke());
    out
}

/// Plans every LDBC catalog query (baseline translation, optimised) and
/// asserts at least one lowers to a CSR [`sgq_ra::PhysOp::IndexJoin`] —
/// the `plans` experiment's CI gate for the index layer. Returns the
/// report section listing the queries and one sample `EXPLAIN`.
fn ldbc_index_join_smoke() -> String {
    let is_index_join = |op: &sgq_ra::PhysOp| matches!(op, sgq_ra::PhysOp::IndexJoin { .. });
    let (schema, ldb) = ldbc::generate(LdbcConfig::at_scale(0.1));
    let store = sgq_ra::RelStore::load(&ldb);
    let queries = ldbc::queries(&schema).expect("catalog parses");
    let total = queries.len();
    let mut with_index = Vec::new();
    let mut sample = None;
    for q in &queries {
        let mut names = NameGen::new(&store.symbols);
        let Ok(term) = ucqt_to_term(&q.ucqt(), &mut names) else {
            continue;
        };
        let opt = sgq_ra::optimize::optimize(&term, &store);
        let Ok(plan) = sgq_ra::plan(&opt, &store) else {
            continue;
        };
        if plan.contains_op(&is_index_join) {
            if sample.is_none() {
                sample = Some((q.name, sgq_ra::explain::explain_plan(&plan, &store, &ldb)));
            }
            with_index.push(q.name);
        }
    }
    assert!(
        !with_index.is_empty(),
        "no LDBC catalog query planned an IndexJoin"
    );
    let mut out = String::new();
    let _ = writeln!(
        out,
        "\nLDBC catalog queries planning a CSR Index Join (SF 0.1): {} of {total}: {}",
        with_index.len(),
        with_index.join(", ")
    );
    if let Some((name, rendered)) = sample {
        let _ = writeln!(out, "\n-- {name}, optimised physical plan");
        out.push_str(&rendered);
    }
    out
}

/// CI smoke run on the tiny Fig. 2 database: both backends, both
/// approaches, a handful of recursive and non-recursive paths. Panics on
/// any disagreement so a broken harness path fails the build.
pub fn smoke() -> String {
    let schema = sgq_graph::schema::fig1_yago_schema();
    let db = sgq_graph::database::fig2_yago_database();
    let session = Session::new(&schema, &db);
    let config = RunConfig {
        timeout_ms: 10_000,
        repetitions: 1,
        ..Default::default()
    };
    let mut out = String::new();
    let _ = writeln!(out, "Smoke run (Fig. 2 database, graph vs relational)\n");
    let _ = writeln!(
        out,
        "{:<28} {:>6} {:>6} {:>6} {:>6}",
        "query", "G/B", "G/S", "R/B", "R/S"
    );
    for text in [
        "isLocatedIn",
        "isLocatedIn+",
        "owns/isLocatedIn+",
        "livesIn/isLocatedIn",
        "isMarriedTo+",
    ] {
        let expr = sgq_algebra::parser::parse_path(text, &schema).expect("smoke query parses");
        let mut cards = Vec::new();
        for backend in [Backend::Graph, Backend::Relational] {
            for approach in [Approach::Baseline, Approach::Schema] {
                match run_query(&session, &expr, approach, backend, &config) {
                    Measurement::Feasible { rows, .. } => cards.push(rows),
                    Measurement::Infeasible => {
                        panic!("smoke query {text} infeasible on {backend}/{approach}")
                    }
                }
            }
        }
        assert!(
            cards.windows(2).all(|w| w[0] == w[1]),
            "smoke query {text} disagrees across backends/approaches: {cards:?}"
        );
        let _ = writeln!(
            out,
            "{text:<28} {:>6} {:>6} {:>6} {:>6}",
            cards[0], cards[1], cards[2], cards[3]
        );
    }
    out
}

/// Configuration for the closed-loop serving experiment (`serve`).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker-pool sizes to sweep.
    pub worker_counts: Vec<usize>,
    /// Closed-loop client threads (each keeps one query in flight).
    pub clients: usize,
    /// Full passes over the catalog per client.
    pub iters_per_client: usize,
    /// LDBC scale factor of the served database.
    pub sf: f64,
    /// Per-query deadline (ms).
    pub timeout_ms: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            worker_counts: vec![1, 2, 4],
            clients: 8,
            iters_per_client: 3,
            sf: 0.3,
            timeout_ms: 30_000,
        }
    }
}

impl ServeConfig {
    /// The small configuration used by CI (`serve --smoke`).
    pub fn smoke() -> Self {
        ServeConfig {
            worker_counts: vec![1, 2],
            clients: 4,
            iters_per_client: 2,
            sf: 0.1,
            timeout_ms: 30_000,
        }
    }
}

/// One closed-loop serving measurement.
#[derive(Debug, Clone)]
pub struct ServeRun {
    /// Worker threads.
    pub workers: usize,
    /// Whether the plan cache was consulted.
    pub cached: bool,
    /// Queries completed by the clients.
    pub completed: u64,
    /// Admission rejections the clients retried through.
    pub busy_retries: u64,
    /// Client-side wall clock of the loop (s).
    pub elapsed_s: f64,
    /// Completed queries per second of client wall clock.
    pub qps: f64,
    /// Plan-cache hit rate over the measured loop only (warmup
    /// prepares excluded).
    pub measured_hit_rate: f64,
    /// Service metrics at the end of the run.
    pub metrics: sgq_service::MetricsSnapshot,
}

/// Drives `clients` closed-loop client threads over an existing
/// service: each keeps one query in flight for `passes` passes over
/// `queries` (offset per client so the loop does not hit the same
/// statement in lock-step), retrying retryable errors (`Busy`, injected
/// transients) through [`sgq_service::retry_with_backoff`] with a
/// jittered exponential backoff instead of a hot spin. Returns
/// `(completed, retries)`; non-retryable errors are counted in the
/// service metrics. Shared by [`closed_loop`] and the
/// `service_throughput` bench.
pub fn run_clients(
    service: &sgq_service::Service,
    queries: &[String],
    clients: usize,
    passes: usize,
    opts: &sgq_service::QueryOptions,
) -> (u64, u64) {
    use sgq_service::{retry_with_backoff, RetryPolicy};
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                let session = service.session();
                let opts = *opts;
                s.spawn(move || {
                    let mut ok = 0u64;
                    let mut retries = 0u64;
                    // Unbounded: a closed-loop client must eventually
                    // admit every request; the backoff (100 µs doubling
                    // to a 10 ms cap, jitter seeded per client) keeps
                    // the waiting off the CPU and decorrelated.
                    let policy = RetryPolicy::unbounded(0x9e3779b9 ^ client as u64);
                    for pass in 0..passes {
                        for i in 0..queries.len() {
                            let q = &queries[(i + client + pass) % queries.len()];
                            let (result, spent) =
                                retry_with_backoff(policy, || session.execute(q, &opts));
                            retries += spent;
                            if result.is_ok() {
                                ok += 1;
                            } // errors are counted in the service metrics
                        }
                    }
                    (ok, retries)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .fold((0, 0), |(a, b), (x, y)| (a + x, b + y))
    })
}

/// Runs one closed loop: `clients` threads over a shared [`sgq_service::Service`],
/// each keeping one query in flight across `iters_per_client` passes of
/// `queries`. `Busy` rejections are retried (and counted); other errors
/// are surfaced in the service metrics. `store` is the pre-loaded
/// relational load of `db`, shared across the sweep's services.
pub fn closed_loop(
    schema: &std::sync::Arc<sgq_graph::GraphSchema>,
    db: &std::sync::Arc<sgq_graph::GraphDatabase>,
    store: &std::sync::Arc<sgq_ra::RelStore>,
    queries: &[String],
    workers: usize,
    cfg: &ServeConfig,
    cached: bool,
) -> ServeRun {
    use sgq_service::{QueryOptions, Service, ServiceConfig};
    use std::sync::Arc;
    use std::time::Instant;

    let service = Service::with_store(
        Arc::clone(schema),
        Arc::clone(db),
        Arc::clone(store),
        ServiceConfig {
            workers,
            queue_capacity: (cfg.clients * 2).max(8),
            default_timeout_ms: cfg.timeout_ms,
            ..Default::default()
        },
    );
    let opts = QueryOptions {
        use_cache: cached,
        ..Default::default()
    };
    if cached {
        // Warm the plan cache so the cached ablation measures execution,
        // not first-touch prepares. `prepare` runs inline and does not
        // touch the latency registry, so the reported percentiles only
        // contain measured-loop samples.
        let session = service.session();
        for q in queries {
            session.prepare(q, &opts).expect("warmup prepares");
        }
    }
    let cache_before = service.metrics().cache;
    let start = Instant::now();
    let (completed, busy_retries) =
        run_clients(&service, queries, cfg.clients, cfg.iters_per_client, &opts);
    let elapsed_s = start.elapsed().as_secs_f64().max(1e-9);
    let metrics = service.metrics();
    service.shutdown();
    // Hit rate of the measured loop alone — the warmup pass's misses
    // are setup, not measurement.
    let hits = metrics.cache.hits - cache_before.hits;
    let misses = metrics.cache.misses - cache_before.misses;
    let measured_hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    ServeRun {
        workers,
        cached,
        completed,
        busy_retries,
        elapsed_s,
        qps: completed as f64 / elapsed_s,
        measured_hit_rate,
        metrics,
    }
}

/// The `serve` experiment: closed-loop throughput of the query service
/// over the LDBC catalog — worker-count sweep with a plan-cache on/off
/// ablation, plus the final metrics snapshot as JSON (the machine-
/// readable form of the run).
pub fn serve(cfg: &ServeConfig) -> String {
    use sgq_common::json::JsonValue;

    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(cfg.sf));
    let schema = std::sync::Arc::new(schema);
    let db = std::sync::Arc::new(db);
    let store = std::sync::Arc::new(sgq_ra::RelStore::load(&db));
    let queries: Vec<String> = ldbc::queries(&schema)
        .expect("catalog parses")
        .iter()
        .map(|q| q.text.to_string())
        .collect();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Service closed-loop throughput (LDBC SF{}, {} queries, {} clients x {} passes)\n",
        cfg.sf,
        queries.len(),
        cfg.clients,
        cfg.iters_per_client
    );
    let _ = writeln!(
        out,
        "{:>7} {:>6} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
        "workers", "cache", "qps", "p50 ms", "p95 ms", "p99 ms", "queries", "busy"
    );
    let mut runs_json = Vec::new();
    for &workers in &cfg.worker_counts {
        for cached in [false, true] {
            let run = closed_loop(&schema, &db, &store, &queries, workers, cfg, cached);
            let _ = writeln!(
                out,
                "{:>7} {:>6} {:>9.1} {:>9.3} {:>9.3} {:>9.3} {:>9} {:>6}",
                run.workers,
                if run.cached { "on" } else { "off" },
                run.qps,
                run.metrics.p50_ms,
                run.metrics.p95_ms,
                run.metrics.p99_ms,
                run.completed,
                run.busy_retries
            );
            // Machine-readable record of the run: client-measured QPS
            // (the registry's own qps field divides by time since
            // service construction, which includes warmup).
            runs_json.push(JsonValue::obj([
                ("workers", JsonValue::Int(run.workers as u64)),
                ("cache", JsonValue::Bool(run.cached)),
                ("qps", JsonValue::Num(run.qps)),
                ("p50_ms", JsonValue::Num(run.metrics.p50_ms)),
                ("p95_ms", JsonValue::Num(run.metrics.p95_ms)),
                ("p99_ms", JsonValue::Num(run.metrics.p99_ms)),
                ("completed", JsonValue::Int(run.completed)),
                ("busy_retries", JsonValue::Int(run.busy_retries)),
                ("cache_hit_rate", JsonValue::Num(run.measured_hit_rate)),
            ]));
        }
    }
    let _ = writeln!(
        out,
        "\nruns as JSON: {}",
        JsonValue::Arr(runs_json).render()
    );
    out
}

/// CI smoke for the serving path: four concurrent cached clients over
/// two workers must produce exactly the rows sequential uncached
/// execution produces, with a warm plan cache and zero errors. Panics on
/// any divergence so a broken concurrency path fails the build.
pub fn serve_smoke() -> String {
    use sgq_service::{QueryOptions, Service, ServiceConfig};
    use std::sync::Arc;

    let cfg = ServeConfig::smoke();
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(cfg.sf));
    let schema = Arc::new(schema);
    let db = Arc::new(db);
    let queries: Vec<String> = ldbc::queries(&schema)
        .expect("catalog parses")
        .iter()
        .map(|q| q.text.to_string())
        .collect();
    let service = Service::new(
        Arc::clone(&schema),
        Arc::clone(&db),
        ServiceConfig {
            workers: 2,
            queue_capacity: 64,
            default_timeout_ms: cfg.timeout_ms,
            ..Default::default()
        },
    );
    // Sequential, cache-bypassing reference rows.
    let uncached = QueryOptions {
        use_cache: false,
        ..Default::default()
    };
    let session = service.session();
    let reference: Vec<Vec<Vec<u32>>> = queries
        .iter()
        .map(|q| session.execute(q, &uncached).expect("smoke executes").rows)
        .collect();
    // Concurrent cached clients must reproduce the reference exactly.
    // Warm the cache first (the bypassing reference pass did not
    // populate it), so every concurrent execution exercises the warm
    // hit path.
    let opts = QueryOptions::default();
    for q in &queries {
        session.prepare(q, &opts).expect("smoke prepares");
    }
    std::thread::scope(|s| {
        for _ in 0..cfg.clients {
            let session = service.session();
            let queries = &queries;
            let reference = &reference;
            s.spawn(move || {
                for (q, expected) in queries.iter().zip(reference) {
                    let got = session.execute(q, &opts).expect("smoke executes").rows;
                    assert_eq!(&got, expected, "concurrent result diverged on {q}");
                }
            });
        }
    });
    let m = service.metrics();
    assert_eq!(m.errors, 0, "serve smoke saw errors: {m}");
    assert_eq!(m.timeouts, 0, "serve smoke saw timeouts: {m}");
    assert!(
        m.cache.hits >= (cfg.clients * queries.len()) as u64,
        "every concurrent execution must hit the warm cache: {m}"
    );
    service.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Serve smoke (LDBC SF{}): {} queries x {} concurrent cached clients \
         over 2 workers match sequential uncached execution\n",
        cfg.sf,
        queries.len(),
        cfg.clients
    );
    let _ = writeln!(out, "{m}");
    out
}

/// Runs one measurement for a single expression — helper for examples.
pub fn measure_pair(
    session: &Session<'_>,
    expr: &sgq_algebra::ast::PathExpr,
    backend: Backend,
    run: &RunConfig,
) -> (Measurement, Measurement) {
    (
        run_query(session, expr, Approach::Baseline, backend, run),
        run_query(session, expr, Approach::Schema, backend, run),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            run: RunConfig {
                timeout_ms: 4_000,
                repetitions: 1,
                ..Default::default()
            },
            ldbc_sfs: vec![0.1],
            yago_scale: 0.02,
            backend: Backend::Graph,
        }
    }

    #[test]
    fn table3_renders() {
        let s = table3(&tiny_cfg());
        assert!(s.contains("YAGO"));
        assert!(s.contains("LDBC-SNB"));
        assert!(s.contains("#NR"));
    }

    #[test]
    fn table6_matches_paper_count() {
        let s = table6(&tiny_cfg());
        assert!(s.contains("16 of 18"), "{s}");
        assert!(s.contains("Y7"), "{s}");
    }

    #[test]
    fn suite_and_tables_render() {
        let cfg = tiny_cfg();
        let records = ldbc_suite(&cfg);
        assert_eq!(records.len(), 30 * 2);
        let t5 = table5(&records, &cfg);
        assert!(t5.contains("SF"), "{t5}");
        let t7 = table7(&records, cfg.run.timeout_ms);
        assert!(t7.contains("Recursive baseline"), "{t7}");
        let t8 = table8(&records, cfg.run.timeout_ms);
        assert!(t8.contains("Baseline"), "{t8}");
        let f13 = fig13(&records, &cfg);
        assert!(f13.contains("SF0.1"), "{f13}");
    }

    #[test]
    fn yago_fig12_renders() {
        let cfg = tiny_cfg();
        let records = yago_suite(&cfg);
        assert_eq!(records.len(), 18 * 2);
        let s = fig12(&records, cfg.run.timeout_ms);
        assert!(s.contains("Average speedup"), "{s}");
        assert!(s.contains("Y1"), "{s}");
    }

    #[test]
    fn physical_plans_show_strategies() {
        let s = physical_plans();
        assert!(s.contains("Index Join on isLocatedIn"), "{s}");
        assert!(s.contains("Merge Join (key = x)"), "{s}");
        assert!(s.contains("Hash Join (build = left, key = y)"), "{s}");
        assert!(s.contains("Recursive Fixpoint"), "{s}");
        assert!(s.contains("0 hash builds with the CSR index"), "{s}");
        assert!(s.contains("planning a CSR Index Join"), "{s}");
    }

    #[test]
    fn smoke_agrees_across_backends() {
        let s = smoke();
        assert!(s.contains("isMarriedTo+"), "{s}");
        assert!(s.contains("owns/isLocatedIn+"), "{s}");
    }

    #[test]
    fn serve_smoke_matches_sequential() {
        let s = serve_smoke();
        assert!(s.contains("match sequential uncached execution"), "{s}");
        assert!(s.contains("plan cache"), "{s}");
    }

    #[test]
    fn serve_sweep_renders() {
        let cfg = ServeConfig {
            worker_counts: vec![1, 2],
            clients: 2,
            iters_per_client: 1,
            sf: 0.1,
            timeout_ms: 30_000,
        };
        let s = serve(&cfg);
        assert!(s.contains("workers"), "{s}");
        assert!(s.contains("runs as JSON"), "{s}");
        assert!(s.contains("\"qps\""), "{s}");
        assert!(s.contains("\"cache_hit_rate\""), "{s}");
    }

    #[test]
    fn fig15_16_reproduce_paper_shapes() {
        let s = fig15_16();
        // Fig. 15: the schema-enriched SQL pre-filters isLocatedIn by the
        // organisation-side node table.
        assert!(s.contains("FROM knows"), "{s}");
        assert!(s.contains("FROM workAt"), "{s}");
        assert!(s.contains("FROM isLocatedIn"), "{s}");
        assert!(s.contains("Company"), "{s}");
        // Fig. 16: the enriched Cypher carries the node label.
        assert!(s.contains("-[:knows]->"), "{s}");
        assert!(s.contains(":Company)"), "{s}");
    }

    #[test]
    fn fig17_semijoin_reduces_intermediates() {
        let s = fig17(0.1);
        // The Organisation restriction appears as a semi-join operator or
        // as an endpoint filter absorbed into a CSR index join.
        assert!(s.contains("Semi Join") || s.contains("∈ Company"), "{s}");
        // The Fig. 17 narrative: the semi-join collapses the isLocatedIn
        // input by an order of magnitude before the join.
        let full: usize = extract(&s, "isLocatedIn relation: ");
        let filtered: usize = extract(&s, "reduced to ");
        assert!(
            filtered * 5 <= full,
            "semi-join should cut isLocatedIn by >=5x ({filtered} of {full})\n{s}"
        );
    }

    fn extract(s: &str, prefix: &str) -> usize {
        let at = s.find(prefix).expect("marker present") + prefix.len();
        s[at..]
            .chars()
            .take_while(|c| c.is_ascii_digit())
            .collect::<String>()
            .parse()
            .expect("number")
    }

    #[test]
    fn reverts_listing() {
        let s = reverts(&tiny_cfg());
        assert!(s.contains("IC13"), "{s}");
        assert!(s.contains("Y7"), "{s}");
    }
}
