//! The `chaos` experiment: deterministic fault injection over the LDBC
//! catalog.
//!
//! A reference pass executes every catalog query on a fault-free
//! service and records its rows. Then, for each configured seed, a
//! [`sgq_common::fault`] plan is armed (every fault site, seeded
//! SplitMix64, fixed per-visit probability) and the catalog is replayed
//! by a single sequential client — sequential so the seeded decision
//! stream replays the same fault schedule for the same seed. Every
//! query must either
//!
//! * complete **bit-identically** to the reference rows (faults that
//!   fired were retried away by the backoff helper), or
//! * fail with a **classified retryable** error
//!   ([`sgq_common::SgqError::retryable`]) once the per-query retry
//!   budget is spent.
//!
//! Anything else — a wrong answer, a non-retryable error, a hang, a
//! worker death — panics the experiment. After every query the
//! [`ResourceGovernor`](sgq_common::ResourceGovernor) must read zero
//! (no leaked memory accounting), and after all fault passes a final
//! disarmed replay must again match the reference bit-for-bit with zero
//! worker panics: the service kept serving through the whole storm.
//!
//! The smoke variant ([`chaos_smoke`]) is the CI gate: one seed, small
//! catalog, higher fire probability.

use std::fmt::Write as _;

use sgq_common::fault::{self, FaultConfig};
use sgq_common::json::JsonValue;
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_service::{retry_with_backoff, QueryOptions, RetryPolicy, Service, ServiceConfig};

/// Configuration for the `chaos` experiment.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// LDBC scale factor to replay.
    pub sf: f64,
    /// Fault-plan seeds; each is one full armed pass over the catalog.
    pub seeds: Vec<u64>,
    /// Per-visit fire probability of the armed plan.
    pub probability: f64,
    /// Per-query execution timeout (ms).
    pub timeout_ms: u64,
    /// Per-query retry budget (attempts including the first); a query
    /// still failing after this many attempts must fail retryable.
    pub max_attempts: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            sf: 0.3,
            seeds: vec![1, 2, 3],
            probability: 0.02,
            timeout_ms: 10_000,
            max_attempts: 16,
        }
    }
}

impl ChaosConfig {
    /// The small configuration used by CI (`chaos --smoke`): one seed,
    /// smoke-scale catalog, a fire probability high enough that faults
    /// demonstrably fire.
    pub fn smoke() -> Self {
        ChaosConfig {
            sf: 0.1,
            seeds: vec![7],
            probability: 0.05,
            timeout_ms: 10_000,
            max_attempts: 12,
        }
    }
}

/// One armed pass over the catalog under a single seed.
#[derive(Debug, Clone)]
pub struct ChaosPass {
    /// The fault-plan seed.
    pub seed: u64,
    /// Queries that completed bit-identically to the reference.
    pub identical: usize,
    /// Queries that exhausted their retry budget with a retryable error.
    pub retryable_failures: usize,
    /// Retries spent across the pass.
    pub retries: u64,
    /// Faults fired per site.
    pub fires: Vec<(&'static str, u64)>,
}

impl ChaosPass {
    /// Total faults fired during the pass.
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().map(|(_, n)| n).sum()
    }
}

/// Runs the experiment and returns the human table plus the JSON record
/// (the machine-readable form), separated by a blank line.
pub fn chaos(cfg: &ChaosConfig) -> String {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(cfg.sf));
    let schema = std::sync::Arc::new(schema);
    let db = std::sync::Arc::new(db);
    let queries: Vec<String> = ldbc::queries(&schema)
        .expect("catalog parses")
        .iter()
        .map(|q| q.text.to_string())
        .collect();
    let service = Service::new(
        std::sync::Arc::clone(&schema),
        std::sync::Arc::clone(&db),
        ServiceConfig {
            workers: 2,
            default_timeout_ms: cfg.timeout_ms,
            ..Default::default()
        },
    );
    let session = service.session();
    let opts = QueryOptions::default();

    // Reference pass, disarmed: every catalog query must succeed.
    let _ = fault::disarm();
    let reference: Vec<Vec<Vec<u32>>> = queries
        .iter()
        .map(|q| {
            let resp = session.execute(q, &opts).expect("fault-free reference run");
            assert_eq!(
                service.governor().used(),
                0,
                "governor must balance to zero after a reference query"
            );
            resp.rows
        })
        .collect();

    // Armed passes: one per seed, single sequential client so the
    // seeded fault schedule is deterministic.
    let mut passes = Vec::new();
    for &seed in &cfg.seeds {
        fault::arm(FaultConfig::errors(seed, cfg.probability));
        let mut identical = 0usize;
        let mut retryable_failures = 0usize;
        let mut retries = 0u64;
        let policy = RetryPolicy {
            max_attempts: cfg.max_attempts,
            ..RetryPolicy::new(seed)
        };
        for (i, q) in queries.iter().enumerate() {
            let (result, spent) = retry_with_backoff(policy, || session.execute(q, &opts));
            retries += spent;
            match result {
                Ok(resp) => {
                    assert_eq!(
                        resp.rows, reference[i],
                        "seed {seed}: query {i} diverged from the fault-free reference"
                    );
                    identical += 1;
                }
                Err(e) => {
                    assert!(
                        e.retryable(),
                        "seed {seed}: query {i} failed non-retryable: {e}"
                    );
                    retryable_failures += 1;
                }
            }
            assert_eq!(
                service.governor().used(),
                0,
                "seed {seed}: governor leaked after query {i}"
            );
            assert_eq!(
                service.governor().active_queries(),
                0,
                "seed {seed}: a query budget outlived query {i}"
            );
        }
        let fires = fault::disarm().into_iter().collect::<Vec<_>>();
        passes.push(ChaosPass {
            seed,
            identical,
            retryable_failures,
            retries,
            fires,
        });
    }

    // The storm is over: a disarmed replay must match the reference
    // bit-for-bit — the service (and every worker) survived.
    for (i, q) in queries.iter().enumerate() {
        let resp = session
            .execute(q, &opts)
            .expect("post-chaos fault-free run");
        assert_eq!(
            resp.rows, reference[i],
            "post-chaos query {i} diverged: service state was corrupted"
        );
    }
    let metrics = service.metrics();
    assert_eq!(
        metrics.worker_panics, 0,
        "no worker panicked during fault injection"
    );
    assert_eq!(
        service.pool_panic_count(),
        0,
        "no panic escaped to the pool backstop"
    );
    assert_eq!(service.governor().used(), 0, "final governor balance");
    let governor_peak = service.governor().peak();
    service.shutdown();

    // At the default probabilities some pass must actually have fired —
    // a chaos run where nothing happened proves nothing.
    let total_fires: u64 = passes.iter().map(ChaosPass::total_fires).sum();
    assert!(
        total_fires > 0,
        "no fault fired across {} passes — raise probability or seeds",
        passes.len()
    );

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Chaos: LDBC SF{} x {} queries, p = {} per fault-point visit\n",
        cfg.sf,
        queries.len(),
        cfg.probability
    );
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>10} {:>8} {:>6}  fired sites",
        "seed", "identical", "retryable", "retries", "fires"
    );
    for p in &passes {
        let sites = p
            .fires
            .iter()
            .map(|(s, n)| format!("{s}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:>6} {:>10} {:>10} {:>8} {:>6}  {}",
            p.seed,
            p.identical,
            p.retryable_failures,
            p.retries,
            p.total_fires(),
            sites
        );
    }
    let _ = writeln!(
        out,
        "\nevery query bit-identical or classified-retryable; post-chaos replay \
         identical; 0 worker panics; governor balanced (peak {governor_peak} bytes)"
    );

    let json = JsonValue::obj([
        ("sf", JsonValue::Num(cfg.sf)),
        ("probability", JsonValue::Num(cfg.probability)),
        ("queries", JsonValue::Int(queries.len() as u64)),
        (
            "passes",
            JsonValue::Arr(
                passes
                    .iter()
                    .map(|p| {
                        JsonValue::obj([
                            ("seed", JsonValue::Int(p.seed)),
                            ("identical", JsonValue::Int(p.identical as u64)),
                            (
                                "retryable_failures",
                                JsonValue::Int(p.retryable_failures as u64),
                            ),
                            ("retries", JsonValue::Int(p.retries)),
                            (
                                "fires",
                                JsonValue::obj(
                                    p.fires.iter().map(|&(s, n)| (s, JsonValue::Int(n))),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("worker_panics", JsonValue::Int(metrics.worker_panics)),
        ("governor_peak_bytes", JsonValue::Int(governor_peak as u64)),
    ]);
    let _ = writeln!(out, "\n{}", json.render());
    out
}

/// The CI smoke gate: [`ChaosConfig::smoke`], asserting inside
/// [`chaos`] that every query is bit-identical or classified-retryable,
/// the governor balances, and no worker dies.
pub fn chaos_smoke() -> String {
    chaos(&ChaosConfig::smoke())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The fault plan is process-global state: arming it here would
    // inject transients into every other harness test running
    // concurrently in this binary. CI exercises the real gate as its
    // own process (`sgq-experiments chaos --smoke`); run it locally via
    // `cargo test -p sgq_harness chaos -- --ignored --test-threads 1`.
    #[test]
    #[ignore = "arms process-global fault injection; CI runs it as a separate process"]
    fn chaos_smoke_gate_holds() {
        let out = chaos_smoke();
        assert!(out.contains("\"worker_panics\": 0"), "{out}");
        assert!(out.contains("fired sites"), "{out}");
    }
}
