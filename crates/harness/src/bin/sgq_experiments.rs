//! `sgq-experiments` — regenerates every table and figure of the paper.
//!
//! ```text
//! sgq-experiments [EXPERIMENTS...] [--timeout-ms N] [--reps N]
//!                 [--sf-max X] [--yago-scale X] [--backend graph|relational]
//!                 [--out results.json]
//!                 [--smoke] [--serve-workers 1,2,4] [--serve-clients N]
//!                 [--serve-iters N] [--serve-sf X] [--est-sf X]
//!                 [--chaos-sf X] [--chaos-prob P] [--chaos-seeds a,b,c]
//!
//! EXPERIMENTS: all (default) | table3 | table5 | table6 | table7 | table8
//!              | fig12 | fig13 | fig14 | fig15 | fig17 | reverts
//!              | plans | smoke | serve | estimates | parallel | observe
//!              | layouts | chaos
//!              (the last eight run explicit only, not as part of `all`)
//!
//! `plans` prints the physical execution plans of Fig. 2 showcase
//! queries (join strategies, build sides, fixpoint caching counters);
//! `smoke` cross-checks both backends on the tiny Fig. 2 database and
//! exits non-zero on any disagreement — the CI harness gate.
//! `serve` runs the closed-loop service throughput experiment (N client
//! threads over the LDBC catalog, worker sweep, plan-cache on/off);
//! `serve --smoke` is the small CI variant that also verifies concurrent
//! results against sequential execution.
//! `estimates` replays both catalogs and reports the per-query q-error of
//! the stats-v2 cardinality estimator against the v1 heuristics
//! (`--est-sf` picks the LDBC scale factor, `--yago-scale` the YAGO
//! size); `estimates --smoke` is the CI gate asserting the v2 median
//! q-error beats v1 on both catalogs.
//! `parallel` replays both catalogs serially and at DOP=N, asserts the
//! results bit-identical, and prints per-query speedups;
//! `parallel --smoke` is the CI gate at smoke scale with the cost gate
//! forced open so every probe splits into morsels.
//! `observe` replays the YAGO catalog through a traced service and
//! reports per-phase timings, the Chrome-trace export and tracing
//! overhead; `observe --smoke` is the CI gate asserting the export
//! parses with every lifecycle phase covered, operator spans match
//! `EXPLAIN ANALYZE` bit-for-bit, and the disabled tracer stays under
//! a 5% overhead budget.
//! `layouts` replays both catalogs under every physical storage layout
//! (per-label, polymorphic, denormalised), asserts the results
//! bit-identical, and tabulates per-layout timings and plan costs
//! against the schema-driven advisor's pick; `layouts --smoke` is the
//! CI gate at smoke scale additionally requiring at least one query to
//! plan measurably cheaper under a non-default layout.
//! `chaos` replays the LDBC catalog under seeded deterministic fault
//! injection (`--chaos-sf`, `--chaos-prob`, `--chaos-seeds`), asserting
//! every query completes bit-identically to the fault-free reference or
//! fails with a classified retryable error, with zero worker deaths and
//! a balanced memory governor; `chaos --smoke` is the CI gate at smoke
//! scale with a single fixed seed.
//! ```

use std::io::Write as _;

use sgq_core::RedundancyRule;
use sgq_harness::chaos::{self, ChaosConfig};
use sgq_harness::estimates::{self, EstimatesConfig};
use sgq_harness::experiments::{self, ExperimentConfig, ServeConfig};
use sgq_harness::layouts::{self, LayoutsConfig};
use sgq_harness::observe::{self, ObserveConfig};
use sgq_harness::parallel::{self, ParallelConfig};
use sgq_harness::runner::Backend;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut wanted: Vec<String> = Vec::new();
    let mut cfg = ExperimentConfig::default();
    let mut serve_cfg = ServeConfig::default();
    let mut est_cfg = EstimatesConfig::default();
    let mut par_cfg = ParallelConfig::default();
    let mut obs_cfg = ObserveConfig::default();
    let mut lay_cfg = LayoutsConfig::default();
    let mut chaos_cfg = ChaosConfig::default();
    let mut smoke_variant = false;
    let mut out_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--timeout-ms" => {
                i += 1;
                let ms = args[i].parse().expect("--timeout-ms takes a number");
                cfg.run.timeout_ms = ms;
                serve_cfg.timeout_ms = ms;
                est_cfg.timeout_ms = ms;
                par_cfg.timeout_ms = ms;
                obs_cfg.timeout_ms = ms;
                lay_cfg.timeout_ms = ms;
                chaos_cfg.timeout_ms = ms;
            }
            "--reps" => {
                i += 1;
                cfg.run.repetitions = args[i].parse().expect("--reps takes a number");
            }
            "--sf-max" => {
                i += 1;
                let max: f64 = args[i].parse().expect("--sf-max takes a number");
                cfg.ldbc_sfs.retain(|&sf| sf <= max);
            }
            "--yago-scale" => {
                i += 1;
                cfg.yago_scale = args[i].parse().expect("--yago-scale takes a number");
                est_cfg.yago_scale = cfg.yago_scale;
                obs_cfg.yago_scale = cfg.yago_scale;
                lay_cfg.yago_scale = cfg.yago_scale;
            }
            "--est-sf" => {
                i += 1;
                est_cfg.ldbc_sf = args[i].parse().expect("--est-sf takes a number");
            }
            "--redundancy" => {
                i += 1;
                cfg.run.rewrite.redundancy = match args[i].as_str() {
                    "bothsides" => RedundancyRule::BothSides,
                    "eitherside" => RedundancyRule::EitherSide,
                    "never" => RedundancyRule::Never,
                    other => panic!("unknown redundancy rule {other}"),
                };
            }
            "--backend" => {
                i += 1;
                cfg.backend = match args[i].as_str() {
                    "graph" => Backend::Graph,
                    "relational" => Backend::Relational,
                    other => panic!("unknown backend {other}"),
                };
            }
            "--out" => {
                i += 1;
                out_path = Some(args[i].clone());
            }
            "--smoke" => smoke_variant = true,
            "--serve-workers" => {
                i += 1;
                serve_cfg.worker_counts = args[i]
                    .split(',')
                    .map(|w| w.parse().expect("--serve-workers takes a,b,c"))
                    .collect();
            }
            "--serve-clients" => {
                i += 1;
                serve_cfg.clients = args[i].parse().expect("--serve-clients takes a number");
            }
            "--serve-iters" => {
                i += 1;
                serve_cfg.iters_per_client = args[i].parse().expect("--serve-iters takes a number");
            }
            "--serve-sf" => {
                i += 1;
                serve_cfg.sf = args[i].parse().expect("--serve-sf takes a number");
            }
            "--chaos-sf" => {
                i += 1;
                chaos_cfg.sf = args[i].parse().expect("--chaos-sf takes a number");
            }
            "--chaos-prob" => {
                i += 1;
                chaos_cfg.probability = args[i].parse().expect("--chaos-prob takes a number");
            }
            "--chaos-seeds" => {
                i += 1;
                chaos_cfg.seeds = args[i]
                    .split(',')
                    .map(|s| s.parse().expect("--chaos-seeds takes a,b,c"))
                    .collect();
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        wanted.push("all".to_string());
    }
    let want = |name: &str| wanted.iter().any(|w| w == name || w == "all");
    // Cheap local experiments that run only when asked for by name, so
    // `all` keeps its paper-suite meaning.
    let want_exact = |name: &str| wanted.iter().any(|w| w == name);

    let mut all_records = Vec::new();

    if want_exact("plans") {
        println!("{}", experiments::physical_plans());
    }
    if want_exact("smoke") {
        println!("{}", experiments::smoke());
    }
    if want_exact("serve") {
        if smoke_variant {
            println!("{}", experiments::serve_smoke());
        } else {
            println!("{}", experiments::serve(&serve_cfg));
        }
    }
    if want_exact("estimates") {
        if smoke_variant {
            println!("{}", estimates::estimates_smoke());
        } else {
            println!("{}", estimates::estimates(&est_cfg));
        }
    }
    if want_exact("parallel") {
        if smoke_variant {
            println!("{}", parallel::parallel_smoke());
        } else {
            println!("{}", parallel::parallel(&par_cfg));
        }
    }
    if want_exact("observe") {
        if smoke_variant {
            println!("{}", observe::observe_smoke());
        } else {
            println!("{}", observe::observe(&obs_cfg));
        }
    }
    if want_exact("layouts") {
        if smoke_variant {
            println!("{}", layouts::layouts_smoke());
        } else {
            println!("{}", layouts::layouts(&lay_cfg));
        }
    }
    if want_exact("chaos") {
        if smoke_variant {
            println!("{}", chaos::chaos_smoke());
        } else {
            println!("{}", chaos::chaos(&chaos_cfg));
        }
    }

    if want("table3") {
        println!("{}", experiments::table3(&cfg));
    }
    if want("table6") {
        println!("{}", experiments::table6(&cfg));
    }
    if want("reverts") {
        println!("{}", experiments::reverts(&cfg));
    }
    if want("fig12") {
        let records = experiments::yago_suite(&cfg);
        println!("{}", experiments::fig12(&records, cfg.run.timeout_ms));
        all_records.extend(records);
    }
    let need_ldbc = ["table5", "table7", "table8", "fig13"]
        .iter()
        .any(|e| want(e));
    if need_ldbc {
        eprintln!(
            "running the LDBC suite (30 queries x {} scale factors x 2 approaches, timeout {} ms)...",
            cfg.ldbc_sfs.len(),
            cfg.run.timeout_ms
        );
        let records = experiments::ldbc_suite(&cfg);
        if want("table5") {
            println!("{}", experiments::table5(&records, &cfg));
        }
        if want("table7") {
            println!("{}", experiments::table7(&records, cfg.run.timeout_ms));
        }
        if want("table8") {
            println!("{}", experiments::table8(&records, cfg.run.timeout_ms));
        }
        if want("fig13") {
            println!("{}", experiments::fig13(&records, &cfg));
        }
        all_records.extend(records);
    }
    if want("fig14") {
        let (records, report) = experiments::fig14(&cfg);
        println!("{report}");
        all_records.extend(records);
    }
    if want("fig15") || want("fig16") {
        println!("{}", experiments::fig15_16());
    }
    if want("fig17") {
        println!("{}", experiments::fig17(0.3));
    }

    if let Some(path) = out_path {
        let json = sgq_harness::records::to_json(&all_records);
        let mut f = std::fs::File::create(&path).expect("create --out file");
        f.write_all(json.as_bytes()).expect("write --out file");
        eprintln!("wrote {} records to {path}", all_records.len());
    }
}
