//! The `observe` experiment: end-to-end validation of the query
//! lifecycle tracing stack.
//!
//! Replays the YAGO catalog through a [`Service`] with tracing enabled
//! and checks the whole observability contract in one pass:
//!
//! * every traced query's Chrome-trace export parses back through
//!   [`sgq_common::json::parse`] and covers the full lifecycle
//!   (`query` → `queue` → `cache`/`prepare` → `execute`),
//! * per-operator spans nest inside the `execute` phase window and
//!   their row counts agree **bit-for-bit** with the structured
//!   `EXPLAIN ANALYZE` of the same execution,
//! * the slow-query log captures every query when the threshold is
//!   floored, and the per-operator-kind profiles reach the metrics
//!   snapshot,
//! * the *disabled* tracer costs < 5% on the raw executor hot loop
//!   (best-of-N rounds, so scheduler noise does not mask the signal).
//!
//! The smoke variant ([`observe_smoke`]) is the CI gate; the full
//! variant prints the same report at a larger scale without asserting.

use std::fmt::Write as _;
use std::sync::Arc;

use sgq_common::json::{self, JsonValue};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_obs::{chrome_traces_json, QueryTrace, QueryTraceBuilder, Tracer};
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_service::{QueryOptions, Service, ServiceConfig};

use crate::runner::{prepare_relational, query_for, Approach, Backend, RunConfig};

/// Tolerance (µs) for span-boundary comparisons: phase spans are
/// back-filled from separately truncated microsecond measurements, so
/// adjacent edges can disagree by a couple of microseconds.
const EDGE_SLACK_US: u64 = 3;

/// Maximum disabled-tracer overhead vs the untraced executor loop.
const MAX_DISABLED_OVERHEAD: f64 = 0.05;

/// Absolute slack (µs) added to the overhead gate so micro-noise on a
/// tiny smoke fixture cannot fail a check whose true cost is one
/// relaxed atomic load per query.
const OVERHEAD_SLACK_US: f64 = 100.0;

/// Configuration for the `observe` experiment.
#[derive(Debug, Clone, Copy)]
pub struct ObserveConfig {
    /// Scaling of the YAGO dataset relative to the default size.
    pub yago_scale: f64,
    /// Per-query timeout (ms).
    pub timeout_ms: u64,
    /// Executor repetitions per overhead-measurement round.
    pub overhead_reps: usize,
    /// Overhead-measurement rounds (the best round is compared).
    pub overhead_rounds: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            yago_scale: 0.3,
            timeout_ms: 10_000,
            overhead_reps: 40,
            overhead_rounds: 5,
        }
    }
}

impl ObserveConfig {
    /// The small configuration used by CI (`observe --smoke`).
    pub fn smoke() -> Self {
        ObserveConfig {
            yago_scale: 0.05,
            timeout_ms: 10_000,
            overhead_reps: 30,
            overhead_rounds: 5,
        }
    }
}

fn span_of<'t>(trace: &'t QueryTrace, name: &str) -> Option<&'t sgq_obs::Span> {
    trace.phases.iter().find(|s| s.name == name)
}

/// Asserts one trace covers the lifecycle with correctly nested spans.
fn check_trace(trace: &QueryTrace, label: &str) {
    let root = span_of(trace, "query").unwrap_or_else(|| panic!("{label}: no root span"));
    assert_eq!(root.parent, 0, "{label}: root has a parent");
    let root_end = root.start_us + root.dur_us;
    for name in ["queue", "cache", "execute"] {
        let s = span_of(trace, name).unwrap_or_else(|| panic!("{label}: no {name} span"));
        assert_eq!(s.parent, root.id, "{label}: {name} not under root");
        assert!(
            s.start_us + EDGE_SLACK_US >= root.start_us
                && s.start_us + s.dur_us <= root_end + EDGE_SLACK_US,
            "{label}: {name} escapes the root window"
        );
    }
    let queue = span_of(trace, "queue").unwrap();
    let cache = span_of(trace, "cache").unwrap();
    let exec = span_of(trace, "execute").unwrap();
    assert!(
        queue.start_us + queue.dur_us <= cache.start_us + EDGE_SLACK_US,
        "{label}: queue overlaps cache lookup"
    );
    assert!(
        cache.start_us + cache.dur_us <= exec.start_us + EDGE_SLACK_US,
        "{label}: cache lookup overlaps execution"
    );
    if let Some(prep) = span_of(trace, "prepare") {
        assert_eq!(prep.parent, cache.id, "{label}: prepare not under cache");
        assert!(
            prep.start_us >= cache.start_us
                && prep.start_us + prep.dur_us <= cache.start_us + cache.dur_us + EDGE_SLACK_US,
            "{label}: prepare escapes the cache window"
        );
    }
    let exec_end = exec.start_us + exec.dur_us;
    for op in &trace.ops {
        assert!(
            op.start_us + EDGE_SLACK_US >= exec.start_us
                && op.start_us + op.dur_us <= exec_end + EDGE_SLACK_US,
            "{label}: operator span (node {}) escapes the execute window",
            op.node
        );
    }
}

/// Asserts the trace's operator spans agree with the structured
/// `EXPLAIN ANALYZE` of the same execution, row for row.
fn check_against_analyze(trace: &QueryTrace, analyze: &str, label: &str) {
    let nodes = json::parse(analyze)
        .unwrap_or_else(|e| panic!("{label}: analyze json malformed: {e}"))
        .as_arr()
        .unwrap_or_else(|| panic!("{label}: analyze json is not an array"))
        .to_vec();
    assert!(!trace.ops.is_empty(), "{label}: no operator spans");
    // A node evaluated several times (fixpoint rounds) has one span per
    // evaluation; `actual_rows` is their sum.
    let mut per_node: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for op in &trace.ops {
        *per_node.entry(op.node).or_default() += op.rows as u64;
    }
    for (&node, &rows) in &per_node {
        let actual = nodes
            .iter()
            .find(|n| n.get("id").and_then(JsonValue::as_u64) == Some(node as u64))
            .and_then(|n| n.get("actual_rows"))
            .and_then(JsonValue::as_u64)
            .unwrap_or_else(|| panic!("{label}: node {node} missing from analyze"));
        assert_eq!(
            rows, actual,
            "{label}: node {node} span rows diverge from analyze"
        );
    }
}

/// Asserts the Chrome export parses and covers every lifecycle phase of
/// every trace.
fn check_chrome_export(traces: &[Arc<QueryTrace>]) -> usize {
    let rendered = chrome_traces_json(traces);
    let doc = json::parse(&rendered).expect("chrome export must parse");
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .expect("traceEvents array");
    for e in events {
        assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("X"));
        assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
        assert!(e.get("dur").and_then(JsonValue::as_u64).is_some());
    }
    for t in traces {
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("tid").and_then(JsonValue::as_u64) == Some(t.trace_id))
            .filter_map(|e| e.get("name").and_then(JsonValue::as_str))
            .collect();
        for phase in ["query", "queue", "cache", "execute"] {
            assert!(
                names.contains(&phase),
                "trace {} export misses the {phase} phase",
                t.trace_id
            );
        }
    }
    rendered.len()
}

/// Best-of-N-rounds hot-loop timing: untraced executor vs the same loop
/// behind a *disabled* tracer's `should_trace` check, plus the fully
/// traced loop (informational). Returns µs per round (best).
fn measure_overhead(
    store: &sgq_ra::RelStore,
    plan: &sgq_ra::PhysPlan,
    cfg: &ObserveConfig,
) -> (f64, f64, f64) {
    let tracer = Tracer::new(4); // stays disabled
    let mut tb = QueryTraceBuilder::standalone("overhead-measurement");
    let (mut base_best, mut disabled_best, mut traced_best) = (f64::MAX, f64::MAX, f64::MAX);
    for _ in 0..cfg.overhead_rounds {
        let span = tb.begin("baseline");
        for _ in 0..cfg.overhead_reps {
            let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
            let _ = execute_plan(plan, store, &mut ctx);
        }
        base_best = base_best.min(tb.end(span) as f64);

        let span = tb.begin("disabled");
        for _ in 0..cfg.overhead_reps {
            // The exact per-query cost the service pays with tracing
            // off: one relaxed atomic load.
            assert!(!tracer.should_trace());
            let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
            let _ = execute_plan(plan, store, &mut ctx);
        }
        disabled_best = disabled_best.min(tb.end(span) as f64);

        let span = tb.begin("traced");
        for _ in 0..cfg.overhead_reps {
            let mut ctx = ExecContext::with_timeout(cfg.timeout_ms);
            let _ = sgq_ra::exec::execute_plan_traced(plan, store, &mut ctx);
        }
        traced_best = traced_best.min(tb.end(span) as f64);
    }
    (base_best, disabled_best, traced_best)
}

fn run_observe(cfg: &ObserveConfig, gate: bool) -> String {
    let mut out = String::new();
    let (schema, db) = yago::generate(YagoConfig::scaled(cfg.yago_scale));
    let queries = yago::queries(&schema).expect("catalog parses");

    let service_cfg = ServiceConfig {
        tracing: true,
        trace_sample_every: 1,
        default_timeout_ms: cfg.timeout_ms,
        ..ServiceConfig::with_workers(1)
    };
    let service = Service::build(schema.clone(), db.clone(), service_cfg);
    // Floor the threshold: every query is "slow", exercising the log.
    service.slow_query_log().set_threshold_us(1);
    let session = service.session();
    let opts = QueryOptions {
        analyze: true,
        ..Default::default()
    };

    let _ = writeln!(
        out,
        "observe: YAGO x{} catalog through a traced service ({} queries)",
        cfg.yago_scale,
        queries.len()
    );
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>10} {:>10} {:>10} {:>6}",
        "query", "rows", "queue µs", "prep µs", "exec µs", "ops"
    );
    let mut checked = 0usize;
    for q in &queries {
        let resp = match session.execute_expr(&q.expr, &opts) {
            Ok(r) => r,
            Err(e) => {
                let _ = writeln!(out, "{:<14} failed: {e}", q.name);
                continue;
            }
        };
        let traces = session.recent_traces();
        let trace = traces.last().expect("analyze execution is traced");
        if gate {
            check_trace(trace, q.name);
            let analyze = resp.analyze_json.as_deref().expect("analyze output");
            check_against_analyze(trace, analyze, q.name);
        }
        let us = |name: &str| span_of(trace, name).map_or(0, |s| s.dur_us);
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>10} {:>10} {:>10} {:>6}",
            q.name,
            resp.rows.len(),
            us("queue"),
            us("prepare"),
            us("execute"),
            trace.ops.len()
        );
        checked += 1;
    }
    assert!(checked > 0, "no catalog query completed");

    let traces = session.recent_traces();
    let chrome_bytes = check_chrome_export(&traces);
    let _ = writeln!(
        out,
        "chrome export: {} traces, {} bytes, parses with all phases covered",
        traces.len(),
        chrome_bytes
    );

    let slow = session.drain_slow_queries();
    if gate {
        assert_eq!(
            slow.len(),
            checked,
            "floored threshold must capture every completed query"
        );
    }
    let _ = writeln!(out, "slow-query log captured {} queries", slow.len());

    let m = service.metrics();
    if gate {
        assert!(!m.op_profiles.is_empty(), "operator profiles missing");
    }
    let _ = writeln!(
        out,
        "operator profiles: {}",
        m.op_profiles
            .iter()
            .map(|p| format!("{} x{}", p.kind, p.evals))
            .collect::<Vec<_>>()
            .join(", ")
    );
    service.shutdown();

    // Overhead gate on the raw executor hot loop, away from the
    // service's queueing noise.
    let run_cfg = RunConfig {
        timeout_ms: cfg.timeout_ms,
        ..Default::default()
    };
    let runner_session = crate::runner::Session::new(&schema, &db);
    let (plan, plan_query) = queries
        .iter()
        .find_map(|q| {
            let ucqt = query_for(&schema, &q.expr, Approach::Schema, run_cfg.rewrite)?;
            let plan = prepare_relational(&runner_session, &ucqt, Backend::Relational).ok()?;
            Some((plan, q.name))
        })
        .expect("at least one catalog query plans");
    let (base, disabled, traced) = measure_overhead(&runner_session.store, &plan, cfg);
    let overhead = (disabled - base) / base.max(1.0);
    let _ = writeln!(
        out,
        "overhead ({} x{} reps, best of {} rounds): untraced {:.0} µs, \
         disabled tracer {:.0} µs ({:+.2}%), traced {:.0} µs ({:+.2}%)",
        plan_query,
        cfg.overhead_reps,
        cfg.overhead_rounds,
        base,
        disabled,
        overhead * 100.0,
        traced,
        (traced - base) / base.max(1.0) * 100.0,
    );
    if gate {
        assert!(
            disabled <= base * (1.0 + MAX_DISABLED_OVERHEAD) + OVERHEAD_SLACK_US,
            "disabled tracer overhead {:.2}% exceeds {}%",
            overhead * 100.0,
            MAX_DISABLED_OVERHEAD * 100.0
        );
        let _ = writeln!(out, "observe smoke: all gates passed");
    }
    out
}

/// The full experiment: replay, report, no hard gates.
pub fn observe(cfg: &ObserveConfig) -> String {
    run_observe(cfg, false)
}

/// The CI gate: smoke scale with every assertion armed — Chrome export
/// parses and covers all phases, operator spans match `EXPLAIN ANALYZE`
/// bit-for-bit, the slow-query log fills, and the disabled tracer stays
/// under the overhead budget.
pub fn observe_smoke() -> String {
    run_observe(&ObserveConfig::smoke(), true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_smoke_gates_pass() {
        let report = observe_smoke();
        assert!(
            report.contains("observe smoke: all gates passed"),
            "{report}"
        );
    }
}
