//! Compressed sparse row adjacency.
//!
//! Each edge label gets a forward and a reverse [`Csr`]: `offsets[n]..
//! offsets[n+1]` indexes into `targets`, giving the sorted neighbour list of
//! node `n`. This is the classic layout used by graph engines for cheap
//! neighbourhood expansion without per-node allocations.

use sgq_common::NodeId;

/// Compressed sparse row structure over `node_count` nodes.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from `(source, target)` pairs.
    ///
    /// Pairs need not be sorted; parallel edges are kept (pseudo multigraph).
    pub fn from_pairs(node_count: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        let mut degree = vec![0u32; node_count + 1];
        for &(s, _) in pairs {
            degree[s.index() + 1] += 1;
        }
        for i in 1..degree.len() {
            degree[i] += degree[i - 1];
        }
        let offsets = degree;
        let mut cursor = offsets.clone();
        let mut targets = vec![NodeId::new(0); pairs.len()];
        for &(s, t) in pairs {
            let at = cursor[s.index()];
            targets[at as usize] = t;
            cursor[s.index()] += 1;
        }
        // Sort each neighbour list so lookups can binary-search.
        for n in 0..node_count {
            let (lo, hi) = (offsets[n] as usize, offsets[n + 1] as usize);
            targets[lo..hi].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR with *set semantics*: parallel edges collapse to a
    /// single entry, so every neighbour list is strictly sorted. This is
    /// the constructor index-backed relational execution wants — the
    /// edge *tables* are sets, so the adjacency index probed in their
    /// place must be one too.
    pub fn from_pairs_dedup(node_count: usize, pairs: &[(NodeId, NodeId)]) -> Self {
        let mut sorted = pairs.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        Self::from_pairs(node_count, &sorted)
    }

    /// Neighbour list of `n` (sorted).
    #[inline]
    pub fn neighbors(&self, n: NodeId) -> &[NodeId] {
        if n.index() + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[n.index()] as usize;
        let hi = self.offsets[n.index() + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `n`.
    #[inline]
    pub fn degree(&self, n: NodeId) -> usize {
        self.neighbors(n).len()
    }

    /// Total number of stored edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of nodes this CSR was built over.
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the edge `s -> t` exists.
    pub fn has_edge(&self, s: NodeId, t: NodeId) -> bool {
        self.neighbors(s).binary_search(&t).is_ok()
    }

    /// Iterates over all `(source, target)` pairs in source order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        (0..self.node_count()).flat_map(move |n| {
            let src = NodeId::from(n);
            self.neighbors(src).iter().map(move |&t| (src, t))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn build_and_query() {
        let pairs = vec![(n(0), n(2)), (n(0), n(1)), (n(2), n(0)), (n(1), n(2))];
        let csr = Csr::from_pairs(3, &pairs);
        assert_eq!(csr.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(csr.neighbors(n(1)), &[n(2)]);
        assert_eq!(csr.neighbors(n(2)), &[n(0)]);
        assert_eq!(csr.degree(n(0)), 2);
        assert_eq!(csr.edge_count(), 4);
        assert!(csr.has_edge(n(0), n(2)));
        assert!(!csr.has_edge(n(2), n(1)));
    }

    #[test]
    fn empty_and_out_of_range() {
        let csr = Csr::from_pairs(2, &[]);
        assert_eq!(csr.neighbors(n(0)), &[] as &[NodeId]);
        assert_eq!(csr.neighbors(n(5)), &[] as &[NodeId]);
        assert_eq!(csr.edge_count(), 0);
    }

    #[test]
    fn parallel_edges_kept() {
        let pairs = vec![(n(0), n(1)), (n(0), n(1))];
        let csr = Csr::from_pairs(2, &pairs);
        assert_eq!(csr.neighbors(n(0)).len(), 2);
    }

    #[test]
    fn dedup_constructor_collapses_parallel_edges() {
        // A multigraph input: parallel edges and unsorted pairs. The
        // set-semantics constructor must produce strictly sorted
        // neighbour lists with no duplicates — matching the executor's
        // set semantics — while `from_pairs` keeps the multigraph.
        let pairs = vec![
            (n(0), n(2)),
            (n(0), n(1)),
            (n(0), n(2)),
            (n(0), n(2)),
            (n(1), n(0)),
            (n(1), n(0)),
        ];
        let csr = Csr::from_pairs_dedup(3, &pairs);
        assert_eq!(csr.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(csr.neighbors(n(1)), &[n(0)]);
        assert_eq!(csr.edge_count(), 3);
        for v in 0..3 {
            let ns = csr.neighbors(n(v));
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        }
        // The multigraph constructor keeps all six.
        assert_eq!(Csr::from_pairs(3, &pairs).edge_count(), 6);
    }

    #[test]
    fn iter_roundtrip() {
        let pairs = vec![(n(1), n(0)), (n(0), n(1)), (n(1), n(2))];
        let csr = Csr::from_pairs(3, &pairs);
        let mut got: Vec<_> = csr.iter().collect();
        got.sort_unstable();
        let mut want = pairs.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
