//! Graph schemas: Definition 1 of the paper.
//!
//! A graph schema is a directed pseudo multigraph whose nodes carry unique
//! node labels and property declarations (key–type pairs), and whose edges
//! carry edge labels. The same edge label may appear on several schema edges
//! with different endpoints (e.g. `isLocatedIn` in the YAGO schema of
//! Fig. 1), which is exactly what makes the paper's type inference useful.
//!
//! We additionally enforce the *strict schema* conditions of §2.3 needed for
//! the schema–database mapping `SD` to be a function:
//!
//! * node labels are unique across schema nodes, and
//! * no two schema edges share the same `(source label, edge label,
//!   target label)` triple.

use sgq_common::{EdgeLabelId, KeyId, NodeLabelId};
use sgq_common::{FxHashSet, Interner, Result, SgqError};

use crate::value::DataType;

/// A basic graph schema triple `(ln, le, l'n)` (Definition 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemaTriple {
    /// Source node label.
    pub src: NodeLabelId,
    /// Edge label.
    pub label: EdgeLabelId,
    /// Target node label.
    pub tgt: NodeLabelId,
}

/// One schema node: a label plus its declared properties.
#[derive(Debug, Clone)]
pub struct SchemaNode {
    /// The node label (unique within the schema).
    pub label: NodeLabelId,
    /// Declared properties `∆S`: allowed key–type pairs, sorted by key.
    pub properties: Vec<(KeyId, DataType)>,
}

/// A graph schema (Definition 1).
#[derive(Debug, Clone)]
pub struct GraphSchema {
    node_labels: Interner,
    edge_labels: Interner,
    keys: Interner,
    nodes: Vec<SchemaNode>,
    /// All basic schema triples `Tb(S)`, sorted.
    triples: Vec<SchemaTriple>,
    /// Triples grouped by edge label: `by_edge_label[le] = [(src, tgt)...]`.
    by_edge_label: Vec<Vec<(NodeLabelId, NodeLabelId)>>,
}

impl GraphSchema {
    /// Starts building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// Number of schema nodes (= number of node labels).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of schema edges (= number of basic triples).
    pub fn edge_count(&self) -> usize {
        self.triples.len()
    }

    /// Number of distinct edge labels.
    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// The set `Tb(S)` of basic graph schema triples (Definition 5), sorted.
    pub fn triples(&self) -> &[SchemaTriple] {
        &self.triples
    }

    /// The `(source label, target label)` pairs allowed for `le`.
    pub fn triples_for_edge_label(&self, le: EdgeLabelId) -> &[(NodeLabelId, NodeLabelId)] {
        self.by_edge_label
            .get(le.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All source labels the schema allows for edge label `le` (sorted, deduped).
    pub fn source_labels(&self, le: EdgeLabelId) -> Vec<NodeLabelId> {
        let mut v: Vec<_> = self
            .triples_for_edge_label(le)
            .iter()
            .map(|&(s, _)| s)
            .collect();
        sgq_common::sorted::normalize(&mut v);
        v
    }

    /// All target labels the schema allows for edge label `le` (sorted, deduped).
    pub fn target_labels(&self, le: EdgeLabelId) -> Vec<NodeLabelId> {
        let mut v: Vec<_> = self
            .triples_for_edge_label(le)
            .iter()
            .map(|&(_, t)| t)
            .collect();
        sgq_common::sorted::normalize(&mut v);
        v
    }

    /// Resolves a node label id to its name.
    pub fn node_label_name(&self, l: NodeLabelId) -> &str {
        self.node_labels.resolve(l.raw())
    }

    /// Resolves an edge label id to its name.
    pub fn edge_label_name(&self, l: EdgeLabelId) -> &str {
        self.edge_labels.resolve(l.raw())
    }

    /// Resolves a property key id to its name.
    pub fn key_name(&self, k: KeyId) -> &str {
        self.keys.resolve(k.raw())
    }

    /// Looks up a node label by name.
    pub fn node_label(&self, name: &str) -> Option<NodeLabelId> {
        self.node_labels.get(name).map(NodeLabelId::new)
    }

    /// Looks up an edge label by name.
    pub fn edge_label(&self, name: &str) -> Option<EdgeLabelId> {
        self.edge_labels.get(name).map(EdgeLabelId::new)
    }

    /// Looks up a property key by name.
    pub fn key(&self, name: &str) -> Option<KeyId> {
        self.keys.get(name).map(KeyId::new)
    }

    /// Iterates over all node labels in id order.
    pub fn node_labels(&self) -> impl Iterator<Item = NodeLabelId> + '_ {
        (0..self.nodes.len() as u32).map(NodeLabelId::new)
    }

    /// Iterates over all edge labels in id order.
    pub fn edge_labels(&self) -> impl Iterator<Item = EdgeLabelId> + '_ {
        (0..self.edge_labels.len() as u32).map(EdgeLabelId::new)
    }

    /// The schema node carrying `label`.
    pub fn node(&self, label: NodeLabelId) -> &SchemaNode {
        &self.nodes[label.index()]
    }

    /// The declared type of property `key` on nodes labeled `label`, if any.
    pub fn property_type(&self, label: NodeLabelId, key: KeyId) -> Option<DataType> {
        let props = &self.node(label).properties;
        props
            .binary_search_by_key(&key, |&(k, _)| k)
            .ok()
            .map(|i| props[i].1)
    }

    /// Internal access for database builders: clones the interners so a
    /// database shares this schema's label id space.
    pub(crate) fn interners(&self) -> (Interner, Interner, Interner) {
        (
            self.node_labels.clone(),
            self.edge_labels.clone(),
            self.keys.clone(),
        )
    }
}

/// Incremental construction of a [`GraphSchema`].
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    node_labels: Interner,
    edge_labels: Interner,
    keys: Interner,
    nodes: Vec<SchemaNode>,
    triples: Vec<SchemaTriple>,
    seen_triples: FxHashSet<SchemaTriple>,
}

impl SchemaBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a node label with its allowed properties.
    ///
    /// Re-declaring a label merges the property lists.
    pub fn node(&mut self, label: &str, properties: &[(&str, DataType)]) -> NodeLabelId {
        let id = NodeLabelId::new(self.node_labels.intern(label));
        if id.index() == self.nodes.len() {
            self.nodes.push(SchemaNode {
                label: id,
                properties: Vec::new(),
            });
        }
        let node = &mut self.nodes[id.index()];
        for &(key, ty) in properties {
            let k = KeyId::new(self.keys.intern(key));
            if !node.properties.iter().any(|&(pk, _)| pk == k) {
                node.properties.push((k, ty));
            }
        }
        node.properties.sort_unstable_by_key(|&(k, _)| k);
        id
    }

    /// Declares a schema edge `src --label--> tgt`.
    ///
    /// Unknown node labels are declared implicitly (with no properties).
    /// Duplicate `(src, label, tgt)` triples are ignored, which keeps the
    /// schema strict.
    pub fn edge(&mut self, src: &str, label: &str, tgt: &str) -> SchemaTriple {
        let s = self.node(src, &[]);
        let t = self.node(tgt, &[]);
        let l = EdgeLabelId::new(self.edge_labels.intern(label));
        let triple = SchemaTriple {
            src: s,
            label: l,
            tgt: t,
        };
        if self.seen_triples.insert(triple) {
            self.triples.push(triple);
        }
        triple
    }

    /// Finalises the schema.
    pub fn build(mut self) -> Result<GraphSchema> {
        if self.nodes.is_empty() {
            return Err(SgqError::Schema("schema has no node labels".into()));
        }
        self.triples.sort_unstable();
        let mut by_edge_label: Vec<Vec<(NodeLabelId, NodeLabelId)>> =
            vec![Vec::new(); self.edge_labels.len()];
        for t in &self.triples {
            by_edge_label[t.label.index()].push((t.src, t.tgt));
        }
        for v in &mut by_edge_label {
            v.sort_unstable();
        }
        Ok(GraphSchema {
            node_labels: self.node_labels,
            edge_labels: self.edge_labels,
            keys: self.keys,
            nodes: self.nodes,
            triples: self.triples,
            by_edge_label,
        })
    }
}

/// Builds the 5-node, 7-edge YAGO schema of the paper's Fig. 1.
pub fn fig1_yago_schema() -> GraphSchema {
    let mut b = GraphSchema::builder();
    b.node(
        "PERSON",
        &[("name", DataType::String), ("age", DataType::Int)],
    );
    b.node("CITY", &[("name", DataType::String)]);
    b.node("PROPERTY", &[("address", DataType::String)]);
    b.node("REGION", &[("name", DataType::String)]);
    b.node("COUNTRY", &[("name", DataType::String)]);
    b.edge("PERSON", "isMarriedTo", "PERSON");
    b.edge("PERSON", "livesIn", "CITY");
    b.edge("PERSON", "owns", "PROPERTY");
    b.edge("PROPERTY", "isLocatedIn", "CITY");
    b.edge("CITY", "isLocatedIn", "REGION");
    b.edge("REGION", "isLocatedIn", "COUNTRY");
    b.edge("COUNTRY", "dealsWith", "COUNTRY");
    b.build().expect("Fig. 1 schema is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_schema_shape() {
        let s = fig1_yago_schema();
        assert_eq!(s.node_count(), 5, "five nodes (Example 1)");
        assert_eq!(s.edge_count(), 7, "seven edges (Example 1)");
        assert_eq!(s.edge_label_count(), 5);
    }

    #[test]
    fn triples_definition5() {
        let s = fig1_yago_schema();
        let isl = s.edge_label("isLocatedIn").unwrap();
        // isLocatedIn has three triples: PROPERTY->CITY, CITY->REGION, REGION->COUNTRY
        assert_eq!(s.triples_for_edge_label(isl).len(), 3);
        let owns = s.edge_label("owns").unwrap();
        let t = s.triples_for_edge_label(owns);
        assert_eq!(t.len(), 1);
        assert_eq!(s.node_label_name(t[0].0), "PERSON");
        assert_eq!(s.node_label_name(t[0].1), "PROPERTY");
    }

    #[test]
    fn source_and_target_labels() {
        let s = fig1_yago_schema();
        let isl = s.edge_label("isLocatedIn").unwrap();
        let srcs: Vec<_> = s
            .source_labels(isl)
            .into_iter()
            .map(|l| s.node_label_name(l).to_string())
            .collect();
        assert_eq!(srcs, vec!["CITY", "PROPERTY", "REGION"]);
        // Sorted by label id, i.e. declaration order in Fig. 1.
        let tgts: Vec<_> = s
            .target_labels(isl)
            .into_iter()
            .map(|l| s.node_label_name(l).to_string())
            .collect();
        assert_eq!(tgts, vec!["CITY", "REGION", "COUNTRY"]);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = GraphSchema::builder();
        b.edge("A", "r", "B");
        b.edge("A", "r", "B");
        let s = b.build().unwrap();
        assert_eq!(s.edge_count(), 1);
    }

    #[test]
    fn property_declarations() {
        let s = fig1_yago_schema();
        let person = s.node_label("PERSON").unwrap();
        let name = s.key("name").unwrap();
        let age = s.key("age").unwrap();
        assert_eq!(s.property_type(person, name), Some(DataType::String));
        assert_eq!(s.property_type(person, age), Some(DataType::Int));
        let city = s.node_label("CITY").unwrap();
        assert_eq!(s.property_type(city, age), None);
    }

    #[test]
    fn empty_schema_is_rejected() {
        assert!(GraphSchema::builder().build().is_err());
    }

    #[test]
    fn redeclaring_node_merges_properties() {
        let mut b = GraphSchema::builder();
        b.node("A", &[("x", DataType::Int)]);
        b.node("A", &[("y", DataType::String), ("x", DataType::Int)]);
        let s = b.build().unwrap();
        let a = s.node_label("A").unwrap();
        assert_eq!(s.node(a).properties.len(), 2);
    }
}
