//! Schema inference: recovering a graph schema from a schema-less
//! database.
//!
//! The paper's motivation (§1) is that contemporary graph databases are
//! *schema-optional*, which is why schema-based optimisation has been
//! neglected. This module closes the loop for schema-less deployments: it
//! derives the strict schema a database already conforms to — every
//! observed `(source label, edge label, target label)` combination becomes
//! a schema edge and every observed property key–type pair a declaration —
//! so the rewriting pipeline can be applied even when no schema was ever
//! written down (in the spirit of the schema-discovery work the paper
//! cites: Lbath et al., Bonifati et al.).

use sgq_common::{EdgeLabelId, Result};

use crate::database::GraphDatabase;
use crate::schema::{GraphSchema, SchemaBuilder};

/// Infers the minimal strict schema `db` conforms to.
///
/// The result satisfies `check_consistency(&inferred, db)` by
/// construction, and is the *tightest* such schema: removing any triple or
/// property declaration would break consistency.
pub fn infer_schema(db: &GraphDatabase) -> Result<GraphSchema> {
    let mut b = SchemaBuilder::new();
    // Node labels and property declarations.
    for n in db.node_ids() {
        let label = db.node_label_name(db.node_label(n)).to_string();
        let props: Vec<(String, crate::value::DataType)> = db
            .node_properties(n)
            .iter()
            .map(|(k, v)| (db.key_name(*k).to_string(), v.data_type()))
            .collect();
        let borrowed: Vec<(&str, crate::value::DataType)> =
            props.iter().map(|(k, t)| (k.as_str(), *t)).collect();
        b.node(&label, &borrowed);
    }
    // Edge triples.
    for le_idx in 0..db.edge_label_count() {
        let le = EdgeLabelId::new(le_idx as u32);
        let le_name = db.edge_label_name(le).to_string();
        for &(s, t) in db.edges(le) {
            b.edge(
                db.node_label_name(db.node_label(s)),
                &le_name,
                db.node_label_name(db.node_label(t)),
            );
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_consistency;
    use crate::database::{fig2_yago_database, GraphDatabase};
    use crate::schema::fig1_yago_schema;
    use crate::value::Value;

    #[test]
    fn inferred_schema_is_consistent_with_source() {
        let db = fig2_yago_database();
        let inferred = infer_schema(&db).unwrap();
        // NB: the database was built against the Fig. 1 schema, so label
        // ids coincide and the consistency check applies directly.
        let report = check_consistency(&inferred, &db);
        assert!(report.is_consistent(), "{:?}", report.violations);
    }

    #[test]
    fn inferred_schema_is_a_subset_of_the_declared_one() {
        // Every inferred triple exists in the hand-written schema (the
        // data cannot witness triples the schema forbids).
        let db = fig2_yago_database();
        let declared = fig1_yago_schema();
        let inferred = infer_schema(&db).unwrap();
        for t in inferred.triples() {
            let src = inferred.node_label_name(t.src);
            let tgt = inferred.node_label_name(t.tgt);
            let le = inferred.edge_label_name(t.label);
            let dle = declared.edge_label(le).expect("label exists");
            let found = declared.triples_for_edge_label(dle).iter().any(|&(s, tg)| {
                declared.node_label_name(s) == src && declared.node_label_name(tg) == tgt
            });
            assert!(found, "inferred triple ({src}, {le}, {tgt}) not declared");
        }
    }

    #[test]
    fn inference_is_tight() {
        // Fig. 2 has no dealsWith edges, so the inferred schema must not
        // declare the dealsWith triple even though Fig. 1 does.
        let db = fig2_yago_database();
        let inferred = infer_schema(&db).unwrap();
        assert!(inferred.edge_label("dealsWith").is_none());
        // And isLocatedIn only has the three observed variants.
        let isl = inferred.edge_label("isLocatedIn").unwrap();
        assert_eq!(inferred.triples_for_edge_label(isl).len(), 3);
    }

    #[test]
    fn standalone_database_roundtrip() {
        // A schema-less database gains a usable schema.
        let mut b = GraphDatabase::standalone_builder();
        let a = b.node("User", &[("name", Value::str("ada"))]);
        let p = b.node("Page", &[]);
        b.edge(a, "follows", p);
        b.edge(a, "follows", p);
        let db = b.build().unwrap();
        let schema = infer_schema(&db).unwrap();
        assert_eq!(schema.node_count(), 2);
        assert_eq!(schema.edge_count(), 1);
        let follows = schema.edge_label("follows").unwrap();
        assert_eq!(schema.source_labels(follows).len(), 1);
        let user = schema.node_label("User").unwrap();
        let name = schema.key("name").unwrap();
        assert_eq!(
            schema.property_type(user, name),
            Some(crate::value::DataType::String)
        );
    }

    #[test]
    fn inferred_schema_drives_the_rewriter_shape() {
        // The inferred schema carries the acyclic isLocatedIn chain, so
        // downstream type inference sees the same label graph as Fig. 1's.
        let db = fig2_yago_database();
        let inferred = infer_schema(&db).unwrap();
        let isl = inferred.edge_label("isLocatedIn").unwrap();
        let srcs = inferred.source_labels(isl);
        let tgts = inferred.target_labels(isl);
        assert_eq!(srcs.len(), 3);
        assert_eq!(tgts.len(), 3);
    }
}
