//! Property values and their data types.
//!
//! The paper's model (§2.2) attaches key–value properties to nodes, where
//! every value has an atomic data type given by the typing function
//! `Υ : V → T`. Maps and lists are excluded (§2.3).

use std::fmt;

/// The finite set `T` of atomic data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DataType {
    /// UTF-8 strings.
    String,
    /// 64-bit signed integers.
    Int,
    /// Calendar dates, stored as days since the Unix epoch.
    Date,
    /// Booleans.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::String => write!(f, "String"),
            DataType::Int => write!(f, "Int"),
            DataType::Date => write!(f, "Date"),
            DataType::Bool => write!(f, "Bool"),
        }
    }
}

/// A property value (an element of the paper's value set `V`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A string value.
    Str(Box<str>),
    /// An integer value.
    Int(i64),
    /// A date, as days since the Unix epoch.
    Date(i64),
    /// A boolean value.
    Bool(bool),
}

impl Value {
    /// The typing function `Υ`: maps a value to its [`DataType`].
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Str(_) => DataType::String,
            Value::Int(_) => DataType::Int,
            Value::Date(_) => DataType::Date,
            Value::Bool(_) => DataType::Bool,
        }
    }

    /// Convenience constructor for string values.
    pub fn str(s: impl Into<Box<str>>) -> Self {
        Value::Str(s.into())
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Str(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Date(d) => write!(f, "date({d})"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsilon_types_values() {
        assert_eq!(Value::str("James").data_type(), DataType::String);
        assert_eq!(Value::Int(345).data_type(), DataType::Int);
        assert_eq!(Value::Date(19000).data_type(), DataType::Date);
        assert_eq!(Value::Bool(true).data_type(), DataType::Bool);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(false), Value::Bool(false));
    }

    #[test]
    fn display() {
        assert_eq!(Value::str("a").to_string(), "a");
        assert_eq!(DataType::Date.to_string(), "Date");
    }
}
