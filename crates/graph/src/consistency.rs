//! Schema–database consistency: Definition 3 of the paper.
//!
//! A database `D` is consistent with a schema `S` when the mapping `SD`
//! exists: every node's label appears in the schema, every edge's
//! `(source label, edge label, target label)` triple is a basic schema
//! triple, and every node property is declared (with the right type) on the
//! corresponding schema node.
//!
//! The checker reports *all* violations rather than failing fast, which is
//! what a real loader needs.

use sgq_common::{NodeId, SgqError};

use crate::database::GraphDatabase;
use crate::schema::{GraphSchema, SchemaTriple};

/// One consistency violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A node's label has no schema node.
    UnknownNodeLabel {
        /// Offending node.
        node: NodeId,
        /// Its label name.
        label: String,
    },
    /// An edge's triple is not in `Tb(S)`.
    UnknownEdgeTriple {
        /// Source node.
        src: NodeId,
        /// Target node.
        tgt: NodeId,
        /// `(source label, edge label, target label)` as names.
        triple: (String, String, String),
    },
    /// A node property is undeclared or has the wrong type.
    BadProperty {
        /// Offending node.
        node: NodeId,
        /// Property key name.
        key: String,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::UnknownNodeLabel { node, label } => {
                write!(f, "node {node} has label {label} absent from the schema")
            }
            Violation::UnknownEdgeTriple { src, tgt, triple } => write!(
                f,
                "edge ({src}, {tgt}) forms triple ({}, {}, {}) absent from the schema",
                triple.0, triple.1, triple.2
            ),
            Violation::BadProperty { node, key, reason } => {
                write!(f, "node {node} property {key}: {reason}")
            }
        }
    }
}

/// Result of a consistency check.
#[derive(Debug, Clone, Default)]
pub struct ConsistencyReport {
    /// All violations found (empty = consistent).
    pub violations: Vec<Violation>,
}

impl ConsistencyReport {
    /// Whether the database conforms to the schema.
    pub fn is_consistent(&self) -> bool {
        self.violations.is_empty()
    }

    /// Converts the report to a `Result`, erroring on the first violation.
    pub fn into_result(self) -> sgq_common::Result<()> {
        match self.violations.first() {
            None => Ok(()),
            Some(v) => Err(SgqError::Consistency(v.to_string())),
        }
    }
}

/// Checks Definition 3: does `db` conform to `schema`?
///
/// Labels are matched by name, so the database does not need to share the
/// schema's id space (it may have been built standalone, or be checked
/// against an inferred schema).
pub fn check_consistency(schema: &GraphSchema, db: &GraphDatabase) -> ConsistencyReport {
    let mut report = ConsistencyReport::default();
    // Labels are matched by *name*: the database need not share the
    // schema's id space (e.g. when checking against an inferred schema).
    let resolve = |l: sgq_common::NodeLabelId| schema.node_label(db.node_label_name(l));

    // Nodes: label must exist in the schema; properties must be declared.
    for n in db.node_ids() {
        let db_label = db.node_label(n);
        let Some(label) = resolve(db_label) else {
            report.violations.push(Violation::UnknownNodeLabel {
                node: n,
                label: db.node_label_name(db_label).to_string(),
            });
            continue;
        };
        for (key, value) in db.node_properties(n) {
            let key_name = db.key_name(*key);
            match schema.key(key_name) {
                None => report.violations.push(Violation::BadProperty {
                    node: n,
                    key: key_name.to_string(),
                    reason: "key not declared anywhere in the schema".into(),
                }),
                Some(k) => match schema.property_type(label, k) {
                    None => report.violations.push(Violation::BadProperty {
                        node: n,
                        key: key_name.to_string(),
                        reason: format!("not declared on label {}", schema.node_label_name(label)),
                    }),
                    Some(ty) if ty != value.data_type() => {
                        report.violations.push(Violation::BadProperty {
                            node: n,
                            key: key_name.to_string(),
                            reason: format!(
                                "declared {ty} but value has type {}",
                                value.data_type()
                            ),
                        })
                    }
                    Some(_) => {}
                },
            }
        }
    }

    // Edges: (src label, edge label, tgt label) must be a basic triple.
    for le_idx in 0..db.edge_label_count() {
        let le = sgq_common::EdgeLabelId::new(le_idx as u32);
        let le_name = db.edge_label_name(le);
        let schema_le = schema.edge_label(le_name);
        for &(s, t) in db.edges(le) {
            let sl = db.node_label(s);
            let tl = db.node_label(t);
            let ok = schema_le.is_some_and(|sle| {
                matches!(
                    (resolve(sl), resolve(tl)),
                    (Some(ssl), Some(stl))
                        if schema
                            .triples_for_edge_label(sle)
                            .binary_search(&(ssl, stl))
                            .is_ok()
                )
            });
            if !ok {
                report.violations.push(Violation::UnknownEdgeTriple {
                    src: s,
                    tgt: t,
                    triple: (
                        db.node_label_name(sl).to_string(),
                        le_name.to_string(),
                        db.node_label_name(tl).to_string(),
                    ),
                });
            }
        }
    }
    report
}

/// The schema–database mapping `SD` restricted to edges: returns the schema
/// triple an edge maps to, if consistent.
pub fn edge_schema_triple(
    schema: &GraphSchema,
    db: &GraphDatabase,
    le: sgq_common::EdgeLabelId,
    src: NodeId,
    tgt: NodeId,
) -> Option<SchemaTriple> {
    let sle = schema.edge_label(db.edge_label_name(le))?;
    let sl = db.node_label(src);
    let tl = db.node_label(tgt);
    schema
        .triples_for_edge_label(sle)
        .binary_search(&(sl, tl))
        .ok()
        .map(|_| SchemaTriple {
            src: sl,
            label: sle,
            tgt: tl,
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::{fig2_yago_database, GraphDatabase};
    use crate::schema::fig1_yago_schema;
    use crate::value::Value;

    #[test]
    fn fig2_is_consistent_with_fig1() {
        // Example 3 of the paper.
        let schema = fig1_yago_schema();
        let db = fig2_yago_database();
        let report = check_consistency(&schema, &db);
        assert!(report.is_consistent(), "{:?}", report.violations);
        assert!(report.into_result().is_ok());
    }

    #[test]
    fn detects_unknown_node_label() {
        let schema = fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        b.node("ALIEN", &[]);
        let db = b.build().unwrap();
        let report = check_consistency(&schema, &db);
        assert_eq!(report.violations.len(), 1);
        assert!(matches!(
            report.violations[0],
            Violation::UnknownNodeLabel { .. }
        ));
        assert!(report.into_result().is_err());
    }

    #[test]
    fn detects_bad_edge_triple() {
        let schema = fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        let a = b.node("CITY", &[]);
        let c = b.node("PERSON", &[]);
        // CITY --owns--> PERSON is not in the schema.
        b.edge(a, "owns", c);
        let db = b.build().unwrap();
        let report = check_consistency(&schema, &db);
        assert!(matches!(
            report.violations[0],
            Violation::UnknownEdgeTriple { .. }
        ));
    }

    #[test]
    fn detects_unknown_edge_label() {
        let schema = fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        let a = b.node("PERSON", &[]);
        let c = b.node("PERSON", &[]);
        b.edge(a, "fliesTo", c);
        let db = b.build().unwrap();
        assert!(!check_consistency(&schema, &db).is_consistent());
    }

    #[test]
    fn detects_wrong_property_type() {
        let schema = fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        b.node("PERSON", &[("age", Value::str("twenty"))]);
        let db = b.build().unwrap();
        let report = check_consistency(&schema, &db);
        assert!(matches!(
            report.violations[0],
            Violation::BadProperty { .. }
        ));
    }

    #[test]
    fn detects_undeclared_property() {
        let schema = fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        b.node("CITY", &[("age", Value::Int(3))]);
        let db = b.build().unwrap();
        assert!(!check_consistency(&schema, &db).is_consistent());
    }

    #[test]
    fn edge_mapping_sd() {
        let schema = fig1_yago_schema();
        let db = fig2_yago_database();
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        // n6 (CITY Montbonnot) --isLocatedIn--> n5 (REGION Grenoble)
        let t = edge_schema_triple(&schema, &db, isl, NodeId::new(5), NodeId::new(4)).unwrap();
        assert_eq!(schema.node_label_name(t.src), "CITY");
        assert_eq!(schema.node_label_name(t.tgt), "REGION");
    }
}
