//! Cardinality statistics over a graph database.
//!
//! The relational cost model (Fig. 17 reproduction) and the join-ordering
//! heuristics need per-label node counts, per-edge-label edge counts, and —
//! crucially for estimating the benefit of schema annotations — per
//! `(source label, edge label, target label)` triple counts.

use sgq_common::{EdgeLabelId, FxHashMap, NodeLabelId};

use crate::database::GraphDatabase;

/// Aggregate statistics for a [`GraphDatabase`].
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Nodes per node label, indexed by label id.
    pub nodes_per_label: Vec<usize>,
    /// Edges per edge label, indexed by label id.
    pub edges_per_label: Vec<usize>,
    /// Edge counts per observed `(src label, edge label, tgt label)` triple.
    pub triple_counts: FxHashMap<(NodeLabelId, EdgeLabelId, NodeLabelId), usize>,
    /// Total node count.
    pub node_count: usize,
    /// Total edge count.
    pub edge_count: usize,
}

impl GraphStats {
    /// Computes statistics in a single pass over the database.
    pub fn compute(db: &GraphDatabase) -> Self {
        let mut nodes_per_label = vec![0usize; db.node_label_count()];
        for n in db.node_ids() {
            nodes_per_label[db.node_label(n).index()] += 1;
        }
        let mut edges_per_label = vec![0usize; db.edge_label_count()];
        let mut triple_counts: FxHashMap<(NodeLabelId, EdgeLabelId, NodeLabelId), usize> =
            FxHashMap::default();
        for (le_idx, slot) in edges_per_label.iter_mut().enumerate() {
            let le = EdgeLabelId::new(le_idx as u32);
            let edges = db.edges(le);
            *slot = edges.len();
            for &(s, t) in edges {
                *triple_counts
                    .entry((db.node_label(s), le, db.node_label(t)))
                    .or_insert(0) += 1;
            }
        }
        GraphStats {
            nodes_per_label,
            edges_per_label,
            node_count: db.node_count(),
            edge_count: db.edge_count(),
            triple_counts,
        }
    }

    /// Node count for `label`.
    pub fn label_cardinality(&self, label: NodeLabelId) -> usize {
        self.nodes_per_label
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Edge count for `le`.
    pub fn edge_cardinality(&self, le: EdgeLabelId) -> usize {
        self.edges_per_label.get(le.index()).copied().unwrap_or(0)
    }

    /// Edge count for a specific `(src label, le, tgt label)` triple.
    pub fn triple_cardinality(&self, src: NodeLabelId, le: EdgeLabelId, tgt: NodeLabelId) -> usize {
        self.triple_counts
            .get(&(src, le, tgt))
            .copied()
            .unwrap_or(0)
    }

    /// Selectivity of restricting `le` to sources labeled `src`:
    /// `|{(s,t) ∈ le : η(s) = src}| / |le|`, in `[0, 1]`.
    pub fn source_selectivity(&self, src: NodeLabelId, le: EdgeLabelId) -> f64 {
        let total = self.edge_cardinality(le);
        if total == 0 {
            return 0.0;
        }
        let matching: usize = self
            .triple_counts
            .iter()
            .filter(|&(&(s, l, _), _)| s == src && l == le)
            .map(|(_, &c)| c)
            .sum();
        matching as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::fig2_yago_database;

    #[test]
    fn fig2_statistics() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        assert_eq!(stats.node_count, 7);
        assert_eq!(stats.edge_count, 9);
        let person = db.node_label_id("PERSON").unwrap();
        assert_eq!(stats.label_cardinality(person), 2);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        assert_eq!(stats.edge_cardinality(isl), 4);
    }

    #[test]
    fn triple_counts_split_overloaded_labels() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        let region = db.node_label_id("REGION").unwrap();
        let property = db.node_label_id("PROPERTY").unwrap();
        let country = db.node_label_id("COUNTRY").unwrap();
        // Fig. 2: PROPERTY->CITY x1, CITY->REGION x2, REGION->COUNTRY x1
        assert_eq!(stats.triple_cardinality(property, isl, city), 1);
        assert_eq!(stats.triple_cardinality(city, isl, region), 2);
        assert_eq!(stats.triple_cardinality(region, isl, country), 1);
        assert_eq!(stats.triple_cardinality(country, isl, city), 0);
    }

    #[test]
    fn selectivity() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        // 2 of the 4 isLocatedIn edges start from CITY nodes.
        assert!((stats.source_selectivity(city, isl) - 0.5).abs() < 1e-9);
    }
}
