//! Cardinality statistics over a graph database.
//!
//! The relational cost model (Fig. 17 reproduction) and the join-ordering
//! heuristics need per-label node counts, per-edge-label edge counts, and —
//! crucially for estimating the benefit of schema annotations — per
//! `(source label, edge label, target label)` triple counts.
//!
//! Statistics v2 additionally precomputes, in the same pass:
//!
//! * per-`(source label, edge label)` and per-`(edge label, target label)`
//!   **aggregates** ([`EndpointStats`]: edge count + distinct bound
//!   endpoints), so [`GraphStats::source_selectivity`] is an O(1) lookup
//!   instead of a scan over every observed triple;
//! * per-triple **distinct source/target counts** ([`TripleStats`]), which
//!   give the average out-/in-degree of each schema triple;
//! * per-edge-label **distinct source/target counts** — the `V(rel, c)`
//!   distinct-value statistics the join selectivity formula wants, measured
//!   instead of approximated by `min(|rel|, |V|)`;
//! * a per-edge-label **transitive-closure depth bound**
//!   ([`GraphStats::closure_depth`]): the longest chain through the label
//!   subgraph's SCC condensation, counting each SCC at its node count. This
//!   bounds the number of semi-naive fixpoint rounds a closure over that
//!   label can take and replaces the cost model's constant growth factor.

use sgq_common::{EdgeLabelId, FxHashMap, NodeId, NodeLabelId};

use crate::database::GraphDatabase;

/// Aggregate over the edges of one label bound to one endpoint label:
/// how many edges there are and how many distinct endpoint nodes they use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Number of edges in the group.
    pub count: usize,
    /// Distinct nodes on the grouped endpoint (sources for a
    /// `(source label, edge label)` group, targets for a
    /// `(edge label, target label)` group).
    pub distinct: usize,
}

/// Exact statistics for one observed `(src label, le, tgt label)` triple.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripleStats {
    /// Number of edges realising the triple.
    pub count: usize,
    /// Distinct source nodes among those edges.
    pub distinct_sources: usize,
    /// Distinct target nodes among those edges.
    pub distinct_targets: usize,
}

impl TripleStats {
    /// Average out-degree of the triple's sources (`count / distinct
    /// sources`), 0 when the triple is unobserved.
    pub fn avg_out_degree(&self) -> f64 {
        if self.distinct_sources == 0 {
            0.0
        } else {
            self.count as f64 / self.distinct_sources as f64
        }
    }

    /// Average in-degree of the triple's targets.
    pub fn avg_in_degree(&self) -> f64 {
        if self.distinct_targets == 0 {
            0.0
        } else {
            self.count as f64 / self.distinct_targets as f64
        }
    }
}

/// Aggregate statistics for a [`GraphDatabase`].
#[derive(Debug, Clone)]
pub struct GraphStats {
    /// Nodes per node label, indexed by label id.
    pub nodes_per_label: Vec<usize>,
    /// Edges per edge label, indexed by label id.
    pub edges_per_label: Vec<usize>,
    /// Statistics per observed `(src label, edge label, tgt label)` triple.
    pub triples: FxHashMap<(NodeLabelId, EdgeLabelId, NodeLabelId), TripleStats>,
    /// Total node count.
    pub node_count: usize,
    /// Total edge count.
    pub edge_count: usize,
    /// Aggregates per `(source label, edge label)` group.
    src_groups: FxHashMap<(NodeLabelId, EdgeLabelId), EndpointStats>,
    /// Aggregates per `(edge label, target label)` group.
    tgt_groups: FxHashMap<(EdgeLabelId, NodeLabelId), EndpointStats>,
    /// Distinct source nodes per edge label.
    distinct_sources: Vec<usize>,
    /// Distinct target nodes per edge label.
    distinct_targets: Vec<usize>,
    /// Semi-naive closure depth bound per edge label (0 for empty labels).
    closure_depths: Vec<usize>,
}

impl GraphStats {
    /// Computes statistics in a single pass over the database (plus one
    /// SCC pass per edge label for the closure depth bounds).
    pub fn compute(db: &GraphDatabase) -> Self {
        let mut nodes_per_label = vec![0usize; db.node_label_count()];
        for n in db.node_ids() {
            nodes_per_label[db.node_label(n).index()] += 1;
        }
        let label_count = db.edge_label_count();
        let mut edges_per_label = vec![0usize; label_count];
        let mut triples: FxHashMap<(NodeLabelId, EdgeLabelId, NodeLabelId), TripleStats> =
            FxHashMap::default();
        let mut src_groups: FxHashMap<(NodeLabelId, EdgeLabelId), EndpointStats> =
            FxHashMap::default();
        let mut tgt_groups: FxHashMap<(EdgeLabelId, NodeLabelId), EndpointStats> =
            FxHashMap::default();
        let mut distinct_sources = vec![0usize; label_count];
        let mut distinct_targets = vec![0usize; label_count];
        let mut closure_depths = vec![0usize; label_count];
        for le_idx in 0..label_count {
            let le = EdgeLabelId::new(le_idx as u32);
            // Forward orientation: `edges` is sorted by (src, tgt), so all
            // edges of one source are contiguous and "is this a new
            // distinct source?" is a comparison against the last counted
            // source per group.
            let edges = db.edges(le);
            edges_per_label[le_idx] = edges.len();
            let mut last_src: Option<NodeId> = None;
            let mut last_src_by_group: FxHashMap<NodeLabelId, NodeId> = FxHashMap::default();
            let mut last_src_by_triple: FxHashMap<(NodeLabelId, NodeLabelId), NodeId> =
                FxHashMap::default();
            for &(s, t) in edges {
                let (sl, tl) = (db.node_label(s), db.node_label(t));
                let triple = triples.entry((sl, le, tl)).or_default();
                triple.count += 1;
                if last_src_by_triple.insert((sl, tl), s) != Some(s) {
                    triple.distinct_sources += 1;
                }
                let group = src_groups.entry((sl, le)).or_default();
                group.count += 1;
                if last_src_by_group.insert(sl, s) != Some(s) {
                    group.distinct += 1;
                }
                if last_src != Some(s) {
                    distinct_sources[le_idx] += 1;
                    last_src = Some(s);
                }
            }
            // Reverse orientation (sorted by (tgt, src)) for the
            // target-side distinct counts.
            let mut last_tgt: Option<NodeId> = None;
            let mut last_tgt_by_group: FxHashMap<NodeLabelId, NodeId> = FxHashMap::default();
            let mut last_tgt_by_triple: FxHashMap<(NodeLabelId, NodeLabelId), NodeId> =
                FxHashMap::default();
            for &(t, s) in &db.relation(le).by_tgt {
                let (sl, tl) = (db.node_label(s), db.node_label(t));
                let group = tgt_groups.entry((le, tl)).or_default();
                group.count += 1;
                if last_tgt_by_group.insert(tl, t) != Some(t) {
                    group.distinct += 1;
                }
                if last_tgt_by_triple.insert((sl, tl), t) != Some(t) {
                    triples.entry((sl, le, tl)).or_default().distinct_targets += 1;
                }
                if last_tgt != Some(t) {
                    distinct_targets[le_idx] += 1;
                    last_tgt = Some(t);
                }
            }
            closure_depths[le_idx] = condensation_depth(edges);
        }
        GraphStats {
            nodes_per_label,
            edges_per_label,
            node_count: db.node_count(),
            edge_count: db.edge_count(),
            triples,
            src_groups,
            tgt_groups,
            distinct_sources,
            distinct_targets,
            closure_depths,
        }
    }

    /// Node count for `label`.
    pub fn label_cardinality(&self, label: NodeLabelId) -> usize {
        self.nodes_per_label
            .get(label.index())
            .copied()
            .unwrap_or(0)
    }

    /// Edge count for `le`.
    pub fn edge_cardinality(&self, le: EdgeLabelId) -> usize {
        self.edges_per_label.get(le.index()).copied().unwrap_or(0)
    }

    /// Edge count for a specific `(src label, le, tgt label)` triple.
    pub fn triple_cardinality(&self, src: NodeLabelId, le: EdgeLabelId, tgt: NodeLabelId) -> usize {
        self.triple_stats(src, le, tgt).count
    }

    /// Full statistics for a specific triple (zeroes when unobserved).
    pub fn triple_stats(&self, src: NodeLabelId, le: EdgeLabelId, tgt: NodeLabelId) -> TripleStats {
        self.triples
            .get(&(src, le, tgt))
            .copied()
            .unwrap_or_default()
    }

    /// Aggregate over the edges of `le` whose source is labeled `src`.
    pub fn source_group(&self, src: NodeLabelId, le: EdgeLabelId) -> EndpointStats {
        self.src_groups.get(&(src, le)).copied().unwrap_or_default()
    }

    /// Aggregate over the edges of `le` whose target is labeled `tgt`.
    pub fn target_group(&self, le: EdgeLabelId, tgt: NodeLabelId) -> EndpointStats {
        self.tgt_groups.get(&(le, tgt)).copied().unwrap_or_default()
    }

    /// Distinct source nodes among the edges of `le`.
    pub fn distinct_sources(&self, le: EdgeLabelId) -> usize {
        self.distinct_sources.get(le.index()).copied().unwrap_or(0)
    }

    /// Distinct target nodes among the edges of `le`.
    pub fn distinct_targets(&self, le: EdgeLabelId) -> usize {
        self.distinct_targets.get(le.index()).copied().unwrap_or(0)
    }

    /// Semi-naive closure depth bound for `le`: the longest chain through
    /// the SCC condensation of the label's subgraph, counting each SCC at
    /// its node count — an upper bound on the number of edges on any
    /// shortest `le`-path, and therefore on the rounds the semi-naive
    /// fixpoint `le+` runs. 0 for labels with no edges.
    pub fn closure_depth(&self, le: EdgeLabelId) -> usize {
        self.closure_depths.get(le.index()).copied().unwrap_or(0)
    }

    /// Selectivity of restricting `le` to sources labeled `src`:
    /// `|{(s,t) ∈ le : η(s) = src}| / |le|`, in `[0, 1]`. O(1) via the
    /// precomputed per-`(src, le)` aggregate.
    pub fn source_selectivity(&self, src: NodeLabelId, le: EdgeLabelId) -> f64 {
        let total = self.edge_cardinality(le);
        if total == 0 {
            return 0.0;
        }
        self.source_group(src, le).count as f64 / total as f64
    }

    /// Selectivity of restricting `le` to targets labeled `tgt`.
    pub fn target_selectivity(&self, le: EdgeLabelId, tgt: NodeLabelId) -> f64 {
        let total = self.edge_cardinality(le);
        if total == 0 {
            return 0.0;
        }
        self.target_group(le, tgt).count as f64 / total as f64
    }
}

/// The longest chain through the SCC condensation of the edge set,
/// counting each SCC at its node count. Iterative Tarjan (the LDBC reply
/// trees are deep enough to overflow a recursive version's stack).
fn condensation_depth(edges: &[(NodeId, NodeId)]) -> usize {
    if edges.is_empty() {
        return 0;
    }
    // Compact the incident nodes.
    let mut ids: FxHashMap<u32, u32> = FxHashMap::default();
    let intern = |n: NodeId, ids: &mut FxHashMap<u32, u32>| -> u32 {
        let next = ids.len() as u32;
        *ids.entry(n.raw()).or_insert(next)
    };
    let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(edges.len());
    for &(s, t) in edges {
        let si = intern(s, &mut ids);
        let ti = intern(t, &mut ids);
        pairs.push((si, ti));
    }
    let n = ids.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &(s, t) in &pairs {
        adj[s as usize].push(t);
    }
    // Iterative Tarjan: components are emitted sinks-first, so for any
    // cross edge u → v, comp[v] < comp[u].
    const UNSEEN: u32 = u32::MAX;
    let mut index = vec![UNSEEN; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut comp = vec![UNSEEN; n];
    let mut comp_sizes: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut call: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSEEN {
            continue;
        }
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;
        call.push((root, 0));
        while let Some(&(v, ci)) = call.last() {
            let vu = v as usize;
            if ci < adj[vu].len() {
                call.last_mut().expect("just peeked").1 += 1;
                let w = adj[vu][ci];
                let wu = w as usize;
                if index[wu] == UNSEEN {
                    index[wu] = next_index;
                    low[wu] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wu] = true;
                    call.push((w, 0));
                } else if on_stack[wu] {
                    low[vu] = low[vu].min(index[wu]);
                }
            } else {
                call.pop();
                if let Some(&(p, _)) = call.last() {
                    let pu = p as usize;
                    low[pu] = low[pu].min(low[vu]);
                }
                if low[vu] == index[vu] {
                    let cid = comp_sizes.len() as u32;
                    let mut size = 0u32;
                    loop {
                        let w = stack.pop().expect("scc stack non-empty");
                        on_stack[w as usize] = false;
                        comp[w as usize] = cid;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    comp_sizes.push(size);
                }
            }
        }
    }
    // Longest weighted chain over the condensation DAG: components are
    // numbered sinks-first, so every successor's dp is final before its
    // predecessors are processed.
    let ncomp = comp_sizes.len();
    let mut out_edges: Vec<Vec<u32>> = vec![Vec::new(); ncomp];
    for &(s, t) in &pairs {
        let (cs, ct) = (comp[s as usize], comp[t as usize]);
        if cs != ct {
            out_edges[cs as usize].push(ct);
        }
    }
    let mut dp = vec![0u64; ncomp];
    let mut depth = 0u64;
    for c in 0..ncomp {
        let best = out_edges[c]
            .iter()
            .map(|&succ| dp[succ as usize])
            .max()
            .unwrap_or(0);
        dp[c] = comp_sizes[c] as u64 + best;
        depth = depth.max(dp[c]);
    }
    depth as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::fig2_yago_database;
    use sgq_common::Rng;

    #[test]
    fn fig2_statistics() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        assert_eq!(stats.node_count, 7);
        assert_eq!(stats.edge_count, 9);
        let person = db.node_label_id("PERSON").unwrap();
        assert_eq!(stats.label_cardinality(person), 2);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        assert_eq!(stats.edge_cardinality(isl), 4);
    }

    #[test]
    fn triple_counts_split_overloaded_labels() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        let region = db.node_label_id("REGION").unwrap();
        let property = db.node_label_id("PROPERTY").unwrap();
        let country = db.node_label_id("COUNTRY").unwrap();
        // Fig. 2: PROPERTY->CITY x1, CITY->REGION x2, REGION->COUNTRY x1
        assert_eq!(stats.triple_cardinality(property, isl, city), 1);
        assert_eq!(stats.triple_cardinality(city, isl, region), 2);
        assert_eq!(stats.triple_cardinality(region, isl, country), 1);
        assert_eq!(stats.triple_cardinality(country, isl, city), 0);
    }

    #[test]
    fn selectivity() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        // 2 of the 4 isLocatedIn edges start from CITY nodes.
        assert!((stats.source_selectivity(city, isl) - 0.5).abs() < 1e-9);
        let region = db.node_label_id("REGION").unwrap();
        // 2 of the 4 isLocatedIn edges end at REGION nodes.
        assert!((stats.target_selectivity(isl, region) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn distinct_endpoint_counts() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        let region = db.node_label_id("REGION").unwrap();
        // Each of the 4 isLocatedIn edges has a different source; the two
        // CITY edges share one REGION target.
        assert_eq!(stats.distinct_sources(isl), 4);
        assert_eq!(stats.distinct_targets(isl), 3);
        let ts = stats.triple_stats(city, isl, region);
        assert_eq!(ts.count, 2);
        assert_eq!(ts.distinct_sources, 2);
        assert_eq!(ts.distinct_targets, 1);
        assert!((ts.avg_out_degree() - 1.0).abs() < 1e-9);
        assert!((ts.avg_in_degree() - 2.0).abs() < 1e-9);
        let group = stats.source_group(city, isl);
        assert_eq!(group.count, 2);
        assert_eq!(group.distinct, 2);
    }

    #[test]
    fn closure_depths_measure_hierarchy_and_cycles() {
        let db = fig2_yago_database();
        let stats = GraphStats::compute(&db);
        // isLocatedIn is the acyclic PROPERTY→CITY→REGION→COUNTRY chain:
        // the longest chain visits 4 nodes.
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        assert_eq!(stats.closure_depth(isl), 4);
        // isMarriedTo is a 2-cycle: a single SCC of size 2.
        let married = db.edge_label_id("isMarriedTo").unwrap();
        assert_eq!(stats.closure_depth(married), 2);
        // owns has one edge: a 2-node chain.
        let owns = db.edge_label_id("owns").unwrap();
        assert_eq!(stats.closure_depth(owns), 2);
    }

    /// Regression test for the `source_selectivity` fast path: the O(1)
    /// per-`(src, le)` aggregate must equal the old O(|triples|) scan on a
    /// randomized database.
    #[test]
    fn source_selectivity_fast_path_equals_scan() {
        let mut b = crate::database::GraphDatabase::standalone_builder();
        let mut rng = Rng::seed_from_u64(0x57a7);
        let labels = ["A", "B", "C"];
        let nodes: Vec<_> = (0..120)
            .map(|i| b.node(labels[i % labels.len()], &[]))
            .collect();
        for _ in 0..400 {
            let s = nodes[rng.gen_range(0..nodes.len())];
            let t = nodes[rng.gen_range(0..nodes.len())];
            let le = if rng.gen_bool(0.5) { "e0" } else { "e1" };
            b.edge(s, le, t);
        }
        let db = b.build().unwrap();
        let stats = GraphStats::compute(&db);
        for le_idx in 0..db.edge_label_count() {
            let le = EdgeLabelId::new(le_idx as u32);
            for l_idx in 0..db.node_label_count() {
                let src = NodeLabelId::new(l_idx as u32);
                let scan: usize = stats
                    .triples
                    .iter()
                    .filter(|&(&(s, l, _), _)| s == src && l == le)
                    .map(|(_, t)| t.count)
                    .sum();
                let scanned = scan as f64 / stats.edge_cardinality(le).max(1) as f64;
                assert!(
                    (stats.source_selectivity(src, le) - scanned).abs() < 1e-12,
                    "fast path diverged for ({src:?}, {le:?})"
                );
                assert_eq!(stats.source_group(src, le).count, scan);
            }
        }
    }

    #[test]
    fn empty_label_statistics_are_zero() {
        let mut b = crate::database::GraphDatabase::standalone_builder();
        let n = b.node("A", &[]);
        let le = b.intern_edge_label("unused");
        let _ = (n, le);
        let db = b.build().unwrap();
        let stats = GraphStats::compute(&db);
        assert_eq!(stats.edge_cardinality(le), 0);
        assert_eq!(stats.distinct_sources(le), 0);
        assert_eq!(stats.closure_depth(le), 0);
        assert_eq!(stats.source_selectivity(NodeLabelId::new(0), le), 0.0);
    }
}
