//! Property-graph data model: the paper's Definitions 1–3.
//!
//! * [`schema`] — graph schemas (Def. 1) and basic schema triples (Def. 5),
//! * [`database`] — graph databases (Def. 2) with CSR adjacency indexes,
//! * [`consistency`] — schema–database consistency checking (Def. 3),
//! * [`value`] — property values and data types (the `Υ` typing function),
//! * [`csr`] — compressed sparse row adjacency,
//! * [`stats`] — per-label and per-triple cardinality statistics used by
//!   the relational cost model.

#![warn(missing_docs)]

pub mod consistency;
pub mod csr;
pub mod database;
pub mod infer_schema;
pub mod schema;
pub mod stats;
pub mod value;

pub use consistency::{check_consistency, ConsistencyReport, Violation};
pub use csr::Csr;
pub use database::{DatabaseBuilder, GraphDatabase};
pub use infer_schema::infer_schema;
pub use schema::{GraphSchema, SchemaBuilder, SchemaTriple};
pub use stats::GraphStats;
pub use value::{DataType, Value};

// Concurrency audit: the serving layer (`sgq_service`) shares one loaded
// database and schema across worker threads behind `Arc`, so these types
// must stay `Send + Sync` (plain owned data, no interior mutability).
// Compile-time assertions so a regression fails the build, not a race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<GraphDatabase>();
    assert_send_sync::<GraphSchema>();
    assert_send_sync::<GraphStats>();
    assert_send_sync::<Value>();
};
