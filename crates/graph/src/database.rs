//! Graph databases: Definition 2 of the paper.
//!
//! A [`GraphDatabase`] stores labeled nodes with optional properties and
//! labeled directed edges (no edge properties, per the restrictions of
//! §2.3). After construction it carries per-edge-label forward/reverse CSR
//! adjacency, a per-node-label index, and sorted pair relations — the
//! physical structures both query engines run on.

use sgq_common::{EdgeLabelId, Interner, KeyId, NodeId, NodeLabelId, Result, SgqError};

use crate::csr::Csr;
use crate::schema::GraphSchema;
use crate::value::Value;

/// One stored node.
#[derive(Debug, Clone)]
pub struct Node {
    /// The node's label (`ηD`).
    pub label: NodeLabelId,
    /// Properties (`∆D`), sorted by key.
    pub properties: Vec<(KeyId, Value)>,
}

/// Per-edge-label physical storage.
#[derive(Debug, Clone, Default)]
pub struct EdgeRelation {
    /// `(src, tgt)` pairs sorted by `(src, tgt)`.
    pub by_src: Vec<(NodeId, NodeId)>,
    /// `(tgt, src)` pairs sorted by `(tgt, src)` — the reversed relation.
    pub by_tgt: Vec<(NodeId, NodeId)>,
    /// Forward adjacency.
    pub fwd: Csr,
    /// Reverse adjacency.
    pub rev: Csr,
}

/// A graph database instance (Definition 2).
#[derive(Debug, Clone)]
pub struct GraphDatabase {
    node_labels: Interner,
    edge_labels: Interner,
    keys: Interner,
    nodes: Vec<Node>,
    relations: Vec<EdgeRelation>,
    /// Sorted node ids per node label.
    nodes_by_label: Vec<Vec<NodeId>>,
    edge_count: usize,
}

impl GraphDatabase {
    /// Starts building a database that shares `schema`'s label id space.
    pub fn builder(schema: &GraphSchema) -> DatabaseBuilder {
        let (node_labels, edge_labels, keys) = schema.interners();
        DatabaseBuilder {
            node_labels,
            edge_labels,
            keys,
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Starts building a schema-less database (labels interned on the fly).
    pub fn standalone_builder() -> DatabaseBuilder {
        DatabaseBuilder {
            node_labels: Interner::new(),
            edge_labels: Interner::new(),
            keys: Interner::new(),
            nodes: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The label of node `n` (`ηD`).
    #[inline]
    pub fn node_label(&self, n: NodeId) -> NodeLabelId {
        self.nodes[n.index()].label
    }

    /// The properties of node `n` (`∆D`), sorted by key.
    pub fn node_properties(&self, n: NodeId) -> &[(KeyId, Value)] {
        &self.nodes[n.index()].properties
    }

    /// The value of property `key` on node `n`, if present.
    pub fn property(&self, n: NodeId, key: KeyId) -> Option<&Value> {
        let props = self.node_properties(n);
        props
            .binary_search_by_key(&key, |(k, _)| *k)
            .ok()
            .map(|i| &props[i].1)
    }

    /// Sorted node ids labeled `label`.
    pub fn nodes_with_label(&self, label: NodeLabelId) -> &[NodeId] {
        self.nodes_by_label
            .get(label.index())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Whether node `n` carries `label`.
    #[inline]
    pub fn has_label(&self, n: NodeId, label: NodeLabelId) -> bool {
        self.node_label(n) == label
    }

    /// The physical relation for edge label `le` (empty if unused).
    pub fn relation(&self, le: EdgeLabelId) -> &EdgeRelation {
        static EMPTY: std::sync::OnceLock<EdgeRelation> = std::sync::OnceLock::new();
        self.relations
            .get(le.index())
            .unwrap_or_else(|| EMPTY.get_or_init(EdgeRelation::default))
    }

    /// `(src, tgt)` pairs of edge label `le`, sorted by `(src, tgt)`.
    pub fn edges(&self, le: EdgeLabelId) -> &[(NodeId, NodeId)] {
        &self.relation(le).by_src
    }

    /// Forward neighbours of `n` via `le`.
    #[inline]
    pub fn out_neighbors(&self, n: NodeId, le: EdgeLabelId) -> &[NodeId] {
        self.relation(le).fwd.neighbors(n)
    }

    /// Reverse neighbours of `n` via `le`.
    #[inline]
    pub fn in_neighbors(&self, n: NodeId, le: EdgeLabelId) -> &[NodeId] {
        self.relation(le).rev.neighbors(n)
    }

    /// Resolves a node label id to its name.
    pub fn node_label_name(&self, l: NodeLabelId) -> &str {
        self.node_labels.resolve(l.raw())
    }

    /// Resolves an edge label id to its name.
    pub fn edge_label_name(&self, l: EdgeLabelId) -> &str {
        self.edge_labels.resolve(l.raw())
    }

    /// Resolves a key id to its name.
    pub fn key_name(&self, k: KeyId) -> &str {
        self.keys.resolve(k.raw())
    }

    /// Looks up a node label by name.
    pub fn node_label_id(&self, name: &str) -> Option<NodeLabelId> {
        self.node_labels.get(name).map(NodeLabelId::new)
    }

    /// Looks up an edge label by name.
    pub fn edge_label_id(&self, name: &str) -> Option<EdgeLabelId> {
        self.edge_labels.get(name).map(EdgeLabelId::new)
    }

    /// Looks up a key by name.
    pub fn key_id(&self, name: &str) -> Option<KeyId> {
        self.keys.get(name).map(KeyId::new)
    }

    /// Number of distinct node labels known to this database's vocabulary.
    pub fn node_label_count(&self) -> usize {
        self.node_labels.len()
    }

    /// Number of distinct edge labels known to this database's vocabulary.
    pub fn edge_label_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// Iterates over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId::from)
    }
}

/// Incremental construction of a [`GraphDatabase`].
#[derive(Debug)]
pub struct DatabaseBuilder {
    node_labels: Interner,
    edge_labels: Interner,
    keys: Interner,
    nodes: Vec<Node>,
    edges: Vec<(EdgeLabelId, NodeId, NodeId)>,
}

impl DatabaseBuilder {
    /// Adds a node with `label` and `properties`, returning its id.
    pub fn node(&mut self, label: &str, properties: &[(&str, Value)]) -> NodeId {
        let label = NodeLabelId::new(self.node_labels.intern(label));
        let mut props: Vec<(KeyId, Value)> = properties
            .iter()
            .map(|(k, v)| (KeyId::new(self.keys.intern(k)), v.clone()))
            .collect();
        props.sort_unstable_by_key(|&(k, _)| k);
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(Node {
            label,
            properties: props,
        });
        id
    }

    /// Adds a node by pre-interned label id (fast path for generators).
    pub fn node_with_label_id(
        &mut self,
        label: NodeLabelId,
        properties: Vec<(KeyId, Value)>,
    ) -> NodeId {
        debug_assert!((label.index()) < self.node_labels.len());
        let mut props = properties;
        props.sort_unstable_by_key(|&(k, _)| k);
        let id = NodeId::from(self.nodes.len());
        self.nodes.push(Node {
            label,
            properties: props,
        });
        id
    }

    /// Adds a directed edge `src --label--> tgt`.
    pub fn edge(&mut self, src: NodeId, label: &str, tgt: NodeId) {
        let label = EdgeLabelId::new(self.edge_labels.intern(label));
        self.edges.push((label, src, tgt));
    }

    /// Adds an edge by pre-interned label id (fast path for generators).
    #[inline]
    pub fn edge_with_label_id(&mut self, src: NodeId, label: EdgeLabelId, tgt: NodeId) {
        debug_assert!((label.index()) < self.edge_labels.len());
        self.edges.push((label, src, tgt));
    }

    /// Interns (or resolves) an edge label name ahead of bulk loading.
    pub fn intern_edge_label(&mut self, name: &str) -> EdgeLabelId {
        EdgeLabelId::new(self.edge_labels.intern(name))
    }

    /// Interns (or resolves) a node label name ahead of bulk loading.
    pub fn intern_node_label(&mut self, name: &str) -> NodeLabelId {
        NodeLabelId::new(self.node_labels.intern(name))
    }

    /// Interns (or resolves) a property key ahead of bulk loading.
    pub fn intern_key(&mut self, name: &str) -> KeyId {
        KeyId::new(self.keys.intern(name))
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finalises the database, building all indexes.
    pub fn build(self) -> Result<GraphDatabase> {
        let node_count = self.nodes.len();
        for &(_, s, t) in &self.edges {
            if s.index() >= node_count || t.index() >= node_count {
                return Err(SgqError::Schema(format!(
                    "edge ({s}, {t}) references a node that does not exist"
                )));
            }
        }
        let label_count = self.edge_labels.len();
        let mut per_label: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); label_count];
        for &(l, s, t) in &self.edges {
            per_label[l.index()].push((s, t));
        }
        let mut relations = Vec::with_capacity(label_count);
        for pairs in per_label {
            let mut by_src = pairs;
            by_src.sort_unstable();
            by_src.dedup();
            let mut by_tgt: Vec<(NodeId, NodeId)> = by_src.iter().map(|&(s, t)| (t, s)).collect();
            by_tgt.sort_unstable();
            let fwd = Csr::from_pairs(node_count, &by_src);
            let rev = Csr::from_pairs(node_count, &by_tgt);
            relations.push(EdgeRelation {
                by_src,
                by_tgt,
                fwd,
                rev,
            });
        }
        let mut nodes_by_label: Vec<Vec<NodeId>> = vec![Vec::new(); self.node_labels.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            nodes_by_label[node.label.index()].push(NodeId::from(i));
        }
        let edge_count = relations.iter().map(|r| r.by_src.len()).sum();
        Ok(GraphDatabase {
            node_labels: self.node_labels,
            edge_labels: self.edge_labels,
            keys: self.keys,
            nodes: self.nodes,
            relations,
            nodes_by_label,
            edge_count,
        })
    }
}

/// Builds the 7-node, 9-edge YAGO example database of the paper's Fig. 2.
pub fn fig2_yago_database() -> GraphDatabase {
    let schema = crate::schema::fig1_yago_schema();
    let mut b = GraphDatabase::builder(&schema);
    let n1 = b.node("PROPERTY", &[("address", Value::str("7 Queen Street"))]);
    let n2 = b.node(
        "PERSON",
        &[("name", Value::str("John")), ("age", Value::Int(28))],
    );
    let n3 = b.node(
        "PERSON",
        &[("name", Value::str("Shradha")), ("age", Value::Int(25))],
    );
    let n4 = b.node("CITY", &[("name", Value::str("Elerslie"))]);
    let n5 = b.node("REGION", &[("name", Value::str("Grenoble"))]);
    let n6 = b.node("CITY", &[("name", Value::str("Montbonnot"))]);
    let n7 = b.node("COUNTRY", &[("name", Value::str("France"))]);
    b.edge(n2, "isMarriedTo", n3);
    b.edge(n3, "isMarriedTo", n2);
    b.edge(n2, "livesIn", n4);
    b.edge(n3, "livesIn", n6);
    b.edge(n2, "owns", n1);
    b.edge(n1, "isLocatedIn", n6);
    b.edge(n6, "isLocatedIn", n5);
    b.edge(n4, "isLocatedIn", n5);
    b.edge(n5, "isLocatedIn", n7);
    b.build().expect("Fig. 2 database is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_shape() {
        let db = fig2_yago_database();
        assert_eq!(db.node_count(), 7, "seven nodes (Example 2)");
        assert_eq!(db.edge_count(), 9, "nine edges (Example 2)");
    }

    #[test]
    fn labels_and_properties() {
        let db = fig2_yago_database();
        let n2 = NodeId::new(1); // second inserted node = John
        assert_eq!(db.node_label_name(db.node_label(n2)), "PERSON");
        let name = db.key_id("name").unwrap();
        assert_eq!(db.property(n2, name), Some(&Value::str("John")));
        let age = db.key_id("age").unwrap();
        assert_eq!(db.property(n2, age), Some(&Value::Int(28)));
    }

    #[test]
    fn adjacency() {
        let db = fig2_yago_database();
        let owns = db.edge_label_id("owns").unwrap();
        let n1 = NodeId::new(0);
        let n2 = NodeId::new(1);
        assert_eq!(db.out_neighbors(n2, owns), &[n1]);
        assert_eq!(db.in_neighbors(n1, owns), &[n2]);
        assert_eq!(db.edges(owns), &[(n2, n1)]);
    }

    #[test]
    fn nodes_by_label_index() {
        let db = fig2_yago_database();
        let person = db.node_label_id("PERSON").unwrap();
        assert_eq!(
            db.nodes_with_label(person),
            &[NodeId::new(1), NodeId::new(2)]
        );
        let country = db.node_label_id("COUNTRY").unwrap();
        assert_eq!(db.nodes_with_label(country), &[NodeId::new(6)]);
    }

    #[test]
    fn dangling_edge_rejected() {
        let schema = crate::schema::fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        let n = b.node("PERSON", &[]);
        b.edge(n, "livesIn", NodeId::new(99));
        assert!(b.build().is_err());
    }

    #[test]
    fn duplicate_edges_are_set_semantics() {
        let schema = crate::schema::fig1_yago_schema();
        let mut b = GraphDatabase::builder(&schema);
        let a = b.node("PERSON", &[]);
        let c = b.node("CITY", &[]);
        b.edge(a, "livesIn", c);
        b.edge(a, "livesIn", c);
        let db = b.build().unwrap();
        assert_eq!(db.edge_count(), 1);
    }

    #[test]
    fn standalone_builder_works() {
        let mut b = GraphDatabase::standalone_builder();
        let a = b.node("X", &[]);
        let c = b.node("Y", &[]);
        b.edge(a, "r", c);
        let db = b.build().unwrap();
        assert_eq!(db.node_count(), 2);
        assert_eq!(db.edge_count(), 1);
        assert!(db.edge_label_id("r").is_some());
    }
}
