//! Tarski's algebra path expressions (the paper's Fig. 3 grammar).
//!
//! * [`ast`] — the path-expression AST plus structural helpers,
//! * [`parser`] — a text syntax (`livesIn/isLocatedIn+`, `-hasCreator`,
//!   `a[b]`, `[a]b`, `a&b`, `a|b`, `knows{1,3}` bounded-repeat sugar),
//! * [`display`] — precedence-aware pretty printing,
//! * [`eval`] — the reference set semantics of Fig. 5 over a
//!   [`sgq_graph::GraphDatabase`], used as ground truth by both engines'
//!   test suites.

#![warn(missing_docs)]

pub mod ast;
pub mod display;
pub mod eval;
pub mod parser;

pub use ast::PathExpr;
pub use display::path_to_string;
pub use eval::{eval_path, PairSet};
pub use parser::{parse_path, LabelResolver};
