//! Reference set semantics of path expressions (the paper's Fig. 5).
//!
//! This evaluator favours clarity over speed: it materialises each
//! sub-expression as a canonical sorted pair set. Both production engines
//! (`sgq-engine`, `sgq-ra`) are tested against it.

use sgq_common::{sorted, FxHashMap, NodeId};
use sgq_graph::GraphDatabase;

use crate::ast::PathExpr;

/// A canonical (sorted, deduplicated) set of `(source, target)` node pairs.
pub type PairSet = Vec<(NodeId, NodeId)>;

/// Evaluates `JϕKD`: all node pairs connected by a path matching `expr`.
pub fn eval_path(db: &GraphDatabase, expr: &PathExpr) -> PairSet {
    match expr {
        PathExpr::Label(le) => db.edges(*le).to_vec(),
        PathExpr::Reverse(le) => db.relation(*le).by_tgt.clone(),
        PathExpr::Concat(a, b) => compose(&eval_path(db, a), &eval_path(db, b)),
        PathExpr::Union(a, b) => sorted::union(&eval_path(db, a), &eval_path(db, b)),
        PathExpr::Conj(a, b) => sorted::intersect(&eval_path(db, a), &eval_path(db, b)),
        PathExpr::BranchR(a, b) => {
            // {(n,m) ∈ JaK | ∃z (m,z) ∈ JbK}
            let a = eval_path(db, a);
            let b = eval_path(db, b);
            let sources = source_set(&b);
            a.into_iter()
                .filter(|&(_, m)| sorted::contains(&sources, &m))
                .collect()
        }
        PathExpr::BranchL(a, b) => {
            // {(n,m) ∈ JbK | ∃z (n,z) ∈ JaK}
            let a = eval_path(db, a);
            let b = eval_path(db, b);
            let sources = source_set(&a);
            b.into_iter()
                .filter(|&(n, _)| sorted::contains(&sources, &n))
                .collect()
        }
        PathExpr::Plus(a) => transitive_closure(&eval_path(db, a)),
    }
}

/// Relational composition `{(n,m) | ∃z (n,z) ∈ a ∧ (z,m) ∈ b}`.
pub fn compose(a: &PairSet, b: &PairSet) -> PairSet {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    // Index b by source.
    let mut by_src: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for &(s, t) in b {
        by_src.entry(s).or_default().push(t);
    }
    let mut out = Vec::new();
    for &(n, z) in a {
        if let Some(ms) = by_src.get(&z) {
            for &m in ms {
                out.push((n, m));
            }
        }
    }
    sorted::normalize(&mut out);
    out
}

/// Semi-naive transitive closure of a pair set.
pub fn transitive_closure(base: &PairSet) -> PairSet {
    let mut acc = base.clone();
    let mut delta = base.clone();
    while !delta.is_empty() {
        let step = compose(&delta, base);
        let fresh = sorted::difference(&step, &acc);
        acc = sorted::union(&acc, &fresh);
        delta = fresh;
    }
    acc
}

/// The sorted set of sources of a pair set.
pub fn source_set(pairs: &PairSet) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = pairs.iter().map(|&(s, _)| s).collect();
    sorted::normalize(&mut v);
    v
}

/// The sorted set of targets of a pair set.
pub fn target_set(pairs: &PairSet) -> Vec<NodeId> {
    let mut v: Vec<NodeId> = pairs.iter().map(|&(_, t)| t).collect();
    sorted::normalize(&mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn eval(db: &GraphDatabase, s: &str) -> PairSet {
        eval_path(db, &parse_path(s, db).unwrap())
    }

    #[test]
    fn single_label() {
        let db = fig2_yago_database();
        assert_eq!(eval(&db, "owns"), vec![(n(1), n(0))]);
        assert_eq!(eval(&db, "isMarriedTo"), vec![(n(1), n(2)), (n(2), n(1))]);
    }

    #[test]
    fn reverse() {
        let db = fig2_yago_database();
        assert_eq!(eval(&db, "-owns"), vec![(n(0), n(1))]);
    }

    #[test]
    fn concat() {
        let db = fig2_yago_database();
        // owns/isLocatedIn: John owns n1 located in Montbonnot (n6 -> id 5)
        assert_eq!(eval(&db, "owns/isLocatedIn"), vec![(n(1), n(5))]);
    }

    #[test]
    fn transitive_closure_fig2() {
        let db = fig2_yago_database();
        // isLocatedIn edges: n1->n6, n6->n5, n4->n5, n5->n7 (0-based: 0->5, 5->4, 3->4, 4->6)
        let tc = eval(&db, "isLocatedIn+");
        assert_eq!(
            tc,
            vec![
                (n(0), n(4)),
                (n(0), n(5)),
                (n(0), n(6)),
                (n(3), n(4)),
                (n(3), n(6)),
                (n(4), n(6)),
                (n(5), n(4)),
                (n(5), n(6)),
            ]
        );
    }

    #[test]
    fn example4_pattern_relation() {
        let db = fig2_yago_database();
        // livesIn/isLocatedIn+ reaches regions and countries
        let r = eval(&db, "livesIn/isLocatedIn+");
        // John (n2=id1) lives in Elerslie (id3) -> Grenoble (id4) -> France (id6)
        // Shradha (n3=id2) lives in Montbonnot (id5) -> Grenoble -> France
        assert_eq!(
            r,
            vec![(n(1), n(4)), (n(1), n(6)), (n(2), n(4)), (n(2), n(6))]
        );
    }

    #[test]
    fn example6_branching() {
        let db = fig2_yago_database();
        // [owns]([isMarriedTo]livesIn) returns {(n2, n4)} = {(id1, id3)} (Example 6)
        let r = eval(&db, "[owns]([isMarriedTo]livesIn)");
        assert_eq!(r, vec![(n(1), n(3))]);
    }

    #[test]
    fn union_and_conj() {
        let db = fig2_yago_database();
        let u = eval(&db, "owns | livesIn");
        assert_eq!(u.len(), 3);
        let c = eval(&db, "isMarriedTo & isMarriedTo");
        assert_eq!(c, eval(&db, "isMarriedTo"));
        let empty = eval(&db, "owns & livesIn");
        assert!(empty.is_empty());
    }

    #[test]
    fn branch_right() {
        let db = fig2_yago_database();
        // livesIn[isLocatedIn]: people living somewhere that is located in something
        let r = eval(&db, "livesIn[isLocatedIn]");
        assert_eq!(r, vec![(n(1), n(3)), (n(2), n(5))]);
    }

    #[test]
    fn plus_of_cycle_terminates() {
        let db = fig2_yago_database();
        // isMarriedTo+ on the 2-cycle n2<->n3: closure adds self-loops
        let r = eval(&db, "isMarriedTo+");
        assert_eq!(
            r,
            vec![(n(1), n(1)), (n(1), n(2)), (n(2), n(1)), (n(2), n(2))]
        );
    }

    #[test]
    fn helper_sets() {
        let pairs = vec![(n(1), n(3)), (n(2), n(3)), (n(2), n(5))];
        assert_eq!(source_set(&pairs), vec![n(1), n(2)]);
        assert_eq!(target_set(&pairs), vec![n(3), n(5)]);
    }
}
