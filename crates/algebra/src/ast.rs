//! The path-expression AST: the grammar of Fig. 3.
//!
//! ```text
//! ϕ ::= le            single edge label
//!     | ϕ1/ϕ2         concatenation
//!     | ϕ1 ∪ ϕ2       union
//!     | ϕ1 ∩ ϕ2       conjunction
//!     | ϕ1[ϕ2]        branch (right)
//!     | [ϕ1]ϕ2        branch (left)
//!     | -le           reverse (single labels only, per the adaptation)
//!     | ϕ+            transitive closure
//! ```

use sgq_common::EdgeLabelId;

/// A Tarski's algebra path expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathExpr {
    /// A single edge label `le`.
    Label(EdgeLabelId),
    /// The reverse of a single edge label, `-le`.
    Reverse(EdgeLabelId),
    /// Concatenation `ϕ1/ϕ2`.
    Concat(Box<PathExpr>, Box<PathExpr>),
    /// Union `ϕ1 ∪ ϕ2`.
    Union(Box<PathExpr>, Box<PathExpr>),
    /// Conjunction `ϕ1 ∩ ϕ2`.
    Conj(Box<PathExpr>, Box<PathExpr>),
    /// Right branch `ϕ1[ϕ2]`: follow `ϕ1`, require an outgoing `ϕ2` path
    /// from the end point (existential test).
    BranchR(Box<PathExpr>, Box<PathExpr>),
    /// Left branch `[ϕ1]ϕ2`: require an outgoing `ϕ1` path from the start
    /// point, then follow `ϕ2`.
    BranchL(Box<PathExpr>, Box<PathExpr>),
    /// Transitive closure `ϕ+`.
    Plus(Box<PathExpr>),
}

impl PathExpr {
    /// `le`.
    pub fn label(le: impl Into<EdgeLabelId>) -> Self {
        PathExpr::Label(le.into())
    }

    /// `-le`.
    pub fn reverse(le: impl Into<EdgeLabelId>) -> Self {
        PathExpr::Reverse(le.into())
    }

    /// `a/b`.
    pub fn concat(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::Concat(Box::new(a), Box::new(b))
    }

    /// `a ∪ b`.
    pub fn union(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::Union(Box::new(a), Box::new(b))
    }

    /// `a ∩ b`.
    pub fn conj(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::Conj(Box::new(a), Box::new(b))
    }

    /// `a[b]`.
    pub fn branch_r(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::BranchR(Box::new(a), Box::new(b))
    }

    /// `[a]b`.
    pub fn branch_l(a: PathExpr, b: PathExpr) -> Self {
        PathExpr::BranchL(Box::new(a), Box::new(b))
    }

    /// `a+`.
    pub fn plus(a: PathExpr) -> Self {
        PathExpr::Plus(Box::new(a))
    }

    /// Concatenates a non-empty sequence of expressions left-associatively.
    pub fn concat_all(parts: impl IntoIterator<Item = PathExpr>) -> Option<Self> {
        parts.into_iter().reduce(PathExpr::concat)
    }

    /// Unions a non-empty sequence of expressions left-associatively.
    pub fn union_all(parts: impl IntoIterator<Item = PathExpr>) -> Option<Self> {
        parts.into_iter().reduce(PathExpr::union)
    }

    /// Bounded repetition `ϕ{lo, hi}` (e.g. the paper's `knows1..3`),
    /// expanded as `ϕ^lo ∪ ... ∪ ϕ^hi`. Requires `1 <= lo <= hi`.
    pub fn repeat(expr: PathExpr, lo: usize, hi: usize) -> Self {
        assert!(
            1 <= lo && lo <= hi,
            "repeat bounds must satisfy 1 <= lo <= hi"
        );
        let power =
            |k: usize| PathExpr::concat_all(std::iter::repeat_n(expr.clone(), k)).expect("k >= 1");
        PathExpr::union_all((lo..=hi).map(power)).expect("hi >= lo")
    }

    /// Whether the expression contains a transitive closure — the paper's
    /// recursive (RQ) vs non-recursive (NQ) query classification (§2.4.2).
    pub fn is_recursive(&self) -> bool {
        match self {
            PathExpr::Label(_) | PathExpr::Reverse(_) => false,
            PathExpr::Plus(_) => true,
            PathExpr::Concat(a, b)
            | PathExpr::Union(a, b)
            | PathExpr::Conj(a, b)
            | PathExpr::BranchR(a, b)
            | PathExpr::BranchL(a, b) => a.is_recursive() || b.is_recursive(),
        }
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            PathExpr::Label(_) | PathExpr::Reverse(_) => 1,
            PathExpr::Plus(a) => 1 + a.size(),
            PathExpr::Concat(a, b)
            | PathExpr::Union(a, b)
            | PathExpr::Conj(a, b)
            | PathExpr::BranchR(a, b)
            | PathExpr::BranchL(a, b) => 1 + a.size() + b.size(),
        }
    }

    /// Collects every edge label used in the expression (sorted, deduped).
    pub fn edge_labels(&self) -> Vec<EdgeLabelId> {
        fn walk(e: &PathExpr, out: &mut Vec<EdgeLabelId>) {
            match e {
                PathExpr::Label(l) | PathExpr::Reverse(l) => out.push(*l),
                PathExpr::Plus(a) => walk(a, out),
                PathExpr::Concat(a, b)
                | PathExpr::Union(a, b)
                | PathExpr::Conj(a, b)
                | PathExpr::BranchR(a, b)
                | PathExpr::BranchL(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
            }
        }
        let mut v = Vec::new();
        walk(self, &mut v);
        sgq_common::sorted::normalize(&mut v);
        v
    }

    /// Flattens the top-level unions: `a ∪ (b ∪ c)` → `[a, b, c]`.
    pub fn union_components(&self) -> Vec<&PathExpr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a PathExpr, out: &mut Vec<&'a PathExpr>) {
            match e {
                PathExpr::Union(a, b) => {
                    walk(a, out);
                    walk(b, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn le(i: u32) -> PathExpr {
        PathExpr::label(EdgeLabelId::new(i))
    }

    #[test]
    fn recursive_classification() {
        assert!(!le(0).is_recursive());
        assert!(PathExpr::plus(le(0)).is_recursive());
        assert!(PathExpr::concat(le(0), PathExpr::plus(le(1))).is_recursive());
        assert!(!PathExpr::branch_r(le(0), le(1)).is_recursive());
    }

    #[test]
    fn repeat_expansion() {
        // knows{1,3} = knows ∪ knows/knows ∪ knows/knows/knows
        let r = PathExpr::repeat(le(0), 1, 3);
        let comps = r.union_components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], &le(0));
        assert_eq!(comps[1], &PathExpr::concat(le(0), le(0)));
        assert_eq!(comps[2].size(), 5);
    }

    #[test]
    #[should_panic]
    fn repeat_rejects_zero() {
        let _ = PathExpr::repeat(le(0), 0, 2);
    }

    #[test]
    fn size_and_labels() {
        let e = PathExpr::concat(
            le(2),
            PathExpr::plus(PathExpr::reverse(EdgeLabelId::new(1))),
        );
        assert_eq!(e.size(), 4);
        assert_eq!(
            e.edge_labels(),
            vec![EdgeLabelId::new(1), EdgeLabelId::new(2)]
        );
    }

    #[test]
    fn union_components_flatten() {
        let e = PathExpr::union(PathExpr::union(le(0), le(1)), le(2));
        assert_eq!(e.union_components().len(), 3);
        assert_eq!(le(5).union_components().len(), 1);
    }
}
