//! Precedence-aware pretty printing of path expressions.
//!
//! The printer emits exactly the syntax accepted by [`crate::parser`], so
//! `parse(print(e)) == e` (round-trip property-tested in the crate tests).

use sgq_common::EdgeLabelId;

use crate::ast::PathExpr;

/// Provides edge-label names for printing.
pub trait LabelNames {
    /// The display name of `le`.
    fn edge_label_display(&self, le: EdgeLabelId) -> String;
}

impl LabelNames for sgq_graph::GraphSchema {
    fn edge_label_display(&self, le: EdgeLabelId) -> String {
        self.edge_label_name(le).to_string()
    }
}

impl LabelNames for sgq_graph::GraphDatabase {
    fn edge_label_display(&self, le: EdgeLabelId) -> String {
        self.edge_label_name(le).to_string()
    }
}

impl LabelNames for sgq_common::Interner {
    fn edge_label_display(&self, le: EdgeLabelId) -> String {
        self.try_resolve(le.raw())
            .map(str::to_string)
            .unwrap_or_else(|| le.to_string())
    }
}

/// Binding strength used to decide parenthesisation.
fn precedence(e: &PathExpr) -> u8 {
    match e {
        PathExpr::Union(..) => 0,
        PathExpr::Conj(..) => 1,
        PathExpr::Concat(..) => 2,
        PathExpr::BranchL(..) => 3,
        PathExpr::Plus(..) | PathExpr::BranchR(..) => 4,
        PathExpr::Label(_) | PathExpr::Reverse(_) => 5,
    }
}

/// Renders `expr` using `names` for edge labels.
pub fn path_to_string(expr: &PathExpr, names: &dyn LabelNames) -> String {
    let mut out = String::new();
    write_expr(expr, names, &mut out);
    out
}

fn write_child(child: &PathExpr, min_prec: u8, names: &dyn LabelNames, out: &mut String) {
    if precedence(child) < min_prec {
        out.push('(');
        write_expr(child, names, out);
        out.push(')');
    } else {
        write_expr(child, names, out);
    }
}

fn write_expr(e: &PathExpr, names: &dyn LabelNames, out: &mut String) {
    match e {
        PathExpr::Label(l) => out.push_str(&names.edge_label_display(*l)),
        PathExpr::Reverse(l) => {
            out.push('-');
            out.push_str(&names.edge_label_display(*l));
        }
        PathExpr::Concat(a, b) => {
            write_child(a, 2, names, out);
            out.push('/');
            // The right child of a concatenation must bind at least as
            // tightly as an item; a nested concat on the right needs parens
            // to round-trip associativity.
            write_child(b, 3, names, out);
        }
        PathExpr::Union(a, b) => {
            write_child(a, 0, names, out);
            out.push_str(" | ");
            write_child(b, 1, names, out);
        }
        PathExpr::Conj(a, b) => {
            write_child(a, 1, names, out);
            out.push_str(" & ");
            write_child(b, 2, names, out);
        }
        PathExpr::BranchR(a, b) => {
            write_child(a, 4, names, out);
            out.push('[');
            write_expr(b, names, out);
            out.push(']');
        }
        PathExpr::BranchL(a, b) => {
            out.push('[');
            write_expr(a, names, out);
            out.push(']');
            write_child(b, 3, names, out);
        }
        PathExpr::Plus(a) => {
            write_child(a, 4, names, out);
            out.push('+');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    fn roundtrip(s: &str) {
        let schema = fig1_yago_schema();
        let e = parse_path(s, &schema).unwrap();
        let printed = path_to_string(&e, &schema);
        let reparsed = parse_path(&printed, &schema).unwrap();
        assert_eq!(e, reparsed, "print `{printed}` of `{s}` did not round-trip");
    }

    #[test]
    fn simple_forms() {
        let schema = fig1_yago_schema();
        let e = parse_path("livesIn/isLocatedIn+", &schema).unwrap();
        assert_eq!(path_to_string(&e, &schema), "livesIn/isLocatedIn+");
        let e = parse_path("-owns", &schema).unwrap();
        assert_eq!(path_to_string(&e, &schema), "-owns");
    }

    #[test]
    fn parenthesisation() {
        let schema = fig1_yago_schema();
        // (a | b)+ needs parens
        let e = PathExpr::plus(parse_path("owns | livesIn", &schema).unwrap());
        assert_eq!(path_to_string(&e, &schema), "(owns | livesIn)+");
    }

    #[test]
    fn roundtrips() {
        for s in [
            "owns",
            "-owns",
            "owns/livesIn",
            "owns/livesIn/isLocatedIn",
            "(owns/livesIn)/isLocatedIn",
            "owns/(livesIn/isLocatedIn)",
            "owns | livesIn & dealsWith",
            "(owns | livesIn) & dealsWith",
            "owns[isMarriedTo]",
            "[owns]livesIn",
            "[owns](livesIn/isLocatedIn)",
            "([owns]livesIn)/isLocatedIn",
            "owns[isMarriedTo[livesIn]]",
            "isLocatedIn++",
            "(livesIn/isLocatedIn)+",
            "[owns[isMarriedTo]]livesIn+",
            "-isLocatedIn/owns | (livesIn & livesIn)+",
        ] {
            roundtrip(s);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::ast::PathExpr;
    use crate::parser::parse_path;
    use sgq_common::{EdgeLabelId, Rng};
    use sgq_graph::schema::fig1_yago_schema;

    /// A seeded random expression over the Fig. 1 schema's five edge
    /// labels (ids 0..5).
    fn arb_expr(rng: &mut Rng, depth: usize) -> PathExpr {
        let leaf = |rng: &mut Rng| {
            let le = EdgeLabelId::new(rng.gen_range(0..5) as u32);
            if rng.gen_bool(0.5) {
                PathExpr::Label(le)
            } else {
                PathExpr::Reverse(le)
            }
        };
        if depth == 0 || rng.gen_bool(0.3) {
            return leaf(rng);
        }
        match rng.gen_range(0..6) {
            0 => PathExpr::concat(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
            1 => PathExpr::union(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
            2 => PathExpr::conj(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
            3 => PathExpr::branch_r(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
            4 => PathExpr::branch_l(arb_expr(rng, depth - 1), arb_expr(rng, depth - 1)),
            _ => PathExpr::plus(arb_expr(rng, depth - 1)),
        }
    }

    /// print ∘ parse is the identity on arbitrary expressions.
    #[test]
    fn print_parse_roundtrip() {
        let schema = fig1_yago_schema();
        for seed in 0..256u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let expr = arb_expr(&mut rng, 4);
            let printed = path_to_string(&expr, &schema);
            let reparsed = parse_path(&printed, &schema)
                .unwrap_or_else(|e| panic!("printed form `{printed}` failed to parse: {e}"));
            assert_eq!(expr, reparsed, "round-trip failed via `{printed}`");
        }
    }
}
