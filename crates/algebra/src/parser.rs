//! Text syntax for path expressions.
//!
//! ```text
//! union   := conj   (('|' | '∪') conj)*
//! conj    := concat (('&' | '∩') concat)*
//! concat  := item   ('/' item)*
//! item    := '[' union ']' item            -- branch (left)
//!          | postfix
//! postfix := atom ('+' | '[' union ']' | '{' INT (',' INT)? '}')*
//! atom    := '(' union ')' | '-' IDENT | IDENT
//! ```
//!
//! `{lo,hi}` is the bounded-repetition sugar used by the LDBC queries of
//! Tab. 4 (`knows1..3` is written `knows{1,3}`); it expands into a union of
//! concatenations before any further processing.

use sgq_common::{EdgeLabelId, Result, SgqError};
use sgq_graph::{GraphDatabase, GraphSchema};

use crate::ast::PathExpr;

/// Resolves edge-label names to ids during parsing.
pub trait LabelResolver {
    /// Returns the id for `name`, or `None` if unknown.
    fn resolve_edge_label(&self, name: &str) -> Option<EdgeLabelId>;
}

impl LabelResolver for GraphSchema {
    fn resolve_edge_label(&self, name: &str) -> Option<EdgeLabelId> {
        self.edge_label(name)
    }
}

impl LabelResolver for GraphDatabase {
    fn resolve_edge_label(&self, name: &str) -> Option<EdgeLabelId> {
        self.edge_label_id(name)
    }
}

impl LabelResolver for sgq_common::Interner {
    fn resolve_edge_label(&self, name: &str) -> Option<EdgeLabelId> {
        self.get(name).map(EdgeLabelId::new)
    }
}

/// Parses a path expression, resolving labels through `resolver`.
pub fn parse_path(input: &str, resolver: &dyn LabelResolver) -> Result<PathExpr> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
        resolver,
    };
    p.skip_ws();
    let expr = p.union()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(SgqError::parse(
            format!("unexpected trailing input `{}`", &input[p.pos..]),
            p.pos,
        ));
    }
    Ok(expr)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    resolver: &'a dyn LabelResolver,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, c: char) -> bool {
        if self.peek() == Some(c) {
            self.pos += c.len_utf8();
            self.skip_ws();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: char) -> Result<()> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(SgqError::parse(format!("expected `{c}`"), self.pos))
        }
    }

    fn union(&mut self) -> Result<PathExpr> {
        let mut lhs = self.conj()?;
        while self.eat('|') || self.eat('∪') {
            let rhs = self.conj()?;
            lhs = PathExpr::union(lhs, rhs);
        }
        Ok(lhs)
    }

    fn conj(&mut self) -> Result<PathExpr> {
        let mut lhs = self.concat()?;
        while self.eat('&') || self.eat('∩') {
            let rhs = self.concat()?;
            lhs = PathExpr::conj(lhs, rhs);
        }
        Ok(lhs)
    }

    fn concat(&mut self) -> Result<PathExpr> {
        let mut lhs = self.item()?;
        while self.eat('/') {
            let rhs = self.item()?;
            lhs = PathExpr::concat(lhs, rhs);
        }
        Ok(lhs)
    }

    fn item(&mut self) -> Result<PathExpr> {
        if self.peek() == Some('[') {
            // branch (left): [ϕ1]ϕ2
            self.expect('[')?;
            let test = self.union()?;
            self.expect(']')?;
            let rest = self.item()?;
            return Ok(PathExpr::branch_l(test, rest));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<PathExpr> {
        let mut expr = self.atom()?;
        loop {
            if self.eat('+') {
                expr = PathExpr::plus(expr);
            } else if self.peek() == Some('[') {
                self.expect('[')?;
                let test = self.union()?;
                self.expect(']')?;
                expr = PathExpr::branch_r(expr, test);
            } else if self.peek() == Some('{') {
                self.expect('{')?;
                let lo = self.integer()?;
                let hi = if self.eat(',') { self.integer()? } else { lo };
                self.expect('}')?;
                if lo == 0 || lo > hi {
                    return Err(SgqError::parse(
                        format!("invalid repetition bounds {{{lo},{hi}}}"),
                        self.pos,
                    ));
                }
                expr = PathExpr::repeat(expr, lo, hi);
            } else {
                return Ok(expr);
            }
        }
    }

    fn atom(&mut self) -> Result<PathExpr> {
        if self.eat('(') {
            let inner = self.union()?;
            self.expect(')')?;
            return Ok(inner);
        }
        if self.eat('-') {
            let name = self.ident()?;
            let id = self.lookup(&name)?;
            return Ok(PathExpr::Reverse(id));
        }
        let name = self.ident()?;
        let id = self.lookup(&name)?;
        Ok(PathExpr::Label(id))
    }

    fn lookup(&self, name: &str) -> Result<EdgeLabelId> {
        self.resolver
            .resolve_edge_label(name)
            .ok_or_else(|| SgqError::parse(format!("unknown edge label `{name}`"), self.pos))
    }

    fn ident(&mut self) -> Result<String> {
        let start = self.pos;
        while self.pos < self.bytes.len()
            && (self.bytes[self.pos].is_ascii_alphanumeric() || self.bytes[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SgqError::parse("expected an edge label", start));
        }
        let s = self.input[start..self.pos].to_string();
        self.skip_ws();
        Ok(s)
    }

    fn integer(&mut self) -> Result<usize> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SgqError::parse("expected an integer", start));
        }
        let n = self.input[start..self.pos]
            .parse::<usize>()
            .map_err(|e| SgqError::parse(e.to_string(), start))?;
        self.skip_ws();
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::schema::fig1_yago_schema;

    fn parse(s: &str) -> PathExpr {
        parse_path(s, &fig1_yago_schema()).unwrap()
    }

    fn id(schema: &GraphSchema, name: &str) -> EdgeLabelId {
        schema.edge_label(name).unwrap()
    }

    #[test]
    fn single_label_and_reverse() {
        let s = fig1_yago_schema();
        assert_eq!(parse("owns"), PathExpr::Label(id(&s, "owns")));
        assert_eq!(parse("-owns"), PathExpr::Reverse(id(&s, "owns")));
    }

    #[test]
    fn concatenation_and_plus() {
        let s = fig1_yago_schema();
        let e = parse("livesIn/isLocatedIn+");
        assert_eq!(
            e,
            PathExpr::concat(
                PathExpr::Label(id(&s, "livesIn")),
                PathExpr::plus(PathExpr::Label(id(&s, "isLocatedIn")))
            )
        );
    }

    #[test]
    fn branches_left_and_right() {
        let s = fig1_yago_schema();
        // right branch: owns[isMarriedTo]
        let r = parse("owns[isMarriedTo]");
        assert_eq!(
            r,
            PathExpr::branch_r(
                PathExpr::Label(id(&s, "owns")),
                PathExpr::Label(id(&s, "isMarriedTo"))
            )
        );
        // left branch: [owns]livesIn
        let l = parse("[owns]livesIn");
        assert_eq!(
            l,
            PathExpr::branch_l(
                PathExpr::Label(id(&s, "owns")),
                PathExpr::Label(id(&s, "livesIn"))
            )
        );
    }

    #[test]
    fn example6_nested_branches() {
        // ϕ1 = [owns]([isMarriedTo]livesIn)
        let e = parse("[owns]([isMarriedTo]livesIn)");
        let s = fig1_yago_schema();
        assert_eq!(
            e,
            PathExpr::branch_l(
                PathExpr::Label(id(&s, "owns")),
                PathExpr::branch_l(
                    PathExpr::Label(id(&s, "isMarriedTo")),
                    PathExpr::Label(id(&s, "livesIn"))
                )
            )
        );
    }

    #[test]
    fn union_conj_precedence() {
        let s = fig1_yago_schema();
        // a/b & c | d parses as ((a/b) & c) | d
        let e = parse("owns/isLocatedIn & livesIn | dealsWith");
        assert_eq!(
            e,
            PathExpr::union(
                PathExpr::conj(
                    PathExpr::concat(
                        PathExpr::Label(id(&s, "owns")),
                        PathExpr::Label(id(&s, "isLocatedIn"))
                    ),
                    PathExpr::Label(id(&s, "livesIn"))
                ),
                PathExpr::Label(id(&s, "dealsWith"))
            )
        );
    }

    #[test]
    fn unicode_operators() {
        assert_eq!(parse("owns ∪ livesIn"), parse("owns | livesIn"));
        assert_eq!(parse("owns ∩ livesIn"), parse("owns & livesIn"));
    }

    #[test]
    fn repetition_sugar() {
        let e = parse("isMarriedTo{1,3}");
        assert_eq!(e.union_components().len(), 3);
        let exact = parse("isMarriedTo{2}");
        assert_eq!(exact.union_components().len(), 1);
        assert_eq!(exact.size(), 3);
    }

    #[test]
    fn double_plus_parses() {
        let e = parse("isLocatedIn++");
        assert_eq!(
            e,
            PathExpr::plus(PathExpr::plus(PathExpr::Label(
                fig1_yago_schema().edge_label("isLocatedIn").unwrap()
            )))
        );
    }

    #[test]
    fn errors() {
        let s = fig1_yago_schema();
        assert!(parse_path("unknownLabel", &s).is_err());
        assert!(parse_path("owns/", &s).is_err());
        assert!(parse_path("(owns", &s).is_err());
        assert!(parse_path("owns]", &s).is_err());
        assert!(parse_path("owns{0,2}", &s).is_err());
        assert!(parse_path("owns{3,2}", &s).is_err());
        assert!(parse_path("", &s).is_err());
    }

    #[test]
    fn interner_resolver_interns_nothing() {
        let mut i = sgq_common::Interner::new();
        i.intern("knows");
        let e = parse_path("knows+", &i).unwrap();
        assert!(e.is_recursive());
        assert!(parse_path("likes", &i).is_err());
    }
}
