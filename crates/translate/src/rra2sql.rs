//! RA terms → recursive SQL (the `RRA2SQL` component of Fig. 10).
//!
//! Non-recursive operators render as nested `SELECT`s; every fixpoint
//! becomes a `WITH RECURSIVE` common table expression (the paper's
//! footnote 6 mechanism), so the emitted statement runs on PostgreSQL-
//! compatible engines. Fig. 15's schema-enriched vs baseline SQL pair is
//! reproduced by the `fig15` tests.
//!
//! SQL rendering is one of the two *egress edges* of the interned RA
//! stack: column/recursion-variable ids resolve back to names through the
//! [`SymbolTable`] the term was built with.

use std::fmt::Write as _;

use sgq_ra::explain::PlanNames;
use sgq_ra::symbols::SymbolTable;
use sgq_ra::term::RaTerm;

/// One `WITH RECURSIVE` CTE: name, arity and defining query.
struct Cte {
    name: String,
    arity: usize,
    def: String,
}

/// Renders `term` as a SQL statement selecting its output columns.
pub fn to_sql(term: &RaTerm, names: &dyn PlanNames, symbols: &SymbolTable) -> String {
    let mut ctes: Vec<Cte> = Vec::new();
    let body = render(term, names, symbols, &mut ctes, 0);
    let cols = symbols.col_list(&term.cols(), ", ");
    let mut out = String::new();
    if !ctes.is_empty() {
        out.push_str("WITH RECURSIVE ");
        for (i, cte) in ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            // Declare positional column names c0, c1, ... so the
            // recursive references (`SELECT c0 AS ... FROM fp_x`) are
            // valid regardless of the names inside the definition.
            let decl = (0..cte.arity)
                .map(|i| format!("c{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(out, "{}({decl}) AS ({})", cte.name, cte.def);
        }
        out.push('\n');
    }
    let _ = write!(out, "SELECT DISTINCT {cols} FROM ({body}) AS q;");
    out
}

/// Renders a term as a sub-select returning its columns.
fn render(
    term: &RaTerm,
    names: &dyn PlanNames,
    symbols: &SymbolTable,
    ctes: &mut Vec<Cte>,
    depth: usize,
) -> String {
    let col = |c: &sgq_common::ColId| symbols.col_name(*c);
    match term {
        RaTerm::EdgeScan { label, src, tgt } => format!(
            "SELECT Sr AS {}, Tr AS {} FROM {}",
            col(src),
            col(tgt),
            names.edge_name(*label)
        ),
        RaTerm::NodeScan { labels, col: c } => {
            let parts: Vec<String> = labels
                .iter()
                .map(|&l| format!("SELECT Sr AS {} FROM {}", col(c), names.node_name(l)))
                .collect();
            parts.join(" UNION ")
        }
        RaTerm::Join(a, b) => {
            let shared: Vec<String> = a
                .cols()
                .into_iter()
                .filter(|c| b.cols().contains(c))
                .map(|c| symbols.col_name(c))
                .collect();
            let la = render(a, names, symbols, ctes, depth + 1);
            let lb = render(b, names, symbols, ctes, depth + 1);
            let a_alias = format!("a{depth}");
            let b_alias = format!("b{depth}");
            let on = if shared.is_empty() {
                "1 = 1".to_string()
            } else {
                shared
                    .iter()
                    .map(|c| format!("{a_alias}.{c} = {b_alias}.{c}"))
                    .collect::<Vec<_>>()
                    .join(" AND ")
            };
            let a_cols = a.cols();
            let out_cols: Vec<String> = term
                .cols()
                .into_iter()
                .map(|c| {
                    let name = symbols.col_name(c);
                    if a_cols.contains(&c) {
                        format!("{a_alias}.{name} AS {name}")
                    } else {
                        format!("{b_alias}.{name} AS {name}")
                    }
                })
                .collect();
            format!(
                "SELECT {} FROM ({la}) AS {a_alias} JOIN ({lb}) AS {b_alias} ON {on}",
                out_cols.join(", ")
            )
        }
        RaTerm::Semijoin(a, b) => {
            let shared: Vec<String> = a
                .cols()
                .into_iter()
                .filter(|c| b.cols().contains(c))
                .map(|c| symbols.col_name(c))
                .collect();
            let la = render(a, names, symbols, ctes, depth + 1);
            let lb = render(b, names, symbols, ctes, depth + 1);
            let a_alias = format!("a{depth}");
            let s_alias = format!("s{depth}");
            let cond = shared
                .iter()
                .map(|c| format!("{a_alias}.{c} = {s_alias}.{c}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            format!(
                "SELECT {a_alias}.* FROM ({la}) AS {a_alias} WHERE EXISTS (SELECT 1 FROM ({lb}) AS {s_alias} WHERE {cond})"
            )
        }
        RaTerm::Union(a, b) => {
            let la = render(a, names, symbols, ctes, depth + 1);
            let lb = render(b, names, symbols, ctes, depth + 1);
            format!("{la} UNION {lb}")
        }
        RaTerm::Project { input, cols } => {
            let inner = render(input, names, symbols, ctes, depth + 1);
            format!(
                "SELECT DISTINCT {} FROM ({inner}) AS p{depth}",
                symbols.col_list(cols, ", ")
            )
        }
        RaTerm::Select { input, a, b } => {
            let inner = render(input, names, symbols, ctes, depth + 1);
            format!(
                "SELECT * FROM ({inner}) AS f{depth} WHERE {} = {}",
                col(a),
                col(b)
            )
        }
        RaTerm::Rename { input, from, to } => {
            let inner = render(input, names, symbols, ctes, depth + 1);
            let cols: Vec<String> = input
                .cols()
                .into_iter()
                .map(|c| {
                    let name = symbols.col_name(c);
                    if c == *from {
                        format!("{name} AS {}", col(to))
                    } else {
                        name
                    }
                })
                .collect();
            format!("SELECT {} FROM ({inner}) AS r{depth}", cols.join(", "))
        }
        RaTerm::Fixpoint {
            var, base, step, ..
        } => {
            let cte_name = format!("fp_{}", symbols.recvar_name(*var).to_lowercase());
            let base_sql = render(base, names, symbols, ctes, depth + 1);
            let step_sql = render(step, names, symbols, ctes, depth + 1);
            let fix_cols = base.cols();
            ctes.push(Cte {
                name: cte_name.clone(),
                arity: fix_cols.len(),
                def: format!("{base_sql} UNION {step_sql}"),
            });
            // The CTE declares positional columns c0, c1, ...; rename
            // them back to the fixpoint's column names for consumers.
            format!(
                "SELECT {} FROM {cte_name}",
                fix_cols
                    .iter()
                    .enumerate()
                    .map(|(i, c)| format!("c{i} AS {}", col(c)))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
        RaTerm::RecRef { var, cols } => {
            let cte_name = format!("fp_{}", symbols.recvar_name(*var).to_lowercase());
            // positional rename of the CTE's columns
            format!(
                "SELECT {} FROM {cte_name}",
                cols.iter()
                    .enumerate()
                    .map(|(i, c)| format!("c{i} AS {}", col(c)))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucqt2rra::{path_to_term, NameGen};
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    fn translate(expr: &str) -> String {
        let schema = fig1_yago_schema();
        let e = parse_path(expr, &schema).unwrap();
        let symbols = SymbolTable::new();
        let (src, tgt) = (symbols.col("SRC"), symbols.col("TRG"));
        let mut names = NameGen::new(&symbols);
        let t = path_to_term(&e, src, tgt, &mut names);
        to_sql(&t, &schema, &symbols)
    }

    #[test]
    fn non_recursive_sql_shape() {
        let sql = translate("owns/isLocatedIn");
        assert!(sql.contains("SELECT DISTINCT SRC, TRG"), "{sql}");
        assert!(sql.contains("FROM owns"), "{sql}");
        assert!(sql.contains("FROM isLocatedIn"), "{sql}");
        assert!(sql.contains("JOIN"), "{sql}");
        assert!(!sql.contains("WITH RECURSIVE"), "{sql}");
    }

    #[test]
    fn recursive_sql_uses_with_recursive() {
        let sql = translate("isLocatedIn+");
        assert!(sql.contains("WITH RECURSIVE"), "{sql}");
        assert!(sql.contains("UNION"), "{sql}");
        // The CTE must declare its positional columns so the recursive
        // reference's `c0 AS ...` projection is valid SQL.
        assert!(sql.contains("fp_x0(c0, c1) AS ("), "{sql}");
        assert!(sql.contains("c0 AS"), "{sql}");
        assert!(!sql.contains("SELECT * FROM fp_"), "{sql}");
    }

    #[test]
    fn semijoin_renders_exists() {
        let sql = translate("livesIn[isLocatedIn]");
        assert!(sql.contains("WHERE EXISTS"), "{sql}");
    }
}
