//! RA terms → recursive SQL (the `RRA2SQL` component of Fig. 10).
//!
//! Non-recursive operators render as nested `SELECT`s; every fixpoint
//! becomes a `WITH RECURSIVE` common table expression (the paper's
//! footnote 6 mechanism), so the emitted statement runs on PostgreSQL-
//! compatible engines. Fig. 15's schema-enriched vs baseline SQL pair is
//! reproduced by the `fig15` tests.

use std::fmt::Write as _;

use sgq_ra::explain::PlanNames;
use sgq_ra::term::RaTerm;

/// Renders `term` as a SQL statement selecting its output columns.
pub fn to_sql(term: &RaTerm, names: &dyn PlanNames) -> String {
    let mut ctes: Vec<(String, String)> = Vec::new();
    let body = render(term, names, &mut ctes, 0);
    let cols = term.cols().join(", ");
    let mut out = String::new();
    if !ctes.is_empty() {
        out.push_str("WITH RECURSIVE ");
        for (i, (name, def)) in ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{name} AS ({def})");
        }
        out.push('\n');
    }
    let _ = write!(out, "SELECT DISTINCT {cols} FROM ({body}) AS q;");
    out
}

/// Renders a term as a sub-select returning its columns.
fn render(
    term: &RaTerm,
    names: &dyn PlanNames,
    ctes: &mut Vec<(String, String)>,
    depth: usize,
) -> String {
    match term {
        RaTerm::EdgeScan { label, src, tgt } => format!(
            "SELECT Sr AS {src}, Tr AS {tgt} FROM {}",
            names.edge_name(*label)
        ),
        RaTerm::NodeScan { labels, col } => {
            let parts: Vec<String> = labels
                .iter()
                .map(|&l| format!("SELECT Sr AS {col} FROM {}", names.node_name(l)))
                .collect();
            parts.join(" UNION ")
        }
        RaTerm::Join(a, b) => {
            let shared: Vec<String> = a
                .cols()
                .into_iter()
                .filter(|c| b.cols().contains(c))
                .collect();
            let la = render(a, names, ctes, depth + 1);
            let lb = render(b, names, ctes, depth + 1);
            let a_alias = format!("a{depth}");
            let b_alias = format!("b{depth}");
            let on = if shared.is_empty() {
                "1 = 1".to_string()
            } else {
                shared
                    .iter()
                    .map(|c| format!("{a_alias}.{c} = {b_alias}.{c}"))
                    .collect::<Vec<_>>()
                    .join(" AND ")
            };
            let out_cols: Vec<String> = term
                .cols()
                .into_iter()
                .map(|c| {
                    if a.cols().contains(&c) {
                        format!("{a_alias}.{c} AS {c}")
                    } else {
                        format!("{b_alias}.{c} AS {c}")
                    }
                })
                .collect();
            format!(
                "SELECT {} FROM ({la}) AS {a_alias} JOIN ({lb}) AS {b_alias} ON {on}",
                out_cols.join(", ")
            )
        }
        RaTerm::Semijoin(a, b) => {
            let shared: Vec<String> = a
                .cols()
                .into_iter()
                .filter(|c| b.cols().contains(c))
                .collect();
            let la = render(a, names, ctes, depth + 1);
            let lb = render(b, names, ctes, depth + 1);
            let a_alias = format!("a{depth}");
            let s_alias = format!("s{depth}");
            let cond = shared
                .iter()
                .map(|c| format!("{a_alias}.{c} = {s_alias}.{c}"))
                .collect::<Vec<_>>()
                .join(" AND ");
            format!(
                "SELECT {a_alias}.* FROM ({la}) AS {a_alias} WHERE EXISTS (SELECT 1 FROM ({lb}) AS {s_alias} WHERE {cond})"
            )
        }
        RaTerm::Union(a, b) => {
            let la = render(a, names, ctes, depth + 1);
            let lb = render(b, names, ctes, depth + 1);
            format!("{la} UNION {lb}")
        }
        RaTerm::Project { input, cols } => {
            let inner = render(input, names, ctes, depth + 1);
            format!(
                "SELECT DISTINCT {} FROM ({inner}) AS p{depth}",
                cols.join(", ")
            )
        }
        RaTerm::Select { input, a, b } => {
            let inner = render(input, names, ctes, depth + 1);
            format!("SELECT * FROM ({inner}) AS f{depth} WHERE {a} = {b}")
        }
        RaTerm::Rename { input, from, to } => {
            let inner = render(input, names, ctes, depth + 1);
            let cols: Vec<String> = input
                .cols()
                .into_iter()
                .map(|c| {
                    if &c == from {
                        format!("{c} AS {to}")
                    } else {
                        c
                    }
                })
                .collect();
            format!("SELECT {} FROM ({inner}) AS r{depth}", cols.join(", "))
        }
        RaTerm::Fixpoint {
            var, base, step, ..
        } => {
            let cte_name = format!("fp_{}", var.to_lowercase());
            let base_sql = render(base, names, ctes, depth + 1);
            let step_sql = render(step, names, ctes, depth + 1);
            let def = format!("{base_sql} UNION {step_sql}");
            ctes.push((cte_name.clone(), def));
            format!("SELECT * FROM {cte_name}")
        }
        RaTerm::RecRef { var, cols } => {
            let cte_name = format!("fp_{}", var.to_lowercase());
            // positional rename of the CTE's columns
            format!(
                "SELECT {} FROM {cte_name}",
                cols.iter()
                    .enumerate()
                    .map(|(i, c)| format!("c{i} AS {c}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ucqt2rra::{path_to_term, NameGen};
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    #[test]
    fn non_recursive_sql_shape() {
        let schema = fig1_yago_schema();
        let e = parse_path("owns/isLocatedIn", &schema).unwrap();
        let mut names = NameGen::default();
        let t = path_to_term(&e, "SRC", "TRG", &mut names);
        let sql = to_sql(&t, &schema);
        assert!(sql.contains("SELECT DISTINCT SRC, TRG"), "{sql}");
        assert!(sql.contains("FROM owns"), "{sql}");
        assert!(sql.contains("FROM isLocatedIn"), "{sql}");
        assert!(sql.contains("JOIN"), "{sql}");
        assert!(!sql.contains("WITH RECURSIVE"), "{sql}");
    }

    #[test]
    fn recursive_sql_uses_with_recursive() {
        let schema = fig1_yago_schema();
        let e = parse_path("isLocatedIn+", &schema).unwrap();
        let mut names = NameGen::default();
        let t = path_to_term(&e, "SRC", "TRG", &mut names);
        let sql = to_sql(&t, &schema);
        assert!(sql.contains("WITH RECURSIVE"), "{sql}");
        assert!(sql.contains("UNION"), "{sql}");
    }

    #[test]
    fn semijoin_renders_exists() {
        let schema = fig1_yago_schema();
        let e = parse_path("livesIn[isLocatedIn]", &schema).unwrap();
        let mut names = NameGen::default();
        let t = path_to_term(&e, "SRC", "TRG", &mut names);
        let sql = to_sql(&t, &schema);
        assert!(sql.contains("WHERE EXISTS"), "{sql}");
    }
}
