//! The Translator module of the paper's architecture (Fig. 10).
//!
//! * [`ucqt2rra`] — UCQT queries to recursive relational algebra terms,
//!   including the conjunction/branching rules of Tab. 2,
//! * [`rra2sql`] — RA terms to recursive SQL (`WITH RECURSIVE`), Fig. 15,
//! * [`gp2cypher`] — UCQT queries to Cypher graph patterns (Fig. 16),
//!   with the UC2RPQ expressibility check of §5.5.

#![warn(missing_docs)]

pub mod gp2cypher;
pub mod rra2sql;
pub mod ucqt2rra;

pub use gp2cypher::{cypher_expressible, to_cypher, to_cypher_resolved};
pub use rra2sql::to_sql;
pub use ucqt2rra::{cqt_to_term, path_to_term, ucqt_to_term};
