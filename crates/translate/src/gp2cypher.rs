//! UCQT → graph patterns → Cypher (the `UCQT2GP` and `GP2Cypher`
//! components of Fig. 10).
//!
//! Cypher only supports a restricted form of UC2RPQ (§4, §5.5): chains of
//! (possibly reversed) edge labels, variable-length repetition of a single
//! label, node-label restrictions, and top-level union. Conjunction and
//! branching are not expressible — [`cypher_expressible`] reports this,
//! mirroring the paper's "15 of the 30 LDBC queries are expressible"
//! observation.

use sgq_algebra::ast::PathExpr;
use sgq_common::{Result, SgqError, VarId};
use sgq_graph::GraphSchema;
use sgq_query::annotated::{AnnotatedPath, LabelSet};
use sgq_query::cqt::{Cqt, Relation, Ucqt};

/// One hop of a Cypher pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Hop {
    /// `-[:label]->` or `<-[:label]-` when `reversed`.
    Single { label: String, reversed: bool },
    /// `-[:label*]->` (one-or-more repetition).
    Star { label: String, reversed: bool },
}

/// Checks whether a UCQT falls into the Cypher-expressible UC2RPQ chain
/// fragment (after union normalisation).
pub fn cypher_expressible(query: &Ucqt) -> bool {
    let query = normalize_unions(query);
    query.disjuncts.iter().all(|c| {
        c.relations
            .iter()
            .all(|r| chain_hops(&r.path, false).is_ok())
    })
}

/// Distributes unions inside relation paths into additional disjuncts:
/// `knows{1,2}/-hasC` (= `(knows ∪ knows/knows)/-hasC`) becomes two
/// Cypher `MATCH ... UNION MATCH ...` branches. Bounded by a safety cap;
/// beyond it the query is returned unchanged.
pub fn normalize_unions(query: &Ucqt) -> Ucqt {
    const CAP: usize = 64;
    let mut disjuncts = Vec::new();
    for cqt in &query.disjuncts {
        // components per relation
        let per_rel: Vec<Vec<PathExpr>> = cqt
            .relations
            .iter()
            .map(|r| distribute(&r.path.strip()))
            .collect();
        let combos: usize = per_rel.iter().map(Vec::len).product();
        if combos == 0 || combos > CAP || disjuncts.len() + combos > 4 * CAP {
            return query.clone();
        }
        let mut indices = vec![0usize; per_rel.len()];
        loop {
            let relations = cqt
                .relations
                .iter()
                .enumerate()
                .map(|(i, r)| Relation::plain(r.src, per_rel[i][indices[i]].clone(), r.tgt))
                .collect();
            disjuncts.push(Cqt {
                head: cqt.head.clone(),
                atoms: cqt.atoms.clone(),
                relations,
            });
            // advance mixed-radix counter
            let mut done = true;
            for i in (0..indices.len()).rev() {
                indices[i] += 1;
                if indices[i] < per_rel[i].len() {
                    done = false;
                    break;
                }
                indices[i] = 0;
            }
            if done {
                break;
            }
        }
    }
    Ucqt {
        head: query.head.clone(),
        disjuncts,
    }
}

/// Union-free components of a plain expression (unions under `+` stay).
fn distribute(e: &PathExpr) -> Vec<PathExpr> {
    let cross = |xs: Vec<PathExpr>, ys: Vec<PathExpr>, f: fn(PathExpr, PathExpr) -> PathExpr| {
        let mut out = Vec::with_capacity(xs.len() * ys.len());
        for x in &xs {
            for y in &ys {
                out.push(f(x.clone(), y.clone()));
            }
        }
        out
    };
    match e {
        PathExpr::Label(_) | PathExpr::Reverse(_) | PathExpr::Plus(_) => vec![e.clone()],
        PathExpr::Union(a, b) => {
            let mut out = distribute(a);
            out.extend(distribute(b));
            out
        }
        PathExpr::Concat(a, b) => cross(distribute(a), distribute(b), PathExpr::concat),
        PathExpr::Conj(a, b) => cross(distribute(a), distribute(b), PathExpr::conj),
        PathExpr::BranchR(a, b) => cross(distribute(a), distribute(b), PathExpr::branch_r),
        PathExpr::BranchL(a, b) => cross(distribute(a), distribute(b), PathExpr::branch_l),
    }
}

/// Translates a UCQT to Cypher. Errors with
/// [`SgqError::NotExpressible`] outside the supported fragment.
pub fn to_cypher(query: &Ucqt, schema: &GraphSchema) -> Result<String> {
    query.validate()?;
    let query = normalize_unions(query);
    let parts: Vec<String> = query
        .disjuncts
        .iter()
        .map(|c| cqt_to_cypher(c, schema))
        .collect::<Result<_>>()?;
    Ok(parts.join("\nUNION\n"))
}

fn cqt_to_cypher(cqt: &Cqt, schema: &GraphSchema) -> Result<String> {
    let mut label_of: std::collections::BTreeMap<VarId, LabelSet> = Default::default();
    for atom in &cqt.atoms {
        let entry = label_of
            .entry(atom.var)
            .or_insert_with(|| atom.labels.clone());
        *entry = sgq_common::sorted::intersect(entry, &atom.labels);
    }
    let mut patterns: Vec<String> = Vec::new();
    let mut where_clauses: Vec<String> = Vec::new();
    let mut anon = 0usize;
    for rel in &cqt.relations {
        let hops = chain_hops(&rel.path, true).map_err(SgqError::NotExpressible)?;
        let mut s = node_pattern(rel.src, &label_of, schema, &mut where_clauses);
        for (i, hop) in hops.iter().enumerate() {
            let last = i + 1 == hops.len();
            let target = if last {
                node_pattern(rel.tgt, &label_of, schema, &mut where_clauses)
            } else {
                anon += 1;
                "()".to_string()
            };
            let edge = match hop {
                Hop::Single { label, reversed } => {
                    if *reversed {
                        format!("<-[:{label}]-")
                    } else {
                        format!("-[:{label}]->")
                    }
                }
                Hop::Star { label, reversed } => {
                    if *reversed {
                        format!("<-[:{label}*]-")
                    } else {
                        format!("-[:{label}*]->")
                    }
                }
            };
            s.push_str(&edge);
            s.push_str(&target);
        }
        let _ = anon;
        patterns.push(s);
    }
    let head: Vec<String> = cqt.head.iter().map(|v| var_name(*v)).collect();
    let mut out = format!("MATCH {}", patterns.join(", "));
    if !where_clauses.is_empty() {
        out.push_str(&format!("\nWHERE {}", where_clauses.join(" AND ")));
    }
    out.push_str(&format!("\nRETURN DISTINCT {};", head.join(", ")));
    Ok(out)
}

fn var_name(v: VarId) -> String {
    format!("v{}", v.raw())
}

/// Renders a node pattern, inlining a single label and deferring label
/// sets to WHERE.
fn node_pattern(
    v: VarId,
    label_of: &std::collections::BTreeMap<VarId, LabelSet>,
    schema: &GraphSchema,
    where_clauses: &mut Vec<String>,
) -> String {
    let name = var_name(v);
    match label_of.get(&v) {
        None => format!("({name})"),
        Some(labels) if labels.len() == 1 => {
            format!("({name}:{})", schema.node_label_name(labels[0]))
        }
        Some(labels) => {
            let alts: Vec<String> = labels
                .iter()
                .map(|&l| format!("{name}:{}", schema.node_label_name(l)))
                .collect();
            where_clauses.push(format!("({})", alts.join(" OR ")));
            format!("({name})")
        }
    }
}

/// Decomposes an annotated path into Cypher hops; `allow_names` controls
/// whether label names are resolved (the expressibility check passes
/// `false` and only needs the shape).
fn chain_hops(path: &AnnotatedPath, _allow_names: bool) -> std::result::Result<Vec<Hop>, String> {
    match path {
        AnnotatedPath::Plain(e) => plain_hops(e),
        AnnotatedPath::Concat(a, _ann, b) => {
            // annotations on rewritten queries appear as label atoms after
            // Q-translation; a raw annotated concat is still a chain
            let mut hops = chain_hops(a, _allow_names)?;
            hops.extend(chain_hops(b, _allow_names)?);
            Ok(hops)
        }
        AnnotatedPath::BranchR(..) | AnnotatedPath::BranchL(..) => {
            Err("branching is not expressible in Cypher".into())
        }
        AnnotatedPath::Conj(..) => Err("conjunction is not expressible in Cypher".into()),
    }
}

fn plain_hops(e: &PathExpr) -> std::result::Result<Vec<Hop>, String> {
    match e {
        PathExpr::Label(le) => Ok(vec![Hop::Single {
            label: format!("__LE{}#", le.raw()),
            reversed: false,
        }]),
        PathExpr::Reverse(le) => Ok(vec![Hop::Single {
            label: format!("__LE{}#", le.raw()),
            reversed: true,
        }]),
        PathExpr::Concat(a, b) => {
            let mut hops = plain_hops(a)?;
            hops.extend(plain_hops(b)?);
            Ok(hops)
        }
        PathExpr::Plus(inner) => match inner.as_ref() {
            PathExpr::Label(le) => Ok(vec![Hop::Star {
                label: format!("__LE{}#", le.raw()),
                reversed: false,
            }]),
            PathExpr::Reverse(le) => Ok(vec![Hop::Star {
                label: format!("__LE{}#", le.raw()),
                reversed: true,
            }]),
            _ => Err("closure of a composite path is not expressible in Cypher".into()),
        },
        PathExpr::Union(..) => Err("nested union is not expressible as one Cypher chain".into()),
        PathExpr::Conj(..) => Err("conjunction is not expressible in Cypher".into()),
        PathExpr::BranchR(..) | PathExpr::BranchL(..) => {
            Err("branching is not expressible in Cypher".into())
        }
    }
}

/// Resolves the `__LE<id>` placeholders emitted by [`plain_hops`] against
/// a schema. Applied as a final pass by [`to_cypher`]'s caller-visible
/// output.
fn resolve_labels(s: String, schema: &GraphSchema) -> String {
    let mut out = s;
    for le in schema.edge_labels() {
        out = out.replace(&format!("__LE{}#", le.raw()), schema.edge_label_name(le));
    }
    out
}

// Public wrapper that resolves label placeholders.
#[doc(hidden)]
pub fn to_cypher_resolved(query: &Ucqt, schema: &GraphSchema) -> Result<String> {
    to_cypher(query, schema).map(|s| resolve_labels(s, schema))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;
    use sgq_query::cqt::{LabelAtom, Relation};

    #[test]
    fn chain_query_renders() {
        let schema = fig1_yago_schema();
        let e = parse_path("owns/isLocatedIn", &schema).unwrap();
        let q = Ucqt::path_query(e);
        assert!(cypher_expressible(&q));
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert_eq!(
            c,
            "MATCH (v0)-[:owns]->()-[:isLocatedIn]->(v1)\nRETURN DISTINCT v0, v1;"
        );
    }

    #[test]
    fn star_and_reverse() {
        let schema = fig1_yago_schema();
        let e = parse_path("-owns/isLocatedIn+", &schema).unwrap();
        let q = Ucqt::path_query(e);
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert!(c.contains("<-[:owns]-"), "{c}");
        assert!(c.contains("-[:isLocatedIn*]->"), "{c}");
    }

    #[test]
    fn label_atom_inlines() {
        let schema = fig1_yago_schema();
        let e = parse_path("isLocatedIn", &schema).unwrap();
        let mut q = Ucqt::path_query(e);
        let region = schema.node_label("REGION").unwrap();
        q.disjuncts[0].atoms.push(LabelAtom {
            var: q.head[1],
            labels: vec![region],
        });
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert!(c.contains("(v1:REGION)"), "{c}");
    }

    #[test]
    fn multi_label_atom_goes_to_where() {
        let schema = fig1_yago_schema();
        let e = parse_path("isLocatedIn", &schema).unwrap();
        let mut q = Ucqt::path_query(e);
        let region = schema.node_label("REGION").unwrap();
        let country = schema.node_label("COUNTRY").unwrap();
        q.disjuncts[0].atoms.push(LabelAtom {
            var: q.head[1],
            labels: vec![region, country],
        });
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert!(c.contains("WHERE (v1:REGION OR v1:COUNTRY)"), "{c}");
    }

    #[test]
    fn branching_is_rejected() {
        let schema = fig1_yago_schema();
        let e = parse_path("owns[isMarriedTo]", &schema).unwrap();
        let q = Ucqt::path_query(e);
        assert!(!cypher_expressible(&q));
        assert!(matches!(
            to_cypher_resolved(&q, &schema),
            Err(SgqError::NotExpressible(_))
        ));
    }

    #[test]
    fn conjunction_is_rejected() {
        let schema = fig1_yago_schema();
        let e = parse_path("isMarriedTo & isMarriedTo", &schema).unwrap();
        let q = Ucqt::path_query(e);
        assert!(!cypher_expressible(&q));
    }

    #[test]
    fn union_renders_as_cypher_union() {
        let schema = fig1_yago_schema();
        let e = parse_path("owns | livesIn", &schema).unwrap();
        // split the union across disjuncts like the rewriter does
        let a = sgq_common::VarId::new(0);
        let b = sgq_common::VarId::new(1);
        let q = Ucqt {
            head: vec![a, b],
            disjuncts: e
                .union_components()
                .into_iter()
                .map(|part| Cqt {
                    head: vec![a, b],
                    atoms: vec![],
                    relations: vec![Relation::plain(a, part.clone(), b)],
                })
                .collect(),
        };
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert!(c.contains("UNION"), "{c}");
        assert!(c.contains("-[:owns]->"), "{c}");
        assert!(c.contains("-[:livesIn]->"), "{c}");
    }

    #[test]
    fn multi_relation_pattern_uses_commas() {
        let schema = fig1_yago_schema();
        let y = sgq_common::VarId::new(0);
        let z = sgq_common::VarId::new(1);
        let m = sgq_common::VarId::new(2);
        let c1 = Cqt {
            head: vec![y],
            atoms: vec![],
            relations: vec![
                Relation::plain(y, parse_path("livesIn", &schema).unwrap(), m),
                Relation::plain(y, parse_path("owns", &schema).unwrap(), z),
            ],
        };
        let q = Ucqt::single(c1);
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert!(c.contains(", "), "{c}");
        assert!(c.contains("RETURN DISTINCT v0;"), "{c}");
    }
}

#[cfg(test)]
mod union_tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    #[test]
    fn bounded_repetition_becomes_union_of_matches() {
        let schema = fig1_yago_schema();
        let e = parse_path("isMarriedTo{1,2}/livesIn", &schema).unwrap();
        let q = Ucqt::path_query(e);
        assert!(cypher_expressible(&q));
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert!(c.contains("UNION"), "{c}");
        assert!(
            c.contains("-[:isMarriedTo]->()-[:isMarriedTo]->()-[:livesIn]->"),
            "{c}"
        );
    }

    #[test]
    fn nested_path_union_distributes() {
        // IC1-style: a/(b | c/d)
        let schema = fig1_yago_schema();
        let e = parse_path("isMarriedTo/(livesIn | owns/isLocatedIn)", &schema).unwrap();
        let q = Ucqt::path_query(e);
        assert!(cypher_expressible(&q));
        let c = to_cypher_resolved(&q, &schema).unwrap();
        assert_eq!(c.matches("MATCH").count(), 2, "{c}");
    }

    #[test]
    fn distribution_keeps_branching_inexpressible() {
        let schema = fig1_yago_schema();
        let e = parse_path("owns[isMarriedTo] | livesIn", &schema).unwrap();
        let q = Ucqt::path_query(e);
        assert!(!cypher_expressible(&q));
    }

    #[test]
    fn normalize_is_semantics_preserving() {
        use sgq_graph::database::fig2_yago_database;
        let db = fig2_yago_database();
        let schema = fig1_yago_schema();
        for text in [
            "isMarriedTo{1,2}/livesIn",
            "isMarriedTo/(livesIn | owns/isLocatedIn)",
            "(owns | livesIn)/isLocatedIn+",
        ] {
            let e = parse_path(text, &schema).unwrap();
            let q = Ucqt::path_query(e.clone());
            let normalized = normalize_unions(&q);
            // every disjunct is a single-relation path query again
            let parts: Vec<PathExpr> = normalized
                .disjuncts
                .iter()
                .map(|c| c.relations[0].path.strip())
                .collect();
            let mut union_eval: Vec<(sgq_common::NodeId, sgq_common::NodeId)> = Vec::new();
            for p in &parts {
                union_eval =
                    sgq_common::sorted::union(&union_eval, &sgq_algebra::eval::eval_path(&db, p));
            }
            assert_eq!(
                union_eval,
                sgq_algebra::eval::eval_path(&db, &e),
                "normalisation changed semantics for {text}"
            );
        }
    }

    #[test]
    fn ldbc_expressible_count_covers_paper_chain_set() {
        // §5.5: the paper runs 15 chain-shaped queries on Neo4j. With
        // union distribution our expressible set is a superset of that.
        let schema = sgq_datasets_schema();
        let mut expressible = 0;
        for q in LDBC_QUERIES {
            let e = sgq_algebra::parser::parse_path(q, &schema).unwrap();
            if cypher_expressible(&Ucqt::path_query(e)) {
                expressible += 1;
            }
        }
        assert!(
            expressible >= 15,
            "at least the paper's 15 chain queries must be expressible, got {expressible}"
        );
    }

    /// A local copy of the LDBC schema shape (avoids a dev-dependency
    /// cycle with sgq-datasets).
    fn sgq_datasets_schema() -> GraphSchema {
        let mut b = GraphSchema::builder();
        b.edge("Person", "knows", "Person");
        b.edge("Person", "likes", "Post");
        b.edge("Person", "likes", "Comment");
        b.edge("Post", "hasCreator", "Person");
        b.edge("Comment", "hasCreator", "Person");
        b.edge("Comment", "replyOf", "Post");
        b.edge("Comment", "replyOf", "Comment");
        b.edge("Forum", "containerOf", "Post");
        b.edge("Forum", "hasMember", "Person");
        b.edge("Forum", "hasModerator", "Person");
        b.edge("Post", "hasTag", "Tag");
        b.edge("Comment", "hasTag", "Tag");
        b.edge("Forum", "hasTag", "Tag");
        b.edge("Person", "hasInterest", "Tag");
        b.edge("Tag", "hasType", "TagClass");
        b.edge("TagClass", "isSubclassOf", "TagClass");
        b.edge("Person", "isLocatedIn", "City");
        b.edge("Company", "isLocatedIn", "Country");
        b.edge("University", "isLocatedIn", "City");
        b.edge("Post", "isLocatedIn", "Country");
        b.edge("Comment", "isLocatedIn", "Country");
        b.edge("City", "isPartOf", "Country");
        b.edge("Country", "isPartOf", "Continent");
        b.edge("Person", "workAt", "Company");
        b.edge("Person", "studyAt", "University");
        b.build().unwrap()
    }

    const LDBC_QUERIES: [&str; 30] = [
        "knows{1,3}/(isLocatedIn | (workAt|studyAt)/isLocatedIn)",
        "knows/-hasCreator",
        "knows{1,2}/(-hasCreator[hasTag])[hasTag]",
        "(-hasCreator/-likes) | ((-hasCreator/-likes) & knows)",
        "-hasCreator/-replyOf/hasCreator",
        "knows{1,2}/-hasCreator",
        "knows{1,2}/workAt/isLocatedIn",
        "knows/-hasCreator/replyOf/hasTag/hasType/isSubclassOf+",
        "knows+",
        "(knows & (-hasCreator/replyOf/hasCreator))+",
        "knows+/studyAt/isLocatedIn+/isPartOf+",
        "likes/hasCreator/knows+/isLocatedIn+",
        "likes/replyOf+/isLocatedIn+/isPartOf+",
        "hasMember/(studyAt|workAt)/isLocatedIn+/isPartOf+",
        "-hasMember/([containerOf]hasTag)/hasType/isSubclassOf+",
        "replyOf+/isLocatedIn+/isPartOf+",
        "hasModerator/hasInterest/hasType/isSubclassOf+",
        "([containerOf/hasCreator]hasMember)/isLocatedIn/isPartOf+",
        "-hasCreator/replyOf+/hasCreator",
        "replyOf+/-containerOf/hasMember",
        "(-hasCreator/replyOf/hasCreator) | ((-hasCreator/replyOf/hasCreator) & knows)",
        "(([isLocatedIn/isPartOf]knows)[isLocatedIn/isPartOf]) & (knows/([isLocatedIn/isPartOf]knows))",
        "(knows+[isLocatedIn/isPartOf])/(-hasCreator[hasTag])/hasTag/hasType",
        "-isPartOf/-isLocatedIn/-hasModerator/containerOf/-replyOf+/hasTag/hasType",
        "replyOf+/hasCreator",
        "(knows & (studyAt/-studyAt))+",
        "-isPartOf/-isLocatedIn/-hasMember/containerOf/-replyOf+/hasTag/hasType",
        "((likes[hasTag])[-replyOf])/hasCreator",
        "-hasTag/-replyOf/hasTag",
        "knows/knows/hasInterest",
    ];
}
