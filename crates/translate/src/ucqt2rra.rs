//! UCQT → recursive relational algebra.
//!
//! Path expressions translate structurally; the conjunction and branching
//! cases implement Tab. 2:
//!
//! ```text
//! Lϕ1 ∩ ϕ2M  = natural join of both translations on (Sr, Tr)
//! Lϕ1[ϕ2]M   = Lϕ1M ⋉ π_Sr(Lϕ2M)   (semi-join on the shared endpoint)
//! L[ϕ1]ϕ2M   = Lϕ2M ⋉ π_Sr(Lϕ1M)
//! ```
//!
//! Transitive closure becomes the µ fixpoint of
//! [`sgq_ra::term::closure_fixpoint`]; label atoms become semi-joins with
//! node tables; a CQT is the natural join of its relations projected onto
//! the head.
//!
//! This is the RA stack's *ingestion edge*: every column and recursion
//! variable is interned once here, through the [`SymbolTable`] borrowed
//! by [`NameGen`] (normally `store.symbols`), and everything downstream
//! of translation works with dense ids.

use sgq_algebra::ast::PathExpr;
use sgq_common::{ColId, RecVarId, Result, SgqError, VarId};
use sgq_query::cqt::{Cqt, Ucqt};
use sgq_ra::symbols::SymbolTable;
use sgq_ra::term::{closure_fixpoint, RaTerm};

/// Interns the column for a query variable (`v0`, `v1`, ...).
pub fn var_col(v: VarId, symbols: &SymbolTable) -> ColId {
    symbols.col(&format!("v{}", v.raw()))
}

/// Fresh-name generator for intermediate columns and fixpoint variables,
/// interning through the symbol table of the store the term will run on.
#[derive(Debug)]
pub struct NameGen<'a> {
    symbols: &'a SymbolTable,
    next: u32,
}

impl<'a> NameGen<'a> {
    /// A generator interning into `symbols`.
    pub fn new(symbols: &'a SymbolTable) -> Self {
        NameGen { symbols, next: 0 }
    }

    /// The symbol table this generator interns into.
    pub fn symbols(&self) -> &'a SymbolTable {
        self.symbols
    }

    fn mid(&mut self) -> ColId {
        let n = self.next;
        self.next += 1;
        self.symbols.col(&format!("m${n}"))
    }

    fn fix(&mut self) -> RecVarId {
        let n = self.next;
        self.next += 1;
        self.symbols.recvar(&format!("X{n}"))
    }
}

/// Translates a path expression into a binary RA term with columns
/// `(src, tgt)`.
pub fn path_to_term(expr: &PathExpr, src: ColId, tgt: ColId, names: &mut NameGen<'_>) -> RaTerm {
    match expr {
        PathExpr::Label(le) => RaTerm::EdgeScan {
            label: *le,
            src,
            tgt,
        },
        // ρ swaps the roles of Sr and Tr; re-project so every translation
        // exposes its columns in (src, tgt) order (unions require it).
        PathExpr::Reverse(le) => RaTerm::project(
            RaTerm::EdgeScan {
                label: *le,
                src: tgt,
                tgt: src,
            },
            vec![src, tgt],
        ),
        PathExpr::Concat(a, b) => {
            let m = names.mid();
            let left = path_to_term(a, src, m, names);
            let right = path_to_term(b, m, tgt, names);
            RaTerm::project(RaTerm::join(left, right), vec![src, tgt])
        }
        PathExpr::Union(a, b) => RaTerm::union(
            path_to_term(a, src, tgt, names),
            path_to_term(b, src, tgt, names),
        ),
        // Tab. 2: conjunction = natural join on both endpoints.
        PathExpr::Conj(a, b) => RaTerm::join(
            path_to_term(a, src, tgt, names),
            path_to_term(b, src, tgt, names),
        ),
        // Tab. 2: ϕ1[ϕ2] = Lϕ1M ⋉ π_tgt(Lϕ2M with Sr renamed to tgt).
        PathExpr::BranchR(a, b) => {
            let m = names.mid();
            let test = path_to_term(b, tgt, m, names);
            RaTerm::semijoin(
                path_to_term(a, src, tgt, names),
                RaTerm::project(test, vec![tgt]),
            )
        }
        // Tab. 2: [ϕ1]ϕ2 = Lϕ2M ⋉ π_src(Lϕ1M).
        PathExpr::BranchL(a, b) => {
            let m = names.mid();
            let test = path_to_term(a, src, m, names);
            RaTerm::semijoin(
                path_to_term(b, src, tgt, names),
                RaTerm::project(test, vec![src]),
            )
        }
        PathExpr::Plus(a) => {
            let inner = path_to_term(a, src, tgt, names);
            let var = names.fix();
            let mid = names.mid();
            closure_fixpoint(var, inner, src, tgt, mid)
        }
    }
}

/// Translates one CQT: relations joined naturally, label atoms as
/// semi-joins with node tables, projected onto the head.
pub fn cqt_to_term(cqt: &Cqt, names: &mut NameGen<'_>) -> Result<RaTerm> {
    cqt.validate()?;
    let symbols = names.symbols();
    let mut acc: Option<RaTerm> = None;
    for rel in &cqt.relations {
        let expr = rel.path.strip();
        let term = if rel.src == rel.tgt {
            // (x, ϕ, x): translate with a fresh target, select equality and
            // keep a single column.
            let m = names.mid();
            let src = var_col(rel.src, symbols);
            let t = path_to_term(&expr, src, m, names);
            RaTerm::project(RaTerm::select_eq(t, src, m), vec![src])
        } else {
            path_to_term(
                &expr,
                var_col(rel.src, symbols),
                var_col(rel.tgt, symbols),
                names,
            )
        };
        acc = Some(match acc {
            None => term,
            Some(a) => RaTerm::join(a, term),
        });
    }
    let mut term = acc.ok_or_else(|| SgqError::Query("CQT has no relations".into()))?;
    for atom in &cqt.atoms {
        term = RaTerm::semijoin(
            term,
            RaTerm::NodeScan {
                labels: atom.labels.clone(),
                col: var_col(atom.var, symbols),
            },
        );
    }
    let head: Vec<ColId> = cqt.head.iter().map(|&v| var_col(v, symbols)).collect();
    Ok(RaTerm::project(term, head))
}

/// Translates a whole UCQT: the union of its disjunct translations.
pub fn ucqt_to_term(query: &Ucqt, names: &mut NameGen<'_>) -> Result<RaTerm> {
    query.validate()?;
    let head: Vec<ColId> = query
        .head
        .iter()
        .map(|&v| var_col(v, names.symbols()))
        .collect();
    let mut acc: Option<RaTerm> = None;
    for cqt in &query.disjuncts {
        let t = cqt_to_term(cqt, names)?;
        let t = RaTerm::project(t, head.clone());
        acc = Some(match acc {
            None => t,
            Some(a) => RaTerm::union(a, t),
        });
    }
    acc.ok_or_else(|| SgqError::Query("UCQT has no disjuncts".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;
    use sgq_ra::exec::{execute, ExecContext};
    use sgq_ra::storage::RelStore;

    type Pairs = Vec<(u32, u32)>;

    fn eval_expr(s: &str) -> (Pairs, Pairs) {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e = parse_path(s, &db).unwrap();
        let (v0, v1) = (store.symbols.col("v0"), store.symbols.col("v1"));
        let mut names = NameGen::new(&store.symbols);
        let t = path_to_term(&e, v0, v1, &mut names);
        let mut ctx = ExecContext::new();
        let rel = execute(&t, &store, &mut ctx).unwrap();
        let rel = rel.project(&[v0, v1]);
        let got: Vec<(u32, u32)> = rel.rows().map(|r| (r[0], r[1])).collect();
        let want: Vec<(u32, u32)> = sgq_algebra::eval::eval_path(&db, &e)
            .iter()
            .map(|&(a, b)| (a.raw(), b.raw()))
            .collect();
        (got, want)
    }

    #[test]
    fn path_translation_matches_reference() {
        for s in [
            "owns",
            "-owns",
            "owns/isLocatedIn",
            "livesIn/isLocatedIn+",
            "isLocatedIn+",
            "isMarriedTo+",
            "owns | livesIn",
            "isMarriedTo & isMarriedTo",
            "livesIn[isLocatedIn]",
            "[owns]livesIn",
            "[owns]([isMarriedTo]livesIn)",
            "(livesIn/isLocatedIn)+",
        ] {
            let (got, want) = eval_expr(s);
            assert_eq!(got, want, "RA translation diverged for {s}");
        }
    }

    #[test]
    fn cqt_translation_with_atoms() {
        use sgq_common::VarId;
        use sgq_query::cqt::{Cqt, LabelAtom, Relation as QRel};
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let a = VarId::new(0);
        let b = VarId::new(1);
        let region = db.node_label_id("REGION").unwrap();
        let cqt = Cqt {
            head: vec![a, b],
            atoms: vec![LabelAtom {
                var: b,
                labels: vec![region],
            }],
            relations: vec![QRel::plain(a, parse_path("isLocatedIn", &db).unwrap(), b)],
        };
        let mut names = NameGen::new(&store.symbols);
        let t = cqt_to_term(&cqt, &mut names).unwrap();
        let mut ctx = ExecContext::new();
        let rel = execute(&t, &store, &mut ctx).unwrap();
        // CITY(n4,id3)->REGION and CITY(n6,id5)->REGION
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn self_loop_relation() {
        use sgq_common::VarId;
        use sgq_query::cqt::{Cqt, Relation as QRel};
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let x = VarId::new(0);
        let cqt = Cqt {
            head: vec![x],
            atoms: vec![],
            relations: vec![QRel::plain(x, parse_path("isMarriedTo+", &db).unwrap(), x)],
        };
        let mut names = NameGen::new(&store.symbols);
        let t = cqt_to_term(&cqt, &mut names).unwrap();
        let mut ctx = ExecContext::new();
        let rel = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(rel.len(), 2); // John and Shradha reach themselves
    }

    #[test]
    fn ucqt_union_translation() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e = parse_path("owns | livesIn", &db).unwrap();
        let q = sgq_query::cqt::Ucqt::path_query(e.clone());
        let mut names = NameGen::new(&store.symbols);
        let t = ucqt_to_term(&q, &mut names).unwrap();
        let mut ctx = ExecContext::new();
        let rel = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn optimized_translation_is_equivalent() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        for s in ["livesIn/isLocatedIn+", "owns/isLocatedIn", "[owns]livesIn"] {
            let e = parse_path(s, &db).unwrap();
            let q = sgq_query::cqt::Ucqt::path_query(e);
            let mut names = NameGen::new(&store.symbols);
            let t = ucqt_to_term(&q, &mut names).unwrap();
            let opt = sgq_ra::optimize::optimize(&t, &store);
            let mut ctx = ExecContext::new();
            let plain = execute(&t, &store, &mut ctx).unwrap();
            let optimized = execute(&opt, &store, &mut ctx).unwrap();
            assert_eq!(plain, optimized, "optimiser changed semantics for {s}");
        }
    }
}
