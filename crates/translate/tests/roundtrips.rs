//! Directed round-trip tests for the translation egress edges (Fig. 10):
//! `RRA2SQL` and `GP2Cypher` output must be *stable* (deterministic
//! across independent translations — prepared statements and the plan
//! cache rely on this) and *well-formed* (balanced, fully-declared,
//! terminator-carrying statements) for the paper's example queries.

use sgq_algebra::ast::PathExpr;
use sgq_algebra::parser::parse_path;
use sgq_core::pipeline::{rewrite_path, RewriteOptions, RewriteOutcome};
use sgq_core::RedundancyRule;
use sgq_graph::schema::fig1_yago_schema;
use sgq_graph::GraphSchema;
use sgq_query::cqt::Ucqt;
use sgq_ra::SymbolTable;
use sgq_translate::gp2cypher::{cypher_expressible, to_cypher_resolved};
use sgq_translate::rra2sql::to_sql;
use sgq_translate::ucqt2rra::{path_to_term, NameGen};

/// The paper's running examples (§2, Example 10/13, Tab. 2 shapes).
const PAPER_QUERIES: [&str; 10] = [
    "livesIn/isLocatedIn+/dealsWith+", // ϕ4 (Example 10)
    "owns/isLocatedIn+",
    "isLocatedIn+",
    "isMarriedTo+",
    "owns/isLocatedIn",
    "livesIn[isLocatedIn]",
    "[owns]livesIn",
    "owns | livesIn",
    "isMarriedTo & isMarriedTo",
    "(livesIn/isLocatedIn)+",
];

fn sql_for(text: &str, schema: &GraphSchema) -> String {
    let e = parse_path(text, schema).unwrap();
    let symbols = SymbolTable::new();
    let (src, tgt) = (symbols.col("v0"), symbols.col("v1"));
    let mut names = NameGen::new(&symbols);
    let t = path_to_term(&e, src, tgt, &mut names);
    to_sql(&t, schema, &symbols)
}

fn balanced_parens(s: &str) -> bool {
    let mut depth = 0i64;
    for c in s.chars() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            _ => {}
        }
        if depth < 0 {
            return false;
        }
    }
    depth == 0
}

#[test]
fn sql_snapshots_are_stable() {
    let schema = fig1_yago_schema();
    // Non-recursive: plain nested selects, no CTE.
    assert_eq!(
        sql_for("owns/isLocatedIn", &schema),
        "SELECT DISTINCT v0, v1 FROM (SELECT DISTINCT v0, v1 FROM \
         (SELECT a1.v0 AS v0, a1.m$0 AS m$0, b1.v1 AS v1 FROM \
         (SELECT Sr AS v0, Tr AS m$0 FROM owns) AS a1 JOIN \
         (SELECT Sr AS m$0, Tr AS v1 FROM isLocatedIn) AS b1 \
         ON a1.m$0 = b1.m$0) AS p0) AS q;"
    );
    // Recursive: one WITH RECURSIVE CTE with declared positional columns.
    assert_eq!(
        sql_for("isLocatedIn+", &schema),
        "WITH RECURSIVE fp_x0(c0, c1) AS (SELECT Sr AS v0, Tr AS v1 FROM isLocatedIn \
         UNION SELECT DISTINCT v0, v1 FROM (SELECT a2.v0 AS v0, a2.m$1 AS m$1, b2.v1 AS v1 \
         FROM (SELECT c0 AS v0, c1 AS m$1 FROM fp_x0) AS a2 JOIN \
         (SELECT v0 AS m$1, v1 FROM (SELECT Sr AS v0, Tr AS v1 FROM isLocatedIn) AS r3) AS b2 \
         ON a2.m$1 = b2.m$1) AS p1)\n\
         SELECT DISTINCT v0, v1 FROM (SELECT c0 AS v0, c1 AS v1 FROM fp_x0) AS q;"
    );
}

#[test]
fn sql_is_well_formed_for_every_paper_query() {
    let schema = fig1_yago_schema();
    for text in PAPER_QUERIES {
        let sql = sql_for(text, &schema);
        assert!(balanced_parens(&sql), "unbalanced parens for {text}: {sql}");
        assert!(sql.ends_with(';'), "missing terminator for {text}: {sql}");
        assert!(
            sql.contains("SELECT DISTINCT v0, v1"),
            "head projection missing for {text}: {sql}"
        );
        let expr = parse_path(text, &schema).unwrap();
        assert_eq!(
            sql.starts_with("WITH RECURSIVE"),
            expr.is_recursive(),
            "CTE presence must track recursiveness for {text}: {sql}"
        );
        // Every referenced fixpoint CTE is declared with its columns.
        for (at, _) in sql.match_indices("FROM fp_") {
            let name: String = sql[at + 5..]
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            assert!(
                sql.contains(&format!("{name}(c0, c1) AS (")),
                "undeclared CTE {name} for {text}: {sql}"
            );
        }
    }
}

#[test]
fn sql_translation_is_deterministic() {
    let schema = fig1_yago_schema();
    for text in PAPER_QUERIES {
        // Two completely independent translations (fresh symbol tables,
        // fresh name generators) must render identically — the plan
        // cache keys on canonical text and relies on this.
        assert_eq!(
            sql_for(text, &schema),
            sql_for(text, &schema),
            "SQL rendering diverged for {text}"
        );
    }
}

#[test]
fn cypher_snapshots_are_stable() {
    let schema = fig1_yago_schema();
    let phi4 = parse_path("livesIn/isLocatedIn+/dealsWith+", &schema).unwrap();
    let q = Ucqt::path_query(phi4);
    assert!(cypher_expressible(&q));
    assert_eq!(
        to_cypher_resolved(&q, &schema).unwrap(),
        "MATCH (v0)-[:livesIn]->()-[:isLocatedIn*]->()-[:dealsWith*]->(v1)\n\
         RETURN DISTINCT v0, v1;"
    );
    let closure = parse_path("isLocatedIn+", &schema).unwrap();
    assert_eq!(
        to_cypher_resolved(&Ucqt::path_query(closure), &schema).unwrap(),
        "MATCH (v0)-[:isLocatedIn*]->(v1)\nRETURN DISTINCT v0, v1;"
    );
}

#[test]
fn cypher_is_deterministic_and_classified_for_every_paper_query() {
    let schema = fig1_yago_schema();
    for text in PAPER_QUERIES {
        let q = Ucqt::path_query(parse_path(text, &schema).unwrap());
        let first = to_cypher_resolved(&q, &schema);
        let second = to_cypher_resolved(&q, &schema);
        match (first, second) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a, b, "Cypher rendering diverged for {text}");
                assert!(cypher_expressible(&q), "{text}");
                assert!(a.ends_with(';'), "missing terminator for {text}: {a}");
                assert!(a.starts_with("MATCH "), "unexpected shape for {text}: {a}");
                assert!(
                    a.contains("RETURN DISTINCT v0, v1;"),
                    "head missing for {text}: {a}"
                );
            }
            (Err(a), Err(b)) => {
                // Branching/conjunction fall outside Cypher's UC2RPQ
                // fragment (§4) — consistently on both calls.
                assert_eq!(a, b, "error classification diverged for {text}");
                assert!(!cypher_expressible(&q), "{text}");
            }
            other => panic!("nondeterministic expressibility for {text}: {other:?}"),
        }
    }
}

#[test]
fn rewritten_phi4_round_trips_with_labels() {
    // Example 13: the schema-enriched ϕ4 eliminates the isLocatedIn
    // closure and carries node-label annotations into both egress
    // languages.
    let schema = fig1_yago_schema();
    let phi4 = parse_path("livesIn/isLocatedIn+/dealsWith+", &schema).unwrap();
    let opts = RewriteOptions {
        redundancy: RedundancyRule::EitherSide,
        ..Default::default()
    };
    let RewriteOutcome::Enriched(q) = rewrite_path(&schema, &phi4, opts).outcome else {
        panic!("ϕ4 is enrichable");
    };
    let cypher = to_cypher_resolved(&q, &schema).unwrap();
    assert!(
        !cypher.contains("isLocatedIn*"),
        "rewrite eliminates the isLocatedIn closure: {cypher}"
    );
    assert!(
        cypher.contains("dealsWith*"),
        "the cyclic dealsWith closure survives: {cypher}"
    );
    assert!(
        cypher.contains(":REGION"),
        "label annotations render as Cypher labels: {cypher}"
    );

    // The same rewritten UCQT renders to well-formed SQL deterministically.
    let render_sql = |q: &Ucqt| {
        let symbols = SymbolTable::new();
        let mut names = NameGen::new(&symbols);
        let term = sgq_translate::ucqt2rra::ucqt_to_term(q, &mut names).unwrap();
        to_sql(&term, &schema, &symbols)
    };
    let sql = render_sql(&q);
    assert_eq!(sql, render_sql(&q), "rewritten SQL diverged");
    assert!(balanced_parens(&sql), "{sql}");
    assert!(sql.contains("FROM dealsWith"), "{sql}");
    assert!(
        !sql.contains("fp_") || sql.starts_with("WITH RECURSIVE"),
        "{sql}"
    );
}

/// `PathExpr::is_recursive` drives the CTE check above; pin the helper's
/// meaning for the example set.
#[test]
fn recursiveness_classification_matches_syntax() {
    let schema = fig1_yago_schema();
    let recursive = |t: &str| {
        parse_path(t, &schema)
            .map(|e: PathExpr| e.is_recursive())
            .unwrap()
    };
    assert!(recursive("isLocatedIn+"));
    assert!(recursive("(livesIn/isLocatedIn)+"));
    assert!(!recursive("owns/isLocatedIn"));
    assert!(!recursive("owns | livesIn"));
}
