//! The [`GraphEngine`] facade: the property-graph backend of the paper's
//! architecture (Fig. 10), standing in for Neo4j.

use sgq_algebra::ast::PathExpr;
use sgq_algebra::eval::PairSet;
use sgq_common::{NodeId, Result};
use sgq_graph::GraphDatabase;
use sgq_query::cqt::Ucqt;

use crate::conjunctive::run_cqt;
pub use crate::conjunctive::Rows;
use crate::patheval::{eval_seeded, EvalCounters, Seeds};

/// A query engine bound to one graph database.
pub struct GraphEngine<'a> {
    db: &'a GraphDatabase,
    counters: EvalCounters,
}

impl<'a> GraphEngine<'a> {
    /// Creates an engine over `db`.
    pub fn new(db: &'a GraphDatabase) -> Self {
        GraphEngine {
            db,
            counters: EvalCounters::default(),
        }
    }

    /// Creates an engine whose evaluations abort with
    /// [`sgq_common::SgqError::Timeout`] after `limit_ms` milliseconds.
    pub fn with_timeout(db: &'a GraphDatabase, limit_ms: u64) -> Self {
        GraphEngine {
            db,
            counters: EvalCounters::with_timeout(limit_ms),
        }
    }

    /// Aborts evaluation once `max_pairs` pairs have been materialised
    /// (0 = unlimited).
    pub fn set_max_pairs(&mut self, max_pairs: usize) {
        self.counters.max_pairs = max_pairs;
    }

    /// The underlying database.
    pub fn database(&self) -> &'a GraphDatabase {
        self.db
    }

    /// Evaluates a bare path expression (baseline evaluation).
    pub fn eval_path(&self, expr: &PathExpr) -> Result<PairSet> {
        eval_seeded(self.db, expr, Seeds::none(), &self.counters)
    }

    /// Runs a UCQT query, returning sorted deduplicated head rows.
    pub fn run_ucqt(&self, query: &Ucqt) -> Result<Rows> {
        query.validate()?;
        let mut out: Rows = Vec::new();
        for cqt in &query.disjuncts {
            out.extend(run_cqt(self.db, cqt, &self.counters)?);
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// Total pairs materialised since construction (work counter).
    pub fn pairs_materialized(&self) -> usize {
        self.counters.pairs.get()
    }

    /// Transitive-closure rounds run since construction.
    pub fn tc_rounds(&self) -> usize {
        self.counters.tc_rounds.get()
    }
}

/// Convenience: runs a query and converts binary rows into a pair set.
pub fn rows_to_pairs(rows: &Rows) -> PairSet {
    rows.iter().map(|r| (r[0], r[1])).collect()
}

/// Convenience: converts a pair set into rows.
pub fn pairs_to_rows(pairs: &PairSet) -> Rows {
    pairs.iter().map(|&(s, t)| vec![s, t]).collect()
}

/// Runs a `RewriteOutcome`-shaped pair of queries — used by callers that
/// hold both the baseline and the rewritten form. Kept here so the harness
/// can time baseline and rewritten runs identically.
pub fn run_binary_query(engine: &GraphEngine<'_>, query: &Ucqt) -> Result<Vec<(NodeId, NodeId)>> {
    let rows = engine.run_ucqt(query)?;
    Ok(rows_to_pairs(&rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn engine_matches_reference_on_paths() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        for s in ["owns/isLocatedIn", "livesIn/isLocatedIn+", "isMarriedTo+"] {
            let e = parse_path(s, &db).unwrap();
            assert_eq!(
                engine.eval_path(&e).unwrap(),
                sgq_algebra::eval::eval_path(&db, &e)
            );
        }
    }

    #[test]
    fn ucqt_union_dedups() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        let e = parse_path("owns | owns", &db).unwrap();
        let q = sgq_query::cqt::Ucqt::path_query(e);
        let rows = engine.run_ucqt(&q).unwrap();
        assert_eq!(rows.len(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        let e = parse_path("isLocatedIn+", &db).unwrap();
        let _ = engine.eval_path(&e).unwrap();
        assert!(engine.pairs_materialized() > 0);
        assert!(engine.tc_rounds() > 0);
    }

    #[test]
    fn roundtrip_helpers() {
        let pairs = vec![(sgq_common::NodeId::new(1), sgq_common::NodeId::new(2))];
        let rows = pairs_to_rows(&pairs);
        assert_eq!(rows_to_pairs(&rows), pairs);
    }
}
