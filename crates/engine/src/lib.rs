//! The property-graph query engine (the paper's GDBMS backend substitute).
//!
//! Evaluates UCQT queries directly over a [`sgq_graph::GraphDatabase`]:
//!
//! * [`patheval`] — seeded pair-set evaluation of path expressions over
//!   CSR adjacency, with semi-naive / frontier-BFS transitive closure,
//! * [`conjunctive`] — a binding-table executor for CQTs (greedy join
//!   ordering, semi-join pushdown of label atoms and bound variables),
//! * [`backend`] — the public [`GraphEngine`] facade used by the harness.

#![warn(missing_docs)]

pub mod aggregate;
pub mod backend;
pub mod conjunctive;
pub mod patheval;

pub use aggregate::{aggregate, grouped_count, Aggregate};
pub use backend::{GraphEngine, Rows};
pub use patheval::{eval_seeded, EvalCounters, Seeds};
