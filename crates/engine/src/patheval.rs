//! Seeded pair-set evaluation of path expressions.
//!
//! The evaluator improves on the reference semantics (`sgq_algebra::eval`)
//! in two ways that matter for the paper's experiments:
//!
//! * **Seed pushdown** — when the conjunctive executor already knows the
//!   candidate source (or target) nodes of a relation, evaluation is
//!   restricted to them: base labels expand seeds through CSR adjacency,
//!   and transitive closures run a frontier BFS from the seeds instead of
//!   materialising the full closure. This is the graph-side analogue of
//!   µ-RA's "push joins into fixpoints".
//! * **Counters** — every materialised pair is counted, so tests and
//!   benches can demonstrate the intermediate-result reduction that the
//!   schema-based rewrite buys (the paper's Fig. 17 narrative).

use std::cell::Cell;
use std::time::Instant;

use sgq_algebra::ast::PathExpr;
use sgq_algebra::eval::PairSet;
use sgq_common::{sorted, FxHashMap, FxHashSet, NodeId, Result, SgqError};
use sgq_graph::GraphDatabase;

/// Optional restriction on the endpoints of an evaluation.
#[derive(Debug, Clone, Copy, Default)]
pub struct Seeds<'a> {
    /// Sorted candidate source nodes (`None` = unrestricted).
    pub sources: Option<&'a [NodeId]>,
    /// Sorted candidate target nodes (`None` = unrestricted).
    pub targets: Option<&'a [NodeId]>,
}

impl<'a> Seeds<'a> {
    /// No restriction.
    pub fn none() -> Self {
        Seeds::default()
    }

    /// Restrict sources only.
    pub fn from_sources(sources: &'a [NodeId]) -> Self {
        Seeds {
            sources: Some(sources),
            targets: None,
        }
    }
}

/// Work counters (and the cooperative deadline) threaded through every
/// evaluation.
#[derive(Debug, Default)]
pub struct EvalCounters {
    /// Pairs materialised across all operators.
    pub pairs: Cell<usize>,
    /// Semi-naive closure iterations run.
    pub tc_rounds: Cell<usize>,
    /// Cooperative deadline: long-running loops poll it and abort with
    /// [`SgqError::Timeout`] once passed (the paper's §5.1.5 protocol).
    pub deadline: Option<Instant>,
    /// Timeout value reported in errors, in milliseconds.
    pub limit_ms: u64,
    /// Abort once this many pairs have been materialised (0 = unlimited);
    /// keeps infeasible closures from exhausting memory before the
    /// deadline fires.
    pub max_pairs: usize,
}

impl EvalCounters {
    /// Counters with a deadline `limit_ms` from now.
    pub fn with_timeout(limit_ms: u64) -> Self {
        EvalCounters {
            deadline: Some(Instant::now() + std::time::Duration::from_millis(limit_ms)),
            limit_ms,
            ..Default::default()
        }
    }

    fn add_pairs(&self, n: usize) {
        self.pairs.set(self.pairs.get() + n);
    }

    fn add_round(&self) {
        self.tc_rounds.set(self.tc_rounds.get() + 1);
    }

    /// Polls the deadline and the pair budget.
    pub fn check(&self) -> Result<()> {
        if self.max_pairs > 0 && self.pairs.get() > self.max_pairs {
            return Err(SgqError::RowBudget {
                rows: self.pairs.get(),
                budget: self.max_pairs,
            });
        }
        match self.deadline {
            Some(d) if Instant::now() > d => Err(SgqError::Timeout {
                limit_ms: self.limit_ms,
            }),
            _ => Ok(()),
        }
    }
}

/// Evaluates `expr` over `db`, restricted to `seeds`.
///
/// The result is canonical (sorted, deduplicated) and exact: restricting by
/// `seeds` never adds pairs, it only avoids computing pairs whose endpoints
/// fall outside the restriction.
pub fn eval_seeded(
    db: &GraphDatabase,
    expr: &PathExpr,
    seeds: Seeds<'_>,
    counters: &EvalCounters,
) -> Result<PairSet> {
    counters.check()?;
    let out = match expr {
        PathExpr::Label(le) => match (seeds.sources, seeds.targets) {
            (Some(srcs), _) => {
                let mut v: Vec<(NodeId, NodeId)> = Vec::new();
                for &s in srcs {
                    for &t in db.out_neighbors(s, *le) {
                        if within(seeds.targets, t) {
                            v.push((s, t));
                        }
                    }
                }
                v
            }
            (None, Some(tgts)) => {
                let mut v: Vec<(NodeId, NodeId)> = Vec::new();
                for &t in tgts {
                    for &s in db.in_neighbors(t, *le) {
                        v.push((s, t));
                    }
                }
                sorted::normalize(&mut v);
                v
            }
            (None, None) => db.edges(*le).to_vec(),
        },
        PathExpr::Reverse(le) => {
            // J-leK = reversed pairs; sources of -le are targets of le.
            let inner = eval_seeded(
                db,
                &PathExpr::Label(*le),
                Seeds {
                    sources: seeds.targets,
                    targets: seeds.sources,
                },
                counters,
            )?;
            let mut v: Vec<(NodeId, NodeId)> = inner.iter().map(|&(s, t)| (t, s)).collect();
            sorted::normalize(&mut v);
            v
        }
        PathExpr::Concat(a, b) => {
            let left = eval_seeded(
                db,
                a,
                Seeds {
                    sources: seeds.sources,
                    targets: None,
                },
                counters,
            )?;
            let mids = sgq_algebra::eval::target_set(&left);
            let right = eval_seeded(
                db,
                b,
                Seeds {
                    sources: Some(&mids),
                    targets: seeds.targets,
                },
                counters,
            )?;
            compose(&left, &right, counters)?
        }
        PathExpr::Union(a, b) => sorted::union(
            &eval_seeded(db, a, seeds, counters)?,
            &eval_seeded(db, b, seeds, counters)?,
        ),
        PathExpr::Conj(a, b) => {
            let left = eval_seeded(db, a, seeds, counters)?;
            // evaluate the right side restricted to the left's endpoints
            let srcs = sgq_algebra::eval::source_set(&left);
            let tgts = sgq_algebra::eval::target_set(&left);
            let right = eval_seeded(
                db,
                b,
                Seeds {
                    sources: Some(&srcs),
                    targets: Some(&tgts),
                },
                counters,
            )?;
            sorted::intersect(&left, &right)
        }
        PathExpr::BranchR(a, b) => {
            let left = eval_seeded(db, a, seeds, counters)?;
            let tgts = sgq_algebra::eval::target_set(&left);
            let right = eval_seeded(db, b, Seeds::from_sources(&tgts), counters)?;
            let witnesses = sgq_algebra::eval::source_set(&right);
            left.into_iter()
                .filter(|&(_, m)| sorted::contains(&witnesses, &m))
                .collect()
        }
        PathExpr::BranchL(a, b) => {
            let right = eval_seeded(db, b, seeds, counters)?;
            let srcs = sgq_algebra::eval::source_set(&right);
            let left = eval_seeded(db, a, Seeds::from_sources(&srcs), counters)?;
            let witnesses = sgq_algebra::eval::source_set(&left);
            right
                .into_iter()
                .filter(|&(n, _)| sorted::contains(&witnesses, &n))
                .collect()
        }
        PathExpr::Plus(a) => transitive_closure_seeded(db, a, seeds, counters)?,
    };
    counters.add_pairs(out.len());
    Ok(out)
}

#[inline]
fn within(filter: Option<&[NodeId]>, n: NodeId) -> bool {
    filter.is_none_or(|f| sorted::contains(f, &n))
}

/// Hash-join composition of two canonical pair sets.
fn compose(a: &PairSet, b: &PairSet, counters: &EvalCounters) -> Result<PairSet> {
    if a.is_empty() || b.is_empty() {
        return Ok(Vec::new());
    }
    let mut by_src: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for &(s, t) in b {
        by_src.entry(s).or_default().push(t);
    }
    let mut out = Vec::new();
    for (i, &(n, z)) in a.iter().enumerate() {
        if i % 65536 == 0 {
            counters.check()?;
        }
        if let Some(ms) = by_src.get(&z) {
            for &m in ms {
                out.push((n, m));
            }
        }
    }
    sorted::normalize(&mut out);
    Ok(out)
}

/// Transitive closure with seed pushdown.
///
/// * With source seeds: frontier BFS — only reachability *from the seeds*
///   is computed.
/// * With target seeds only: the same, on the reversed step relation.
/// * Unrestricted: classic semi-naive iteration.
fn transitive_closure_seeded(
    db: &GraphDatabase,
    inner: &PathExpr,
    seeds: Seeds<'_>,
    counters: &EvalCounters,
) -> Result<PairSet> {
    match (seeds.sources, seeds.targets) {
        (Some(srcs), _) => {
            let out = bfs_closure(db, inner, srcs, Direction::Forward, counters)?;
            Ok(match seeds.targets {
                None => out,
                Some(tgts) => out
                    .into_iter()
                    .filter(|&(_, t)| sorted::contains(tgts, &t))
                    .collect(),
            })
        }
        (None, Some(tgts)) => {
            let rev = bfs_closure(db, inner, tgts, Direction::Backward, counters)?;
            let mut out: Vec<(NodeId, NodeId)> = rev.iter().map(|&(t, s)| (s, t)).collect();
            sorted::normalize(&mut out);
            Ok(out)
        }
        (None, None) => {
            let base = eval_seeded(db, inner, Seeds::none(), counters)?;
            let mut acc = base.clone();
            let mut delta = base.clone();
            while !delta.is_empty() {
                counters.add_round();
                counters.check()?;
                let step = compose(&delta, &base, counters)?;
                counters.add_pairs(step.len());
                let fresh = sorted::difference(&step, &acc);
                acc = sorted::union(&acc, &fresh);
                delta = fresh;
            }
            Ok(acc)
        }
    }
}

enum Direction {
    Forward,
    Backward,
}

/// Frontier BFS from `starts`: pairs `(start, reached)` for every node
/// reachable through one or more `inner`-steps.
///
/// For single-label steps the CSR is walked directly; otherwise the step
/// relation is materialised once and indexed.
fn bfs_closure(
    db: &GraphDatabase,
    inner: &PathExpr,
    starts: &[NodeId],
    dir: Direction,
    counters: &EvalCounters,
) -> Result<PairSet> {
    // Fast path: inner is a single (possibly reversed) label.
    let step_index: Option<FxHashMap<NodeId, Vec<NodeId>>> = match inner {
        PathExpr::Label(_) | PathExpr::Reverse(_) => None,
        _ => {
            let base = eval_seeded(db, inner, Seeds::none(), counters)?;
            let mut map: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
            for &(s, t) in &base {
                match dir {
                    Direction::Forward => map.entry(s).or_default().push(t),
                    Direction::Backward => map.entry(t).or_default().push(s),
                }
            }
            Some(map)
        }
    };
    let step = |n: NodeId, out: &mut Vec<NodeId>| match (&step_index, inner) {
        (Some(map), _) => {
            if let Some(ts) = map.get(&n) {
                out.extend_from_slice(ts);
            }
        }
        (None, PathExpr::Label(le)) => match dir {
            Direction::Forward => out.extend_from_slice(db.out_neighbors(n, *le)),
            Direction::Backward => out.extend_from_slice(db.in_neighbors(n, *le)),
        },
        (None, PathExpr::Reverse(le)) => match dir {
            Direction::Forward => out.extend_from_slice(db.in_neighbors(n, *le)),
            Direction::Backward => out.extend_from_slice(db.out_neighbors(n, *le)),
        },
        _ => unreachable!("step_index covers composite expressions"),
    };

    let mut out: PairSet = Vec::new();
    let mut frontier: Vec<NodeId> = Vec::new();
    let mut next: Vec<NodeId> = Vec::new();
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    for &s in starts {
        seen.clear();
        frontier.clear();
        frontier.push(s);
        while !frontier.is_empty() {
            counters.add_round();
            counters.check()?;
            next.clear();
            for &n in &frontier {
                step(n, &mut next);
            }
            frontier.clear();
            for &t in &next {
                if seen.insert(t) {
                    out.push((s, t));
                    frontier.push(t);
                }
            }
            counters.add_pairs(frontier.len());
        }
    }
    sorted::normalize(&mut out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::eval::eval_path;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;

    fn check(db: &GraphDatabase, s: &str) {
        let e = parse_path(s, db).unwrap();
        let counters = EvalCounters::default();
        let got = eval_seeded(db, &e, Seeds::none(), &counters).unwrap();
        let want = eval_path(db, &e);
        assert_eq!(got, want, "mismatch for {s}");
        assert!(counters.pairs.get() >= want.len());
    }

    #[test]
    fn matches_reference_semantics() {
        let db = fig2_yago_database();
        for s in [
            "owns",
            "-owns",
            "owns/isLocatedIn",
            "livesIn/isLocatedIn+",
            "isLocatedIn+",
            "isMarriedTo+",
            "[owns]([isMarriedTo]livesIn)",
            "livesIn[isLocatedIn]",
            "owns | livesIn",
            "isMarriedTo & isMarriedTo",
            "(livesIn/isLocatedIn)+",
            "-isLocatedIn/-livesIn",
        ] {
            check(&db, s);
        }
    }

    #[test]
    fn source_seeds_restrict() {
        let db = fig2_yago_database();
        let e = parse_path("isLocatedIn+", &db).unwrap();
        let counters = EvalCounters::default();
        let full = eval_seeded(&db, &e, Seeds::none(), &counters).unwrap();
        let n0 = NodeId::new(0);
        let seeded = eval_seeded(&db, &e, Seeds::from_sources(&[n0]), &counters).unwrap();
        let expect: PairSet = full.iter().copied().filter(|&(s, _)| s == n0).collect();
        assert_eq!(seeded, expect);
    }

    #[test]
    fn target_seeds_restrict() {
        let db = fig2_yago_database();
        let e = parse_path("isLocatedIn+", &db).unwrap();
        let counters = EvalCounters::default();
        let full = eval_seeded(&db, &e, Seeds::none(), &counters).unwrap();
        let france = NodeId::new(6);
        let seeded = eval_seeded(
            &db,
            &e,
            Seeds {
                sources: None,
                targets: Some(&[france]),
            },
            &counters,
        )
        .unwrap();
        let expect: PairSet = full.iter().copied().filter(|&(_, t)| t == france).collect();
        assert_eq!(seeded, expect);
    }

    #[test]
    fn seeded_closure_does_less_work() {
        let db = fig2_yago_database();
        let e = parse_path("isLocatedIn+", &db).unwrap();
        let full_counters = EvalCounters::default();
        let _ = eval_seeded(&db, &e, Seeds::none(), &full_counters).unwrap();
        let seeded_counters = EvalCounters::default();
        let n3 = NodeId::new(3);
        let _ = eval_seeded(&db, &e, Seeds::from_sources(&[n3]), &seeded_counters).unwrap();
        assert!(
            seeded_counters.pairs.get() < full_counters.pairs.get(),
            "seeding should reduce materialised pairs ({} vs {})",
            seeded_counters.pairs.get(),
            full_counters.pairs.get()
        );
    }

    #[test]
    fn both_seeds_combine() {
        let db = fig2_yago_database();
        let e = parse_path("isLocatedIn", &db).unwrap();
        let counters = EvalCounters::default();
        let r = eval_seeded(
            &db,
            &e,
            Seeds {
                sources: Some(&[NodeId::new(5)]),
                targets: Some(&[NodeId::new(4)]),
            },
            &counters,
        )
        .unwrap();
        assert_eq!(r, vec![(NodeId::new(5), NodeId::new(4))]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sgq_algebra::ast::PathExpr;
    use sgq_common::{EdgeLabelId, Rng};
    use sgq_graph::GraphDatabase;

    /// Random multi-label graph (schema-free) from a seed.
    fn random_db(seed: u64) -> GraphDatabase {
        let mut rng = Rng::seed_from_u64(seed);
        let mut b = GraphDatabase::standalone_builder();
        let n = rng.gen_range(4..20);
        let nodes: Vec<_> = (0..n).map(|_| b.node("N", &[])).collect();
        for le in ["r", "s"] {
            let m = rng.gen_range(0..40);
            for _ in 0..m {
                let a = nodes[rng.gen_range(0..n)];
                let c = nodes[rng.gen_range(0..n)];
                b.edge(a, le, c);
            }
        }
        b.build().unwrap()
    }

    fn random_expr(seed: u64, depth: usize) -> PathExpr {
        let mut rng = Rng::seed_from_u64(seed ^ 0xabcd);
        build(&mut rng, depth)
    }

    fn build(rng: &mut Rng, depth: usize) -> PathExpr {
        let le = EdgeLabelId::new(rng.gen_range(0..2) as u32);
        if depth == 0 || rng.gen_bool(0.35) {
            if rng.gen_bool(0.3) {
                PathExpr::Reverse(le)
            } else {
                PathExpr::Label(le)
            }
        } else {
            match rng.gen_range(0..6) {
                0 => PathExpr::concat(build(rng, depth - 1), build(rng, depth - 1)),
                1 => PathExpr::union(build(rng, depth - 1), build(rng, depth - 1)),
                2 => PathExpr::conj(build(rng, depth - 1), build(rng, depth - 1)),
                3 => PathExpr::branch_r(build(rng, depth - 1), build(rng, depth - 1)),
                4 => PathExpr::branch_l(build(rng, depth - 1), build(rng, depth - 1)),
                _ => PathExpr::plus(build(rng, depth - 1)),
            }
        }
    }

    /// Unseeded evaluation matches the reference semantics.
    #[test]
    fn eval_matches_reference() {
        for seed in 0..96u64 {
            let db = random_db(seed);
            let expr = random_expr(seed, 3);
            let counters = EvalCounters::default();
            let got = eval_seeded(&db, &expr, Seeds::none(), &counters).unwrap();
            assert_eq!(got, sgq_algebra::eval::eval_path(&db, &expr), "seed {seed}");
        }
    }

    /// Seeding by arbitrary source/target subsets is exactly a filter
    /// of the unseeded result.
    #[test]
    fn seeding_is_a_filter() {
        for seed in 0..96u64 {
            let mask = Rng::seed_from_u64(seed ^ 0x5eed).gen_u32();
            let db = random_db(seed);
            let expr = random_expr(seed, 3);
            let counters = EvalCounters::default();
            let full = eval_seeded(&db, &expr, Seeds::none(), &counters).unwrap();
            let subset: Vec<NodeId> = db
                .node_ids()
                .filter(|n| (mask >> (n.raw() % 32)) & 1 == 1)
                .collect();
            let seeded_src =
                eval_seeded(&db, &expr, Seeds::from_sources(&subset), &counters).unwrap();
            let expect_src: PairSet = full
                .iter()
                .copied()
                .filter(|&(s, _)| sorted::contains(&subset, &s))
                .collect();
            assert_eq!(seeded_src, expect_src, "seed {seed}");
            let seeded_tgt = eval_seeded(
                &db,
                &expr,
                Seeds {
                    sources: None,
                    targets: Some(&subset),
                },
                &counters,
            )
            .unwrap();
            let expect_tgt: PairSet = full
                .iter()
                .copied()
                .filter(|&(_, t)| sorted::contains(&subset, &t))
                .collect();
            assert_eq!(seeded_tgt, expect_tgt, "seed {seed}");
        }
    }
}
