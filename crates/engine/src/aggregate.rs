//! Aggregation over UCQT results — the extension the paper's §7 names as
//! future work ("extend the approach by considering queries with
//! aggregations").
//!
//! Because the schema-based rewrite preserves *set* semantics exactly
//! (Theorem 1), any aggregate computed over the result set — `COUNT`,
//! `COUNT DISTINCT` per group, `MIN`/`MAX` over node ids — is preserved
//! by the rewrite too. This module provides those aggregates over the
//! engine's result rows, plus a grouped form (`GROUP BY` one head
//! variable), so enriched queries can answer the paper's analytical
//! workloads end to end.

use sgq_common::{FxHashMap, NodeId, Result};
use sgq_query::cqt::Ucqt;

use crate::backend::{GraphEngine, Rows};

/// The supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Number of (distinct) result rows.
    Count,
    /// Smallest node id in the aggregated column.
    Min,
    /// Largest node id in the aggregated column.
    Max,
}

/// Result of a grouped aggregation: sorted `(group value, aggregate)`.
pub type GroupedCounts = Vec<(NodeId, u64)>;

/// Computes an ungrouped aggregate over the rows of `query`.
pub fn aggregate(
    engine: &GraphEngine<'_>,
    query: &Ucqt,
    agg: Aggregate,
    column: usize,
) -> Result<Option<u64>> {
    let rows = engine.run_ucqt(query)?;
    Ok(aggregate_rows(&rows, agg, column))
}

/// Aggregates already-materialised rows.
pub fn aggregate_rows(rows: &Rows, agg: Aggregate, column: usize) -> Option<u64> {
    match agg {
        Aggregate::Count => Some(rows.len() as u64),
        Aggregate::Min => rows.iter().map(|r| r[column].raw() as u64).min(),
        Aggregate::Max => rows.iter().map(|r| r[column].raw() as u64).max(),
    }
}

/// `SELECT group, COUNT(*) ... GROUP BY group`: counts result rows per
/// value of the head column `group_column`.
pub fn grouped_count(
    engine: &GraphEngine<'_>,
    query: &Ucqt,
    group_column: usize,
) -> Result<GroupedCounts> {
    let rows = engine.run_ucqt(query)?;
    Ok(grouped_count_rows(&rows, group_column))
}

/// Grouped count over already-materialised rows.
pub fn grouped_count_rows(rows: &Rows, group_column: usize) -> GroupedCounts {
    let mut counts: FxHashMap<NodeId, u64> = FxHashMap::default();
    for row in rows {
        *counts.entry(row[group_column]).or_insert(0) += 1;
    }
    let mut out: GroupedCounts = counts.into_iter().collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn count_matches_result_cardinality() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        let q = Ucqt::path_query(parse_path("isLocatedIn+", &db).unwrap());
        let n = aggregate(&engine, &q, Aggregate::Count, 0).unwrap();
        assert_eq!(n, Some(8));
    }

    #[test]
    fn min_max_over_column() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        let q = Ucqt::path_query(parse_path("isMarriedTo", &db).unwrap());
        assert_eq!(aggregate(&engine, &q, Aggregate::Min, 0).unwrap(), Some(1));
        assert_eq!(aggregate(&engine, &q, Aggregate::Max, 1).unwrap(), Some(2));
    }

    #[test]
    fn empty_result_aggregates() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        let q = Ucqt::path_query(parse_path("dealsWith", &db).unwrap());
        assert_eq!(
            aggregate(&engine, &q, Aggregate::Count, 0).unwrap(),
            Some(0)
        );
        assert_eq!(aggregate(&engine, &q, Aggregate::Min, 0).unwrap(), None);
    }

    #[test]
    fn grouped_count_by_source() {
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        // isLocatedIn+ grouped by source: n1 reaches 3 places, n4 2, ...
        let q = Ucqt::path_query(parse_path("isLocatedIn+", &db).unwrap());
        let groups = grouped_count(&engine, &q, 0).unwrap();
        assert_eq!(
            groups,
            vec![
                (NodeId::new(0), 3),
                (NodeId::new(3), 2),
                (NodeId::new(4), 1),
                (NodeId::new(5), 2),
            ]
        );
    }

    #[test]
    fn aggregates_are_preserved_by_the_rewrite() {
        // Theorem 1 lifts to aggregates: COUNT over the enriched query
        // equals COUNT over the baseline.
        use sgq_core::pipeline::{rewrite_path, RewriteOptions, RewriteOutcome};
        let schema = sgq_graph::schema::fig1_yago_schema();
        let db = fig2_yago_database();
        let engine = GraphEngine::new(&db);
        for text in ["isLocatedIn+", "livesIn/isLocatedIn+", "owns/isLocatedIn"] {
            let expr = parse_path(text, &schema).unwrap();
            let baseline = Ucqt::path_query(expr.clone());
            let base_count = aggregate(&engine, &baseline, Aggregate::Count, 0).unwrap();
            let r = rewrite_path(&schema, &expr, RewriteOptions::default());
            let enriched_count = match &r.outcome {
                RewriteOutcome::Empty => Some(0),
                RewriteOutcome::Enriched(q) | RewriteOutcome::Reverted(q) => {
                    aggregate(&engine, q, Aggregate::Count, 0).unwrap()
                }
            };
            assert_eq!(base_count, enriched_count, "COUNT diverged for {text}");
            let base_groups = grouped_count(&engine, &baseline, 0).unwrap();
            if let RewriteOutcome::Enriched(q) = &r.outcome {
                assert_eq!(
                    base_groups,
                    grouped_count(&engine, q, 0).unwrap(),
                    "grouped COUNT diverged for {text}"
                );
            }
        }
    }
}
