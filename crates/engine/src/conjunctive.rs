//! A binding-table executor for CQTs.
//!
//! Relations are evaluated one at a time into pair sets (with seed
//! pushdown from already-bound variables and node-label atoms) and joined
//! into a growing binding table. Join order is greedy: among the relations
//! sharing a bound variable, the one with the smallest cardinality estimate
//! goes first — a deliberately simple version of what Neo4j's planner does
//! with graph patterns.

use sgq_algebra::ast::PathExpr;
use sgq_common::{sorted, FxHashMap, FxHashSet, NodeId, Result, SgqError, VarId};
use sgq_graph::GraphDatabase;
use sgq_query::annotated::LabelSet;
use sgq_query::cqt::Cqt;

use crate::patheval::{eval_seeded, EvalCounters, Seeds};

/// Result rows over the head variables (sorted, deduplicated).
pub type Rows = Vec<Vec<NodeId>>;

/// Executes one CQT against the database.
pub fn run_cqt(db: &GraphDatabase, cqt: &Cqt, counters: &EvalCounters) -> Result<Rows> {
    cqt.validate()?;
    // Per-variable label constraints (intersected).
    let mut constraints: FxHashMap<VarId, LabelSet> = FxHashMap::default();
    for atom in &cqt.atoms {
        match constraints.entry(atom.var) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let merged = sorted::intersect(e.get(), &atom.labels);
                e.insert(merged);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(atom.labels.clone());
            }
        }
    }
    if constraints.values().any(|l| l.is_empty()) {
        return Ok(Vec::new());
    }
    // Candidate node sets for constrained variables.
    let candidates: FxHashMap<VarId, Vec<NodeId>> = constraints
        .iter()
        .map(|(&v, labels)| {
            let mut nodes: Vec<NodeId> = labels
                .iter()
                .flat_map(|&l| db.nodes_with_label(l).iter().copied())
                .collect();
            sorted::normalize(&mut nodes);
            (v, nodes)
        })
        .collect();

    let mut remaining: Vec<usize> = (0..cqt.relations.len()).collect();
    let mut schema: Vec<VarId> = Vec::new();
    let mut rows: Rows = vec![Vec::new()]; // the unit table: one empty row

    while !remaining.is_empty() {
        let bound: FxHashSet<VarId> = schema.iter().copied().collect();
        // Greedy pick: prefer relations sharing a bound variable.
        let pick_pos = remaining
            .iter()
            .enumerate()
            .min_by_key(|&(_, &idx)| {
                let r = &cqt.relations[idx];
                let shares = bound.contains(&r.src) || bound.contains(&r.tgt) || schema.is_empty();
                (!shares, estimate(db, &r.path.strip()))
            })
            .map(|(pos, _)| pos)
            .expect("remaining is non-empty");
        let idx = remaining.swap_remove(pick_pos);
        let rel = &cqt.relations[idx];
        let expr = rel.path.strip();

        // Seeds: bound column values take precedence over atom candidates.
        let src_seed = seed_for(rel.src, &schema, &rows, &candidates);
        let tgt_seed = seed_for(rel.tgt, &schema, &rows, &candidates);
        let pairs = eval_seeded(
            db,
            &expr,
            Seeds {
                sources: src_seed.as_deref(),
                targets: tgt_seed.as_deref(),
            },
            counters,
        )?;
        // Atom filters not already pushed as seeds.
        let pairs: Vec<(NodeId, NodeId)> = pairs
            .into_iter()
            .filter(|&(s, t)| {
                label_ok(db, &constraints, rel.src, s) && label_ok(db, &constraints, rel.tgt, t)
            })
            .filter(|&(s, t)| rel.src != rel.tgt || s == t)
            .collect();

        rows = join(&schema, rows, rel.src, rel.tgt, &pairs);
        if !schema.contains(&rel.src) {
            schema.push(rel.src);
        }
        if rel.tgt != rel.src && !schema.contains(&rel.tgt) {
            schema.push(rel.tgt);
        }
        if rows.is_empty() {
            return Ok(Vec::new());
        }
    }

    // Project onto the head.
    let positions: Vec<usize> = cqt
        .head
        .iter()
        .map(|h| {
            schema
                .iter()
                .position(|v| v == h)
                .ok_or_else(|| SgqError::Query(format!("head variable {h} never bound")))
        })
        .collect::<Result<_>>()?;
    let mut out: Rows = rows
        .into_iter()
        .map(|row| positions.iter().map(|&p| row[p]).collect())
        .collect();
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Seed values for a variable: bound column values, else atom candidates.
fn seed_for(
    var: VarId,
    schema: &[VarId],
    rows: &Rows,
    candidates: &FxHashMap<VarId, Vec<NodeId>>,
) -> Option<Vec<NodeId>> {
    if let Some(pos) = schema.iter().position(|&v| v == var) {
        let mut vals: Vec<NodeId> = rows.iter().map(|r| r[pos]).collect();
        sorted::normalize(&mut vals);
        return Some(vals);
    }
    candidates.get(&var).cloned()
}

#[inline]
fn label_ok(
    db: &GraphDatabase,
    constraints: &FxHashMap<VarId, LabelSet>,
    var: VarId,
    n: NodeId,
) -> bool {
    match constraints.get(&var) {
        None => true,
        Some(labels) => sorted::contains(labels, &db.node_label(n)),
    }
}

/// Joins the binding table with a pair set on whichever of `src`/`tgt` are
/// already bound.
fn join(schema: &[VarId], rows: Rows, src: VarId, tgt: VarId, pairs: &[(NodeId, NodeId)]) -> Rows {
    let src_pos = schema.iter().position(|&v| v == src);
    let tgt_pos = schema.iter().position(|&v| v == tgt);
    let mut out: Rows = Vec::new();
    match (src_pos, tgt_pos) {
        (None, None) => {
            // Cartesian extension (first relation, or disconnected pattern).
            for row in &rows {
                for &(s, t) in pairs {
                    let mut r = row.clone();
                    r.push(s);
                    if tgt != src {
                        r.push(t);
                    }
                    out.push(r);
                }
            }
        }
        (Some(sp), None) => {
            let mut index: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
            for &(s, t) in pairs {
                index.entry(s).or_default().push(t);
            }
            for row in &rows {
                if let Some(ts) = index.get(&row[sp]) {
                    for &t in ts {
                        let mut r = row.clone();
                        r.push(t);
                        out.push(r);
                    }
                }
            }
        }
        (None, Some(tp)) => {
            let mut index: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
            for &(s, t) in pairs {
                index.entry(t).or_default().push(s);
            }
            for row in &rows {
                if let Some(ss) = index.get(&row[tp]) {
                    for &s in ss {
                        let mut r = row.clone();
                        r.push(s);
                        out.push(r);
                    }
                }
            }
        }
        (Some(sp), Some(tp)) => {
            let set: FxHashSet<(NodeId, NodeId)> = pairs.iter().copied().collect();
            out = rows
                .into_iter()
                .filter(|row| set.contains(&(row[sp], row[tp])))
                .collect();
            out.sort_unstable();
            out.dedup();
            return out;
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// A crude cardinality estimate used only for join ordering: the smallest
/// edge-label relation mentioned in the expression, inflated for closures.
fn estimate(db: &GraphDatabase, expr: &PathExpr) -> usize {
    let labels = expr.edge_labels();
    let base = labels
        .iter()
        .map(|&le| db.edges(le).len())
        .min()
        .unwrap_or(0);
    if expr.is_recursive() {
        base.saturating_mul(4)
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;
    use sgq_query::cqt::{LabelAtom, Relation, Ucqt};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn single_relation_matches_path_eval() {
        let db = fig2_yago_database();
        let e = parse_path("livesIn/isLocatedIn+", &db).unwrap();
        let q = Ucqt::path_query(e.clone());
        let counters = EvalCounters::default();
        let rows = run_cqt(&db, &q.disjuncts[0], &counters).unwrap();
        let pairs: Vec<(NodeId, NodeId)> = rows.iter().map(|r| (r[0], r[1])).collect();
        assert_eq!(pairs, sgq_algebra::eval::eval_path(&db, &e));
    }

    #[test]
    fn example5_c1() {
        // C1 = {Y | (Y, livesIn/isLocatedIn+, M) ∧ (Y, owns, Z)}: only
        // John (n2 = id 1) owns a property.
        let db = fig2_yago_database();
        let y = VarId::new(0);
        let z = VarId::new(1);
        let m = VarId::new(2);
        let c1 = Cqt {
            head: vec![y],
            atoms: vec![],
            relations: vec![
                Relation::plain(y, parse_path("livesIn/isLocatedIn+", &db).unwrap(), m),
                Relation::plain(y, parse_path("owns", &db).unwrap(), z),
            ],
        };
        let counters = EvalCounters::default();
        let rows = run_cqt(&db, &c1, &counters).unwrap();
        assert_eq!(rows, vec![vec![n(1)]]);
    }

    #[test]
    fn label_atoms_filter() {
        let db = fig2_yago_database();
        let a = VarId::new(0);
        let b = VarId::new(1);
        let region = db.node_label_id("REGION").unwrap();
        // (a, isLocatedIn, b) with η(b) ∈ {REGION}: only CITY->REGION edges
        let c = Cqt {
            head: vec![a, b],
            atoms: vec![LabelAtom {
                var: b,
                labels: vec![region],
            }],
            relations: vec![Relation::plain(
                a,
                parse_path("isLocatedIn", &db).unwrap(),
                b,
            )],
        };
        let counters = EvalCounters::default();
        let rows = run_cqt(&db, &c, &counters).unwrap();
        assert_eq!(rows, vec![vec![n(3), n(4)], vec![n(5), n(4)]]);
    }

    #[test]
    fn unsatisfiable_atom_returns_empty() {
        let db = fig2_yago_database();
        let a = VarId::new(0);
        let b = VarId::new(1);
        let person = db.node_label_id("PERSON").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        let c = Cqt {
            head: vec![a, b],
            atoms: vec![
                LabelAtom {
                    var: b,
                    labels: vec![person],
                },
                LabelAtom {
                    var: b,
                    labels: vec![city],
                },
            ],
            relations: vec![Relation::plain(a, parse_path("livesIn", &db).unwrap(), b)],
        };
        let counters = EvalCounters::default();
        assert!(run_cqt(&db, &c, &counters).unwrap().is_empty());
    }

    #[test]
    fn self_loop_variable() {
        // (x, isMarriedTo+, x): both John and Shradha reach themselves.
        let db = fig2_yago_database();
        let x = VarId::new(0);
        let c = Cqt {
            head: vec![x],
            atoms: vec![],
            relations: vec![Relation::plain(
                x,
                parse_path("isMarriedTo+", &db).unwrap(),
                x,
            )],
        };
        let counters = EvalCounters::default();
        let rows = run_cqt(&db, &c, &counters).unwrap();
        assert_eq!(rows, vec![vec![n(1)], vec![n(2)]]);
    }

    #[test]
    fn triangle_pattern() {
        // (x, owns, y) ∧ (x, livesIn, z) ∧ (y, isLocatedIn, z):
        // John owns n1 located in Montbonnot, but John lives in Elerslie —
        // no match.
        let db = fig2_yago_database();
        let x = VarId::new(0);
        let y = VarId::new(1);
        let z = VarId::new(2);
        let c = Cqt {
            head: vec![x],
            atoms: vec![],
            relations: vec![
                Relation::plain(x, parse_path("owns", &db).unwrap(), y),
                Relation::plain(x, parse_path("livesIn", &db).unwrap(), z),
                Relation::plain(y, parse_path("isLocatedIn", &db).unwrap(), z),
            ],
        };
        let counters = EvalCounters::default();
        assert!(run_cqt(&db, &c, &counters).unwrap().is_empty());
    }
}
