//! Set-semantics relations with interned column ids and shared row
//! buffers.
//!
//! Rows are stored flattened (`data[row * arity + col]`) for cache
//! friendliness; every public operation returns a *canonical* relation
//! (rows sorted lexicographically, duplicates removed), which makes
//! equality, union and difference cheap merges.
//!
//! **Sharing model.** The flattened row data sits behind an
//! `Arc<Vec<u32>>`: relations are immutable once constructed, so
//! [`Relation::clone`], positional renames ([`Relation::with_cols`] /
//! [`Relation::into_cols`]), [`Relation::rename`] and base-table scans
//! out of [`crate::storage::RelStore`] are O(1) reference bumps that
//! never copy a row. Operators that produce new rows build a fresh
//! owned buffer and freeze it; nothing mutates a buffer after it is
//! shared. Empty relations all share one process-wide buffer. The
//! invariant that a relation has at least one column is asserted in the
//! single internal constructor, so the accessors
//! need no defensive zero-arity branches.
//!
//! Columns are [`ColId`]s (see [`crate::symbols::SymbolTable`]): schema
//! comparisons are `u32` compares and schema clones are 4-byte copies.
//! The dominant joins and semi-joins in this workload key on one or two
//! columns, so those paths hash a single `u32`/`u64` per row instead of
//! allocating a fresh `Vec<u32>` key; operators that provably preserve
//! canonical order (semi-join, selection, renaming, prefix projection)
//! skip the re-sort entirely.

use std::hash::Hash;
use std::sync::{Arc, OnceLock};

use sgq_common::{ColId, FxHashMap, FxHashSet, Result};

/// A column identifier. Query variables become interned `v0`, `v1`, ...;
/// the storage layer uses `Sr` / `Tr` like the paper's Fig. 11.
pub type Col = ColId;

/// How many probe rows a join/semi-join processes between two calls to
/// its cooperative-deadline poll.
pub(crate) const POLL_MASK: usize = 8192 - 1;

/// Packs a two-column key into one hashable word.
#[inline]
fn pack2(a: u32, b: u32) -> u64 {
    ((a as u64) << 32) | b as u64
}

/// The one buffer every empty relation shares: out-of-range base-table
/// lookups, empty scans and empty operator outputs all hand out clones
/// of this `Arc` instead of allocating.
fn empty_data() -> Arc<Vec<u32>> {
    static EMPTY: OnceLock<Arc<Vec<u32>>> = OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::new(Vec::new())))
}

/// A relation: interned column ids and flattened `u32` rows behind a
/// cheaply-clonable shared buffer (see the module docs for the sharing
/// model).
#[derive(Debug, Clone)]
pub struct Relation {
    cols: Vec<ColId>,
    data: Arc<Vec<u32>>,
}

/// Equality compares schemas and rows, short-circuiting through pointer
/// equality when two relations share one buffer.
impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.cols == other.cols && (Arc::ptr_eq(&self.data, &other.data) || self.data == other.data)
    }
}

impl Eq for Relation {}

impl Relation {
    /// The single internal constructor: every relation is built here, so
    /// the zero-arity invariant lives in exactly one place. Freezes an
    /// owned buffer into the shared representation (empty buffers
    /// collapse onto the process-wide empty buffer).
    fn new(cols: Vec<ColId>, data: Vec<u32>) -> Self {
        assert!(!cols.is_empty(), "relations need at least one column");
        debug_assert_eq!(data.len() % cols.len(), 0, "flat data must be row-major");
        let data = if data.is_empty() {
            empty_data()
        } else {
            Arc::new(data)
        };
        Relation { cols, data }
    }

    /// An empty relation with the given columns. All empty relations
    /// share one static row buffer — no per-call allocation of row data.
    pub fn empty(cols: Vec<ColId>) -> Self {
        Relation::new(cols, Vec::new())
    }

    /// Builds a canonical relation from rows.
    pub fn from_rows(cols: Vec<ColId>, rows: impl IntoIterator<Item = Vec<u32>>) -> Self {
        let arity = cols.len();
        let mut data = Vec::new();
        for row in rows {
            assert_eq!(row.len(), arity, "row arity mismatch");
            data.extend_from_slice(&row);
        }
        normalize_flat(arity, &mut data);
        Relation::new(cols, data)
    }

    /// Builds a canonical binary relation from pairs.
    pub fn from_pairs(c1: ColId, c2: ColId, pairs: &[(u32, u32)]) -> Self {
        let mut data = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            data.push(a);
            data.push(b);
        }
        normalize_flat(2, &mut data);
        Relation::new(vec![c1, c2], data)
    }

    /// Column ids.
    pub fn cols(&self) -> &[ColId] {
        &self.cols
    }

    /// Number of columns (at least one, by construction).
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.cols.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[u32] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.arity())
    }

    /// Iterates over the rows of one morsel: the contiguous row range
    /// `start..end`. Because the data is flat and shared, a morsel is
    /// pointer arithmetic over the same `Arc` buffer — partitioning a
    /// probe side across workers never copies a row.
    pub fn rows_range(&self, start: usize, end: usize) -> impl Iterator<Item = &[u32]> {
        let a = self.arity();
        self.data[start * a..end * a].chunks_exact(a)
    }

    /// The flattened row-major data (for arity-1 relations: the sorted
    /// value set). Used by the storage layer to expose node-label sets.
    pub(crate) fn flat(&self) -> &[u32] {
        &self.data
    }

    /// Whether two relations share the same underlying row buffer — the
    /// zero-copy pin used by tests: a cloned or positionally renamed
    /// base-table scan must share, never copy.
    pub fn shares_data(&self, other: &Relation) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Materialises an owned copy of the row data, breaking sharing —
    /// the pre-zero-copy clone path, kept so benches and tests can
    /// measure what every scan used to cost.
    pub fn deep_clone(&self) -> Relation {
        Relation {
            cols: self.cols.clone(),
            data: Arc::new(self.data.as_ref().clone()),
        }
    }

    /// Index of a column by id.
    pub fn col_index(&self, col: ColId) -> Option<usize> {
        self.cols.iter().position(|&c| c == col)
    }

    /// `π_cols` with set semantics (duplicates removed).
    pub fn project(&self, cols: &[ColId]) -> Relation {
        let positions: Vec<usize> = cols
            .iter()
            .map(|&c| self.col_index(c).expect("projection column must exist"))
            .collect();
        let mut data = Vec::with_capacity(self.len() * cols.len());
        for row in self.rows() {
            for &p in &positions {
                data.push(row[p]);
            }
        }
        // Projecting onto a prefix of the lexicographic sort key keeps
        // rows sorted; only duplicates can appear.
        if positions.iter().copied().eq(0..positions.len()) {
            dedup_sorted_flat(positions.len(), &mut data);
        } else {
            normalize_flat(positions.len(), &mut data);
        }
        Relation::new(cols.to_vec(), data)
    }

    /// `ρ_{from→to}`. Renaming never touches row data: the result shares
    /// the input's buffer.
    pub fn rename(&self, from: ColId, to: ColId) -> Relation {
        let mut cols = self.cols.clone();
        let i = self.col_index(from).expect("renamed column must exist");
        cols[i] = to;
        Relation {
            cols,
            data: Arc::clone(&self.data),
        }
    }

    /// Renames columns positionally to `cols`, sharing the row buffer.
    pub fn with_cols(&self, cols: Vec<ColId>) -> Relation {
        assert_eq!(cols.len(), self.arity());
        Relation {
            cols,
            data: Arc::clone(&self.data),
        }
    }

    /// Consuming [`Relation::with_cols`]: renames columns positionally
    /// without copying the row data — the physical executor's zero-copy
    /// rename.
    pub fn into_cols(self, cols: Vec<ColId>) -> Relation {
        assert_eq!(cols.len(), self.arity());
        Relation {
            cols,
            data: self.data,
        }
    }

    /// Builds a canonical relation from flattened row data (row-major,
    /// `data.len()` a multiple of `cols.len()`).
    pub(crate) fn from_flat(cols: Vec<ColId>, mut data: Vec<u32>) -> Relation {
        normalize_flat(cols.len(), &mut data);
        Relation::new(cols, data)
    }

    /// Builds a relation from flattened row data the caller guarantees is
    /// already canonical (sorted, deduplicated) — e.g. a merge join's
    /// output.
    pub(crate) fn from_flat_sorted(cols: Vec<ColId>, data: Vec<u32>) -> Relation {
        let rel = Relation::new(cols, data);
        debug_assert!(
            rel.rows().zip(rel.rows().skip(1)).all(|(a, b)| a < b),
            "from_flat_sorted requires canonical input"
        );
        rel
    }

    /// Builds a canonical relation from per-morsel output runs, each
    /// already canonical (sorted + deduplicated by its worker): a
    /// balanced k-way merge-dedup, so the result is bit-identical to
    /// normalising the concatenation — the guarantee that makes
    /// parallel execution indistinguishable from serial.
    pub(crate) fn merge_sorted_runs(cols: Vec<ColId>, mut runs: Vec<Vec<u32>>) -> Relation {
        let arity = cols.len();
        runs.retain(|r| !r.is_empty());
        // Balanced pairwise merging: each row moves O(log k) times.
        while runs.len() > 1 {
            let mut next = Vec::with_capacity(runs.len().div_ceil(2));
            let mut it = runs.into_iter();
            while let Some(a) = it.next() {
                match it.next() {
                    Some(b) => next.push(merge_dedup_flat(arity, &a, &b)),
                    None => next.push(a),
                }
            }
            runs = next;
        }
        Relation::from_flat_sorted(cols, runs.pop().unwrap_or_default())
    }

    /// `σ_{a = b}` by column positions: keeps rows whose two columns
    /// coincide. Filtering preserves canonical order, so no re-sort.
    pub fn select_eq_at(&self, ia: usize, ib: usize) -> Relation {
        let mut data = Vec::new();
        for row in self.rows() {
            if row[ia] == row[ib] {
                data.extend_from_slice(row);
            }
        }
        Relation::new(self.cols.clone(), data)
    }

    /// Natural join on shared column ids (hash join, smaller side built).
    pub fn join(&self, other: &Relation) -> Relation {
        self.join_checked(other, &mut || Ok(()))
            .expect("no-op poll cannot fail")
    }

    /// [`Relation::join`] with a cooperative poll invoked periodically
    /// inside the probe loop, so deadlines fire mid-operator.
    pub fn join_checked(
        &self,
        other: &Relation,
        poll: &mut dyn FnMut() -> Result<()>,
    ) -> Result<Relation> {
        let shared: Vec<ColId> = self
            .cols
            .iter()
            .filter(|&&c| other.col_index(c).is_some())
            .copied()
            .collect();
        let (build, probe, build_is_self) = if self.len() <= other.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let build_key: Vec<usize> = shared
            .iter()
            .map(|&c| build.col_index(c).unwrap())
            .collect();
        let probe_key: Vec<usize> = shared
            .iter()
            .map(|&c| probe.col_index(c).unwrap())
            .collect();
        // Output schema: self's cols then other's non-shared cols.
        let extra: Vec<(usize, ColId)> = other
            .cols
            .iter()
            .enumerate()
            .filter(|(_, &c)| self.col_index(c).is_none())
            .map(|(i, &c)| (i, c))
            .collect();
        let out_cols: Vec<ColId> = self
            .cols
            .iter()
            .copied()
            .chain(extra.iter().map(|&(_, c)| c))
            .collect();

        let mut data: Vec<u32> = Vec::new();
        {
            let mut emit = |build_row: &[u32], probe_row: &[u32]| {
                let (self_row, other_row) = if build_is_self {
                    (build_row, probe_row)
                } else {
                    (probe_row, build_row)
                };
                data.extend_from_slice(self_row);
                for &(oi, _) in &extra {
                    data.push(other_row[oi]);
                }
            };
            // The dominant case is a one-column (arity-2 ⋈ arity-2) join:
            // key on a single u32 instead of hashing a Vec per row.
            match build_key.len() {
                0 => hash_join(build, probe, |_| (), |_| (), &mut emit, poll)?,
                1 => {
                    let (bk, pk) = (build_key[0], probe_key[0]);
                    hash_join(build, probe, |r| r[bk], |r| r[pk], &mut emit, poll)?;
                }
                2 => {
                    let (b0, b1) = (build_key[0], build_key[1]);
                    let (p0, p1) = (probe_key[0], probe_key[1]);
                    hash_join(
                        build,
                        probe,
                        |r| pack2(r[b0], r[b1]),
                        |r| pack2(r[p0], r[p1]),
                        &mut emit,
                        poll,
                    )?;
                }
                _ => hash_join(
                    build,
                    probe,
                    |r| build_key.iter().map(|&k| r[k]).collect::<Vec<u32>>(),
                    |r| probe_key.iter().map(|&k| r[k]).collect::<Vec<u32>>(),
                    &mut emit,
                    poll,
                )?,
            }
        }
        normalize_flat(out_cols.len(), &mut data);
        Ok(Relation::new(out_cols, data))
    }

    /// Semi-join `self ⋉ other` on shared column ids. Filtering preserves
    /// canonical order, so the result needs no re-sort.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        self.semijoin_checked(other, &mut || Ok(()))
            .expect("no-op poll cannot fail")
    }

    /// [`Relation::semijoin`] with a cooperative poll invoked periodically
    /// inside the scan loop.
    pub fn semijoin_checked(
        &self,
        other: &Relation,
        poll: &mut dyn FnMut() -> Result<()>,
    ) -> Result<Relation> {
        let shared: Vec<ColId> = self
            .cols
            .iter()
            .filter(|&&c| other.col_index(c).is_some())
            .copied()
            .collect();
        if shared.is_empty() {
            return Ok(if other.is_empty() {
                Relation::empty(self.cols.clone())
            } else {
                self.clone()
            });
        }
        let self_key: Vec<usize> = shared.iter().map(|&c| self.col_index(c).unwrap()).collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|&c| other.col_index(c).unwrap())
            .collect();
        let data = match self_key.len() {
            // Single-u32 keys: the dominant label-filter semi-join.
            1 => {
                let (sk, ok) = (self_key[0], other_key[0]);
                semi_filter(self, other, |r| r[sk], |r| r[ok], poll)?
            }
            2 => {
                let (s0, s1) = (self_key[0], self_key[1]);
                let (o0, o1) = (other_key[0], other_key[1]);
                semi_filter(
                    self,
                    other,
                    |r| pack2(r[s0], r[s1]),
                    |r| pack2(r[o0], r[o1]),
                    poll,
                )?
            }
            _ => semi_filter(
                self,
                other,
                |r| self_key.iter().map(|&k| r[k]).collect::<Vec<u32>>(),
                |r| other_key.iter().map(|&k| r[k]).collect::<Vec<u32>>(),
                poll,
            )?,
        };
        Ok(Relation::new(self.cols.clone(), data))
    }

    /// Union (same column ids required). Both inputs are canonical, so
    /// the result is a linear merge — no re-sort.
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.cols, other.cols, "union requires identical schemas");
        let arity = self.arity();
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (n, m) = (self.len(), other.len());
        while i < n && j < m {
            match self.row(i).cmp(other.row(j)) {
                std::cmp::Ordering::Less => {
                    data.extend_from_slice(self.row(i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    data.extend_from_slice(other.row(j));
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    data.extend_from_slice(self.row(i));
                    i += 1;
                    j += 1;
                }
            }
        }
        data.extend_from_slice(&self.data[i * arity..]);
        data.extend_from_slice(&other.data[j * arity..]);
        Relation::new(self.cols.clone(), data)
    }

    /// Difference `self \ other` (same column ids; both canonical).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.cols, other.cols);
        let mut data = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let (n, m) = (self.len(), other.len());
        while i < n && j < m {
            match self.row(i).cmp(other.row(j)) {
                std::cmp::Ordering::Less => {
                    data.extend_from_slice(self.row(i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < n {
            data.extend_from_slice(self.row(i));
            i += 1;
        }
        Relation::new(self.cols.clone(), data)
    }

    /// Union of many relations with identical schemas, normalised once —
    /// replaces a fold of pairwise unions (which re-merges the
    /// accumulated result k times) with a single collect-then-normalize.
    /// A single-element union returns that relation unchanged (sharing
    /// its buffer).
    pub fn union_many(rels: Vec<Relation>) -> Relation {
        let mut it = rels.into_iter();
        let Some(first) = it.next() else {
            panic!("union_many requires at least one relation");
        };
        let mut it = it.peekable();
        if it.peek().is_none() {
            return first;
        }
        let mut data = Vec::new();
        data.extend_from_slice(&first.data);
        for rel in it {
            assert_eq!(first.cols, rel.cols, "union requires identical schemas");
            data.extend_from_slice(&rel.data);
        }
        normalize_flat(first.cols.len(), &mut data);
        Relation::new(first.cols, data)
    }

    /// Merge join on the shared `key_len`-column prefix. Both inputs must
    /// be canonical and agree on their first `key_len` column ids; the
    /// output (self's columns, then other's non-key columns) is emitted
    /// in canonical order, so no hash table is built and no re-sort runs.
    pub fn merge_join_checked(
        &self,
        other: &Relation,
        key_len: usize,
        poll: &mut dyn FnMut() -> Result<()>,
    ) -> Result<Relation> {
        assert!(key_len >= 1, "merge join requires at least one key column");
        assert_eq!(
            &self.cols[..key_len],
            &other.cols[..key_len],
            "merge join requires a shared key prefix"
        );
        let out_cols: Vec<ColId> = self
            .cols
            .iter()
            .chain(&other.cols[key_len..])
            .copied()
            .collect();
        let (n, m) = (self.len(), other.len());
        let mut data: Vec<u32> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let mut steps = 0usize;
        while i < n && j < m {
            steps += 1;
            if steps & POLL_MASK == 0 {
                poll()?;
            }
            let a = &self.row(i)[..key_len];
            let b = &other.row(j)[..key_len];
            match a.cmp(b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Cross the two equal-key groups. Left rows ascend on
                    // their remainder and right rows on theirs, so the
                    // nested emission below is already in output order.
                    let i2 = (i..n).find(|&r| &self.row(r)[..key_len] != a).unwrap_or(n);
                    let j2 = (j..m).find(|&r| &other.row(r)[..key_len] != b).unwrap_or(m);
                    for li in i..i2 {
                        for rj in j..j2 {
                            steps += 1;
                            if steps & POLL_MASK == 0 {
                                poll()?;
                            }
                            data.extend_from_slice(self.row(li));
                            data.extend_from_slice(&other.row(rj)[key_len..]);
                        }
                    }
                    i = i2;
                    j = j2;
                }
            }
        }
        Ok(Relation::from_flat_sorted(out_cols, data))
    }

    /// Merge semi-join on the shared `key_len`-column prefix: keeps
    /// self's rows whose key prefix appears in `other`, by a linear walk
    /// of both canonical inputs — no hash set is built.
    pub fn merge_semijoin_checked(
        &self,
        other: &Relation,
        key_len: usize,
        poll: &mut dyn FnMut() -> Result<()>,
    ) -> Result<Relation> {
        assert!(
            key_len >= 1,
            "merge semi-join requires at least one key column"
        );
        assert_eq!(
            &self.cols[..key_len],
            &other.cols[..key_len],
            "merge semi-join requires a shared key prefix"
        );
        let (n, m) = (self.len(), other.len());
        let mut data: Vec<u32> = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let mut steps = 0usize;
        while i < n && j < m {
            steps += 1;
            if steps & POLL_MASK == 0 {
                poll()?;
            }
            let a = &self.row(i)[..key_len];
            let b = &other.row(j)[..key_len];
            match a.cmp(b) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    // Keep the left row; the next left row may share the
                    // same key, so only the left cursor advances.
                    data.extend_from_slice(self.row(i));
                    i += 1;
                }
            }
        }
        Ok(Relation::new(self.cols.clone(), data))
    }
}

/// Merges two canonical flat buffers into one canonical flat buffer
/// (the flat-buffer counterpart of [`Relation::union`]).
fn merge_dedup_flat(arity: usize, a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    let (n, m) = (a.len() / arity, b.len() / arity);
    while i < n && j < m {
        let ra = &a[i * arity..(i + 1) * arity];
        let rb = &b[j * arity..(j + 1) * arity];
        match ra.cmp(rb) {
            std::cmp::Ordering::Less => {
                out.extend_from_slice(ra);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.extend_from_slice(rb);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.extend_from_slice(ra);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i * arity..]);
    out.extend_from_slice(&b[j * arity..]);
    out
}

/// Sorts rows of a flat row-major buffer lexicographically and removes
/// duplicates. `arity` must be at least one.
pub(crate) fn normalize_flat(arity: usize, data: &mut Vec<u32>) {
    if data.is_empty() {
        return;
    }
    debug_assert!(arity >= 1);
    let n = data.len() / arity;
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_unstable_by(|&a, &b| {
        data[a as usize * arity..(a as usize + 1) * arity]
            .cmp(&data[b as usize * arity..(b as usize + 1) * arity])
    });
    let mut out = Vec::with_capacity(data.len());
    let mut last: Option<&[u32]> = None;
    for &i in &idx {
        let row = &data[i as usize * arity..(i as usize + 1) * arity];
        if last != Some(row) {
            out.extend_from_slice(row);
        }
        last = Some(row);
    }
    *data = out;
}

/// Removes adjacent duplicate rows from a flat buffer (sufficient when
/// rows are already sorted, e.g. after a prefix projection).
fn dedup_sorted_flat(arity: usize, data: &mut Vec<u32>) {
    if data.is_empty() {
        return;
    }
    debug_assert!(arity >= 1);
    let mut out = Vec::with_capacity(data.len());
    let mut last: Option<&[u32]> = None;
    for row in data.chunks_exact(arity) {
        if last != Some(row) {
            out.extend_from_slice(row);
        }
        last = Some(row);
    }
    *data = out;
}

/// A hash index over a build-side relation, keyed on a fixed set of
/// column positions. Building it is the expensive half of a hash join;
/// the physical executor builds it once per static fixpoint input and
/// probes it with every round's delta.
#[derive(Debug)]
pub enum JoinIndex {
    /// No shared columns: every build row matches every probe row.
    All(Vec<u32>),
    /// Single-column key (the dominant arity-2 join).
    One(FxHashMap<u32, Vec<u32>>),
    /// Two-column key packed into one `u64`.
    Two(FxHashMap<u64, Vec<u32>>),
    /// Three or more key columns.
    Wide(FxHashMap<Vec<u32>, Vec<u32>>),
}

impl JoinIndex {
    /// Builds the index over `rel`'s rows keyed at `key_pos`, polling the
    /// cooperative deadline every few thousand rows.
    pub fn build(
        rel: &Relation,
        key_pos: &[usize],
        poll: &mut dyn FnMut() -> Result<()>,
    ) -> Result<JoinIndex> {
        Ok(match key_pos.len() {
            0 => JoinIndex::All((0..rel.len() as u32).collect()),
            1 => {
                let k = key_pos[0];
                let mut map: FxHashMap<u32, Vec<u32>> = FxHashMap::default();
                for (i, row) in rel.rows().enumerate() {
                    if i & POLL_MASK == 0 {
                        poll()?;
                    }
                    map.entry(row[k]).or_default().push(i as u32);
                }
                JoinIndex::One(map)
            }
            2 => {
                let (k0, k1) = (key_pos[0], key_pos[1]);
                let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
                for (i, row) in rel.rows().enumerate() {
                    if i & POLL_MASK == 0 {
                        poll()?;
                    }
                    map.entry(pack2(row[k0], row[k1]))
                        .or_default()
                        .push(i as u32);
                }
                JoinIndex::Two(map)
            }
            _ => {
                let mut map: FxHashMap<Vec<u32>, Vec<u32>> = FxHashMap::default();
                for (i, row) in rel.rows().enumerate() {
                    if i & POLL_MASK == 0 {
                        poll()?;
                    }
                    let key: Vec<u32> = key_pos.iter().map(|&k| row[k]).collect();
                    map.entry(key).or_default().push(i as u32);
                }
                JoinIndex::Wide(map)
            }
        })
    }

    /// The build-row indices matching a probe row keyed at `key_pos`.
    pub fn probe(&self, row: &[u32], key_pos: &[usize]) -> &[u32] {
        const EMPTY: &[u32] = &[];
        match self {
            JoinIndex::All(all) => all,
            JoinIndex::One(map) => map
                .get(&row[key_pos[0]])
                .map(Vec::as_slice)
                .unwrap_or(EMPTY),
            JoinIndex::Two(map) => map
                .get(&pack2(row[key_pos[0]], row[key_pos[1]]))
                .map(Vec::as_slice)
                .unwrap_or(EMPTY),
            JoinIndex::Wide(map) => {
                let key: Vec<u32> = key_pos.iter().map(|&k| row[k]).collect();
                map.get(&key).map(Vec::as_slice).unwrap_or(EMPTY)
            }
        }
    }
}

/// The key set of a semi-join's right side — the build half of a hash
/// semi-join, reusable across fixpoint rounds exactly like
/// [`JoinIndex`].
#[derive(Debug)]
pub enum SemiKeys {
    /// No shared columns: the semi-join keeps everything or nothing,
    /// depending on whether the right side was non-empty.
    Any(bool),
    /// Single-column key.
    One(FxHashSet<u32>),
    /// Two-column key packed into one `u64`.
    Two(FxHashSet<u64>),
    /// Three or more key columns.
    Wide(FxHashSet<Vec<u32>>),
}

impl SemiKeys {
    /// Collects `rel`'s keys at `key_pos`, polling periodically.
    pub fn build(
        rel: &Relation,
        key_pos: &[usize],
        poll: &mut dyn FnMut() -> Result<()>,
    ) -> Result<SemiKeys> {
        Ok(match key_pos.len() {
            0 => SemiKeys::Any(!rel.is_empty()),
            1 => {
                let k = key_pos[0];
                let mut set: FxHashSet<u32> = FxHashSet::default();
                for (i, row) in rel.rows().enumerate() {
                    if i & POLL_MASK == 0 {
                        poll()?;
                    }
                    set.insert(row[k]);
                }
                SemiKeys::One(set)
            }
            2 => {
                let (k0, k1) = (key_pos[0], key_pos[1]);
                let mut set: FxHashSet<u64> = FxHashSet::default();
                for (i, row) in rel.rows().enumerate() {
                    if i & POLL_MASK == 0 {
                        poll()?;
                    }
                    set.insert(pack2(row[k0], row[k1]));
                }
                SemiKeys::Two(set)
            }
            _ => {
                let mut set: FxHashSet<Vec<u32>> = FxHashSet::default();
                for (i, row) in rel.rows().enumerate() {
                    if i & POLL_MASK == 0 {
                        poll()?;
                    }
                    set.insert(key_pos.iter().map(|&k| row[k]).collect::<Vec<u32>>());
                }
                SemiKeys::Wide(set)
            }
        })
    }

    /// Whether a left row keyed at `key_pos` has a match.
    pub fn contains(&self, row: &[u32], key_pos: &[usize]) -> bool {
        match self {
            SemiKeys::Any(non_empty) => *non_empty,
            SemiKeys::One(set) => set.contains(&row[key_pos[0]]),
            SemiKeys::Two(set) => set.contains(&pack2(row[key_pos[0]], row[key_pos[1]])),
            SemiKeys::Wide(set) => {
                let key: Vec<u32> = key_pos.iter().map(|&k| row[k]).collect();
                set.contains(&key)
            }
        }
    }
}

/// Hash-join skeleton shared by all key widths: builds an index over
/// `build`, probes with `probe`, polling every [`POLL_MASK`]+1 rows.
fn hash_join<K: Eq + Hash>(
    build: &Relation,
    probe: &Relation,
    build_key: impl Fn(&[u32]) -> K,
    probe_key: impl Fn(&[u32]) -> K,
    emit: &mut impl FnMut(&[u32], &[u32]),
    poll: &mut dyn FnMut() -> Result<()>,
) -> Result<()> {
    let mut index: FxHashMap<K, Vec<u32>> = FxHashMap::default();
    for (i, row) in build.rows().enumerate() {
        if i & POLL_MASK == 0 {
            poll()?;
        }
        index.entry(build_key(row)).or_default().push(i as u32);
    }
    for (i, probe_row) in probe.rows().enumerate() {
        if i & POLL_MASK == 0 {
            poll()?;
        }
        if let Some(matches) = index.get(&probe_key(probe_row)) {
            for &bi in matches {
                emit(build.row(bi as usize), probe_row);
            }
        }
    }
    Ok(())
}

/// Semi-join skeleton shared by all key widths: hashes `other`'s keys,
/// filters `left`'s rows in order, polling every [`POLL_MASK`]+1 rows.
fn semi_filter<K: Eq + Hash>(
    left: &Relation,
    other: &Relation,
    left_key: impl Fn(&[u32]) -> K,
    other_key: impl Fn(&[u32]) -> K,
    poll: &mut dyn FnMut() -> Result<()>,
) -> Result<Vec<u32>> {
    let mut keys: FxHashSet<K> = FxHashSet::default();
    for (i, row) in other.rows().enumerate() {
        if i & POLL_MASK == 0 {
            poll()?;
        }
        keys.insert(other_key(row));
    }
    let mut data = Vec::new();
    for (i, row) in left.rows().enumerate() {
        if i & POLL_MASK == 0 {
            poll()?;
        }
        if keys.contains(&left_key(row)) {
            data.extend_from_slice(row);
        }
    }
    Ok(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(i: u32) -> ColId {
        ColId::new(i)
    }

    fn rel(cols: &[u32], rows: &[&[u32]]) -> Relation {
        Relation::from_rows(
            cols.iter().map(|&i| c(i)).collect(),
            rows.iter().map(|r| r.to_vec()),
        )
    }

    #[test]
    fn canonicalisation() {
        let r = rel(&[0, 1], &[&[2, 1], &[1, 1], &[2, 1]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[1, 1]);
        assert_eq!(r.row(1), &[2, 1]);
    }

    #[test]
    fn project_dedups() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[2, 2]]);
        let p = r.project(&[c(0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.cols(), &[c(0)]);
    }

    #[test]
    fn project_non_prefix_resorts() {
        let r = rel(&[0, 1], &[&[1, 5], &[1, 9], &[2, 0]]);
        let p = r.project(&[c(1)]);
        assert_eq!(p.cols(), &[c(1)]);
        let rows: Vec<u32> = p.rows().map(|r| r[0]).collect();
        assert_eq!(rows, vec![0, 5, 9]);
    }

    #[test]
    fn rename_changes_schema() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let r2 = r.rename(c(0), c(7));
        assert_eq!(r2.cols(), &[c(7), c(1)]);
        assert_eq!(r2.row(0), &[1, 2]);
    }

    #[test]
    fn natural_join() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[1, 2], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = r.join(&s);
        assert_eq!(j.cols(), &[c(0), c(1), c(2)]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.row(0), &[1, 10, 100]);
        assert_eq!(j.row(1), &[1, 10, 101]);
    }

    #[test]
    fn join_without_shared_cols_is_cartesian() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[1], &[&[7]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.arity(), 2);
    }

    #[test]
    fn join_on_two_columns() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let s = rel(&[0, 1], &[&[1, 2], &[3, 5]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0), &[1, 2]);
    }

    #[test]
    fn join_on_three_columns_uses_wide_keys() {
        let r = rel(&[0, 1, 2], &[&[1, 2, 3], &[4, 5, 6]]);
        let s = rel(&[0, 1, 2], &[&[1, 2, 3], &[4, 5, 7]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0), &[1, 2, 3]);
    }

    #[test]
    fn semijoin_filters() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let f = rel(&[0], &[&[1]]);
        let sj = r.semijoin(&f);
        assert_eq!(sj.len(), 1);
        assert_eq!(sj.row(0), &[1, 10]);
    }

    #[test]
    fn semijoin_no_shared_cols() {
        let r = rel(&[0], &[&[1]]);
        let non_empty = rel(&[5], &[&[9]]);
        assert_eq!(r.semijoin(&non_empty), r);
        let empty = Relation::empty(vec![c(5)]);
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    fn union_and_difference() {
        let r = rel(&[0], &[&[1], &[2]]);
        let s = rel(&[0], &[&[2], &[3]]);
        assert_eq!(r.union(&s).len(), 3);
        let d = r.difference(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0), &[1]);
    }

    #[test]
    fn select_eq_keeps_matching_rows() {
        let r = rel(&[0, 1], &[&[1, 1], &[1, 2], &[3, 3]]);
        let s = r.select_eq_at(0, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.row(0), &[1, 1]);
        assert_eq!(s.row(1), &[3, 3]);
    }

    #[test]
    fn with_cols_positional() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let r2 = r.with_cols(vec![c(8), c(9)]);
        assert_eq!(r2.cols(), &[c(8), c(9)]);
    }

    #[test]
    fn merge_join_matches_hash_join() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 11], &[2, 20]]);
        let s = rel(&[0, 2], &[&[1, 100], &[1, 101], &[3, 300]]);
        let mj = r.merge_join_checked(&s, 1, &mut || Ok(())).unwrap();
        let hj = r.join(&s);
        assert_eq!(mj, hj);
        assert_eq!(mj.cols(), &[c(0), c(1), c(2)]);
        assert_eq!(mj.len(), 4);
    }

    #[test]
    fn merge_join_full_key() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        let s = rel(&[0, 1], &[&[1, 2], &[3, 5]]);
        let mj = r.merge_join_checked(&s, 2, &mut || Ok(())).unwrap();
        assert_eq!(mj, r.join(&s));
    }

    #[test]
    fn merge_semijoin_matches_hash_semijoin() {
        let r = rel(&[0, 1], &[&[1, 10], &[1, 11], &[2, 20], &[3, 30]]);
        let f = rel(&[0], &[&[1], &[3]]);
        let msj = r.merge_semijoin_checked(&f, 1, &mut || Ok(())).unwrap();
        assert_eq!(msj, r.semijoin(&f));
        assert_eq!(msj.len(), 3);
    }

    #[test]
    fn union_many_matches_pairwise_fold() {
        let a = rel(&[0], &[&[1], &[4]]);
        let b = rel(&[0], &[&[2], &[4]]);
        let d = rel(&[0], &[&[0], &[9]]);
        let folded = a.union(&b).union(&d);
        let many = Relation::union_many(vec![a, b, d]);
        assert_eq!(many, folded);
    }

    #[test]
    fn into_cols_is_zero_copy_rename() {
        let r = rel(&[0, 1], &[&[1, 2]]);
        let renamed = r.clone().into_cols(vec![c(8), c(9)]);
        assert_eq!(renamed.cols(), &[c(8), c(9)]);
        assert_eq!(renamed.row(0), &[1, 2]);
        assert!(renamed.shares_data(&r), "into_cols must not copy rows");
    }

    #[test]
    fn clones_and_renames_share_row_data() {
        let r = rel(&[0, 1], &[&[1, 2], &[3, 4]]);
        assert!(r.clone().shares_data(&r), "clone must not copy rows");
        assert!(
            r.rename(c(0), c(7)).shares_data(&r),
            "rename must not copy rows"
        );
        assert!(
            r.with_cols(vec![c(8), c(9)]).shares_data(&r),
            "with_cols must not copy rows"
        );
        let deep = r.deep_clone();
        assert_eq!(deep, r);
        assert!(!deep.shares_data(&r), "deep_clone must break sharing");
    }

    #[test]
    fn empty_relations_share_one_static_buffer() {
        let a = Relation::empty(vec![c(0), c(1)]);
        let b = Relation::empty(vec![c(5)]);
        assert!(a.shares_data(&b), "all empties share the static buffer");
        // An operator producing no rows lands on the same buffer.
        let r = rel(&[0], &[&[1]]);
        let none = r.semijoin(&Relation::empty(vec![c(0)]));
        assert!(none.shares_data(&a));
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn zero_arity_relations_are_rejected() {
        let _ = Relation::from_rows(vec![], std::iter::empty());
    }

    #[test]
    fn join_index_probe_matches_join() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[2, 21]]);
        let idx = JoinIndex::build(&r, &[0], &mut || Ok(())).unwrap();
        assert_eq!(idx.probe(&[2, 0], &[0]).len(), 2);
        assert_eq!(idx.probe(&[7, 0], &[0]).len(), 0);
        let wide = JoinIndex::build(&r, &[0, 1], &mut || Ok(())).unwrap();
        assert_eq!(wide.probe(&[2, 20], &[0, 1]).len(), 1);
    }

    #[test]
    fn semi_keys_contains_matches_semijoin() {
        let f = rel(&[0], &[&[1], &[3]]);
        let keys = SemiKeys::build(&f, &[0], &mut || Ok(())).unwrap();
        assert!(keys.contains(&[1, 99], &[0]));
        assert!(!keys.contains(&[2, 99], &[0]));
        let empty = Relation::empty(vec![c(0)]);
        let any = SemiKeys::build(&empty, &[], &mut || Ok(())).unwrap();
        assert!(!any.contains(&[5], &[]));
    }

    #[test]
    fn rows_range_matches_rows() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20], &[3, 30], &[4, 40]]);
        let mid: Vec<&[u32]> = r.rows_range(1, 3).collect();
        assert_eq!(mid, vec![&[2, 20][..], &[3, 30][..]]);
        let all: Vec<&[u32]> = r.rows_range(0, r.len()).collect();
        assert_eq!(all, r.rows().collect::<Vec<_>>());
        assert_eq!(r.rows_range(2, 2).count(), 0);
    }

    #[test]
    fn merge_sorted_runs_matches_normalized_concat() {
        let cols = vec![c(0), c(1)];
        // Three canonical runs with overlaps, plus an empty run.
        let runs = vec![
            vec![1, 10, 3, 30],
            vec![],
            vec![2, 20, 3, 30],
            vec![1, 10, 9, 90],
        ];
        let merged = Relation::merge_sorted_runs(cols.clone(), runs.clone());
        let concat: Vec<u32> = runs.concat();
        let expect = Relation::from_flat(cols.clone(), concat);
        assert_eq!(merged, expect);
        // All-empty runs collapse onto the shared empty buffer.
        let none = Relation::merge_sorted_runs(cols.clone(), vec![vec![], vec![]]);
        assert!(none.is_empty());
        assert!(none.shares_data(&Relation::empty(cols)));
    }

    #[test]
    fn checked_operators_propagate_poll_errors() {
        let r = rel(&[0, 1], &[&[1, 10], &[2, 20]]);
        let s = rel(&[1, 2], &[&[10, 100]]);
        let mut fail = || Err(sgq_common::SgqError::Timeout { limit_ms: 0 });
        assert!(r.join_checked(&s, &mut fail).is_err());
        assert!(r.semijoin_checked(&s, &mut fail).is_err());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use sgq_common::Rng;

    fn arb_rel(rng: &mut Rng, cols: &[u32]) -> Relation {
        let n = rng.gen_range(0..24);
        let rows: Vec<Vec<u32>> = (0..n)
            .map(|_| {
                (0..cols.len())
                    .map(|_| rng.gen_range(0..12) as u32)
                    .collect()
            })
            .collect();
        Relation::from_rows(cols.iter().map(|&i| ColId::new(i)).collect(), rows)
    }

    /// Natural join agrees with the nested-loop definition.
    #[test]
    fn join_matches_nested_loop() {
        for seed in 0..128u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let r = arb_rel(&mut rng, &[0, 1]);
            let s = arb_rel(&mut rng, &[1, 2]);
            let j = r.join(&s);
            let mut expect: Vec<Vec<u32>> = Vec::new();
            for x in r.rows() {
                for y in s.rows() {
                    if x[1] == y[0] {
                        expect.push(vec![x[0], x[1], y[1]]);
                    }
                }
            }
            let expect =
                Relation::from_rows(vec![ColId::new(0), ColId::new(1), ColId::new(2)], expect);
            assert_eq!(j, expect, "seed {seed}");
        }
    }

    /// Semi-join is the join projected back onto the left schema.
    #[test]
    fn semijoin_matches_projected_join() {
        for seed in 0..128u64 {
            let mut rng = Rng::seed_from_u64(seed ^ 0x5e31_u64);
            let r = arb_rel(&mut rng, &[0, 1]);
            let s = arb_rel(&mut rng, &[1, 2]);
            let sj = r.semijoin(&s);
            let expect = r.join(&s).project(&[ColId::new(0), ColId::new(1)]);
            assert_eq!(sj, expect, "seed {seed}");
        }
    }

    /// Union/difference satisfy (A ∪ B) \ B ⊆ A and A ⊆ (A ∪ B).
    #[test]
    fn union_difference_laws() {
        for seed in 0..128u64 {
            let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37));
            let a = arb_rel(&mut rng, &[0]);
            let b = arb_rel(&mut rng, &[0]);
            let u = a.union(&b);
            let d = u.difference(&b);
            for row in d.rows() {
                assert!(a.rows().any(|r| r == row), "seed {seed}");
            }
            for row in a.rows() {
                assert!(u.rows().any(|r| r == row), "seed {seed}");
            }
            // difference then union restores the union
            assert_eq!(d.union(&b), u, "seed {seed}");
        }
    }

    /// Merge join/semi-join agree with the hash implementations on
    /// prefix-aligned schemas.
    #[test]
    fn merge_operators_match_hash_operators() {
        for seed in 0..128u64 {
            let mut rng = Rng::seed_from_u64(seed ^ 0x6a31);
            let r = arb_rel(&mut rng, &[0, 1]);
            let s = arb_rel(&mut rng, &[0, 2]);
            let mj = r.merge_join_checked(&s, 1, &mut || Ok(())).unwrap();
            assert_eq!(mj, r.join(&s), "merge join seed {seed}");
            let msj = r.merge_semijoin_checked(&s, 1, &mut || Ok(())).unwrap();
            assert_eq!(msj, r.semijoin(&s), "merge semijoin seed {seed}");
        }
    }

    /// Merging per-morsel canonical runs equals normalising the
    /// concatenation — the parallel-join merge invariant.
    #[test]
    fn merge_sorted_runs_matches_serial_normalize() {
        for seed in 0..128u64 {
            let mut rng = Rng::seed_from_u64(seed ^ 0x40a5);
            let k = rng.gen_range(1..6);
            let runs: Vec<Vec<u32>> = (0..k)
                .map(|_| {
                    let mut data: Vec<u32> = (0..rng.gen_range(0..16) * 2)
                        .map(|_| rng.gen_range(0..8) as u32)
                        .collect();
                    normalize_flat(2, &mut data);
                    data
                })
                .collect();
            let cols = vec![ColId::new(0), ColId::new(1)];
            let merged = Relation::merge_sorted_runs(cols.clone(), runs.clone());
            let expect = Relation::from_flat(cols, runs.concat());
            assert_eq!(merged, expect, "seed {seed}");
        }
    }

    /// Projection is idempotent and set-semantic.
    #[test]
    fn project_idempotent() {
        for seed in 0..128u64 {
            let mut rng = Rng::seed_from_u64(seed.rotate_left(7));
            let r = arb_rel(&mut rng, &[0, 1]);
            let p1 = r.project(&[ColId::new(0)]);
            let p2 = p1.project(&[ColId::new(0)]);
            assert_eq!(&p1, &p2, "seed {seed}");
            // no duplicates
            let mut seen = std::collections::HashSet::new();
            for row in p1.rows() {
                assert!(seen.insert(row.to_vec()), "seed {seed}");
            }
        }
    }
}
