//! Set-semantics relations with named columns.
//!
//! Rows are stored flattened (`data[row * arity + col]`) for cache
//! friendliness; every public operation returns a *canonical* relation
//! (rows sorted lexicographically, duplicates removed), which makes
//! equality, union and difference cheap merges.

use sgq_common::FxHashMap;

/// A column name. Query variables become columns `v0`, `v1`, ...; the
/// storage layer uses `Sr` / `Tr` like the paper's Fig. 11.
pub type Col = String;

/// A relation: named columns and flattened `u32` rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    cols: Vec<Col>,
    data: Vec<u32>,
}

impl Relation {
    /// An empty relation with the given columns.
    pub fn empty(cols: Vec<Col>) -> Self {
        assert!(!cols.is_empty(), "relations need at least one column");
        Relation {
            cols,
            data: Vec::new(),
        }
    }

    /// Builds a canonical relation from rows.
    pub fn from_rows(cols: Vec<Col>, rows: impl IntoIterator<Item = Vec<u32>>) -> Self {
        let arity = cols.len();
        let mut data = Vec::new();
        for row in rows {
            assert_eq!(row.len(), arity, "row arity mismatch");
            data.extend_from_slice(&row);
        }
        let mut rel = Relation { cols, data };
        rel.normalize();
        rel
    }

    /// Builds a canonical binary relation from pairs.
    pub fn from_pairs(c1: Col, c2: Col, pairs: &[(u32, u32)]) -> Self {
        let mut data = Vec::with_capacity(pairs.len() * 2);
        for &(a, b) in pairs {
            data.push(a);
            data.push(b);
        }
        let mut rel = Relation {
            cols: vec![c1, c2],
            data,
        };
        rel.normalize();
        rel
    }

    /// Column names.
    pub fn cols(&self) -> &[Col] {
        &self.cols
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        if self.cols.is_empty() {
            0
        } else {
            self.data.len() / self.cols.len()
        }
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row accessor.
    pub fn row(&self, i: usize) -> &[u32] {
        let a = self.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates over rows.
    pub fn rows(&self) -> impl Iterator<Item = &[u32]> {
        self.data.chunks_exact(self.arity().max(1))
    }

    /// Index of a column by name.
    pub fn col_index(&self, col: &str) -> Option<usize> {
        self.cols.iter().position(|c| c == col)
    }

    /// Sorts rows lexicographically and removes duplicates.
    fn normalize(&mut self) {
        let arity = self.arity();
        if arity == 0 || self.data.is_empty() {
            return;
        }
        let n = self.len();
        let mut idx: Vec<u32> = (0..n as u32).collect();
        let data = &self.data;
        idx.sort_unstable_by(|&a, &b| {
            data[a as usize * arity..(a as usize + 1) * arity]
                .cmp(&data[b as usize * arity..(b as usize + 1) * arity])
        });
        let mut out = Vec::with_capacity(self.data.len());
        let mut last: Option<&[u32]> = None;
        for &i in &idx {
            let row = &data[i as usize * arity..(i as usize + 1) * arity];
            if last != Some(row) {
                out.extend_from_slice(row);
            }
            last = Some(row);
        }
        self.data = out;
    }

    /// `π_cols` with set semantics (duplicates removed).
    pub fn project(&self, cols: &[Col]) -> Relation {
        let positions: Vec<usize> = cols
            .iter()
            .map(|c| self.col_index(c).expect("projection column must exist"))
            .collect();
        let mut data = Vec::with_capacity(self.len() * cols.len());
        for row in self.rows() {
            for &p in &positions {
                data.push(row[p]);
            }
        }
        let mut rel = Relation {
            cols: cols.to_vec(),
            data,
        };
        rel.normalize();
        rel
    }

    /// `ρ_{from→to}`. Renaming never touches row data, so canonical form
    /// is preserved without re-sorting.
    pub fn rename(&self, from: &str, to: &str) -> Relation {
        let mut cols = self.cols.clone();
        let i = self.col_index(from).expect("renamed column must exist");
        cols[i] = to.to_string();
        Relation {
            cols,
            data: self.data.clone(),
        }
    }

    /// Renames columns positionally to `cols` (no re-sort needed: row data
    /// is unchanged).
    pub fn with_cols(&self, cols: Vec<Col>) -> Relation {
        assert_eq!(cols.len(), self.arity());
        Relation {
            cols,
            data: self.data.clone(),
        }
    }

    /// Natural join on shared column names (hash join, smaller side built).
    pub fn join(&self, other: &Relation) -> Relation {
        let shared: Vec<Col> = self
            .cols
            .iter()
            .filter(|c| other.col_index(c).is_some())
            .cloned()
            .collect();
        let (build, probe, build_is_self) = if self.len() <= other.len() {
            (self, other, true)
        } else {
            (other, self, false)
        };
        let build_key: Vec<usize> = shared
            .iter()
            .map(|c| build.col_index(c).unwrap())
            .collect();
        let probe_key: Vec<usize> = shared
            .iter()
            .map(|c| probe.col_index(c).unwrap())
            .collect();
        // Output schema: self's cols then other's non-shared cols.
        let extra: Vec<(usize, Col)> = other
            .cols
            .iter()
            .enumerate()
            .filter(|(_, c)| self.col_index(c).is_none())
            .map(|(i, c)| (i, c.clone()))
            .collect();
        let out_cols: Vec<Col> = self
            .cols
            .iter()
            .cloned()
            .chain(extra.iter().map(|(_, c)| c.clone()))
            .collect();

        let mut index: FxHashMap<Vec<u32>, Vec<usize>> = FxHashMap::default();
        for (i, row) in build.rows().enumerate() {
            let key: Vec<u32> = build_key.iter().map(|&k| row[k]).collect();
            index.entry(key).or_default().push(i);
        }
        let mut data: Vec<u32> = Vec::new();
        for probe_row in probe.rows() {
            let key: Vec<u32> = probe_key.iter().map(|&k| probe_row[k]).collect();
            if let Some(matches) = index.get(&key) {
                for &bi in matches {
                    let build_row = build.row(bi);
                    let (self_row, other_row) = if build_is_self {
                        (build_row, probe_row)
                    } else {
                        (probe_row, build_row)
                    };
                    data.extend_from_slice(self_row);
                    for &(oi, _) in &extra {
                        data.push(other_row[oi]);
                    }
                }
            }
        }
        let mut rel = Relation {
            cols: out_cols,
            data,
        };
        rel.normalize();
        rel
    }

    /// Semi-join `self ⋉ other` on shared column names.
    pub fn semijoin(&self, other: &Relation) -> Relation {
        let shared: Vec<Col> = self
            .cols
            .iter()
            .filter(|c| other.col_index(c).is_some())
            .cloned()
            .collect();
        if shared.is_empty() {
            return if other.is_empty() {
                Relation::empty(self.cols.clone())
            } else {
                self.clone()
            };
        }
        let self_key: Vec<usize> = shared.iter().map(|c| self.col_index(c).unwrap()).collect();
        let other_key: Vec<usize> = shared
            .iter()
            .map(|c| other.col_index(c).unwrap())
            .collect();
        let keys: sgq_common::FxHashSet<Vec<u32>> = other
            .rows()
            .map(|row| other_key.iter().map(|&k| row[k]).collect())
            .collect();
        let mut data = Vec::new();
        for row in self.rows() {
            let key: Vec<u32> = self_key.iter().map(|&k| row[k]).collect();
            if keys.contains(&key) {
                data.extend_from_slice(row);
            }
        }
        Relation {
            cols: self.cols.clone(),
            data,
        }
    }

    /// Union (same column names required; canonical merge).
    pub fn union(&self, other: &Relation) -> Relation {
        assert_eq!(self.cols, other.cols, "union requires identical schemas");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        let mut rel = Relation {
            cols: self.cols.clone(),
            data,
        };
        rel.normalize();
        rel
    }

    /// Difference `self \ other` (same column names; both canonical).
    pub fn difference(&self, other: &Relation) -> Relation {
        assert_eq!(self.cols, other.cols);
        let arity = self.arity();
        let mut data = Vec::new();
        let (mut i, mut j) = (0usize, 0usize);
        let (n, m) = (self.len(), other.len());
        while i < n && j < m {
            match self.row(i).cmp(other.row(j)) {
                std::cmp::Ordering::Less => {
                    data.extend_from_slice(self.row(i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        while i < n {
            data.extend_from_slice(self.row(i));
            i += 1;
        }
        let _ = arity;
        Relation {
            cols: self.cols.clone(),
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[&str], rows: &[&[u32]]) -> Relation {
        Relation::from_rows(
            cols.iter().map(|c| c.to_string()).collect(),
            rows.iter().map(|r| r.to_vec()),
        )
    }

    #[test]
    fn canonicalisation() {
        let r = rel(&["a", "b"], &[&[2, 1], &[1, 1], &[2, 1]]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.row(0), &[1, 1]);
        assert_eq!(r.row(1), &[2, 1]);
    }

    #[test]
    fn project_dedups() {
        let r = rel(&["a", "b"], &[&[1, 1], &[1, 2], &[2, 2]]);
        let p = r.project(&["a".to_string()]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.cols(), &["a".to_string()]);
    }

    #[test]
    fn rename_changes_schema() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        let r2 = r.rename("a", "x");
        assert_eq!(r2.cols(), &["x".to_string(), "b".to_string()]);
        assert_eq!(r2.row(0), &[1, 2]);
    }

    #[test]
    fn natural_join() {
        let r = rel(&["a", "b"], &[&[1, 10], &[2, 20]]);
        let s = rel(&["b", "c"], &[&[10, 100], &[10, 101], &[30, 300]]);
        let j = r.join(&s);
        assert_eq!(j.cols(), &["a".to_string(), "b".to_string(), "c".to_string()]);
        assert_eq!(j.len(), 2);
        assert_eq!(j.row(0), &[1, 10, 100]);
        assert_eq!(j.row(1), &[1, 10, 101]);
    }

    #[test]
    fn join_without_shared_cols_is_cartesian() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let s = rel(&["b"], &[&[7]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.arity(), 2);
    }

    #[test]
    fn join_on_two_columns() {
        let r = rel(&["a", "b"], &[&[1, 2], &[3, 4]]);
        let s = rel(&["a", "b"], &[&[1, 2], &[3, 5]]);
        let j = r.join(&s);
        assert_eq!(j.len(), 1);
        assert_eq!(j.row(0), &[1, 2]);
    }

    #[test]
    fn semijoin_filters() {
        let r = rel(&["a", "b"], &[&[1, 10], &[2, 20]]);
        let f = rel(&["a"], &[&[1]]);
        let sj = r.semijoin(&f);
        assert_eq!(sj.len(), 1);
        assert_eq!(sj.row(0), &[1, 10]);
    }

    #[test]
    fn semijoin_no_shared_cols() {
        let r = rel(&["a"], &[&[1]]);
        let non_empty = rel(&["z"], &[&[9]]);
        assert_eq!(r.semijoin(&non_empty), r);
        let empty = Relation::empty(vec!["z".to_string()]);
        assert!(r.semijoin(&empty).is_empty());
    }

    #[test]
    fn union_and_difference() {
        let r = rel(&["a"], &[&[1], &[2]]);
        let s = rel(&["a"], &[&[2], &[3]]);
        assert_eq!(r.union(&s).len(), 3);
        let d = r.difference(&s);
        assert_eq!(d.len(), 1);
        assert_eq!(d.row(0), &[1]);
    }

    #[test]
    fn with_cols_positional() {
        let r = rel(&["a", "b"], &[&[1, 2]]);
        let r2 = r.with_cols(vec!["x".into(), "y".into()]);
        assert_eq!(r2.cols(), &["x".to_string(), "y".to_string()]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_rel(cols: &'static [&'static str]) -> impl Strategy<Value = Relation> {
        proptest::collection::vec(
            proptest::collection::vec(0u32..12, cols.len()),
            0..24,
        )
        .prop_map(move |rows| {
            Relation::from_rows(cols.iter().map(|c| c.to_string()).collect(), rows)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Natural join agrees with the nested-loop definition.
        #[test]
        fn join_matches_nested_loop(r in arb_rel(&["a", "b"]), s in arb_rel(&["b", "c"])) {
            let j = r.join(&s);
            let mut expect: Vec<Vec<u32>> = Vec::new();
            for x in r.rows() {
                for y in s.rows() {
                    if x[1] == y[0] {
                        expect.push(vec![x[0], x[1], y[1]]);
                    }
                }
            }
            let expect = Relation::from_rows(
                vec!["a".into(), "b".into(), "c".into()],
                expect,
            );
            prop_assert_eq!(j, expect);
        }

        /// Semi-join is the join projected back onto the left schema.
        #[test]
        fn semijoin_matches_projected_join(r in arb_rel(&["a", "b"]), s in arb_rel(&["b", "c"])) {
            let sj = r.semijoin(&s);
            let expect = r
                .join(&s)
                .project(&["a".to_string(), "b".to_string()]);
            prop_assert_eq!(sj, expect);
        }

        /// Union/difference satisfy (A ∪ B) \ B ⊆ A and A ⊆ (A ∪ B).
        #[test]
        fn union_difference_laws(a in arb_rel(&["x"]), b in arb_rel(&["x"])) {
            let u = a.union(&b);
            let d = u.difference(&b);
            for row in d.rows() {
                prop_assert!(a.rows().any(|r| r == row));
            }
            for row in a.rows() {
                prop_assert!(u.rows().any(|r| r == row));
            }
            // difference then union restores the union
            prop_assert_eq!(d.union(&b), u);
        }

        /// Projection is idempotent and set-semantic.
        #[test]
        fn project_idempotent(r in arb_rel(&["a", "b"])) {
            let p1 = r.project(&["a".to_string()]);
            let p2 = p1.project(&["a".to_string()]);
            prop_assert_eq!(&p1, &p2);
            // no duplicates
            let mut seen = std::collections::HashSet::new();
            for row in p1.rows() {
                prop_assert!(seen.insert(row.to_vec()));
            }
        }
    }
}
