//! The relational representation of a property graph (the paper's
//! Fig. 11): one binary table `(Sr, Tr)` per edge label and one unary
//! table `(Sr)` per node label.
//!
//! The store also owns the [`SymbolTable`] that defines the column-id
//! space every [`crate::term::RaTerm`] executed against it lives in:
//! translation interns through `store.symbols`, execution and the
//! optimiser compare raw ids, and `explain`/SQL rendering resolves ids
//! back to names.

use sgq_common::{EdgeLabelId, NodeLabelId};
use sgq_graph::{GraphDatabase, GraphStats};

use crate::symbols::SymbolTable;
use crate::table::Relation;

/// Column name used for sources / node ids (paper's `Sr`).
pub const SR: &str = "Sr";
/// Column name used for targets (paper's `Tr`).
pub const TR: &str = "Tr";

/// A column store over a graph database plus its statistics and the
/// symbol table for the terms executed against it.
pub struct RelStore {
    /// Edge tables indexed by edge label id, columns `(Sr, Tr)`.
    edge_tables: Vec<Relation>,
    /// Node tables indexed by node label id, column `(Sr)`.
    node_tables: Vec<Relation>,
    /// Statistics for the cost model.
    pub stats: GraphStats,
    /// Interned column / recursion-variable names for this store's terms.
    pub symbols: SymbolTable,
    /// Selects the pre-stats-v2 textbook estimation heuristics (flat 10%
    /// selection selectivity, `V(c) ≈ min(|rel|, |V|)`, constant fixpoint
    /// growth) instead of the measured statistics. Used by the harness's
    /// `estimates` experiment to quantify the q-error improvement.
    pub v1_estimates: bool,
}

impl RelStore {
    /// Loads a graph database into relational tables (Fig. 11).
    pub fn load(db: &GraphDatabase) -> Self {
        let symbols = SymbolTable::new();
        let mut edge_tables = Vec::with_capacity(db.edge_label_count());
        for le_idx in 0..db.edge_label_count() {
            let le = EdgeLabelId::new(le_idx as u32);
            let pairs: Vec<(u32, u32)> = db
                .edges(le)
                .iter()
                .map(|&(s, t)| (s.raw(), t.raw()))
                .collect();
            edge_tables.push(Relation::from_pairs(
                SymbolTable::SR,
                SymbolTable::TR,
                &pairs,
            ));
        }
        let mut node_tables = Vec::with_capacity(db.node_label_count());
        for l_idx in 0..db.node_label_count() {
            let l = NodeLabelId::new(l_idx as u32);
            let rows = db.nodes_with_label(l).iter().map(|n| vec![n.raw()]);
            node_tables.push(Relation::from_rows(vec![SymbolTable::SR], rows));
        }
        RelStore {
            edge_tables,
            node_tables,
            stats: GraphStats::compute(db),
            symbols,
            v1_estimates: false,
        }
    }

    /// The edge table for `le` (empty if out of range).
    pub fn edge_table(&self, le: EdgeLabelId) -> Relation {
        self.edge_tables
            .get(le.index())
            .cloned()
            .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR, SymbolTable::TR]))
    }

    /// The node table for `l` (empty if out of range).
    pub fn node_table(&self, l: NodeLabelId) -> Relation {
        self.node_tables
            .get(l.index())
            .cloned()
            .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR]))
    }

    /// Number of edge tables.
    pub fn edge_table_count(&self) -> usize {
        self.edge_tables.len()
    }

    /// Number of node tables.
    pub fn node_table_count(&self) -> usize {
        self.node_tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn fig11_tables() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // owns: one row (n2, n1) = (1, 0)
        let owns = store.edge_table(db.edge_label_id("owns").unwrap());
        assert_eq!(owns.len(), 1);
        assert_eq!(owns.row(0), &[1, 0]);
        assert_eq!(owns.cols(), &[SymbolTable::SR, SymbolTable::TR]);
        // isLocatedIn: four rows
        let isl = store.edge_table(db.edge_label_id("isLocatedIn").unwrap());
        assert_eq!(isl.len(), 4);
        // PROPERTY node table: one row (n1 = id 0)
        let prop = store.node_table(db.node_label_id("PROPERTY").unwrap());
        assert_eq!(prop.len(), 1);
        assert_eq!(prop.row(0), &[0]);
        // PERSON node table: two rows
        let person = store.node_table(db.node_label_id("PERSON").unwrap());
        assert_eq!(person.len(), 2);
    }

    #[test]
    fn out_of_range_labels_are_empty() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert!(store.edge_table(EdgeLabelId::new(99)).is_empty());
        assert!(store.node_table(NodeLabelId::new(99)).is_empty());
    }

    #[test]
    fn store_symbols_resolve_storage_columns() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert_eq!(store.symbols.col(SR), SymbolTable::SR);
        assert_eq!(store.symbols.col(TR), SymbolTable::TR);
    }
}
