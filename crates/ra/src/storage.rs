//! The relational representation of a property graph (the paper's
//! Fig. 11): a thin façade over a pluggable physical layout
//! ([`crate::layout::StorageLayout`]).
//!
//! **Zero-copy scans.** Tables hold their rows behind shared buffers
//! ([`Relation`]'s `Arc`-backed data), so [`RelStore::edge_table`] /
//! [`RelStore::node_table`] hand out O(1) handles — a scan never copies
//! the graph. Out-of-range labels return a handle onto the process-wide
//! shared empty buffer instead of allocating.
//!
//! **Pluggable layouts.** [`RelStore::load`] keeps the classic
//! per-label layout (one `(Sr, Tr)` table per edge label);
//! [`RelStore::load_with_layout`] selects any [`LayoutKind`] and
//! [`RelStore::load_advised`] lets the [`crate::layout::LayoutAdvisor`]
//! pick one from the schema. The store's public surface is
//! layout-independent — plus capability probes
//! ([`RelStore::supports_multi_scan`], [`RelStore::has_filtered_table`])
//! the planner uses to decide whether the layout-specific scan
//! operators may be emitted.
//!
//! **Adjacency indexes.** Every layout builds, per edge label, a
//! forward and a reverse [`Csr`] with set semantics (parallel edges
//! deduplicated to match the relational tables), plus it exposes each
//! node table's sorted id set ([`RelStore::node_set`]). The physical
//! planner ([`mod@crate::plan`]) uses these for
//! [`crate::plan::PhysOp::IndexJoin`] / `IndexSemiJoin`: instead of
//! materialising and hashing a base edge table, the executor probes the
//! CSR neighbour lists directly.
//!
//! The store also owns the [`SymbolTable`] that defines the column-id
//! space every [`crate::term::RaTerm`] executed against it lives in:
//! translation interns through `store.symbols`, execution and the
//! optimiser compare raw ids, and `explain`/SQL rendering resolves ids
//! back to names.

use std::sync::Arc;

use sgq_common::{EdgeLabelId, NodeLabelId};
use sgq_graph::{Csr, GraphDatabase, GraphSchema, GraphStats};

use crate::feedback::FeedbackMemo;
use crate::layout::{build_layout, LayoutAdvisor, LayoutKind, StorageLayout};
use crate::symbols::SymbolTable;
use crate::table::Relation;

/// Column name used for sources / node ids (paper's `Sr`).
pub const SR: &str = "Sr";
/// Column name used for targets (paper's `Tr`).
pub const TR: &str = "Tr";

/// A column store over a graph database plus its adjacency indexes,
/// statistics and the symbol table for the terms executed against it.
/// The physical representation lives behind a [`StorageLayout`].
pub struct RelStore {
    /// The physical layout serving scans, CSRs and node sets.
    layout: Box<dyn StorageLayout>,
    /// Statistics for the cost model.
    pub stats: GraphStats,
    /// Interned column / recursion-variable names for this store's terms.
    pub symbols: SymbolTable,
    /// Selects the pre-stats-v2 textbook estimation heuristics (flat 10%
    /// selection selectivity, `V(c) ≈ min(|rel|, |V|)`, constant fixpoint
    /// growth) instead of the measured statistics. Used by the harness's
    /// `estimates` experiment to quantify the q-error improvement.
    pub v1_estimates: bool,
    /// Whether the planner may lower joins against base edge scans into
    /// CSR index probes ([`crate::plan::PhysOp::IndexJoin`]). On by
    /// default; turned off for ablations and for tests that pin the
    /// scan-based strategies.
    pub index_joins: bool,
    /// Runtime cardinality feedback: execution records the true row
    /// counts of static plan subtrees; estimation consults them before
    /// falling back to the statistics formulas. Interior-mutable so the
    /// serving layer's shared `Arc<RelStore>` accumulates feedback from
    /// every worker; cleared on schema changes alongside the plan cache.
    pub feedback: FeedbackMemo,
}

impl RelStore {
    /// Loads a graph database into relational tables (Fig. 11) under the
    /// default per-label layout and builds the per-label CSR adjacency
    /// indexes.
    pub fn load(db: &GraphDatabase) -> Self {
        RelStore::load_with_layout(db, LayoutKind::PerLabel)
    }

    /// Loads a graph database under an explicitly chosen layout. A
    /// polymorphic request over a schema with more than
    /// [`crate::layout::POLY_MAX_LABELS`] edge labels degrades to
    /// per-label (the row bitmask cannot represent it).
    pub fn load_with_layout(db: &GraphDatabase, kind: LayoutKind) -> Self {
        RelStore {
            layout: build_layout(db, kind),
            stats: GraphStats::compute(db),
            symbols: SymbolTable::new(),
            v1_estimates: false,
            index_joins: true,
            feedback: FeedbackMemo::new(),
        }
    }

    /// Loads a graph database under the layout the
    /// [`LayoutAdvisor`] picks for its schema.
    pub fn load_advised(db: &GraphDatabase, schema: &GraphSchema) -> Self {
        let stats = GraphStats::compute(db);
        let kind = LayoutAdvisor::choose(schema, &stats);
        RelStore {
            layout: build_layout(db, kind),
            stats,
            symbols: SymbolTable::new(),
            v1_estimates: false,
            index_joins: true,
            feedback: FeedbackMemo::new(),
        }
    }

    /// Which physical layout this store was loaded with.
    pub fn layout_kind(&self) -> LayoutKind {
        self.layout.kind()
    }

    /// The edge table for `le`: an O(1) shared handle, never a row copy.
    /// Out-of-range labels share the static empty buffer.
    pub fn edge_table(&self, le: EdgeLabelId) -> Relation {
        self.layout.edge_table(le)
    }

    /// The node table for `l`: an O(1) shared handle, never a row copy.
    /// Out-of-range labels share the static empty buffer.
    pub fn node_table(&self, l: NodeLabelId) -> Relation {
        self.layout.node_table(l)
    }

    /// The forward CSR for `le` (targets per source), if in range.
    pub fn forward_csr(&self, le: EdgeLabelId) -> Option<&Csr> {
        self.layout.forward_csr(le)
    }

    /// The reverse CSR for `le` (sources per target), if in range.
    pub fn reverse_csr(&self, le: EdgeLabelId) -> Option<&Csr> {
        self.layout.reverse_csr(le)
    }

    /// Shared handle on the forward CSR for `le` — O(1), lets a morsel
    /// worker own the index for the duration of a parallel probe.
    pub fn forward_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>> {
        self.layout.forward_csr_shared(le)
    }

    /// Shared handle on the reverse CSR for `le`.
    pub fn reverse_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>> {
        self.layout.reverse_csr_shared(le)
    }

    /// The sorted set of node ids carrying label `l` (empty when out of
    /// range) — the membership side of label-filtered index joins.
    pub fn node_set(&self, l: NodeLabelId) -> &[u32] {
        self.layout.node_set(l)
    }

    /// Number of edge tables.
    pub fn edge_table_count(&self) -> usize {
        self.layout.edge_table_count()
    }

    /// Number of node tables.
    pub fn node_table_count(&self) -> usize {
        self.layout.node_table_count()
    }

    /// Total rows of the polymorphic layout's single edge table, when
    /// the store has one — the cost model's input for pricing masked
    /// multi-label scans.
    pub fn poly_rows(&self) -> Option<usize> {
        self.layout.poly_rows()
    }

    /// Whether the layout serves multi-label scans natively
    /// ([`crate::plan::PhysOp::MultiEdgeScan`]).
    pub fn supports_multi_scan(&self) -> bool {
        self.layout.supports_multi_scan()
    }

    /// One canonical `(Sr, Tr)` union of the given labels' tables from
    /// the polymorphic layout, `None` elsewhere.
    pub fn multi_edge_table(&self, labels: &[EdgeLabelId]) -> Option<Relation> {
        self.layout.multi_edge_table(labels)
    }

    /// Whether a precomputed endpoint-label slice of `le`'s table exists
    /// ([`crate::plan::PhysOp::DenormEdgeScan`] is only emitted then).
    pub fn has_filtered_table(
        &self,
        le: EdgeLabelId,
        src: Option<NodeLabelId>,
        tgt: Option<NodeLabelId>,
    ) -> bool {
        self.layout.has_filtered_table(le, src, tgt)
    }

    /// The precomputed endpoint-label slice of `le`'s table, when the
    /// layout denormalises it.
    pub fn filtered_edge_table(
        &self,
        le: EdgeLabelId,
        src: Option<NodeLabelId>,
        tgt: Option<NodeLabelId>,
    ) -> Option<Relation> {
        self.layout.filtered_edge_table(le, src, tgt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_common::NodeId;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn fig11_tables() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // owns: one row (n2, n1) = (1, 0)
        let owns = store.edge_table(db.edge_label_id("owns").unwrap());
        assert_eq!(owns.len(), 1);
        assert_eq!(owns.row(0), &[1, 0]);
        assert_eq!(owns.cols(), &[SymbolTable::SR, SymbolTable::TR]);
        // isLocatedIn: four rows
        let isl = store.edge_table(db.edge_label_id("isLocatedIn").unwrap());
        assert_eq!(isl.len(), 4);
        // PROPERTY node table: one row (n1 = id 0)
        let prop = store.node_table(db.node_label_id("PROPERTY").unwrap());
        assert_eq!(prop.len(), 1);
        assert_eq!(prop.row(0), &[0]);
        // PERSON node table: two rows
        let person = store.node_table(db.node_label_id("PERSON").unwrap());
        assert_eq!(person.len(), 2);
    }

    #[test]
    fn out_of_range_labels_are_empty() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert!(store.edge_table(EdgeLabelId::new(99)).is_empty());
        assert!(store.node_table(NodeLabelId::new(99)).is_empty());
        assert!(store.forward_csr(EdgeLabelId::new(99)).is_none());
        assert!(store.node_set(NodeLabelId::new(99)).is_empty());
    }

    #[test]
    fn out_of_range_lookups_share_one_empty_handle() {
        // Regression: out-of-range lookups used to allocate a fresh
        // `Relation` (fresh `Vec`s) per call. They now share the static
        // empty row buffer across calls and across edge/node tables.
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e1 = store.edge_table(EdgeLabelId::new(98));
        let e2 = store.edge_table(EdgeLabelId::new(99));
        let n1 = store.node_table(NodeLabelId::new(99));
        assert!(e1.shares_data(&e2));
        assert!(e1.shares_data(&n1));
    }

    #[test]
    fn base_table_scans_are_zero_copy() {
        // The tentpole pin: handing out a base table shares the loaded
        // buffer — repeated scans, clones and positional renames never
        // copy row data.
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let le = db.edge_label_id("isLocatedIn").unwrap();
        let t1 = store.edge_table(le);
        let t2 = store.edge_table(le);
        assert!(t1.shares_data(&t2), "repeated scans share the buffer");
        assert!(t1.clone().shares_data(&t1));
        let renamed = t2.into_cols(vec![store.symbols.col("x"), store.symbols.col("y")]);
        assert!(renamed.shares_data(&t1), "positional rename is zero-copy");
        let l = db.node_label_id("CITY").unwrap();
        assert!(store.node_table(l).shares_data(&store.node_table(l)));
    }

    #[test]
    fn polymorphic_scans_are_zero_copy_after_first_slice() {
        // The lazy per-label slices of the polymorphic layout are cached:
        // repeated scans share one buffer just like the eager layouts.
        let db = fig2_yago_database();
        let store = RelStore::load_with_layout(&db, LayoutKind::Polymorphic);
        assert_eq!(store.layout_kind(), LayoutKind::Polymorphic);
        let le = db.edge_label_id("isLocatedIn").unwrap();
        assert!(store.edge_table(le).shares_data(&store.edge_table(le)));
    }

    #[test]
    fn csr_indexes_match_edge_tables() {
        let db = fig2_yago_database();
        for kind in LayoutKind::ALL {
            let store = RelStore::load_with_layout(&db, kind);
            for le_idx in 0..store.edge_table_count() {
                let le = EdgeLabelId::new(le_idx as u32);
                let table = store.edge_table(le);
                let fwd = store.forward_csr(le).expect("in range");
                let rev = store.reverse_csr(le).expect("in range");
                assert_eq!(fwd.edge_count(), table.len(), "set semantics ({kind})");
                assert_eq!(rev.edge_count(), table.len());
                for row in table.rows() {
                    let (s, t) = (NodeId::new(row[0]), NodeId::new(row[1]));
                    assert!(fwd.has_edge(s, t), "forward CSR has {row:?} ({kind})");
                    assert!(rev.has_edge(t, s), "reverse CSR has {row:?} ({kind})");
                }
            }
        }
    }

    #[test]
    fn shared_csr_handles_alias_the_loaded_index() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let le = db.edge_label_id("isLocatedIn").unwrap();
        let shared = store.forward_csr_shared(le).expect("in range");
        assert!(std::ptr::eq(
            Arc::as_ptr(&shared),
            store.forward_csr(le).unwrap()
        ));
        assert!(store.forward_csr_shared(EdgeLabelId::new(99)).is_none());
        assert!(store.reverse_csr_shared(le).is_some());
    }

    #[test]
    fn node_sets_are_sorted_node_ids() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let l = db.node_label_id("CITY").unwrap();
        let set = store.node_set(l);
        assert_eq!(set.len(), store.node_table(l).len());
        assert!(set.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        for &n in set {
            assert!(db.has_label(NodeId::new(n), l));
        }
    }

    #[test]
    fn store_symbols_resolve_storage_columns() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert_eq!(store.symbols.col(SR), SymbolTable::SR);
        assert_eq!(store.symbols.col(TR), SymbolTable::TR);
    }

    #[test]
    fn default_load_is_per_label_and_lacks_capabilities() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert_eq!(store.layout_kind(), LayoutKind::PerLabel);
        assert!(!store.supports_multi_scan());
        assert!(store.poly_rows().is_none());
        let le = db.edge_label_id("owns").unwrap();
        assert!(store.multi_edge_table(&[le]).is_none());
        assert!(!store.has_filtered_table(le, None, None));
    }
}
