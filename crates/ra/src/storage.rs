//! The relational representation of a property graph (the paper's
//! Fig. 11): one binary table `(Sr, Tr)` per edge label and one unary
//! table `(Sr)` per node label.
//!
//! **Zero-copy scans.** Tables hold their rows behind shared buffers
//! ([`Relation`]'s `Arc`-backed data), so [`RelStore::edge_table`] /
//! [`RelStore::node_table`] hand out O(1) handles — a scan never copies
//! the graph. Out-of-range labels return a handle onto the process-wide
//! shared empty buffer instead of allocating.
//!
//! **Adjacency indexes.** At load time the store also builds, per edge
//! label, a forward and a reverse [`Csr`] with set semantics (parallel
//! edges deduplicated to match the relational tables), plus it exposes
//! each node table's sorted id set ([`RelStore::node_set`]). The
//! physical planner ([`mod@crate::plan`]) uses these for
//! [`crate::plan::PhysOp::IndexJoin`] / `IndexSemiJoin`: instead of
//! materialising and hashing a base edge table, the executor probes the
//! CSR neighbour lists directly.
//!
//! The store also owns the [`SymbolTable`] that defines the column-id
//! space every [`crate::term::RaTerm`] executed against it lives in:
//! translation interns through `store.symbols`, execution and the
//! optimiser compare raw ids, and `explain`/SQL rendering resolves ids
//! back to names.

use std::sync::Arc;

use sgq_common::{EdgeLabelId, NodeLabelId};
use sgq_graph::{Csr, GraphDatabase, GraphStats};

use crate::feedback::FeedbackMemo;
use crate::symbols::SymbolTable;
use crate::table::Relation;

/// Column name used for sources / node ids (paper's `Sr`).
pub const SR: &str = "Sr";
/// Column name used for targets (paper's `Tr`).
pub const TR: &str = "Tr";

/// A column store over a graph database plus its adjacency indexes,
/// statistics and the symbol table for the terms executed against it.
pub struct RelStore {
    /// Edge tables indexed by edge label id, columns `(Sr, Tr)`.
    edge_tables: Vec<Relation>,
    /// Node tables indexed by node label id, column `(Sr)`.
    node_tables: Vec<Relation>,
    /// Forward CSR per edge label (set semantics): neighbours of `n` are
    /// the targets of `n`'s out-edges. `Arc`-wrapped so parallel morsel
    /// workers can hold the index read-only without borrowing the store.
    edge_fwd: Vec<Arc<Csr>>,
    /// Reverse CSR per edge label: neighbours of `n` are the sources of
    /// `n`'s in-edges.
    edge_rev: Vec<Arc<Csr>>,
    /// Statistics for the cost model.
    pub stats: GraphStats,
    /// Interned column / recursion-variable names for this store's terms.
    pub symbols: SymbolTable,
    /// Selects the pre-stats-v2 textbook estimation heuristics (flat 10%
    /// selection selectivity, `V(c) ≈ min(|rel|, |V|)`, constant fixpoint
    /// growth) instead of the measured statistics. Used by the harness's
    /// `estimates` experiment to quantify the q-error improvement.
    pub v1_estimates: bool,
    /// Whether the planner may lower joins against base edge scans into
    /// CSR index probes ([`crate::plan::PhysOp::IndexJoin`]). On by
    /// default; turned off for ablations and for tests that pin the
    /// scan-based strategies.
    pub index_joins: bool,
    /// Runtime cardinality feedback: execution records the true row
    /// counts of static plan subtrees; estimation consults them before
    /// falling back to the statistics formulas. Interior-mutable so the
    /// serving layer's shared `Arc<RelStore>` accumulates feedback from
    /// every worker; cleared on schema changes alongside the plan cache.
    pub feedback: FeedbackMemo,
}

impl RelStore {
    /// Loads a graph database into relational tables (Fig. 11) and
    /// builds the per-label CSR adjacency indexes.
    pub fn load(db: &GraphDatabase) -> Self {
        let symbols = SymbolTable::new();
        let node_count = db.node_count();
        let mut edge_tables = Vec::with_capacity(db.edge_label_count());
        let mut edge_fwd = Vec::with_capacity(db.edge_label_count());
        let mut edge_rev = Vec::with_capacity(db.edge_label_count());
        for le_idx in 0..db.edge_label_count() {
            let le = EdgeLabelId::new(le_idx as u32);
            let edges = db.edges(le);
            let pairs: Vec<(u32, u32)> = edges.iter().map(|&(s, t)| (s.raw(), t.raw())).collect();
            edge_tables.push(Relation::from_pairs(
                SymbolTable::SR,
                SymbolTable::TR,
                &pairs,
            ));
            edge_fwd.push(Arc::new(Csr::from_pairs_dedup(node_count, edges)));
            let rev: Vec<_> = edges.iter().map(|&(s, t)| (t, s)).collect();
            edge_rev.push(Arc::new(Csr::from_pairs_dedup(node_count, &rev)));
        }
        let mut node_tables = Vec::with_capacity(db.node_label_count());
        for l_idx in 0..db.node_label_count() {
            let l = NodeLabelId::new(l_idx as u32);
            let rows = db.nodes_with_label(l).iter().map(|n| vec![n.raw()]);
            node_tables.push(Relation::from_rows(vec![SymbolTable::SR], rows));
        }
        RelStore {
            edge_tables,
            node_tables,
            edge_fwd,
            edge_rev,
            stats: GraphStats::compute(db),
            symbols,
            v1_estimates: false,
            index_joins: true,
            feedback: FeedbackMemo::new(),
        }
    }

    /// The edge table for `le`: an O(1) shared handle, never a row copy.
    /// Out-of-range labels share the static empty buffer.
    pub fn edge_table(&self, le: EdgeLabelId) -> Relation {
        self.edge_tables
            .get(le.index())
            .cloned()
            .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR, SymbolTable::TR]))
    }

    /// The node table for `l`: an O(1) shared handle, never a row copy.
    /// Out-of-range labels share the static empty buffer.
    pub fn node_table(&self, l: NodeLabelId) -> Relation {
        self.node_tables
            .get(l.index())
            .cloned()
            .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR]))
    }

    /// The forward CSR for `le` (targets per source), if in range.
    pub fn forward_csr(&self, le: EdgeLabelId) -> Option<&Csr> {
        self.edge_fwd.get(le.index()).map(Arc::as_ref)
    }

    /// The reverse CSR for `le` (sources per target), if in range.
    pub fn reverse_csr(&self, le: EdgeLabelId) -> Option<&Csr> {
        self.edge_rev.get(le.index()).map(Arc::as_ref)
    }

    /// Shared handle on the forward CSR for `le` — O(1), lets a morsel
    /// worker own the index for the duration of a parallel probe.
    pub fn forward_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>> {
        self.edge_fwd.get(le.index()).cloned()
    }

    /// Shared handle on the reverse CSR for `le`.
    pub fn reverse_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>> {
        self.edge_rev.get(le.index()).cloned()
    }

    /// The sorted set of node ids carrying label `l` (empty when out of
    /// range) — the membership side of label-filtered index joins.
    pub fn node_set(&self, l: NodeLabelId) -> &[u32] {
        self.node_tables
            .get(l.index())
            .map(|t| t.flat())
            .unwrap_or(&[])
    }

    /// Number of edge tables.
    pub fn edge_table_count(&self) -> usize {
        self.edge_tables.len()
    }

    /// Number of node tables.
    pub fn node_table_count(&self) -> usize {
        self.node_tables.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_common::NodeId;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn fig11_tables() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // owns: one row (n2, n1) = (1, 0)
        let owns = store.edge_table(db.edge_label_id("owns").unwrap());
        assert_eq!(owns.len(), 1);
        assert_eq!(owns.row(0), &[1, 0]);
        assert_eq!(owns.cols(), &[SymbolTable::SR, SymbolTable::TR]);
        // isLocatedIn: four rows
        let isl = store.edge_table(db.edge_label_id("isLocatedIn").unwrap());
        assert_eq!(isl.len(), 4);
        // PROPERTY node table: one row (n1 = id 0)
        let prop = store.node_table(db.node_label_id("PROPERTY").unwrap());
        assert_eq!(prop.len(), 1);
        assert_eq!(prop.row(0), &[0]);
        // PERSON node table: two rows
        let person = store.node_table(db.node_label_id("PERSON").unwrap());
        assert_eq!(person.len(), 2);
    }

    #[test]
    fn out_of_range_labels_are_empty() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert!(store.edge_table(EdgeLabelId::new(99)).is_empty());
        assert!(store.node_table(NodeLabelId::new(99)).is_empty());
        assert!(store.forward_csr(EdgeLabelId::new(99)).is_none());
        assert!(store.node_set(NodeLabelId::new(99)).is_empty());
    }

    #[test]
    fn out_of_range_lookups_share_one_empty_handle() {
        // Regression: out-of-range lookups used to allocate a fresh
        // `Relation` (fresh `Vec`s) per call. They now share the static
        // empty row buffer across calls and across edge/node tables.
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e1 = store.edge_table(EdgeLabelId::new(98));
        let e2 = store.edge_table(EdgeLabelId::new(99));
        let n1 = store.node_table(NodeLabelId::new(99));
        assert!(e1.shares_data(&e2));
        assert!(e1.shares_data(&n1));
    }

    #[test]
    fn base_table_scans_are_zero_copy() {
        // The tentpole pin: handing out a base table shares the loaded
        // buffer — repeated scans, clones and positional renames never
        // copy row data.
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let le = db.edge_label_id("isLocatedIn").unwrap();
        let t1 = store.edge_table(le);
        let t2 = store.edge_table(le);
        assert!(t1.shares_data(&t2), "repeated scans share the buffer");
        assert!(t1.clone().shares_data(&t1));
        let renamed = t2.into_cols(vec![store.symbols.col("x"), store.symbols.col("y")]);
        assert!(renamed.shares_data(&t1), "positional rename is zero-copy");
        let l = db.node_label_id("CITY").unwrap();
        assert!(store.node_table(l).shares_data(&store.node_table(l)));
    }

    #[test]
    fn csr_indexes_match_edge_tables() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        for le_idx in 0..store.edge_table_count() {
            let le = EdgeLabelId::new(le_idx as u32);
            let table = store.edge_table(le);
            let fwd = store.forward_csr(le).expect("in range");
            let rev = store.reverse_csr(le).expect("in range");
            assert_eq!(fwd.edge_count(), table.len(), "set semantics");
            assert_eq!(rev.edge_count(), table.len());
            for row in table.rows() {
                let (s, t) = (NodeId::new(row[0]), NodeId::new(row[1]));
                assert!(fwd.has_edge(s, t), "forward CSR has {row:?}");
                assert!(rev.has_edge(t, s), "reverse CSR has {row:?}");
            }
        }
    }

    #[test]
    fn shared_csr_handles_alias_the_loaded_index() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let le = db.edge_label_id("isLocatedIn").unwrap();
        let shared = store.forward_csr_shared(le).expect("in range");
        assert!(std::ptr::eq(
            Arc::as_ptr(&shared),
            store.forward_csr(le).unwrap()
        ));
        assert!(store.forward_csr_shared(EdgeLabelId::new(99)).is_none());
        assert!(store.reverse_csr_shared(le).is_some());
    }

    #[test]
    fn node_sets_are_sorted_node_ids() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let l = db.node_label_id("CITY").unwrap();
        let set = store.node_set(l);
        assert_eq!(set.len(), store.node_table(l).len());
        assert!(set.windows(2).all(|w| w[0] < w[1]), "strictly sorted");
        for &n in set {
            assert!(db.has_label(NodeId::new(n), l));
        }
    }

    #[test]
    fn store_symbols_resolve_storage_columns() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        assert_eq!(store.symbols.col(SR), SymbolTable::SR);
        assert_eq!(store.symbols.col(TR), SymbolTable::TR);
    }
}
