//! A recursive relational algebra engine in the style of µ-RA — the
//! paper's RDBMS backend substitute (§4 "Translator"/"Backend").
//!
//! * [`symbols`] — the interned column / recursion-variable name space
//!   ([`SymbolTable`]): the RA stack compares `u32` ids everywhere and
//!   resolves strings only at its edges,
//! * [`table`] — set-semantics relations with interned columns and
//!   `Arc`-shared row buffers (clones, renames and scans are O(1)),
//! * [`storage`] — the relational representation of a property graph
//!   (Fig. 11): a thin façade over a pluggable physical layout, handing
//!   out tables zero-copy plus per-edge-label forward/reverse CSR
//!   adjacency indexes and sorted node-label sets,
//! * [`layout`] — the [`StorageLayout`] trait and its three
//!   implementations (per-label, polymorphic single table with a label
//!   bitmask, denormalised endpoint-label slices), plus the
//!   schema-driven [`LayoutAdvisor`],
//! * [`term`] — the RA term language (σ/π/ρ/⋈/⋉/∪ and the fixpoint µ),
//! * [`optimize`] — µ-RA-style rewritings: semi-join pushdown through
//!   joins and *into fixpoints*, plus greedy join ordering,
//! * [`mod@plan`] — lowering of optimised terms into physical plans with
//!   cost-chosen operators (CSR index joins vs merge vs hash, build
//!   sides, fused filtered scans, cached fixpoint build sides),
//! * [`exec`] — a semi-naive bottom-up interpreter over physical plans
//!   with cooperative timeouts and optional morsel-driven intra-query
//!   parallelism ([`ExecContext::dop`](exec::ExecContext)),
//! * [`parallel`] — the morsel task scheduler (a small shared-queue
//!   executor) and morsel partitioning helpers,
//! * [`cost`] — cardinality estimation over [`sgq_graph::GraphStats`],
//!   consulting the runtime feedback memo before the static formulas,
//! * [`feedback`] — the cardinality feedback memo: observed subtree
//!   cardinalities keyed by rename-invariant structural fingerprints,
//! * [`explain`] — physical plan rendering with per-operator strategy,
//!   estimated cost/rows and actual rows (the paper's Fig. 17, one
//!   level lower).

#![warn(missing_docs)]

pub mod cost;
pub mod exec;
pub mod explain;
pub mod feedback;
pub mod layout;
pub mod optimize;
pub mod parallel;
pub mod plan;
pub mod storage;
pub mod symbols;
pub mod table;
pub mod term;

pub use exec::{execute, execute_plan, ExecContext};
pub use feedback::FeedbackMemo;
pub use layout::{LayoutAdvisor, LayoutKind, StorageLayout};
pub use parallel::TaskScheduler;
pub use plan::{plan, PhysOp, PhysPlan};
pub use storage::RelStore;
pub use symbols::SymbolTable;
pub use table::{Col, Relation};
pub use term::RaTerm;

// Concurrency audit: the serving layer (`sgq_service`) executes prepared
// physical plans against one shared `RelStore` from many worker threads
// (`Arc<RelStore>`, `Arc<PreparedQuery>` holding a `PhysPlan`). The store's
// tables and plans are immutable after load/prepare, and the only mutable
// piece — the `SymbolTable` interner — is internally synchronised, so all
// of these must stay `Send + Sync`. Compile-time assertions so a
// regression fails the build, not a race.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RelStore>();
    assert_send_sync::<FeedbackMemo>();
    assert_send_sync::<SymbolTable>();
    assert_send_sync::<PhysPlan>();
    assert_send_sync::<Relation>();
    assert_send_sync::<RaTerm>();
};
