//! Cardinality estimation over [`sgq_graph::GraphStats`].
//!
//! The estimator drives (a) the greedy join ordering in the optimiser,
//! (b) the build-side selection of the physical planner
//! ([`mod@crate::plan`]) and (c) the costs printed by `EXPLAIN` (Fig. 17).
//! It uses the textbook System-R style formulas: join selectivity
//! `1 / max(V(L,c), V(R,c))` with distinct-value counts approximated
//! from table sizes.
//!
//! Estimation is *environment-threaded*: inside a fixpoint `µX. b ∪ s`,
//! a recursive reference `X` is estimated at the base case's
//! cardinality (bound in an [`EstEnv`]) rather than a constant, and
//! the per-iteration growth factor applies only to the part of the
//! step that actually depends on `X` — the static part is computed
//! (and, in the physical executor, cached) once.

use sgq_common::{FxHashMap, RecVarId};

use crate::storage::RelStore;
use crate::term::RaTerm;

/// An estimate for one term: output rows and cumulative cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (abstract units ≈ rows touched).
    pub cost: f64,
}

/// Multiplier applied to a fixpoint's base size to account for iteration
/// (a crude but stable stand-in for recursion-depth statistics).
pub(crate) const FIXPOINT_GROWTH: f64 = 4.0;

/// Estimation environment: the base-case cardinality of every enclosing
/// fixpoint, keyed by recursion variable. A [`RaTerm::RecRef`] is
/// estimated at its binding (falling back to 1 row when unbound).
#[derive(Debug, Default)]
pub struct EstEnv {
    rows: FxHashMap<RecVarId, f64>,
}

impl EstEnv {
    /// An empty environment (no enclosing fixpoints).
    pub fn new() -> Self {
        Self::default()
    }

    /// Binds `var` to an estimated cardinality, returning the previous
    /// binding so nested fixpoints over the same variable can restore it.
    pub fn bind(&mut self, var: RecVarId, rows: f64) -> Option<f64> {
        self.rows.insert(var, rows)
    }

    /// Restores the binding saved by [`EstEnv::bind`].
    pub fn restore(&mut self, var: RecVarId, prev: Option<f64>) {
        match prev {
            Some(r) => {
                self.rows.insert(var, r);
            }
            None => {
                self.rows.remove(&var);
            }
        }
    }

    /// The bound cardinality for `var`, if any.
    pub fn rows(&self, var: RecVarId) -> Option<f64> {
        self.rows.get(&var).copied()
    }
}

/// Estimates `term` against the statistics in `store`, outside any
/// fixpoint (recursive references fall back to 1 row).
pub fn estimate(term: &RaTerm, store: &RelStore) -> Estimate {
    estimate_with_env(term, store, &mut EstEnv::new())
}

/// Estimates `term` with recursive references resolved through `env`.
pub fn estimate_with_env(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> Estimate {
    let p = parts(term, store, env);
    Estimate {
        rows: p.rows,
        cost: p.st + p.dy,
    }
}

/// Estimated output rows of a natural join given both input estimates
/// and the number of shared columns (`V(c) ≈ min(|rel|, node count)`,
/// one selectivity factor per shared column).
pub(crate) fn join_rows(la: f64, lb: f64, shared: usize, store: &RelStore) -> f64 {
    if shared == 0 {
        return la * lb;
    }
    let nodes = store.stats.node_count.max(1) as f64;
    let mut rows = la * lb;
    for _ in 0..shared {
        let v = la.min(nodes).max(lb.min(nodes)).max(1.0);
        rows /= v;
    }
    rows
}

/// Estimated output rows of a semi-join: the left side scaled by the
/// right side's coverage of the key domain.
pub(crate) fn semijoin_rows(la: f64, lb: f64, store: &RelStore) -> f64 {
    let nodes = store.stats.node_count.max(1) as f64;
    let sel = (lb / nodes).min(1.0).max(1.0 / nodes);
    (la * sel).max(1.0)
}

/// One term's estimate split into the cost of its recursion-independent
/// part (`st`, computed once per fixpoint) and its recursion-dependent
/// part (`dy`, recomputed every iteration).
struct Parts {
    rows: f64,
    st: f64,
    dy: f64,
    dep: bool,
}

/// Folds child parts with this node's local cost: a node is dynamic as
/// soon as any input depends on a recursive reference, and only then
/// does its local cost join the per-iteration bucket.
fn fold(children: &[&Parts], local: f64, rows: f64) -> Parts {
    let dep = children.iter().any(|c| c.dep);
    let st: f64 = children.iter().map(|c| c.st).sum();
    let dy: f64 = children.iter().map(|c| c.dy).sum();
    if dep {
        Parts {
            rows,
            st,
            dy: dy + local,
            dep,
        }
    } else {
        Parts {
            rows,
            st: st + local,
            dy,
            dep,
        }
    }
}

fn parts(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> Parts {
    match term {
        RaTerm::EdgeScan { label, .. } => {
            let rows = store.stats.edge_cardinality(*label) as f64;
            fold(&[], rows, rows)
        }
        RaTerm::NodeScan { labels, .. } => {
            let rows: f64 = labels
                .iter()
                .map(|&l| store.stats.label_cardinality(l) as f64)
                .sum();
            fold(&[], rows, rows)
        }
        RaTerm::Join(a, b) => {
            let pa = parts(a, store, env);
            let pb = parts(b, store, env);
            let rows = join_rows(pa.rows, pb.rows, shared_cols(a, b), store);
            fold(&[&pa, &pb], pa.rows + pb.rows + rows, rows)
        }
        RaTerm::Semijoin(a, b) => {
            let pa = parts(a, store, env);
            let pb = parts(b, store, env);
            let rows = semijoin_rows(pa.rows, pb.rows, store);
            fold(&[&pa, &pb], pa.rows + pb.rows, rows)
        }
        RaTerm::Union(a, b) => {
            let pa = parts(a, store, env);
            let pb = parts(b, store, env);
            let rows = pa.rows + pb.rows;
            fold(&[&pa, &pb], rows, rows)
        }
        RaTerm::Project { input, .. } => {
            let p = parts(input, store, env);
            let local = p.rows;
            let rows = p.rows;
            fold(&[&p], local, rows)
        }
        RaTerm::Rename { input, .. } => parts(input, store, env),
        RaTerm::Select { input, .. } => {
            let p = parts(input, store, env);
            // classic 10% selectivity guess for an equality predicate
            let rows = (p.rows * 0.1).max(1.0);
            let local = p.rows;
            fold(&[&p], local, rows)
        }
        RaTerm::Fixpoint {
            var, base, step, ..
        } => {
            let pb = parts(base, store, env);
            let prev = env.bind(*var, pb.rows);
            let ps = parts(step, store, env);
            env.restore(*var, prev);
            let rows = pb.rows * FIXPOINT_GROWTH;
            // The static step cost is paid once (the physical executor
            // caches those intermediates across rounds); only the
            // delta-dependent part multiplies with the iteration count.
            let total = pb.st + pb.dy + ps.st + ps.dy * FIXPOINT_GROWTH + rows;
            if pb.dep {
                Parts {
                    rows,
                    st: 0.0,
                    dy: total,
                    dep: true,
                }
            } else {
                Parts {
                    rows,
                    st: total,
                    dy: 0.0,
                    dep: false,
                }
            }
        }
        RaTerm::RecRef { var, .. } => Parts {
            rows: env.rows(*var).unwrap_or(1.0),
            st: 0.0,
            dy: 0.0,
            dep: true,
        },
    }
}

/// Number of shared output columns between two terms.
fn shared_cols(a: &RaTerm, b: &RaTerm) -> usize {
    let ca = a.cols();
    b.cols().iter().filter(|c| ca.contains(c)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    #[test]
    fn scan_estimates_match_stats() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e = estimate(&scan(&db, &store, "isLocatedIn", "x", "y"), &store);
        assert_eq!(e.rows, 4.0);
    }

    #[test]
    fn semijoin_reduces_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let base = scan(&db, &store, "isLocatedIn", "x", "y");
        let filtered = RaTerm::semijoin(
            base.clone(),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("x"),
            },
        );
        let e_base = estimate(&base, &store);
        let e_filtered = estimate(&filtered, &store);
        assert!(e_filtered.rows < e_base.rows);
    }

    #[test]
    fn fixpoint_grows_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let inner = scan(&db, &store, "isLocatedIn", "x", "y");
        let e_inner = estimate(&inner, &store);
        let f = closure_fixpoint(s.recvar("X"), inner, s.col("x"), s.col("y"), s.col("m"));
        let e_fix = estimate(&f, &store);
        assert!(e_fix.rows > e_inner.rows);
        assert!(e_fix.cost > e_inner.cost);
    }

    #[test]
    fn join_estimate_bounded_by_cartesian() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let j = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let e = estimate(&j, &store);
        assert!(e.rows <= 16.0);
        assert!(e.rows > 0.0);
    }

    #[test]
    fn recref_inherits_enclosing_base_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let var = s.recvar("X");
        let recref = RaTerm::RecRef {
            var,
            cols: vec![s.col("x"), s.col("m")],
        };
        // Unbound: the old 1-row fallback.
        assert_eq!(estimate(&recref, &store).rows, 1.0);
        // Bound: the enclosing fixpoint's base estimate.
        let mut env = EstEnv::new();
        env.bind(var, 4.0);
        assert_eq!(estimate_with_env(&recref, &store, &mut env).rows, 4.0);
        // Inside the canonical closure, the recursive join therefore sees
        // a 4-row left input instead of a 1-row one.
        let f = closure_fixpoint(
            var,
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let RaTerm::Fixpoint { step, .. } = &f else {
            panic!()
        };
        let mut env = EstEnv::new();
        env.bind(var, 4.0);
        let e_step = estimate_with_env(step, &store, &mut env);
        assert!(
            e_step.rows >= 4.0,
            "step estimate should reflect the recursive input: {e_step:?}"
        );
    }

    #[test]
    fn fixpoint_growth_skips_static_step_cost() {
        // The step of the canonical closure is π(X ⋈ ρ(scan)); the
        // renamed scan is recursion-independent, so its cost must be
        // paid once, not FIXPOINT_GROWTH times.
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let var = s.recvar("X");
        let inner = scan(&db, &store, "isLocatedIn", "x", "y");
        let f = closure_fixpoint(var, inner, s.col("x"), s.col("y"), s.col("m"));
        let (RaTerm::Fixpoint { base, step, .. },) = (&f,) else {
            panic!()
        };
        let eb = estimate(base, &store);
        let mut env = EstEnv::new();
        env.bind(var, eb.rows);
        let es = estimate_with_env(step, &store, &mut env);
        let e_fix = estimate(&f, &store);
        let naive = eb.cost + es.cost * FIXPOINT_GROWTH + eb.rows * FIXPOINT_GROWTH;
        assert!(
            e_fix.cost < naive,
            "static scan cost must not be multiplied: {} !< {naive}",
            e_fix.cost
        );
    }
}
