//! Cardinality estimation over [`sgq_graph::GraphStats`].
//!
//! The estimator drives (a) the greedy join ordering in the optimiser,
//! (b) the build-side selection of the physical planner
//! ([`mod@crate::plan`]) and (c) the costs printed by `EXPLAIN` (Fig. 17).
//!
//! **Statistics v2.** Estimation tracks, per intermediate, the estimated
//! row count *and* a per-column distinct-value estimate (the internal
//! `Card`), seeded from the measured statistics instead of textbook
//! guesses:
//!
//! * an edge scan knows its measured distinct source/target counts;
//! * a scan filtered by node-label semi-joins keeps a **label pedigree**
//!   (the internal `ScanInfo`) and is estimated straight from the
//!   per-triple counts — for a fully label-annotated scan the estimate
//!   is *exact*;
//! * join selectivity is `1 / max(V(L,c), V(R,c))` with `V` taken from the
//!   tracked distinct counts (falling back to `min(|rel|, |V(G)|)` only
//!   when a column's provenance is unknown);
//! * an equality selection uses `1 / max(V(a), V(b))` instead of the flat
//!   10% guess;
//! * a fixpoint's growth factor is derived from the measured closure depth
//!   bound of the edge labels it iterates over
//!   ([`sgq_graph::GraphStats::closure_depth`]) instead of a constant.
//!
//! The pre-v2 heuristics are kept behind
//! [`RelStore::v1_estimates`](crate::storage::RelStore) so the harness's
//! `estimates` experiment can measure the q-error improvement.
//!
//! Estimation is *environment-threaded*: inside a fixpoint `µX. b ∪ s`,
//! a recursive reference `X` is estimated at the base case's
//! cardinality (bound in an [`EstEnv`]) rather than a constant, and
//! the per-iteration growth factor applies only to the part of the
//! step that actually depends on `X` — the static part is computed
//! (and, in the physical executor, cached) once.
//!
//! **Runtime feedback.** Alongside its estimate, every subterm gets a
//! structural **fingerprint** ([`fingerprint`]): a bottom-up hash over
//! operator kinds, edge labels, node-label filters and join-key
//! *positions* in the children's output schemas. Column names never
//! enter the hash, so the fingerprint is invariant under renaming; and
//! because it is computed from the logical term, physical strategies
//! (hash vs merge vs index join) of the same logical subtree share it.
//! Before returning a recursion-independent estimate, the formulas ask
//! the store's [`crate::feedback::FeedbackMemo`] whether this exact
//! subtree has been executed before — if so, the *observed* cardinality
//! replaces the estimated one, so re-prepared queries get measured row
//! counts where it matters (join ordering, build sides, index-vs-hash).

use std::hash::{Hash, Hasher};

use sgq_common::{ColId, EdgeLabelId, FxHashMap, FxHasher, NodeLabelId, RecVarId};

use crate::storage::RelStore;
use crate::term::RaTerm;

/// An estimate for one term: output rows and cumulative cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (abstract units ≈ rows touched).
    pub cost: f64,
}

/// The v1 heuristics' constant fixpoint growth multiplier, kept as the
/// legacy-estimator value and as the fallback when a fixpoint iterates
/// over no scannable edge label.
pub(crate) const V1_FIXPOINT_GROWTH: f64 = 4.0;

/// Probe sides below this many rows stay serial at any degree of
/// parallelism. Dispatching a morsel costs tens of microseconds
/// (enqueue, wake, output merge) while probing costs tens of
/// nanoseconds per row, so a probe needs a few tens of thousands of
/// rows before splitting pays for itself; under the threshold the
/// executor never touches the scheduler. The same bound gates the
/// `parallel ×N` annotation in `EXPLAIN`, driven by the *estimated*
/// probe rows ([`crate::plan::PhysPlan::parallel_probe_rows`]).
pub const PARALLEL_ROW_THRESHOLD: usize = 16_384;

/// The q-error of an estimate against the observed cardinality:
/// `max(est, actual) / min(est, actual)` with both floored at one row, so
/// a perfect estimate scores 1.0 and the metric is symmetric between
/// over- and under-estimation.
pub fn q_error(est: f64, actual: f64) -> f64 {
    let e = est.max(1.0);
    let a = actual.max(1.0);
    (e / a).max(a / e)
}

/// Estimation environment: the base-case cardinality of every enclosing
/// fixpoint, keyed by recursion variable. A [`RaTerm::RecRef`] is
/// estimated at its binding (falling back to 1 row when unbound).
#[derive(Debug, Default)]
pub struct EstEnv {
    rows: FxHashMap<RecVarId, f64>,
    /// Fingerprint tokens per bound recursion variable: the de-Bruijn
    /// style nesting depth at bind time, so a recursive reference hashes
    /// by *which enclosing fixpoint* it refers to rather than by the
    /// variable's interned name (rename-invariance).
    fp_tokens: FxHashMap<RecVarId, u64>,
    fp_depth: u64,
}

impl EstEnv {
    /// An empty environment (no enclosing fixpoints).
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `var` the fingerprint token for the next nesting level,
    /// returning the previous token for [`EstEnv::restore_fp`].
    fn bind_fp(&mut self, var: RecVarId) -> Option<u64> {
        self.fp_depth += 1;
        self.fp_tokens.insert(var, self.fp_depth)
    }

    /// Restores the token saved by [`EstEnv::bind_fp`].
    fn restore_fp(&mut self, var: RecVarId, prev: Option<u64>) {
        self.fp_depth -= 1;
        match prev {
            Some(t) => {
                self.fp_tokens.insert(var, t);
            }
            None => {
                self.fp_tokens.remove(&var);
            }
        }
    }

    /// The fingerprint token for `var`: the de-Bruijn index (distance
    /// from the current nesting depth to the binder), so a fixpoint
    /// fingerprints identically whether estimated at its own root or
    /// nested inside another fixpoint. Unbound references (estimating a
    /// step subterm in isolation) fall back to the variable's id — still
    /// deterministic, and such subtrees are recursion-dependent anyway,
    /// so the memo never stores them.
    fn fp_token(&self, var: RecVarId) -> u64 {
        self.fp_tokens
            .get(&var)
            .map(|&bound_at| self.fp_depth - bound_at)
            .unwrap_or(0x5eed_0000_0000_0000 | var.raw() as u64)
    }

    /// Binds `var` to an estimated cardinality, returning the previous
    /// binding so nested fixpoints over the same variable can restore it.
    pub fn bind(&mut self, var: RecVarId, rows: f64) -> Option<f64> {
        self.rows.insert(var, rows)
    }

    /// Restores the binding saved by [`EstEnv::bind`].
    pub fn restore(&mut self, var: RecVarId, prev: Option<f64>) {
        match prev {
            Some(r) => {
                self.rows.insert(var, r);
            }
            None => {
                self.rows.remove(&var);
            }
        }
    }

    /// The bound cardinality for `var`, if any.
    pub fn rows(&self, var: RecVarId) -> Option<f64> {
        self.rows.get(&var).copied()
    }
}

/// Estimates `term` against the statistics in `store`, outside any
/// fixpoint (recursive references fall back to 1 row).
pub fn estimate(term: &RaTerm, store: &RelStore) -> Estimate {
    estimate_with_env(term, store, &mut EstEnv::new())
}

/// Estimates `term` with recursive references resolved through `env`.
pub fn estimate_with_env(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> Estimate {
    let p = parts(term, store, env);
    Estimate {
        rows: p.card.rows,
        cost: p.st + p.dy,
    }
}

/// A planner-facing per-node estimate: the rows, the subtree's
/// structural fingerprint, and whether the rows came from the runtime
/// feedback memo rather than the formulas.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NodeEst {
    /// Estimated (or observed) output rows.
    pub(crate) rows: f64,
    /// Structural fingerprint of the logical subtree.
    pub(crate) fp: u64,
    /// Whether `rows` is a memoised observation.
    pub(crate) memo: bool,
}

/// Estimates `term` and returns rows + fingerprint + memo provenance —
/// what the planner stamps onto each lowered node.
pub(crate) fn node_est(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> NodeEst {
    let p = parts(term, store, env);
    NodeEst {
        rows: p.card.rows,
        fp: p.fp,
        memo: p.memo,
    }
}

/// The structural fingerprint of `term`: a bottom-up hash over operator
/// kinds, edge labels, node-label filters and join-key positions.
/// Invariant under column renaming (columns enter as positions in their
/// child's output schema) and under join operand order.
pub fn fingerprint(term: &RaTerm, store: &RelStore) -> u64 {
    parts(term, store, &mut EstEnv::new()).fp
}

// Fingerprint hashing. Tags keep distinct operators from colliding;
// positions (not names) make the hash rename-invariant.
const FP_EDGE: u64 = 1;
const FP_NODE: u64 = 2;
const FP_JOIN: u64 = 3;
const FP_SEMI: u64 = 4;
const FP_UNION: u64 = 5;
const FP_PROJECT: u64 = 6;
const FP_SELECT: u64 = 7;
const FP_FIX: u64 = 8;
const FP_RECREF: u64 = 9;
const FP_POS: u64 = 10;

fn fp_hash(tag: u64, vals: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    tag.hash(&mut h);
    for v in vals {
        v.hash(&mut h);
    }
    h.finish()
}

/// Hash of `keys` as positions within `cols`, in the order given.
fn fp_positions(cols: &[ColId], keys: &[ColId]) -> u64 {
    let pos: Vec<u64> = keys
        .iter()
        .map(|k| {
            cols.iter()
                .position(|c| c == k)
                .map_or(u64::MAX, |p| p as u64)
        })
        .collect();
    fp_hash(FP_POS, &pos)
}

/// Hash of `keys` as a *set* of positions within `cols` (sorted).
fn fp_position_set(cols: &[ColId], keys: &[ColId]) -> u64 {
    let mut pos: Vec<u64> = keys
        .iter()
        .map(|k| {
            cols.iter()
                .position(|c| c == k)
                .map_or(u64::MAX, |p| p as u64)
        })
        .collect();
    pos.sort_unstable();
    fp_hash(FP_POS, &pos)
}

/// Operand-order-invariant fingerprint of a binary node over `shared`
/// key columns: the direct hash (keys enumerated in left-schema order)
/// and the mirrored hash (right-schema order) are combined by `min`, so
/// `a ⋈ b` and `b ⋈ a` fingerprint identically.
fn fp_commutative(tag: u64, fa: u64, ca: &[ColId], fb: u64, cb: &[ColId], shared: &[ColId]) -> u64 {
    let mut by_b: Vec<ColId> = shared.to_vec();
    by_b.sort_unstable_by_key(|k| cb.iter().position(|c| c == k).unwrap_or(usize::MAX));
    let direct = fp_hash(
        tag,
        &[fa, fp_positions(ca, shared), fb, fp_positions(cb, shared)],
    );
    let mirror = fp_hash(
        tag,
        &[fb, fp_positions(cb, &by_b), fa, fp_positions(ca, &by_b)],
    );
    direct.min(mirror)
}

/// Growth multiplier for a fixpoint term: half the measured closure depth
/// bound of the deepest edge label the fixpoint iterates over (a chain of
/// depth `d` produces about `d/2` times its base in closure pairs),
/// clamped to `[1, 256]`. Falls back to the v1 constant when the legacy
/// estimator is selected or no edge label is in scope.
pub(crate) fn fixpoint_growth(term: &RaTerm, store: &RelStore) -> f64 {
    if store.v1_estimates {
        return V1_FIXPOINT_GROWTH;
    }
    let mut labels = Vec::new();
    collect_edge_labels(term, &mut labels);
    let depth = labels
        .iter()
        .map(|&le| store.stats.closure_depth(le))
        .max()
        .unwrap_or(0);
    if depth == 0 {
        V1_FIXPOINT_GROWTH
    } else {
        (depth as f64 * 0.5).clamp(1.0, 256.0)
    }
}

/// Average number of CSR neighbours one index-join probe expands,
/// measured from the statistics: `|E(le)| / distinct sources` for a
/// forward probe (targets per source) or `/ distinct targets` for a
/// reverse probe; 0 for empty labels.
pub(crate) fn index_degree(store: &RelStore, label: EdgeLabelId, forward: bool) -> f64 {
    let st = &store.stats;
    let edges = st.edge_cardinality(label) as f64;
    let distinct = if forward {
        st.distinct_sources(label)
    } else {
        st.distinct_targets(label)
    } as f64;
    if distinct <= 0.0 {
        0.0
    } else {
        edges / distinct
    }
}

/// Cost of an index join: the probe side's own cost, one CSR lookup plus
/// its expansion per probe row (`1 + avg degree`), and the output. The
/// base-table scan and the hash build that a hash join pays
/// (`Σ cost + Σ rows + out`) are exactly what probing the CSR saves.
pub(crate) fn index_join_cost(probe: &Estimate, degree: f64, out_rows: f64) -> f64 {
    probe.cost + probe.rows * (1.0 + degree) + out_rows
}

/// Cost of an index semi-join: the left side pays one CSR degree lookup
/// (plus a bounded neighbour check when the far endpoint is
/// label-filtered) per row; the edge table is never scanned.
pub(crate) fn index_semijoin_cost(left: &Estimate) -> f64 {
    left.cost + left.rows * 2.0
}

/// Cost of a masked multi-label scan over the polymorphic layout's
/// single edge table: one pass over all `poly_rows` distinct `(s, t)`
/// pairs (a bitmask test per row) plus the emitted output.
pub(crate) fn multi_scan_cost(poly_rows: usize, out_rows: f64) -> f64 {
    poly_rows as f64 + out_rows
}

/// Cost of the union-all of per-label scans the masked pass competes
/// with: each label's table is scanned and the collected rows are
/// normalised once (`Relation::union_many` sorts + dedups), so every
/// input row is touched roughly twice.
pub(crate) fn union_all_cost(label_rows: f64) -> f64 {
    2.0 * label_rows
}

/// Cost of a denormalised filtered scan: the endpoint-label slice was
/// materialised at load, so the scan pays exactly the slice's rows —
/// the semi-join filter is free.
pub(crate) fn denorm_scan_cost(slice_rows: f64) -> f64 {
    slice_rows
}

fn collect_edge_labels(term: &RaTerm, out: &mut Vec<EdgeLabelId>) {
    match term {
        RaTerm::EdgeScan { label, .. } => {
            if !out.contains(label) {
                out.push(*label);
            }
        }
        RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => {}
        RaTerm::Join(a, b) | RaTerm::Semijoin(a, b) | RaTerm::Union(a, b) => {
            collect_edge_labels(a, out);
            collect_edge_labels(b, out);
        }
        RaTerm::Project { input, .. }
        | RaTerm::Rename { input, .. }
        | RaTerm::Select { input, .. } => collect_edge_labels(input, out),
        RaTerm::Fixpoint { base, step, .. } => {
            collect_edge_labels(base, out);
            collect_edge_labels(step, out);
        }
    }
}

/// Label pedigree of an edge scan: which node labels its endpoints are
/// known (via semi-join filters) to carry. `None` = unrestricted.
#[derive(Debug, Clone)]
struct ScanInfo {
    label: EdgeLabelId,
    src: ColId,
    tgt: ColId,
    src_labels: Option<Vec<NodeLabelId>>,
    tgt_labels: Option<Vec<NodeLabelId>>,
}

impl ScanInfo {
    fn bare(label: EdgeLabelId, src: ColId, tgt: ColId) -> Self {
        ScanInfo {
            label,
            src,
            tgt,
            src_labels: None,
            tgt_labels: None,
        }
    }

    /// Restricts the endpoint exposed as `col` to `labels` (intersecting
    /// with any previous restriction).
    fn refine(&self, col: ColId, labels: &[NodeLabelId]) -> ScanInfo {
        let mut out = self.clone();
        let slot = if col == self.src {
            &mut out.src_labels
        } else {
            &mut out.tgt_labels
        };
        *slot = Some(match slot.take() {
            Some(prev) => prev.into_iter().filter(|l| labels.contains(l)).collect(),
            None => labels.to_vec(),
        });
        out
    }

    fn rename(&mut self, from: ColId, to: ColId) {
        if self.src == from {
            self.src = to;
        }
        if self.tgt == from {
            self.tgt = to;
        }
    }
}

/// Cardinality description of one intermediate: estimated rows, estimated
/// distinct values per column, and (when the intermediate is a — possibly
/// label-filtered — edge or node scan) its provenance for triple-count
/// lookups.
#[derive(Debug, Clone, Default)]
pub(crate) struct Card {
    pub(crate) rows: f64,
    /// Per-column distinct-value estimates.
    distinct: Vec<(ColId, f64)>,
    /// Edge-scan pedigree, when the rows are exactly a label-restricted
    /// edge table.
    scan: Option<ScanInfo>,
    /// Node-scan pedigree: the column and the node labels it ranges over.
    node_labels: Option<(ColId, Vec<NodeLabelId>)>,
}

impl Card {
    fn plain(rows: f64) -> Card {
        Card {
            rows,
            ..Default::default()
        }
    }

    /// The distinct-value estimate for `c`, falling back to
    /// `min(rows, |V(G)|)` when the column's provenance is unknown.
    fn dv(&self, c: ColId, store: &RelStore) -> f64 {
        self.distinct
            .iter()
            .find(|(k, _)| *k == c)
            .map(|(_, v)| *v)
            .unwrap_or_else(|| self.rows.min(nodes_f(store)))
    }

    fn cap_distinct(mut self) -> Card {
        for (_, v) in &mut self.distinct {
            *v = v.min(self.rows);
        }
        self
    }

    fn rename(&mut self, from: ColId, to: ColId) {
        for (c, _) in &mut self.distinct {
            if *c == from {
                *c = to;
            }
        }
        if let Some(info) = &mut self.scan {
            info.rename(from, to);
        }
        if let Some((c, _)) = &mut self.node_labels {
            if *c == from {
                *c = to;
            }
        }
    }
}

fn nodes_f(store: &RelStore) -> f64 {
    store.stats.node_count.max(1) as f64
}

/// The cardinality of a (possibly label-restricted) edge scan, straight
/// from the statistics: unrestricted scans read the per-label counts,
/// single-endpoint restrictions the per-`(src, le)` / `(le, tgt)`
/// aggregates, and doubly restricted scans the exact triple counts.
fn scan_card(info: ScanInfo, store: &RelStore) -> Card {
    let st = &store.stats;
    let le = info.label;
    let (rows, dsrc, dtgt) = match (&info.src_labels, &info.tgt_labels) {
        (None, None) => (
            st.edge_cardinality(le) as f64,
            st.distinct_sources(le) as f64,
            st.distinct_targets(le) as f64,
        ),
        (Some(srcs), None) => {
            let (mut c, mut ds) = (0.0, 0.0);
            for &s in srcs {
                let g = st.source_group(s, le);
                c += g.count as f64;
                ds += g.distinct as f64;
            }
            (c, ds, (st.distinct_targets(le) as f64).min(c))
        }
        (None, Some(tgts)) => {
            let (mut c, mut dt) = (0.0, 0.0);
            for &t in tgts {
                let g = st.target_group(le, t);
                c += g.count as f64;
                dt += g.distinct as f64;
            }
            (c, (st.distinct_sources(le) as f64).min(c), dt)
        }
        (Some(srcs), Some(tgts)) => {
            let (mut c, mut ds, mut dt) = (0.0, 0.0, 0.0);
            for &s in srcs {
                for &t in tgts {
                    let ts = st.triple_stats(s, le, t);
                    c += ts.count as f64;
                    ds += ts.distinct_sources as f64;
                    dt += ts.distinct_targets as f64;
                }
            }
            (c, ds, dt)
        }
    };
    let (src, tgt) = (info.src, info.tgt);
    Card {
        rows,
        distinct: vec![(src, dsrc.min(rows)), (tgt, dtgt.min(rows))],
        scan: Some(info),
        node_labels: None,
    }
}

/// Join output cardinality: `|L|·|R| / Π_c max(V(L,c), V(R,c))` over the
/// shared columns, with distinct-value counts from the tracked statistics
/// (v2) or approximated from table sizes (v1).
fn join_card(a: &Card, b: &Card, shared: &[ColId], store: &RelStore) -> Card {
    let (la, lb) = (a.rows, b.rows);
    if store.v1_estimates {
        let nodes = nodes_f(store);
        let mut rows = la * lb;
        for _ in shared {
            let v = la.min(nodes).max(lb.min(nodes)).max(1.0);
            rows /= v;
        }
        return Card::plain(rows);
    }
    let mut rows = la * lb;
    for &c in shared {
        rows /= a.dv(c, store).max(b.dv(c, store)).max(1.0);
    }
    let mut distinct: Vec<(ColId, f64)> = Vec::new();
    for &(c, va) in &a.distinct {
        let v = if shared.contains(&c) {
            va.min(b.dv(c, store))
        } else {
            va
        };
        distinct.push((c, v));
    }
    for &(c, vb) in &b.distinct {
        if !distinct.iter().any(|(k, _)| *k == c) {
            distinct.push((c, vb));
        }
    }
    Card {
        rows,
        distinct,
        scan: None,
        node_labels: None,
    }
    .cap_distinct()
}

/// Semi-join output cardinality. In v2, a node-label filter on an edge
/// scan refines the scan's label pedigree and re-reads the aggregate /
/// triple counts — the estimate for a fully annotated scan is exact;
/// everything else uses the containment assumption
/// `Π_c min(V(L,c), V(R,c)) / V(L,c)`.
fn semijoin_card(a: &Card, b: &Card, shared: &[ColId], store: &RelStore) -> Card {
    let (la, lb) = (a.rows, b.rows);
    if store.v1_estimates {
        let nodes = nodes_f(store);
        let sel = (lb / nodes).min(1.0).max(1.0 / nodes);
        return Card::plain((la * sel).max(1.0));
    }
    // Label-aware fast paths: the filter is a node scan on one of the
    // left side's pedigree endpoints.
    if let (Some(info), Some((col, labels))) = (&a.scan, &b.node_labels) {
        if shared == [*col] && (*col == info.src || *col == info.tgt) {
            let refined = info.refine(*col, labels);
            let mut out = scan_card(refined, store);
            out.rows = out.rows.min(la);
            return out.cap_distinct();
        }
    }
    if let (Some((ca, als)), Some((cb, bls))) = (&a.node_labels, &b.node_labels) {
        if ca == cb && shared == [*ca] {
            let inter: Vec<NodeLabelId> = als.iter().copied().filter(|l| bls.contains(l)).collect();
            let rows = (inter
                .iter()
                .map(|&l| store.stats.label_cardinality(l) as f64)
                .sum::<f64>())
            .min(la);
            let col = *ca;
            return Card {
                rows,
                distinct: vec![(col, rows)],
                scan: None,
                node_labels: Some((col, inter)),
            };
        }
    }
    let mut frac = if shared.is_empty() {
        if lb > 0.0 {
            1.0
        } else {
            0.0
        }
    } else {
        1.0
    };
    for &c in shared {
        let va = a.dv(c, store).max(1.0);
        let vb = b.dv(c, store);
        frac *= (vb.min(va) / va).min(1.0);
    }
    let mut out = a.clone();
    out.rows = la * frac;
    // The surviving rows are no longer exactly a label-restricted table.
    out.scan = None;
    out.node_labels = None;
    out.cap_distinct()
}

/// One term's estimate split into the cost of its recursion-independent
/// part (`st`, computed once per fixpoint) and its recursion-dependent
/// part (`dy`, recomputed every iteration), plus the subtree's
/// structural fingerprint and memo provenance.
struct Parts {
    card: Card,
    st: f64,
    dy: f64,
    dep: bool,
    /// Structural fingerprint of this subtree.
    fp: u64,
    /// Whether `card.rows` was overridden by a memoised observation.
    memo: bool,
}

/// Folds child parts with this node's local cost: a node is dynamic as
/// soon as any input depends on a recursive reference, and only then
/// does its local cost join the per-iteration bucket.
fn fold(children: &[&Parts], local: f64, card: Card, fp: u64) -> Parts {
    let dep = children.iter().any(|c| c.dep);
    let st: f64 = children.iter().map(|c| c.st).sum();
    let dy: f64 = children.iter().map(|c| c.dy).sum();
    if dep {
        Parts {
            card,
            st,
            dy: dy + local,
            dep,
            fp,
            memo: false,
        }
    } else {
        Parts {
            card,
            st: st + local,
            dy,
            dep,
            fp,
            memo: false,
        }
    }
}

/// Estimates one node, then lets the runtime feedback memo override the
/// formula estimate: a recursion-independent subtree that has executed
/// before reports its *observed* cardinality instead. Recursion-dependent
/// subtrees are skipped (per-round deltas would poison the memo — they
/// are never recorded either), as is the v1 ablation estimator (the cold
/// baseline must stay formula-pure).
fn parts(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> Parts {
    let mut p = parts_raw(term, store, env);
    if !p.dep && !store.v1_estimates {
        if let Some(obs) = store.feedback.lookup(p.fp) {
            p.card.rows = obs.rows;
            p.card = p.card.cap_distinct();
            p.memo = true;
        }
    }
    p
}

fn parts_raw(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> Parts {
    match term {
        RaTerm::EdgeScan { label, src, tgt } => {
            let card = scan_card(ScanInfo::bare(*label, *src, *tgt), store);
            let rows = card.rows;
            let fp = fp_hash(FP_EDGE, &[label.raw() as u64, (src == tgt) as u64]);
            fold(&[], rows, card, fp)
        }
        RaTerm::NodeScan { labels, col } => {
            let rows: f64 = labels
                .iter()
                .map(|&l| store.stats.label_cardinality(l) as f64)
                .sum();
            let card = Card {
                rows,
                distinct: vec![(*col, rows)],
                scan: None,
                node_labels: Some((*col, labels.clone())),
            };
            let mut ls: Vec<u64> = labels.iter().map(|l| l.raw() as u64).collect();
            ls.sort_unstable();
            let fp = fp_hash(FP_NODE, &ls);
            fold(&[], rows, card, fp)
        }
        RaTerm::Join(a, b) => {
            let pa = parts(a, store, env);
            let pb = parts(b, store, env);
            let (ca, cb) = (a.cols(), b.cols());
            let shared: Vec<ColId> = ca.iter().copied().filter(|c| cb.contains(c)).collect();
            let card = join_card(&pa.card, &pb.card, &shared, store);
            let fp = fp_commutative(FP_JOIN, pa.fp, &ca, pb.fp, &cb, &shared);
            let local = pa.card.rows + pb.card.rows + card.rows;
            fold(&[&pa, &pb], local, card, fp)
        }
        RaTerm::Semijoin(a, b) => {
            let pa = parts(a, store, env);
            let pb = parts(b, store, env);
            let (ca, cb) = (a.cols(), b.cols());
            let shared: Vec<ColId> = ca.iter().copied().filter(|c| cb.contains(c)).collect();
            let card = semijoin_card(&pa.card, &pb.card, &shared, store);
            // A semi-join is directional: sides do not commute.
            let fp = fp_hash(
                FP_SEMI,
                &[
                    pa.fp,
                    fp_positions(&ca, &shared),
                    pb.fp,
                    fp_positions(&cb, &shared),
                ],
            );
            let local = pa.card.rows + pb.card.rows;
            fold(&[&pa, &pb], local, card, fp)
        }
        RaTerm::Union(a, b) => {
            let pa = parts(a, store, env);
            let pb = parts(b, store, env);
            let (ca, cb) = (a.cols(), b.cols());
            let fp = fp_commutative(FP_UNION, pa.fp, &ca, pb.fp, &cb, &ca);
            let rows = pa.card.rows + pb.card.rows;
            let card = if store.v1_estimates {
                Card::plain(rows)
            } else {
                let distinct = pa
                    .card
                    .distinct
                    .iter()
                    .map(|&(c, va)| (c, va + pb.card.dv(c, store)))
                    .collect();
                let node_labels = match (&pa.card.node_labels, &pb.card.node_labels) {
                    (Some((ca, als)), Some((cb, bls))) if ca == cb => {
                        let mut ls = als.clone();
                        for l in bls {
                            if !ls.contains(l) {
                                ls.push(*l);
                            }
                        }
                        Some((*ca, ls))
                    }
                    _ => None,
                };
                Card {
                    rows,
                    distinct,
                    scan: None,
                    node_labels,
                }
                .cap_distinct()
            };
            fold(&[&pa, &pb], rows, card, fp)
        }
        RaTerm::Project { input, cols } => {
            let p = parts(input, store, env);
            let fp = fp_hash(FP_PROJECT, &[p.fp, fp_position_set(&input.cols(), cols)]);
            let local = p.card.rows;
            let card = if store.v1_estimates {
                Card::plain(p.card.rows)
            } else {
                // Set semantics: the projection cannot produce more rows
                // than the product of its columns' distinct values.
                let prod: f64 = cols.iter().map(|&c| p.card.dv(c, store).max(1.0)).product();
                let rows = p.card.rows.min(prod);
                let distinct = p
                    .card
                    .distinct
                    .iter()
                    .filter(|(c, _)| cols.contains(c))
                    .copied()
                    .collect();
                let scan = p
                    .card
                    .scan
                    .clone()
                    .filter(|info| cols.contains(&info.src) && cols.contains(&info.tgt));
                let node_labels = p.card.node_labels.clone().filter(|(c, _)| cols.contains(c));
                Card {
                    rows,
                    distinct,
                    scan,
                    node_labels,
                }
                .cap_distinct()
            };
            fold(&[&p], local, card, fp)
        }
        RaTerm::Rename { input, from, to } => {
            // Renames are positional no-ops: the fingerprint passes
            // through unchanged (rename-invariance by construction).
            let mut p = parts(input, store, env);
            p.card.rename(*from, *to);
            p
        }
        RaTerm::Select { input, a, b } => {
            let p = parts(input, store, env);
            let ci = input.cols();
            let (pa, pb) = (
                ci.iter()
                    .position(|c| c == a)
                    .map_or(u64::MAX, |x| x as u64),
                ci.iter()
                    .position(|c| c == b)
                    .map_or(u64::MAX, |x| x as u64),
            );
            let fp = fp_hash(FP_SELECT, &[p.fp, pa.min(pb), pa.max(pb)]);
            let local = p.card.rows;
            let card = if store.v1_estimates {
                // classic 10% selectivity guess for an equality predicate
                Card::plain((p.card.rows * 0.1).max(1.0))
            } else {
                let v = p.card.dv(*a, store).max(p.card.dv(*b, store)).max(1.0);
                let mut out = p.card.clone();
                out.rows = p.card.rows / v;
                out.scan = None;
                out.node_labels = None;
                out.cap_distinct()
            };
            fold(&[&p], local, card, fp)
        }
        RaTerm::Fixpoint {
            var,
            base,
            step,
            stable,
        } => {
            let pb = parts(base, store, env);
            let prev = env.bind(*var, pb.card.rows);
            let prev_fp = env.bind_fp(*var);
            let ps = parts(step, store, env);
            env.restore_fp(*var, prev_fp);
            env.restore(*var, prev);
            let fp = fp_hash(
                FP_FIX,
                &[pb.fp, ps.fp, fp_position_set(&base.cols(), stable)],
            );
            let growth = fixpoint_growth(term, store);
            let rows = pb.card.rows * growth;
            let card = if store.v1_estimates {
                Card::plain(rows)
            } else {
                // Stable columns keep the base's distinct values (every
                // round copies them unchanged); the others may range over
                // anything reachable.
                let nodes = nodes_f(store);
                let distinct = pb
                    .card
                    .distinct
                    .iter()
                    .map(|&(c, v)| {
                        if stable.contains(&c) {
                            (c, v)
                        } else {
                            (c, rows.min(nodes))
                        }
                    })
                    .collect();
                Card {
                    rows,
                    distinct,
                    scan: None,
                    node_labels: None,
                }
                .cap_distinct()
            };
            // The static step cost is paid once (the physical executor
            // caches those intermediates across rounds); only the
            // delta-dependent part multiplies with the iteration count.
            let total = pb.st + pb.dy + ps.st + ps.dy * growth + rows;
            if pb.dep {
                Parts {
                    card,
                    st: 0.0,
                    dy: total,
                    dep: true,
                    fp,
                    memo: false,
                }
            } else {
                Parts {
                    card,
                    st: total,
                    dy: 0.0,
                    dep: false,
                    fp,
                    memo: false,
                }
            }
        }
        RaTerm::RecRef { var, cols } => Parts {
            card: Card::plain(env.rows(*var).unwrap_or(1.0)),
            st: 0.0,
            dy: 0.0,
            dep: true,
            fp: fp_hash(FP_RECREF, &[env.fp_token(*var), cols.len() as u64]),
            memo: false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    fn node(db: &sgq_graph::GraphDatabase, store: &RelStore, label: &str, col: &str) -> RaTerm {
        RaTerm::NodeScan {
            labels: vec![db.node_label_id(label).unwrap()],
            col: store.symbols.col(col),
        }
    }

    #[test]
    fn scan_estimates_match_stats() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e = estimate(&scan(&db, &store, "isLocatedIn", "x", "y"), &store);
        assert_eq!(e.rows, 4.0);
    }

    #[test]
    fn semijoin_reduces_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let base = scan(&db, &store, "isLocatedIn", "x", "y");
        let filtered = RaTerm::semijoin(base.clone(), node(&db, &store, "REGION", "x"));
        let e_base = estimate(&base, &store);
        let e_filtered = estimate(&filtered, &store);
        assert!(e_filtered.rows < e_base.rows);
        // Label-aware: exactly one isLocatedIn edge starts at a REGION.
        assert_eq!(e_filtered.rows, 1.0);
    }

    #[test]
    fn label_pedigree_estimates_triples_exactly() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // isLocatedIn ⋉ CITY(x) ⋉ REGION(y) — the CITY→REGION triple.
        let t = RaTerm::semijoin(
            RaTerm::semijoin(
                scan(&db, &store, "isLocatedIn", "x", "y"),
                node(&db, &store, "CITY", "x"),
            ),
            node(&db, &store, "REGION", "y"),
        );
        assert_eq!(estimate(&t, &store).rows, 2.0);
        // An impossible triple estimates to zero rows.
        let t = RaTerm::semijoin(
            RaTerm::semijoin(
                scan(&db, &store, "isLocatedIn", "x", "y"),
                node(&db, &store, "COUNTRY", "x"),
            ),
            node(&db, &store, "CITY", "y"),
        );
        assert_eq!(estimate(&t, &store).rows, 0.0);
    }

    #[test]
    fn v1_mode_reproduces_textbook_guesses() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.v1_estimates = true;
        // Semi-join: |L| · clamp(|R| / |V|) floored at one row.
        let filtered = RaTerm::semijoin(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            node(&db, &store, "REGION", "x"),
        );
        let nodes = store.stats.node_count as f64;
        let expected = (4.0 * (1.0 / nodes)).max(1.0);
        assert!((estimate(&filtered, &store).rows - expected).abs() < 1e-9);
        // Selection: the flat 10% guess floored at one row.
        let sel = RaTerm::select_eq(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            store.symbols.col("x"),
            store.symbols.col("y"),
        );
        assert_eq!(estimate(&sel, &store).rows, 1.0);
        // Fixpoint: the constant growth factor.
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        assert_eq!(estimate(&f, &store).rows, 4.0 * V1_FIXPOINT_GROWTH);
    }

    #[test]
    fn fixpoint_grows_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let inner = scan(&db, &store, "isLocatedIn", "x", "y");
        let e_inner = estimate(&inner, &store);
        let f = closure_fixpoint(s.recvar("X"), inner, s.col("x"), s.col("y"), s.col("m"));
        let e_fix = estimate(&f, &store);
        assert!(e_fix.rows > e_inner.rows);
        assert!(e_fix.cost > e_inner.cost);
    }

    #[test]
    fn fixpoint_growth_uses_measured_depth() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        // isLocatedIn: 4-node hierarchy → growth 2; actual closure is 8
        // rows from a 4-row base.
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        assert_eq!(fixpoint_growth(&f, &store), 2.0);
        assert_eq!(estimate(&f, &store).rows, 8.0);
        // owns: a single 2-node edge cannot compose — the closure is its
        // base, and the estimate says so.
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "owns", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        assert_eq!(fixpoint_growth(&f, &store), 1.0);
        assert_eq!(estimate(&f, &store).rows, 1.0);
    }

    #[test]
    fn join_estimate_bounded_by_cartesian() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let j = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let e = estimate(&j, &store);
        assert!(e.rows <= 16.0);
        assert!(e.rows > 0.0);
    }

    #[test]
    fn join_uses_measured_distinct_counts() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // isLocatedIn(x,y) ⋈ isLocatedIn(y,z): V(L,y) = 3 distinct
        // targets, V(R,y) = 4 distinct sources → 16 / 4 = 4.
        let j = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        assert_eq!(estimate(&j, &store).rows, 4.0);
    }

    #[test]
    fn recref_inherits_enclosing_base_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let var = s.recvar("X");
        let recref = RaTerm::RecRef {
            var,
            cols: vec![s.col("x"), s.col("m")],
        };
        // Unbound: the old 1-row fallback.
        assert_eq!(estimate(&recref, &store).rows, 1.0);
        // Bound: the enclosing fixpoint's base estimate.
        let mut env = EstEnv::new();
        env.bind(var, 4.0);
        assert_eq!(estimate_with_env(&recref, &store, &mut env).rows, 4.0);
        // Inside the canonical closure, the recursive join therefore sees
        // a 4-row left input instead of a 1-row one.
        let f = closure_fixpoint(
            var,
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let RaTerm::Fixpoint { step, .. } = &f else {
            panic!()
        };
        let mut env = EstEnv::new();
        env.bind(var, 4.0);
        let e_step = estimate_with_env(step, &store, &mut env);
        assert!(
            e_step.rows >= 4.0,
            "step estimate should reflect the recursive input: {e_step:?}"
        );
    }

    #[test]
    fn fixpoint_growth_skips_static_step_cost() {
        // The step of the canonical closure is π(X ⋈ ρ(scan)); the
        // renamed scan is recursion-independent, so its cost must be
        // paid once, not `growth` times.
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let var = s.recvar("X");
        let inner = scan(&db, &store, "isLocatedIn", "x", "y");
        let f = closure_fixpoint(var, inner, s.col("x"), s.col("y"), s.col("m"));
        let (RaTerm::Fixpoint { base, step, .. },) = (&f,) else {
            panic!()
        };
        let growth = fixpoint_growth(&f, &store);
        let eb = estimate(base, &store);
        let mut env = EstEnv::new();
        env.bind(var, eb.rows);
        let es = estimate_with_env(step, &store, &mut env);
        let e_fix = estimate(&f, &store);
        let naive = eb.cost + es.cost * growth + eb.rows * growth;
        assert!(
            e_fix.cost < naive,
            "static scan cost must not be multiplied: {} !< {naive}",
            e_fix.cost
        );
    }

    #[test]
    fn fingerprint_is_rename_invariant() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // The same logical join under different column namings.
        let j1 = RaTerm::join(
            scan(&db, &store, "livesIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let j2 = RaTerm::join(
            scan(&db, &store, "livesIn", "a", "b"),
            scan(&db, &store, "isLocatedIn", "b", "c"),
        );
        assert_eq!(fingerprint(&j1, &store), fingerprint(&j2, &store));
        // An explicit rename on top is transparent.
        let renamed = RaTerm::Rename {
            input: Box::new(j1.clone()),
            from: store.symbols.col("z"),
            to: store.symbols.col("w"),
        };
        assert_eq!(fingerprint(&renamed, &store), fingerprint(&j1, &store));
        // Joining on different key positions is a different fingerprint.
        let j3 = RaTerm::join(
            scan(&db, &store, "livesIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "x", "z"),
        );
        assert_ne!(fingerprint(&j1, &store), fingerprint(&j3, &store));
        // So is a different edge label.
        let j4 = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        assert_ne!(fingerprint(&j1, &store), fingerprint(&j4, &store));
    }

    #[test]
    fn fingerprint_join_operands_commute() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let a = scan(&db, &store, "livesIn", "x", "y");
        let b = scan(&db, &store, "isLocatedIn", "y", "z");
        assert_eq!(
            fingerprint(&RaTerm::join(a.clone(), b.clone()), &store),
            fingerprint(&RaTerm::join(b.clone(), a.clone()), &store),
        );
        // Semi-joins are directional and must NOT commute.
        let n = node(&db, &store, "CITY", "y");
        assert_ne!(
            fingerprint(&RaTerm::semijoin(a.clone(), n.clone()), &store),
            fingerprint(&RaTerm::semijoin(n, a), &store),
        );
    }

    #[test]
    fn memo_overrides_formula_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        assert_eq!(estimate(&f, &store).rows, 8.0, "formula baseline");
        store.feedback.observe(fingerprint(&f, &store), 100);
        assert_eq!(estimate(&f, &store).rows, 100.0, "observed rows win");
        // A renamed variant of the same subtree shares the observation.
        let renamed = RaTerm::Rename {
            input: Box::new(f.clone()),
            from: s.col("y"),
            to: s.col("t"),
        };
        assert_eq!(estimate(&renamed, &store).rows, 100.0);
    }

    #[test]
    fn memo_is_ignored_by_the_v1_ablation() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        let t = scan(&db, &store, "isLocatedIn", "x", "y");
        store.feedback.observe(fingerprint(&t, &store), 1000);
        assert_eq!(estimate(&t, &store).rows, 1000.0);
        store.v1_estimates = true;
        assert_eq!(
            estimate(&t, &store).rows,
            4.0,
            "the cold v1 baseline never consults feedback"
        );
    }
}
