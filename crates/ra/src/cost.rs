//! Cardinality estimation over [`sgq_graph::GraphStats`].
//!
//! The estimator drives (a) the greedy join ordering in the optimiser and
//! (b) the costs printed by `EXPLAIN` (Fig. 17). It uses the textbook
//! System-R style formulas: join selectivity `1 / max(V(L,c), V(R,c))`
//! with distinct-value counts approximated from table sizes.

use crate::storage::RelStore;
use crate::term::RaTerm;

/// An estimate for one term: output rows and cumulative cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated output rows.
    pub rows: f64,
    /// Estimated cumulative cost (abstract units ≈ rows touched).
    pub cost: f64,
}

/// Multiplier applied to a fixpoint's base size to account for iteration
/// (a crude but stable stand-in for recursion-depth statistics).
const FIXPOINT_GROWTH: f64 = 4.0;

/// Estimates `term` against the statistics in `store`.
pub fn estimate(term: &RaTerm, store: &RelStore) -> Estimate {
    match term {
        RaTerm::EdgeScan { label, .. } => {
            let rows = store.stats.edge_cardinality(*label) as f64;
            Estimate { rows, cost: rows }
        }
        RaTerm::NodeScan { labels, .. } => {
            let rows: f64 = labels
                .iter()
                .map(|&l| store.stats.label_cardinality(l) as f64)
                .sum();
            Estimate { rows, cost: rows }
        }
        RaTerm::Join(a, b) => {
            let ea = estimate(a, store);
            let eb = estimate(b, store);
            let shared = shared_cols(a, b);
            let rows = if shared == 0 {
                ea.rows * eb.rows
            } else {
                // V(c) ≈ min(|rel|, node count); one factor per shared col.
                let nodes = store.stats.node_count.max(1) as f64;
                let mut rows = ea.rows * eb.rows;
                for _ in 0..shared {
                    let v = ea.rows.min(nodes).max(eb.rows.min(nodes)).max(1.0);
                    rows /= v;
                }
                rows
            };
            Estimate {
                rows,
                cost: ea.cost + eb.cost + ea.rows + eb.rows + rows,
            }
        }
        RaTerm::Semijoin(a, b) => {
            let ea = estimate(a, store);
            let eb = estimate(b, store);
            // A semi-join keeps a fraction of the left side proportional to
            // the right side's coverage of the key domain.
            let nodes = store.stats.node_count.max(1) as f64;
            let sel = (eb.rows / nodes).min(1.0).max(1.0 / nodes);
            Estimate {
                rows: (ea.rows * sel).max(1.0),
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
            }
        }
        RaTerm::Union(a, b) => {
            let ea = estimate(a, store);
            let eb = estimate(b, store);
            Estimate {
                rows: ea.rows + eb.rows,
                cost: ea.cost + eb.cost + ea.rows + eb.rows,
            }
        }
        RaTerm::Project { input, .. } => {
            let e = estimate(input, store);
            Estimate {
                rows: e.rows,
                cost: e.cost + e.rows,
            }
        }
        RaTerm::Rename { input, .. } => estimate(input, store),
        RaTerm::Select { input, .. } => {
            let e = estimate(input, store);
            // classic 10% selectivity guess for an equality predicate
            Estimate {
                rows: (e.rows * 0.1).max(1.0),
                cost: e.cost + e.rows,
            }
        }
        RaTerm::Fixpoint { base, step, .. } => {
            let eb = estimate(base, store);
            let es = estimate(step, store);
            let rows = eb.rows * FIXPOINT_GROWTH;
            Estimate {
                rows,
                cost: eb.cost + es.cost * FIXPOINT_GROWTH + rows,
            }
        }
        RaTerm::RecRef { .. } => Estimate {
            rows: 1.0,
            cost: 0.0,
        },
    }
}

/// Number of shared output columns between two terms.
fn shared_cols(a: &RaTerm, b: &RaTerm) -> usize {
    let ca = a.cols();
    b.cols().iter().filter(|c| ca.contains(c)).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    #[test]
    fn scan_estimates_match_stats() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let e = estimate(&scan(&db, &store, "isLocatedIn", "x", "y"), &store);
        assert_eq!(e.rows, 4.0);
    }

    #[test]
    fn semijoin_reduces_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let base = scan(&db, &store, "isLocatedIn", "x", "y");
        let filtered = RaTerm::semijoin(
            base.clone(),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("x"),
            },
        );
        let e_base = estimate(&base, &store);
        let e_filtered = estimate(&filtered, &store);
        assert!(e_filtered.rows < e_base.rows);
    }

    #[test]
    fn fixpoint_grows_estimate() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let inner = scan(&db, &store, "isLocatedIn", "x", "y");
        let e_inner = estimate(&inner, &store);
        let f = closure_fixpoint(s.recvar("X"), inner, s.col("x"), s.col("y"), s.col("m"));
        let e_fix = estimate(&f, &store);
        assert!(e_fix.rows > e_inner.rows);
        assert!(e_fix.cost > e_inner.cost);
    }

    #[test]
    fn join_estimate_bounded_by_cartesian() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let j = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let e = estimate(&j, &store);
        assert!(e.rows <= 16.0);
        assert!(e.rows > 0.0);
    }
}
