//! Physical plan rendering with per-operator strategy, estimated
//! cost/rows and (optionally) actual rows — the reproduction of the
//! paper's Fig. 17 execution plans, one level lower: what is shown is
//! the [`crate::plan::PhysPlan`] the executor actually interprets, so
//! join strategies (merge vs hash), build sides and fused filtered
//! scans are all visible.
//!
//! Rendering is one of the two places (with the SQL printer) where
//! interned [`sgq_common::ColId`]s are resolved back to names, through
//! the [`SymbolTable`] owned by the store.

use sgq_common::{json::JsonValue, Result};

use crate::exec::{execute_plan_traced, ExecContext, ExecTrace};
use crate::plan::{plan, PhysOp, PhysPlan};
use crate::storage::RelStore;
use crate::symbols::SymbolTable;
use crate::table::Relation;
use crate::term::RaTerm;

/// Lowers `term` and renders the physical plan with estimates only
/// (like `EXPLAIN`). Malformed terms render as a one-line plan error.
pub fn explain(term: &RaTerm, store: &RelStore, names: &dyn PlanNames) -> String {
    match plan(term, store) {
        Ok(p) => explain_plan(&p, store, names),
        Err(e) => format!("plan error: {e}\n"),
    }
}

/// Renders an already-lowered physical plan with estimates only.
pub fn explain_plan(p: &PhysPlan, store: &RelStore, names: &dyn PlanNames) -> String {
    explain_plan_with_dop(p, store, names, 1)
}

/// [`explain_plan`] for an execution at degree of parallelism `dop`:
/// operators whose estimated probe side clears the cost threshold
/// ([`crate::cost::PARALLEL_ROW_THRESHOLD`]) — i.e. the ones a `dop > 1`
/// execution would actually split into morsels — are annotated
/// `[parallel ×dop]`; sub-threshold operators render unannotated, as
/// they stay serial.
pub fn explain_plan_with_dop(
    p: &PhysPlan,
    store: &RelStore,
    names: &dyn PlanNames,
    dop: usize,
) -> String {
    let mut out = String::new();
    layout_header(store, &mut out);
    render(p, store, names, 0, &mut out, None, dop);
    out
}

/// Prepends the store's storage layout when it is not the default —
/// per-label plans render exactly as before this line existed, while a
/// polymorphic or denormalised store announces what its scans run
/// against.
fn layout_header(store: &RelStore, out: &mut String) {
    let kind = store.layout_kind();
    if kind != crate::layout::LayoutKind::PerLabel {
        out.push_str(&format!("layout: {kind}\n"));
    }
}

/// Executes the term and renders the physical plan with estimated *and*
/// actual rows plus the per-node q-error
/// ([`crate::cost::q_error`], `max(est, actual) / min(est, actual)`
/// floored at one row — 1.00 is a perfect estimate), like
/// `EXPLAIN ANALYZE`. Actual rows come from tracing the single
/// execution — per plan node, summed across fixpoint rounds — rather
/// than re-running sub-plans.
pub fn explain_analyze(
    term: &RaTerm,
    store: &RelStore,
    names: &dyn PlanNames,
) -> Result<(Relation, String)> {
    let p = plan(term, store)?;
    let mut ctx = ExecContext::new();
    let (rel, trace) = execute_plan_traced(&p, store, &mut ctx)?;
    let mut out = String::new();
    layout_header(store, &mut out);
    render(&p, store, names, 0, &mut out, Some(&trace), 1);
    Ok((rel, out))
}

/// Structured `EXPLAIN ANALYZE`: executes the term once (tracing it like
/// [`explain_analyze`]) and returns the result plus a JSON array with
/// one object per plan node in pre-order — `id`, `op`, `depth`,
/// `est_rows`, `est_cost`, `actual_rows`, `q_error`, and the feedback
/// provenance flags `memo` (the estimate came from the runtime feedback
/// memo) and `replanned` (the executor corrected the node mid-flight).
/// Harness and tests read these fields instead of scraping the text
/// renderer's lines.
pub fn explain_analyze_json(
    term: &RaTerm,
    store: &RelStore,
    names: &dyn PlanNames,
) -> Result<(Relation, JsonValue)> {
    let p = plan(term, store)?;
    let mut ctx = ExecContext::new();
    let (rel, trace) = execute_plan_traced(&p, store, &mut ctx)?;
    Ok((rel, analyze_json(&p, store, names, &trace)))
}

/// The JSON array of [`explain_analyze_json`] for an already-executed
/// plan and its [`ExecTrace`] — what the service's per-query analyze
/// option renders from the production execution instead of re-running
/// the query through the term-level path.
pub fn analyze_json(
    p: &PhysPlan,
    store: &RelStore,
    names: &dyn PlanNames,
    trace: &ExecTrace,
) -> JsonValue {
    let mut nodes = Vec::new();
    collect_json(p, store, names, 0, trace, &mut nodes);
    JsonValue::Arr(nodes)
}

fn collect_json(
    p: &PhysPlan,
    store: &RelStore,
    names: &dyn PlanNames,
    depth: usize,
    trace: &ExecTrace,
    out: &mut Vec<JsonValue>,
) {
    let actual = trace.actuals.get(p.id as usize).copied().unwrap_or(0);
    out.push(JsonValue::obj([
        ("id", JsonValue::Int(p.id as u64)),
        ("op", JsonValue::str(describe(p, names, &store.symbols))),
        ("depth", JsonValue::Int(depth as u64)),
        ("est_rows", JsonValue::Num(p.est.rows)),
        ("est_cost", JsonValue::Num(p.est.cost)),
        ("actual_rows", JsonValue::Int(actual as u64)),
        (
            "q_error",
            JsonValue::Num(crate::cost::q_error(p.est.rows, actual as f64)),
        ),
        ("memo", JsonValue::Bool(p.memo_est)),
        (
            "replanned",
            JsonValue::Bool(trace.replanned.get(p.id as usize).copied().unwrap_or(false)),
        ),
    ]));
    for child in p.children() {
        collect_json(child, store, names, depth + 1, trace, out);
    }
}

/// Resolves label ids to names for plan display.
pub trait PlanNames {
    /// Edge label display name.
    fn edge_name(&self, le: sgq_common::EdgeLabelId) -> String;
    /// Node label display name.
    fn node_name(&self, l: sgq_common::NodeLabelId) -> String;
}

impl PlanNames for sgq_graph::GraphSchema {
    fn edge_name(&self, le: sgq_common::EdgeLabelId) -> String {
        self.edge_label_name(le).to_string()
    }
    fn node_name(&self, l: sgq_common::NodeLabelId) -> String {
        self.node_label_name(l).to_string()
    }
}

impl PlanNames for sgq_graph::GraphDatabase {
    fn edge_name(&self, le: sgq_common::EdgeLabelId) -> String {
        self.edge_label_name(le).to_string()
    }
    fn node_name(&self, l: sgq_common::NodeLabelId) -> String {
        self.node_label_name(l).to_string()
    }
}

fn describe(p: &PhysPlan, names: &dyn PlanNames, symbols: &SymbolTable) -> String {
    match &p.op {
        PhysOp::EdgeScan { label } => format!(
            "Seq Scan on {} ({})",
            names.edge_name(*label),
            symbols.col_list(&p.cols, ", ")
        ),
        PhysOp::FilteredEdgeScan {
            label, key, merge, ..
        } => format!(
            "Filtered Seq Scan on {} ({}) [{} filter on {}]",
            names.edge_name(*label),
            symbols.col_list(&p.cols, ", "),
            if *merge { "merge" } else { "hash" },
            symbols.col_list(key, ", ")
        ),
        PhysOp::MultiEdgeScan { labels } => {
            let ls: Vec<String> = labels.iter().map(|&l| names.edge_name(l)).collect();
            format!(
                "Multi Seq Scan on {} ({}) [masked polymorphic pass]",
                ls.join("∪"),
                symbols.col_list(&p.cols, ", ")
            )
        }
        PhysOp::DenormEdgeScan {
            label,
            src_label,
            tgt_label,
        } => {
            let mut filters = String::new();
            if let Some(l) = src_label {
                filters.push_str(&format!(", src ∈ {}", names.node_name(*l)));
            }
            if let Some(l) = tgt_label {
                filters.push_str(&format!(", tgt ∈ {}", names.node_name(*l)));
            }
            format!(
                "Denorm Seq Scan on {} ({}{}) [precomputed slice]",
                names.edge_name(*label),
                symbols.col_list(&p.cols, ", "),
                filters
            )
        }
        PhysOp::NodeScan { labels } => {
            let ls: Vec<String> = labels.iter().map(|&l| names.node_name(l)).collect();
            format!(
                "Index Scan on {} ({})",
                ls.join("∪"),
                symbols.col_list(&p.cols, ", ")
            )
        }
        PhysOp::MergeJoin { key, .. } => {
            format!("Merge Join (key = {})", symbols.col_list(key, ", "))
        }
        PhysOp::HashJoin {
            key, build_left, ..
        } => format!(
            "Hash Join (build = {}, key = {})",
            if *build_left { "left" } else { "right" },
            if key.is_empty() {
                "∅ cartesian".to_string()
            } else {
                symbols.col_list(key, ", ")
            }
        ),
        PhysOp::MergeSemiJoin { key, .. } => {
            format!("Merge Semi Join (key = {})", symbols.col_list(key, ", "))
        }
        PhysOp::HashSemiJoin { key, .. } => format!(
            "Hash Semi Join (key = {})",
            if key.is_empty() {
                "∅ existence".to_string()
            } else {
                symbols.col_list(key, ", ")
            }
        ),
        PhysOp::IndexJoin {
            label,
            key,
            out,
            forward,
            src_labels,
            tgt_labels,
            ..
        } => format!(
            "Index Join on {} ({} CSR, {} → {}{})",
            names.edge_name(*label),
            if *forward { "forward" } else { "reverse" },
            symbols.col_name(*key),
            symbols.col_name(*out),
            endpoint_filters(names, src_labels, tgt_labels)
        ),
        PhysOp::IndexSemiJoin {
            label,
            key,
            forward,
            src_labels,
            tgt_labels,
            ..
        } => format!(
            "Index Semi Join on {} ({} CSR, key = {}{})",
            names.edge_name(*label),
            if *forward { "forward" } else { "reverse" },
            symbols.col_name(*key),
            endpoint_filters(names, src_labels, tgt_labels)
        ),
        PhysOp::Union { .. } => "Merge Union".to_string(),
        PhysOp::Project { .. } => {
            format!("Project ({})", symbols.col_list(&p.cols, ", "))
        }
        PhysOp::Select { a, b, .. } => format!(
            "Select ({} = {})",
            symbols.col_name(*a),
            symbols.col_name(*b)
        ),
        PhysOp::Rename { .. } => {
            format!("Rename ({})", symbols.col_list(&p.cols, ", "))
        }
        PhysOp::Fixpoint { var, step, .. } => format!(
            "Recursive Fixpoint µ{} (semi-naive, {} cached static input{})",
            symbols.recvar_name(*var),
            count_cacheable(step),
            if count_cacheable(step) == 1 { "" } else { "s" }
        ),
        PhysOp::RecRef { var } => format!(
            "Recursive Ref {} ({})",
            symbols.recvar_name(*var),
            symbols.col_list(&p.cols, ", ")
        ),
    }
}

/// Renders the endpoint label restrictions of an index (semi-)join,
/// e.g. `, src ∈ City, tgt ∈ Country` (`∅` for an impossible filter
/// intersection).
fn endpoint_filters(
    names: &dyn PlanNames,
    src_labels: &Option<Vec<sgq_common::NodeLabelId>>,
    tgt_labels: &Option<Vec<sgq_common::NodeLabelId>>,
) -> String {
    let render = |labels: &Vec<sgq_common::NodeLabelId>| {
        if labels.is_empty() {
            "∅".to_string()
        } else {
            labels
                .iter()
                .map(|&l| names.node_name(l))
                .collect::<Vec<_>>()
                .join("∪")
        }
    };
    let mut s = String::new();
    if let Some(ls) = src_labels {
        s.push_str(&format!(", src ∈ {}", render(ls)));
    }
    if let Some(ls) = tgt_labels {
        s.push_str(&format!(", tgt ∈ {}", render(ls)));
    }
    s
}

/// Number of maximal static subtrees (plus static build sides) of a
/// fixpoint step — the intermediates the executor caches across rounds.
fn count_cacheable(p: &PhysPlan) -> usize {
    if p.is_static() {
        return 1;
    }
    match &p.op {
        // A dynamic hash (semi-)join caches its static build/filter side
        // as a built hash table / key set rather than a plain relation.
        PhysOp::HashJoin {
            left,
            right,
            build_left,
            ..
        } => {
            let (build, probe) = if *build_left {
                (left, right)
            } else {
                (right, left)
            };
            if build.is_static() {
                1 + count_cacheable(probe)
            } else {
                count_cacheable(left) + count_cacheable(right)
            }
        }
        PhysOp::HashSemiJoin { left, right, .. } => {
            if right.is_static() {
                1 + count_cacheable(left)
            } else {
                count_cacheable(left) + count_cacheable(right)
            }
        }
        // (A FilteredEdgeScan needs no arm: its free recvars equal its
        // filter's, so a static filter makes the whole node static and
        // the early return above already counted it.)
        _ => p.children().iter().map(|c| count_cacheable(c)).sum(),
    }
}

#[allow(clippy::too_many_arguments)]
fn render(
    p: &PhysPlan,
    store: &RelStore,
    names: &dyn PlanNames,
    depth: usize,
    out: &mut String,
    trace: Option<&ExecTrace>,
    dop: usize,
) {
    out.push_str(&"  ".repeat(depth));
    let parallel = if dop > 1
        && p.parallel_probe_rows()
            .is_some_and(|rows| rows >= crate::cost::PARALLEL_ROW_THRESHOLD as f64)
    {
        format!(" [parallel ×{dop}]")
    } else {
        String::new()
    };
    // Feedback provenance: the estimate came from the runtime memo.
    let memo = if p.memo_est { " [memo]" } else { "" };
    let line = match trace {
        Some(t) => {
            let actual = t.actuals.get(p.id as usize).copied().unwrap_or(0);
            let replanned = if t.replanned.get(p.id as usize).copied().unwrap_or(false) {
                " [replanned]"
            } else {
                ""
            };
            format!(
                "{} (cost = {:.2} rows = {:.0}{memo} actual = {actual} q = {:.2}){parallel}{replanned}\n",
                describe(p, names, &store.symbols),
                p.est.cost,
                p.est.rows,
                crate::cost::q_error(p.est.rows, actual as f64)
            )
        }
        None => format!(
            "{} (cost = {:.2} rows = {:.0}{memo}){parallel}\n",
            describe(p, names, &store.symbols),
            p.est.cost,
            p.est.rows
        ),
    };
    out.push_str(&line);
    for child in p.children() {
        render(child, store, names, depth + 1, out, trace, dop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn explain_renders_physical_tree() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.index_joins = false;
        let s = &store.symbols;
        let t = RaTerm::join(
            RaTerm::EdgeScan {
                label: db.edge_label_id("owns").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("y"),
                tgt: s.col("z"),
            },
        );
        let rendered = explain(&t, &store, &db);
        // owns (1 row) is the estimated-smaller side: it builds.
        assert!(
            rendered.contains("Hash Join (build = left, key = y)"),
            "{rendered}"
        );
        assert!(rendered.contains("Seq Scan on owns (x, y)"), "{rendered}");
        assert!(rendered.contains("rows = 4"), "{rendered}");
    }

    #[test]
    fn explain_shows_merge_join_for_aligned_inputs() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.index_joins = false;
        let s = &store.symbols;
        let t = RaTerm::join(
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::EdgeScan {
                label: db.edge_label_id("owns").unwrap(),
                src: s.col("x"),
                tgt: s.col("z"),
            },
        );
        let rendered = explain(&t, &store, &db);
        assert!(rendered.contains("Merge Join (key = x)"), "{rendered}");
        assert!(!rendered.contains("Hash Join"), "{rendered}");
    }

    #[test]
    fn explain_analyze_reports_actuals() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::semijoin(
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: s.col("x"),
            },
        );
        let (rel, rendered) = explain_analyze(&t, &store, &db).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rendered.contains("actual = 1"), "{rendered}");
        // The triple-count estimate is exact here: q-error 1.00 on the
        // filtered scan (1 estimated row, 1 actual).
        assert!(
            rendered.contains("rows = 1 actual = 1 q = 1.00"),
            "{rendered}"
        );
        // The semi-join fuses onto the scan, with a merge filter since x
        // leads both schemas.
        assert!(
            rendered.contains("Filtered Seq Scan on isLocatedIn (x, y) [merge filter on x]"),
            "{rendered}"
        );
        assert!(rendered.contains("Index Scan on REGION"), "{rendered}");
    }

    #[test]
    fn explain_analyze_json_reports_per_node_records() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::semijoin(
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: s.col("x"),
            },
        );
        let (rel, json) = explain_analyze_json(&t, &store, &db).unwrap();
        assert_eq!(rel.len(), 1);
        let JsonValue::Arr(nodes) = &json else {
            panic!("array of node records, got {json:?}")
        };
        // Fused filtered scan + its node-scan filter, in pre-order.
        assert_eq!(nodes.len(), 2);
        let field = |node: &JsonValue, key: &str| -> JsonValue {
            let JsonValue::Obj(fields) = node else {
                panic!("object record, got {node:?}")
            };
            fields
                .iter()
                .find(|(k, _)| k == key)
                .unwrap_or_else(|| panic!("field {key} in {node:?}"))
                .1
                .clone()
        };
        // Records are pre-order (root first); ids are the planner's
        // bottom-up numbering, so the root carries the highest id.
        assert_eq!(field(&nodes[0], "id"), JsonValue::Int(1));
        assert_eq!(field(&nodes[1], "id"), JsonValue::Int(0));
        assert_eq!(field(&nodes[0], "depth"), JsonValue::Int(0));
        assert!(
            matches!(field(&nodes[0], "op"), JsonValue::Str(op) if op.contains("Filtered Seq Scan")),
        );
        // The triple-count estimate is exact here: 1 row, q-error 1.
        assert_eq!(field(&nodes[0], "actual_rows"), JsonValue::Int(1));
        assert_eq!(field(&nodes[0], "q_error"), JsonValue::Num(1.0));
        assert_eq!(field(&nodes[0], "memo"), JsonValue::Bool(false));
        assert_eq!(field(&nodes[0], "replanned"), JsonValue::Bool(false));
        assert_eq!(field(&nodes[1], "depth"), JsonValue::Int(1));
        // And the tree renders as a well-formed document.
        assert!(
            json.render().starts_with("[{\"id\": 1"),
            "{}",
            json.render()
        );
    }

    #[test]
    fn explain_annotates_memo_sourced_estimates() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::EdgeScan {
            label: db.edge_label_id("isLocatedIn").unwrap(),
            src: s.col("x"),
            tgt: s.col("y"),
        };
        let before = explain(&t, &store, &db);
        assert!(!before.contains("[memo]"), "{before}");
        // An observed cardinality overrides the formula estimate, and the
        // plan advertises the provenance.
        store
            .feedback
            .observe(crate::cost::fingerprint(&t, &store), 123);
        let after = explain(&t, &store, &db);
        assert!(after.contains("rows = 123 [memo]"), "{after}");
    }

    #[test]
    fn explain_shows_index_join_with_endpoint_filters() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let filtered = RaTerm::semijoin(
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("y"),
                tgt: s.col("z"),
            },
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: s.col("z"),
            },
        );
        let t = RaTerm::join(
            RaTerm::EdgeScan {
                label: db.edge_label_id("owns").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            filtered,
        );
        let rendered = explain(&t, &store, &db);
        assert!(
            rendered.contains("Index Join on isLocatedIn (forward CSR, y → z, tgt ∈ REGION)"),
            "{rendered}"
        );
        // The absorbed scan has no node of its own; the probe renders.
        assert!(rendered.contains("Seq Scan on owns (x, y)"), "{rendered}");
    }

    #[test]
    fn explain_annotates_parallel_eligible_operators() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.index_joins = false;
        let s = &store.symbols;
        let t = RaTerm::join(
            RaTerm::EdgeScan {
                label: db.edge_label_id("owns").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("y"),
                tgt: s.col("z"),
            },
        );
        let mut p = plan(&t, &store).unwrap();
        // Sub-threshold probes stay serial: no annotation even at dop 4.
        let quiet = explain_plan_with_dop(&p, &store, &db, 4);
        assert!(!quiet.contains("parallel"), "{quiet}");
        // With the probe estimate past the threshold the join gains the
        // annotation at dop > 1 — and never at dop = 1.
        let PhysOp::HashJoin {
            left,
            right,
            build_left,
            ..
        } = &mut p.op
        else {
            panic!("hash plan expected")
        };
        let probe = if *build_left { right } else { left };
        probe.est.rows = 1e6;
        let rendered = explain_plan_with_dop(&p, &store, &db, 4);
        assert!(rendered.contains("[parallel ×4]"), "{rendered}");
        assert!(!explain_plan(&p, &store, &db).contains("parallel"));
    }

    #[test]
    fn explain_shows_fixpoint_cached_inputs() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.index_joins = false;
        let s = &store.symbols;
        let f = crate::term::closure_fixpoint(
            s.recvar("X"),
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let rendered = explain(&f, &store, &db);
        assert!(
            rendered.contains("Recursive Fixpoint µX (semi-naive, 1 cached static input)"),
            "{rendered}"
        );
        assert!(rendered.contains("Recursive Ref X (x, m)"), "{rendered}");
    }
}
