//! Plan rendering with estimated cost/rows and (optionally) actual rows —
//! the reproduction of the paper's Fig. 17 execution plans.
//!
//! Rendering is one of the two places (with the SQL printer) where
//! interned [`sgq_common::ColId`]s are resolved back to names, through
//! the [`SymbolTable`] owned by the store.

use sgq_common::Result;

use crate::cost::estimate;
use crate::exec::{execute, ExecContext};
use crate::storage::RelStore;
use crate::symbols::SymbolTable;
use crate::table::Relation;
use crate::term::RaTerm;

/// Renders the plan with estimates only (like `EXPLAIN`).
pub fn explain(term: &RaTerm, store: &RelStore, names: &dyn PlanNames) -> String {
    let mut out = String::new();
    render(term, store, names, 0, &mut out);
    out
}

/// Executes the term and renders the plan with estimated *and* actual
/// rows (like `EXPLAIN ANALYZE`).
pub fn explain_analyze(
    term: &RaTerm,
    store: &RelStore,
    names: &dyn PlanNames,
) -> Result<(Relation, String)> {
    let mut ctx = ExecContext::new();
    let rel = execute(term, store, &mut ctx)?;
    let mut out = String::new();
    render_with_actual(term, store, names, 0, &mut out, &rel);
    Ok((rel, out))
}

/// Resolves label ids to names for plan display.
pub trait PlanNames {
    /// Edge label display name.
    fn edge_name(&self, le: sgq_common::EdgeLabelId) -> String;
    /// Node label display name.
    fn node_name(&self, l: sgq_common::NodeLabelId) -> String;
}

impl PlanNames for sgq_graph::GraphSchema {
    fn edge_name(&self, le: sgq_common::EdgeLabelId) -> String {
        self.edge_label_name(le).to_string()
    }
    fn node_name(&self, l: sgq_common::NodeLabelId) -> String {
        self.node_label_name(l).to_string()
    }
}

impl PlanNames for sgq_graph::GraphDatabase {
    fn edge_name(&self, le: sgq_common::EdgeLabelId) -> String {
        self.edge_label_name(le).to_string()
    }
    fn node_name(&self, l: sgq_common::NodeLabelId) -> String {
        self.node_label_name(l).to_string()
    }
}

fn describe(term: &RaTerm, names: &dyn PlanNames, symbols: &SymbolTable) -> String {
    match term {
        RaTerm::EdgeScan { label, src, tgt } => format!(
            "Seq Scan on {} ({}, {})",
            names.edge_name(*label),
            symbols.col_name(*src),
            symbols.col_name(*tgt)
        ),
        RaTerm::NodeScan { labels, col } => {
            let ls: Vec<String> = labels.iter().map(|&l| names.node_name(l)).collect();
            format!(
                "Index Scan on {} ({})",
                ls.join("∪"),
                symbols.col_name(*col)
            )
        }
        RaTerm::Join(..) => "Hash Join".to_string(),
        RaTerm::Semijoin(..) => "Semi Join".to_string(),
        RaTerm::Union(..) => "Union".to_string(),
        RaTerm::Project { cols, .. } => {
            format!("Project ({})", symbols.col_list(cols, ", "))
        }
        RaTerm::Select { a, b, .. } => format!(
            "Select ({} = {})",
            symbols.col_name(*a),
            symbols.col_name(*b)
        ),
        RaTerm::Rename { from, to, .. } => format!(
            "Rename ({} -> {})",
            symbols.col_name(*from),
            symbols.col_name(*to)
        ),
        RaTerm::Fixpoint { var, .. } => format!(
            "Recursive Fixpoint µ{} (semi-naive)",
            symbols.recvar_name(*var)
        ),
        RaTerm::RecRef { var, cols } => format!(
            "Recursive Ref {} ({})",
            symbols.recvar_name(*var),
            symbols.col_list(cols, ", ")
        ),
    }
}

fn render(term: &RaTerm, store: &RelStore, names: &dyn PlanNames, depth: usize, out: &mut String) {
    let e = estimate(term, store);
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} (cost = {:.2} rows = {:.0})\n",
        describe(term, names, &store.symbols),
        e.cost,
        e.rows
    ));
    for child in children(term) {
        render(child, store, names, depth + 1, out);
    }
}

fn render_with_actual(
    term: &RaTerm,
    store: &RelStore,
    names: &dyn PlanNames,
    depth: usize,
    out: &mut String,
    root_result: &Relation,
) {
    let e = estimate(term, store);
    // Re-execute sub-plans to report their actual cardinalities; the plans
    // involved in EXPLAIN ANALYZE demos are small.
    let actual = if depth == 0 {
        root_result.len()
    } else {
        let mut ctx = ExecContext::new();
        execute(term, store, &mut ctx).map(|r| r.len()).unwrap_or(0)
    };
    out.push_str(&"  ".repeat(depth));
    out.push_str(&format!(
        "{} (cost = {:.2} rows = {:.0} actual = {actual})\n",
        describe(term, names, &store.symbols),
        e.cost,
        e.rows
    ));
    for child in children(term) {
        if matches!(child, RaTerm::RecRef { .. }) {
            // cannot evaluate outside its fixpoint; render estimate only
            render(child, store, names, depth + 1, out);
        } else {
            render_with_actual(child, store, names, depth + 1, out, root_result);
        }
    }
}

fn children(term: &RaTerm) -> Vec<&RaTerm> {
    match term {
        RaTerm::EdgeScan { .. } | RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => vec![],
        RaTerm::Join(a, b) | RaTerm::Semijoin(a, b) | RaTerm::Union(a, b) => {
            vec![a, b]
        }
        RaTerm::Project { input, .. }
        | RaTerm::Rename { input, .. }
        | RaTerm::Select { input, .. } => vec![input],
        RaTerm::Fixpoint { base, step, .. } => vec![base, step],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::database::fig2_yago_database;

    #[test]
    fn explain_renders_tree() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::join(
            RaTerm::EdgeScan {
                label: db.edge_label_id("owns").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("y"),
                tgt: s.col("z"),
            },
        );
        let rendered = explain(&t, &store, &db);
        assert!(rendered.contains("Hash Join"), "{rendered}");
        assert!(rendered.contains("Seq Scan on owns (x, y)"), "{rendered}");
        assert!(rendered.contains("rows = 4"), "{rendered}");
    }

    #[test]
    fn explain_analyze_reports_actuals() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::semijoin(
            RaTerm::EdgeScan {
                label: db.edge_label_id("isLocatedIn").unwrap(),
                src: s.col("x"),
                tgt: s.col("y"),
            },
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: s.col("x"),
            },
        );
        let (rel, rendered) = explain_analyze(&t, &store, &db).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rendered.contains("actual = 1"), "{rendered}");
        assert!(rendered.contains("Semi Join"), "{rendered}");
        assert!(rendered.contains("Index Scan on REGION"), "{rendered}");
    }
}
