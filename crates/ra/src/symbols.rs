//! Interned column and recursion-variable names.
//!
//! The RA layer works exclusively with dense [`ColId`] / [`RecVarId`]
//! ids: every schema comparison, join-key lookup and optimizer pass is a
//! `u32` comparison, never a string compare, and cloning a schema is a
//! `memcpy` of 4-byte ids. Human-readable names survive only at the
//! system's edges — the translator interns them on the way in, and
//! `explain`/SQL rendering resolves them on the way out — through this
//! table.
//!
//! The table is owned by [`crate::storage::RelStore`] (one id space per
//! loaded database) and is internally synchronised, so producers
//! (translation) and consumers (execution, explain) share `&SymbolTable`
//! freely; hot paths never touch it.

use std::sync::Mutex;

use sgq_common::{ColId, Interner, RecVarId};

/// Two-sided interner: column names and fixpoint recursion variables.
///
/// All methods take `&self`; the table is internally synchronised. `Sr`
/// and `Tr` (the paper's Fig. 11 storage columns) are pre-interned to
/// [`SymbolTable::SR`] and [`SymbolTable::TR`] so [`crate::RelStore`]
/// tables can be built without touching the lock.
#[derive(Debug)]
pub struct SymbolTable {
    inner: Mutex<Inner>,
}

/// Same as [`SymbolTable::new`]: `Sr`/`Tr` are always pre-interned, so
/// a defaulted table can never hand out a column id that collides with
/// the storage columns.
impl Default for SymbolTable {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Default)]
struct Inner {
    cols: Interner,
    recvars: Interner,
}

impl SymbolTable {
    /// The pre-interned `Sr` (source / node id) storage column.
    pub const SR: ColId = ColId(0);
    /// The pre-interned `Tr` (target) storage column.
    pub const TR: ColId = ColId(1);

    /// Creates a table with `Sr`/`Tr` pre-interned.
    pub fn new() -> Self {
        let table = SymbolTable {
            inner: Mutex::new(Inner::default()),
        };
        assert_eq!(table.col(crate::storage::SR), Self::SR);
        assert_eq!(table.col(crate::storage::TR), Self::TR);
        table
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Interns a column name.
    pub fn col(&self, name: &str) -> ColId {
        ColId(self.lock().cols.intern(name))
    }

    /// Looks up a column name without interning.
    pub fn try_col(&self, name: &str) -> Option<ColId> {
        self.lock().cols.get(name).map(ColId)
    }

    /// Interns several column names at once.
    pub fn cols(&self, names: &[&str]) -> Vec<ColId> {
        let mut inner = self.lock();
        names.iter().map(|n| ColId(inner.cols.intern(n))).collect()
    }

    /// Resolves a column id to its name.
    ///
    /// Foreign ids (from another table) render as `c{raw}` rather than
    /// panicking, so plans stay printable even when mixed up.
    pub fn col_name(&self, id: ColId) -> String {
        self.lock()
            .cols
            .try_resolve(id.raw())
            .map(str::to_owned)
            .unwrap_or_else(|| id.to_string())
    }

    /// Resolves several column ids, joined by `sep` — the common
    /// rendering need of `explain` and the SQL printer.
    pub fn col_list(&self, ids: &[ColId], sep: &str) -> String {
        let inner = self.lock();
        ids.iter()
            .map(|id| {
                inner
                    .cols
                    .try_resolve(id.raw())
                    .map(str::to_owned)
                    .unwrap_or_else(|| id.to_string())
            })
            .collect::<Vec<_>>()
            .join(sep)
    }

    /// Interns a recursion-variable name.
    pub fn recvar(&self, name: &str) -> RecVarId {
        RecVarId(self.lock().recvars.intern(name))
    }

    /// Resolves a recursion-variable id to its name (or `X{raw}` for
    /// foreign ids).
    pub fn recvar_name(&self, id: RecVarId) -> String {
        self.lock()
            .recvars
            .try_resolve(id.raw())
            .map(str::to_owned)
            .unwrap_or_else(|| id.to_string())
    }

    /// Number of interned column names.
    pub fn col_count(&self) -> usize {
        self.lock().cols.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sr_tr_are_pre_interned() {
        let t = SymbolTable::new();
        assert_eq!(t.try_col("Sr"), Some(SymbolTable::SR));
        assert_eq!(t.try_col("Tr"), Some(SymbolTable::TR));
        assert_eq!(t.col_name(SymbolTable::SR), "Sr");
    }

    #[test]
    fn col_interning_is_idempotent() {
        let t = SymbolTable::new();
        let x = t.col("x");
        assert_eq!(t.col("x"), x);
        assert_ne!(t.col("y"), x);
        assert_eq!(t.col_name(x), "x");
    }

    #[test]
    fn recvars_are_a_separate_id_space() {
        let t = SymbolTable::new();
        let v = t.recvar("X");
        assert_eq!(v.raw(), 0, "recvar ids do not share the column space");
        assert_eq!(t.recvar_name(v), "X");
    }

    #[test]
    fn foreign_ids_render_instead_of_panicking() {
        let t = SymbolTable::new();
        assert_eq!(t.col_name(ColId::new(99)), "c99");
        assert_eq!(t.recvar_name(RecVarId::new(99)), "X99");
    }

    #[test]
    fn col_list_joins_names() {
        let t = SymbolTable::new();
        let ids = t.cols(&["a", "b"]);
        assert_eq!(t.col_list(&ids, ", "), "a, b");
    }
}
