//! The cardinality feedback memo: runtime row counts fed back into the
//! cost model.
//!
//! Execution observes the true cardinality of every *static* plan
//! subtree at the points where rows are already being counted for the
//! materialisation budget — feedback costs no extra pass. Observations
//! are keyed by a structural **fingerprint** of the logical subtree
//! (operator kinds, edge labels, node-label filters and join-key
//! *positions* — see [`crate::cost`]), so the memo is invariant under
//! column renaming and under the physical strategy chosen (a hash join
//! and an index join of the same logical join share one entry).
//!
//! Each entry keeps an exponentially-decayed running estimate: a new
//! observation `r` folds in as
//!
//! ```text
//! w' = w · DECAY + 1          rows' = (rows · w · DECAY + r) / w'
//! ```
//!
//! so repeated observations converge while stale history fades with
//! half-weight per observation ([`DECAY`] = 0.5). The `weight` doubles
//! as a confidence signal: it approaches `1 / (1 - DECAY)` as evidence
//! accumulates.
//!
//! The memo is sharded and lock-free on the read path's fast exit
//! (per-shard mutexes, no global lock), and lives on the shared
//! [`crate::RelStore`] behind interior mutability: every service worker
//! executing against the store feeds the same memo, and a schema change
//! clears it alongside the plan cache.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use sgq_common::FxHashMap;

/// Per-observation decay of the accumulated weight: the previous
/// estimate keeps half its weight when a new observation arrives.
pub const DECAY: f64 = 0.5;

/// Number of independently locked shards (power of two).
const SHARDS: usize = 16;

/// One remembered cardinality: the decayed running row count and the
/// accumulated evidence weight (`>= 1` once observed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Exponentially-decayed observed row count.
    pub rows: f64,
    /// Accumulated evidence weight (confidence); bounded by
    /// `1 / (1 - DECAY)`.
    pub weight: f64,
}

/// The concurrent fingerprint → observed-cardinality map.
#[derive(Debug)]
pub struct FeedbackMemo {
    shards: Vec<Mutex<FxHashMap<u64, Observation>>>,
    enabled: AtomicBool,
    hits: AtomicU64,
    recorded: AtomicU64,
}

impl Default for FeedbackMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl FeedbackMemo {
    /// An empty, enabled memo.
    pub fn new() -> Self {
        FeedbackMemo {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(FxHashMap::default()))
                .collect(),
            enabled: AtomicBool::new(true),
            hits: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
        }
    }

    fn shard(&self, fp: u64) -> &Mutex<FxHashMap<u64, Observation>> {
        // High bits: the fingerprints are already well-mixed hashes.
        &self.shards[(fp >> 58) as usize % SHARDS]
    }

    /// Whether estimation consults and execution populates the memo.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns feedback on or off (off = cold planning, e.g. for an
    /// ablation baseline). Existing observations are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The remembered observation for `fp`, counting a hit. `None` when
    /// never observed or the memo is disabled.
    pub fn lookup(&self, fp: u64) -> Option<Observation> {
        if !self.is_enabled() {
            return None;
        }
        let shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        let obs = shard.get(&fp).copied();
        if obs.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        obs
    }

    /// Folds an observed row count into the entry for `fp` with the
    /// decay rule above. No-op while disabled.
    pub fn observe(&self, fp: u64, rows: usize) {
        if !self.is_enabled() {
            return;
        }
        let mut shard = self.shard(fp).lock().unwrap_or_else(|e| e.into_inner());
        let entry = shard.entry(fp).or_insert(Observation {
            rows: rows as f64,
            weight: 0.0,
        });
        let carried = entry.weight * DECAY;
        entry.rows = (entry.rows * carried + rows as f64) / (carried + 1.0);
        entry.weight = carried + 1.0;
        drop(shard);
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Drops every observation (schema change: observed cardinalities
    /// are no longer about the current data).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// Distinct fingerprints currently remembered.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).len())
            .sum()
    }

    /// Whether no observation is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimation lookups that found an observation.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Observations folded in since creation (or the last counter-free
    /// [`FeedbackMemo::clear`] — counters survive clears).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_observation_is_remembered_exactly() {
        let memo = FeedbackMemo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.lookup(42), None);
        memo.observe(42, 100);
        let obs = memo.lookup(42).expect("remembered");
        assert_eq!(obs.rows, 100.0);
        assert_eq!(obs.weight, 1.0);
        assert_eq!(memo.len(), 1);
        assert_eq!(memo.recorded(), 1);
        assert_eq!(memo.hits(), 1);
    }

    #[test]
    fn repeated_observations_decay_towards_recent() {
        let memo = FeedbackMemo::new();
        memo.observe(7, 1000);
        memo.observe(7, 0);
        let obs = memo.lookup(7).unwrap();
        // w' = 1·0.5 + 1 = 1.5, rows' = (1000·0.5 + 0) / 1.5 = 333.3…:
        // the newest observation dominates.
        assert!(
            (obs.rows - 1000.0 / 3.0).abs() < 1e-9,
            "rows = {}",
            obs.rows
        );
        assert!((obs.weight - 1.5).abs() < 1e-12);
        // Converges to the stable value when it repeats.
        for _ in 0..30 {
            memo.observe(7, 10);
        }
        let obs = memo.lookup(7).unwrap();
        assert!((obs.rows - 10.0).abs() < 1e-6, "rows = {}", obs.rows);
        assert!(obs.weight <= 1.0 / (1.0 - DECAY) + 1e-9);
    }

    #[test]
    fn clear_forgets_everything() {
        let memo = FeedbackMemo::new();
        for fp in 0..64u64 {
            memo.observe(fp.wrapping_mul(0x9e37_79b9_7f4a_7c15), 5);
        }
        assert_eq!(memo.len(), 64);
        memo.clear();
        assert!(memo.is_empty());
        assert_eq!(memo.lookup(0), None);
    }

    #[test]
    fn disabled_memo_neither_records_nor_serves() {
        let memo = FeedbackMemo::new();
        memo.observe(1, 10);
        memo.set_enabled(false);
        memo.observe(2, 10);
        assert_eq!(memo.lookup(1), None, "disabled lookups miss");
        assert_eq!(memo.len(), 1, "disabled observe is a no-op");
        memo.set_enabled(true);
        assert!(memo.lookup(1).is_some(), "observations survive a disable");
    }

    #[test]
    fn concurrent_observers_do_not_lose_counts() {
        let memo = std::sync::Arc::new(FeedbackMemo::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let memo = std::sync::Arc::clone(&memo);
                std::thread::spawn(move || {
                    for i in 0..256u64 {
                        memo.observe(i % 8, (t * 10 + 1) as usize);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(memo.len(), 8);
        assert_eq!(memo.recorded(), 4 * 256);
        for fp in 0..8 {
            let obs = memo.lookup(fp).unwrap();
            assert!(obs.rows >= 1.0 && obs.rows <= 31.0, "rows = {}", obs.rows);
        }
    }
}
