//! Pluggable physical storage layouts behind the [`StorageLayout`]
//! trait, chosen per schema by the [`LayoutAdvisor`].
//!
//! The paper optimises queries *given* a schema; this module takes the
//! schema one level further down and lets it pick the physical layout
//! of the store itself. One logical graph maps onto three orthogonal
//! layouts (ClickGraph's schema variations, and arXiv:2003.11580's
//! schema-driven layout choice):
//!
//! * [`LayoutKind::PerLabel`] — the classic Fig. 11 representation: one
//!   binary `(Sr, Tr)` table per edge label. The default, and the
//!   baseline every other layout must stay bit-compatible with.
//! * [`LayoutKind::Polymorphic`] — one global edge table holding the
//!   distinct `(Sr, Tr)` pairs of *all* labels, with a per-row label
//!   bitmask. A multi-label scan (`owns ∪ worksAt`) becomes a single
//!   masked pass ([`StorageLayout::multi_edge_table`]) instead of a
//!   union-all of per-label scans; single-label tables are sliced out
//!   lazily on first access and cached.
//! * [`LayoutKind::Denormalized`] — per-label tables *plus*
//!   precomputed endpoint-label slices: for every observed
//!   `(src label, le, tgt label)` triple and every one-sided group the
//!   filtered table ([`StorageLayout::filtered_edge_table`]) is built
//!   at load, so a node-label semi-join on a scan costs exactly its
//!   output rows — the filter is free at scan time.
//!
//! All three layouts share the same adjacency indexes (per-label
//! forward/reverse [`Csr`]s) and node tables: CSRs are indexes, not
//! layout, so index joins behave identically everywhere and execution
//! results are bit-identical by construction (pinned by the
//! `ra_soundness` layout-equivalence property).
//!
//! The planner consults the capability probes
//! ([`StorageLayout::supports_multi_scan`],
//! [`StorageLayout::has_filtered_table`]) and only emits the
//! layout-specific scan operators (`MultiEdgeScan`, `DenormEdgeScan`)
//! when the loaded layout can serve them, so per-label plans — and the
//! golden plans in tests — are unchanged by this refactor.

use std::sync::{Arc, OnceLock};

use sgq_common::{EdgeLabelId, FxHashMap, NodeLabelId};
use sgq_graph::{Csr, GraphDatabase, GraphSchema, GraphStats};

use crate::symbols::SymbolTable;
use crate::table::Relation;

/// The maximum number of edge labels the polymorphic layout's per-row
/// `u64` label bitmask can distinguish. Schemas with more labels fall
/// back to the per-label layout.
pub const POLY_MAX_LABELS: usize = 64;

/// Which physical storage layout a store was loaded with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayoutKind {
    /// One `(Sr, Tr)` table per edge label (Fig. 11, the default).
    PerLabel,
    /// One global edge table with a per-row label bitmask.
    Polymorphic,
    /// Per-label tables plus precomputed endpoint-label slices.
    Denormalized,
}

impl LayoutKind {
    /// All layout kinds, in ablation-sweep order.
    pub const ALL: [LayoutKind; 3] = [
        LayoutKind::PerLabel,
        LayoutKind::Polymorphic,
        LayoutKind::Denormalized,
    ];

    /// Stable lowercase name, used in EXPLAIN, metrics and cache keys.
    pub fn name(self) -> &'static str {
        match self {
            LayoutKind::PerLabel => "per-label",
            LayoutKind::Polymorphic => "polymorphic",
            LayoutKind::Denormalized => "denormalized",
        }
    }

    /// Parses [`LayoutKind::name`] back (for config files / CLI flags).
    pub fn parse(s: &str) -> Option<LayoutKind> {
        LayoutKind::ALL.into_iter().find(|k| k.name() == s)
    }
}

impl std::fmt::Display for LayoutKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The physical storage behind a [`crate::storage::RelStore`]: scans,
/// CSR adjacency access and node-label sets, plus optional capabilities
/// only some layouts provide. Object-safe so the store can hold any
/// layout behind one `Box<dyn StorageLayout>`.
pub trait StorageLayout: Send + Sync {
    /// Which layout this is.
    fn kind(&self) -> LayoutKind;

    /// The edge table for `le` — an O(1) shared handle for eager
    /// layouts, a cached slice for the polymorphic layout. Out-of-range
    /// labels return a handle onto the shared empty buffer.
    fn edge_table(&self, le: EdgeLabelId) -> Relation;

    /// The node table for `l` (O(1) shared handle; empty out of range).
    fn node_table(&self, l: NodeLabelId) -> Relation;

    /// The sorted set of node ids carrying label `l`.
    fn node_set(&self, l: NodeLabelId) -> &[u32];

    /// The forward CSR for `le` (targets per source), if in range.
    fn forward_csr(&self, le: EdgeLabelId) -> Option<&Csr>;

    /// The reverse CSR for `le` (sources per target), if in range.
    fn reverse_csr(&self, le: EdgeLabelId) -> Option<&Csr>;

    /// Shared handle on the forward CSR for `le`.
    fn forward_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>>;

    /// Shared handle on the reverse CSR for `le`.
    fn reverse_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>>;

    /// Number of edge labels the layout stores tables for.
    fn edge_table_count(&self) -> usize;

    /// Number of node tables.
    fn node_table_count(&self) -> usize;

    /// Total distinct `(Sr, Tr)` rows of the single polymorphic table,
    /// when the layout has one — the cost model's input for pricing a
    /// masked multi-label pass against a union-all of per-label scans.
    fn poly_rows(&self) -> Option<usize> {
        None
    }

    /// Whether [`StorageLayout::multi_edge_table`] is served natively.
    fn supports_multi_scan(&self) -> bool {
        false
    }

    /// One canonical `(Sr, Tr)` relation holding the union of the given
    /// edge labels' tables, produced in a single masked pass over the
    /// polymorphic table. `None` when the layout cannot serve it (the
    /// executor falls back to a union-all of per-label scans).
    fn multi_edge_table(&self, labels: &[EdgeLabelId]) -> Option<Relation> {
        let _ = labels;
        None
    }

    /// Whether a precomputed endpoint-label slice exists for `le`
    /// restricted to the given source/target node labels.
    fn has_filtered_table(
        &self,
        le: EdgeLabelId,
        src: Option<NodeLabelId>,
        tgt: Option<NodeLabelId>,
    ) -> bool {
        let _ = (le, src, tgt);
        false
    }

    /// The precomputed endpoint-label slice of `le`'s table, when the
    /// layout denormalises it: the rows whose source (resp. target)
    /// carries the given label. `None` when not materialised (the
    /// executor falls back to filtering through the node sets).
    fn filtered_edge_table(
        &self,
        le: EdgeLabelId,
        src: Option<NodeLabelId>,
        tgt: Option<NodeLabelId>,
    ) -> Option<Relation> {
        let _ = (le, src, tgt);
        None
    }
}

/// Schema-driven layout selection.
///
/// The rule is deliberately simple and fully static:
///
/// 1. **Denormalized** when any edge label admits two or more schema
///    triples — overloaded labels (`isLocatedIn` spanning
///    `CITY→REGION` and `REGION→COUNTRY`) are exactly the ones the
///    rewriter decorates with node-label semi-joins, and the
///    denormalised slices serve those filters at output cost.
/// 2. **Polymorphic** when every label is single-triple but the schema
///    has several edge labels (and at most [`POLY_MAX_LABELS`]):
///    multi-label unions collapse into one masked pass.
/// 3. **PerLabel** otherwise (including empty graphs, where nothing can
///    be won).
pub struct LayoutAdvisor;

impl LayoutAdvisor {
    /// Chooses a layout for `schema` over a graph with `stats`.
    pub fn choose(schema: &GraphSchema, stats: &GraphStats) -> LayoutKind {
        if stats.edge_count == 0 {
            return LayoutKind::PerLabel;
        }
        let labels = schema.edge_label_count();
        let overloaded = (0..labels).any(|i| {
            schema
                .triples_for_edge_label(EdgeLabelId::new(i as u32))
                .len()
                >= 2
        });
        if overloaded {
            return LayoutKind::Denormalized;
        }
        if labels > 1 && labels <= POLY_MAX_LABELS {
            return LayoutKind::Polymorphic;
        }
        LayoutKind::PerLabel
    }
}

/// Builds a layout of the given kind from a database. The polymorphic
/// layout degrades to per-label when the schema has more than
/// [`POLY_MAX_LABELS`] edge labels (the bitmask cannot represent it).
pub(crate) fn build_layout(db: &GraphDatabase, kind: LayoutKind) -> Box<dyn StorageLayout> {
    match kind {
        LayoutKind::PerLabel => Box::new(PerLabelLayout::load(db)),
        LayoutKind::Polymorphic if db.edge_label_count() <= POLY_MAX_LABELS => {
            Box::new(PolymorphicLayout::load(db))
        }
        LayoutKind::Polymorphic => Box::new(PerLabelLayout::load(db)),
        LayoutKind::Denormalized => Box::new(DenormalizedLayout::load(db)),
    }
}

/// Filters a canonical `(Sr, Tr)` table by sorted endpoint node sets —
/// the executor's fallback when a `DenormEdgeScan` runs against a
/// layout without the precomputed slice. Filtering preserves canonical
/// order.
pub(crate) fn filter_edges_by_sets(
    table: &Relation,
    src_set: Option<&[u32]>,
    tgt_set: Option<&[u32]>,
) -> Relation {
    let mut data = Vec::new();
    for row in table.rows() {
        if src_set.is_some_and(|s| s.binary_search(&row[0]).is_err()) {
            continue;
        }
        if tgt_set.is_some_and(|s| s.binary_search(&row[1]).is_err()) {
            continue;
        }
        data.extend_from_slice(row);
    }
    Relation::from_flat_sorted(table.cols().to_vec(), data)
}

/// Node tables and per-label CSR indexes — identical across all
/// layouts (indexes are not layout).
struct NodeSide {
    node_tables: Vec<Relation>,
    edge_fwd: Vec<Arc<Csr>>,
    edge_rev: Vec<Arc<Csr>>,
}

impl NodeSide {
    fn load(db: &GraphDatabase) -> Self {
        let node_count = db.node_count();
        let mut edge_fwd = Vec::with_capacity(db.edge_label_count());
        let mut edge_rev = Vec::with_capacity(db.edge_label_count());
        for le_idx in 0..db.edge_label_count() {
            let le = EdgeLabelId::new(le_idx as u32);
            let edges = db.edges(le);
            edge_fwd.push(Arc::new(Csr::from_pairs_dedup(node_count, edges)));
            let rev: Vec<_> = edges.iter().map(|&(s, t)| (t, s)).collect();
            edge_rev.push(Arc::new(Csr::from_pairs_dedup(node_count, &rev)));
        }
        let mut node_tables = Vec::with_capacity(db.node_label_count());
        for l_idx in 0..db.node_label_count() {
            let l = NodeLabelId::new(l_idx as u32);
            let rows = db.nodes_with_label(l).iter().map(|n| vec![n.raw()]);
            node_tables.push(Relation::from_rows(vec![SymbolTable::SR], rows));
        }
        NodeSide {
            node_tables,
            edge_fwd,
            edge_rev,
        }
    }
}

/// One canonical per-label edge table.
fn label_table(db: &GraphDatabase, le: EdgeLabelId) -> Relation {
    let pairs: Vec<(u32, u32)> = db
        .edges(le)
        .iter()
        .map(|&(s, t)| (s.raw(), t.raw()))
        .collect();
    Relation::from_pairs(SymbolTable::SR, SymbolTable::TR, &pairs)
}

/// Shared delegation of the node-side accessors, which every layout
/// implements identically over its [`NodeSide`].
macro_rules! node_side_accessors {
    ($field:ident) => {
        fn node_table(&self, l: NodeLabelId) -> Relation {
            self.$field
                .node_tables
                .get(l.index())
                .cloned()
                .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR]))
        }

        fn node_set(&self, l: NodeLabelId) -> &[u32] {
            self.$field
                .node_tables
                .get(l.index())
                .map(|t| t.flat())
                .unwrap_or(&[])
        }

        fn forward_csr(&self, le: EdgeLabelId) -> Option<&Csr> {
            self.$field.edge_fwd.get(le.index()).map(Arc::as_ref)
        }

        fn reverse_csr(&self, le: EdgeLabelId) -> Option<&Csr> {
            self.$field.edge_rev.get(le.index()).map(Arc::as_ref)
        }

        fn forward_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>> {
            self.$field.edge_fwd.get(le.index()).cloned()
        }

        fn reverse_csr_shared(&self, le: EdgeLabelId) -> Option<Arc<Csr>> {
            self.$field.edge_rev.get(le.index()).cloned()
        }

        fn node_table_count(&self) -> usize {
            self.$field.node_tables.len()
        }
    };
}

/// The classic Fig. 11 layout: one eager table per edge label.
struct PerLabelLayout {
    edge_tables: Vec<Relation>,
    nodes: NodeSide,
}

impl PerLabelLayout {
    fn load(db: &GraphDatabase) -> Self {
        let edge_tables = (0..db.edge_label_count())
            .map(|i| label_table(db, EdgeLabelId::new(i as u32)))
            .collect();
        PerLabelLayout {
            edge_tables,
            nodes: NodeSide::load(db),
        }
    }
}

impl StorageLayout for PerLabelLayout {
    fn kind(&self) -> LayoutKind {
        LayoutKind::PerLabel
    }

    fn edge_table(&self, le: EdgeLabelId) -> Relation {
        self.edge_tables
            .get(le.index())
            .cloned()
            .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR, SymbolTable::TR]))
    }

    fn edge_table_count(&self) -> usize {
        self.edge_tables.len()
    }

    node_side_accessors!(nodes);
}

/// One global edge table: all distinct `(Sr, Tr)` pairs across every
/// label, sorted, with a parallel per-row `u64` label bitmask.
/// Per-label tables are sliced out of the global table lazily and
/// cached; multi-label scans are one masked pass.
struct PolymorphicLayout {
    /// Flat `(s, t)` pairs, canonical (sorted, distinct).
    poly: Vec<u32>,
    /// `masks[i]` has bit `le` set iff row `i` is an edge of label `le`.
    masks: Vec<u64>,
    /// Lazily sliced per-label tables, one slot per edge label.
    label_cache: Vec<OnceLock<Relation>>,
    label_count: usize,
    nodes: NodeSide,
}

impl PolymorphicLayout {
    fn load(db: &GraphDatabase) -> Self {
        let label_count = db.edge_label_count();
        assert!(label_count <= POLY_MAX_LABELS, "bitmask width exceeded");
        // Collect (s, t, bit) across all labels, then sort and merge
        // duplicate pairs by OR-ing their label bits.
        let mut rows: Vec<(u32, u32, u64)> = Vec::with_capacity(db.edge_count());
        for le_idx in 0..label_count {
            let le = EdgeLabelId::new(le_idx as u32);
            for &(s, t) in db.edges(le) {
                rows.push((s.raw(), t.raw(), 1u64 << le_idx));
            }
        }
        rows.sort_unstable_by_key(|&(s, t, _)| (s, t));
        let mut poly = Vec::with_capacity(rows.len() * 2);
        let mut masks: Vec<u64> = Vec::with_capacity(rows.len());
        for (s, t, bit) in rows {
            if poly.len() >= 2 && poly[poly.len() - 2] == s && poly[poly.len() - 1] == t {
                *masks.last_mut().expect("mask per row") |= bit;
            } else {
                poly.push(s);
                poly.push(t);
                masks.push(bit);
            }
        }
        PolymorphicLayout {
            poly,
            masks,
            label_cache: (0..label_count).map(|_| OnceLock::new()).collect(),
            label_count,
            nodes: NodeSide::load(db),
        }
    }

    /// One masked pass over the global table.
    fn masked_scan(&self, mask: u64) -> Relation {
        let mut data = Vec::new();
        for (i, pair) in self.poly.chunks_exact(2).enumerate() {
            if self.masks[i] & mask != 0 {
                data.extend_from_slice(pair);
            }
        }
        Relation::from_flat_sorted(vec![SymbolTable::SR, SymbolTable::TR], data)
    }
}

impl StorageLayout for PolymorphicLayout {
    fn kind(&self) -> LayoutKind {
        LayoutKind::Polymorphic
    }

    fn edge_table(&self, le: EdgeLabelId) -> Relation {
        match self.label_cache.get(le.index()) {
            Some(slot) => slot
                .get_or_init(|| self.masked_scan(1u64 << le.index()))
                .clone(),
            None => Relation::empty(vec![SymbolTable::SR, SymbolTable::TR]),
        }
    }

    fn edge_table_count(&self) -> usize {
        self.label_count
    }

    fn poly_rows(&self) -> Option<usize> {
        Some(self.masks.len())
    }

    fn supports_multi_scan(&self) -> bool {
        true
    }

    fn multi_edge_table(&self, labels: &[EdgeLabelId]) -> Option<Relation> {
        let mut mask = 0u64;
        for le in labels {
            if le.index() >= POLY_MAX_LABELS {
                return None;
            }
            mask |= 1u64 << le.index();
        }
        Some(self.masked_scan(mask))
    }

    node_side_accessors!(nodes);
}

/// Per-label tables plus, for every observed `(src label, le, tgt
/// label)` triple and every one-sided endpoint group, the precomputed
/// filtered slice. A slice that covers the whole label shares the base
/// table's buffer instead of duplicating it.
struct DenormalizedLayout {
    edge_tables: Vec<Relation>,
    /// Endpoint-label slices keyed by `(le, src label, tgt label)`,
    /// `None` meaning "unrestricted" on that side.
    filtered: FxHashMap<(EdgeLabelId, Option<NodeLabelId>, Option<NodeLabelId>), Relation>,
    nodes: NodeSide,
}

impl DenormalizedLayout {
    fn load(db: &GraphDatabase) -> Self {
        let edge_tables: Vec<Relation> = (0..db.edge_label_count())
            .map(|i| label_table(db, EdgeLabelId::new(i as u32)))
            .collect();
        // One grouping pass per edge label: each canonical base row lands
        // in its triple bucket and both one-sided buckets, so every
        // bucket's flat data is itself canonical.
        let mut buckets: FxHashMap<
            (EdgeLabelId, Option<NodeLabelId>, Option<NodeLabelId>),
            Vec<u32>,
        > = FxHashMap::default();
        for (le_idx, table) in edge_tables.iter().enumerate() {
            let le = EdgeLabelId::new(le_idx as u32);
            for row in table.rows() {
                let sl = db.node_label(sgq_common::NodeId::new(row[0]));
                let tl = db.node_label(sgq_common::NodeId::new(row[1]));
                for key in [
                    (le, Some(sl), Some(tl)),
                    (le, Some(sl), None),
                    (le, None, Some(tl)),
                ] {
                    buckets.entry(key).or_default().extend_from_slice(row);
                }
            }
        }
        let mut filtered = FxHashMap::default();
        for (key, data) in buckets {
            let base = &edge_tables[key.0.index()];
            // A slice covering every row of the label is the base table:
            // share its buffer instead of materialising a copy.
            let rel = if data.len() == base.flat().len() {
                base.clone()
            } else {
                Relation::from_flat_sorted(base.cols().to_vec(), data)
            };
            filtered.insert(key, rel);
        }
        DenormalizedLayout {
            edge_tables,
            filtered,
            nodes: NodeSide::load(db),
        }
    }
}

impl StorageLayout for DenormalizedLayout {
    fn kind(&self) -> LayoutKind {
        LayoutKind::Denormalized
    }

    fn edge_table(&self, le: EdgeLabelId) -> Relation {
        self.edge_tables
            .get(le.index())
            .cloned()
            .unwrap_or_else(|| Relation::empty(vec![SymbolTable::SR, SymbolTable::TR]))
    }

    fn edge_table_count(&self) -> usize {
        self.edge_tables.len()
    }

    fn has_filtered_table(
        &self,
        le: EdgeLabelId,
        src: Option<NodeLabelId>,
        tgt: Option<NodeLabelId>,
    ) -> bool {
        self.filtered_edge_table(le, src, tgt).is_some()
    }

    fn filtered_edge_table(
        &self,
        le: EdgeLabelId,
        src: Option<NodeLabelId>,
        tgt: Option<NodeLabelId>,
    ) -> Option<Relation> {
        if src.is_none() && tgt.is_none() {
            return self.edge_tables.get(le.index()).cloned();
        }
        match self.filtered.get(&(le, src, tgt)) {
            Some(rel) => Some(rel.clone()),
            // An unobserved combination of labels in range is a valid
            // restriction with an empty result (no edge realises it).
            None if le.index() < self.edge_tables.len() => {
                Some(Relation::empty(vec![SymbolTable::SR, SymbolTable::TR]))
            }
            None => None,
        }
    }

    node_side_accessors!(nodes);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::database::fig2_yago_database;
    use sgq_graph::schema::fig1_yago_schema;

    #[test]
    fn layout_kind_names_round_trip() {
        for k in LayoutKind::ALL {
            assert_eq!(LayoutKind::parse(k.name()), Some(k));
            assert_eq!(format!("{k}"), k.name());
        }
        assert_eq!(LayoutKind::parse("columnar"), None);
    }

    #[test]
    fn all_layouts_serve_identical_base_tables() {
        let db = fig2_yago_database();
        let per = build_layout(&db, LayoutKind::PerLabel);
        let poly = build_layout(&db, LayoutKind::Polymorphic);
        let den = build_layout(&db, LayoutKind::Denormalized);
        for le_idx in 0..db.edge_label_count() {
            let le = EdgeLabelId::new(le_idx as u32);
            let base = per.edge_table(le);
            assert_eq!(poly.edge_table(le), base, "polymorphic slice of {le:?}");
            assert_eq!(den.edge_table(le), base, "denormalized table of {le:?}");
        }
        for l_idx in 0..db.node_label_count() {
            let l = NodeLabelId::new(l_idx as u32);
            assert_eq!(poly.node_table(l), per.node_table(l));
            assert_eq!(den.node_set(l), per.node_set(l));
        }
    }

    #[test]
    fn polymorphic_multi_scan_is_the_union_of_labels() {
        let db = fig2_yago_database();
        let poly = build_layout(&db, LayoutKind::Polymorphic);
        assert!(poly.supports_multi_scan());
        let owns = db.edge_label_id("owns").unwrap();
        let married = db.edge_label_id("isMarriedTo").unwrap();
        let multi = poly.multi_edge_table(&[owns, married]).unwrap();
        let expected = Relation::union_many(vec![poly.edge_table(owns), poly.edge_table(married)]);
        assert_eq!(multi, expected);
        // Sanity: rows stay canonical even when labels share pairs.
        assert!(multi.rows().zip(multi.rows().skip(1)).all(|(a, b)| a < b));
    }

    #[test]
    fn denormalized_slices_match_node_set_filters() {
        let db = fig2_yago_database();
        let den = build_layout(&db, LayoutKind::Denormalized);
        let isl = db.edge_label_id("isLocatedIn").unwrap();
        let city = db.node_label_id("CITY").unwrap();
        let region = db.node_label_id("REGION").unwrap();
        let base = den.edge_table(isl);
        for (src, tgt) in [
            (Some(city), None),
            (None, Some(region)),
            (Some(city), Some(region)),
        ] {
            assert!(den.has_filtered_table(isl, src, tgt));
            let slice = den.filtered_edge_table(isl, src, tgt).unwrap();
            let expected = filter_edges_by_sets(
                &base,
                src.map(|l| den.node_set(l)),
                tgt.map(|l| den.node_set(l)),
            );
            assert_eq!(slice, expected, "slice ({src:?}, {tgt:?})");
        }
        // Fig. 2: two CITY→REGION isLocatedIn edges.
        let both = den
            .filtered_edge_table(isl, Some(city), Some(region))
            .unwrap();
        assert_eq!(both.len(), 2);
        // Unobserved in-range combination: empty, not None.
        let none = den
            .filtered_edge_table(isl, Some(region), Some(city))
            .unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn full_coverage_slices_share_the_base_buffer() {
        let db = fig2_yago_database();
        let den = build_layout(&db, LayoutKind::Denormalized);
        // Every `owns` edge is PERSON→PROPERTY, so the slice must alias
        // the base table instead of copying it.
        let owns = db.edge_label_id("owns").unwrap();
        let person = db.node_label_id("PERSON").unwrap();
        let slice = den.filtered_edge_table(owns, Some(person), None).unwrap();
        assert!(slice.shares_data(&den.edge_table(owns)));
    }

    #[test]
    fn advisor_prefers_denormalized_for_overloaded_labels() {
        let db = fig2_yago_database();
        let schema = fig1_yago_schema();
        let stats = GraphStats::compute(&db);
        // isLocatedIn spans several schema triples → denormalise.
        assert_eq!(
            LayoutAdvisor::choose(&schema, &stats),
            LayoutKind::Denormalized
        );
    }

    #[test]
    fn advisor_falls_back_on_empty_graphs() {
        let mut b = GraphDatabase::standalone_builder();
        let _ = b.node("A", &[]);
        let db = b.build().unwrap();
        let schema = fig1_yago_schema();
        let stats = GraphStats::compute(&db);
        assert_eq!(LayoutAdvisor::choose(&schema, &stats), LayoutKind::PerLabel);
    }
}
