//! µ-RA-style logical optimisation.
//!
//! Three rewritings, applied to a fixpoint:
//!
//! 1. **Semi-join pushdown through joins** — a semi-join filter migrates
//!    to every join input that exposes all of its key columns, so label
//!    filters land directly on the scans (the paper's Fig. 15/17 plan
//!    shape, where `isLocatedIn ⋉ Organisation` happens *before* the join
//!    with `workAt`).
//! 2. **Semi-join pushdown into fixpoints** — a filter on a fixpoint's
//!    *stable* columns restricts the base case, so the closure is only
//!    computed from relevant seeds (Jachiet et al.'s µ-RA rewriting).
//! 3. **Greedy join reordering** — n-ary join chains are rebuilt
//!    smallest-estimate-first, preferring connected (column-sharing)
//!    joins.
//!
//! All schema reasoning here — "does this input expose the filter's key
//! columns?" — is `ColId` comparison; the up-to-eight `next == current`
//! convergence checks never compare a string.

use sgq_common::ColId;

use crate::cost::{estimate_with_env, EstEnv};
use crate::storage::RelStore;
use crate::term::RaTerm;

/// Applies all rewritings until a fixed point is reached.
pub fn optimize(term: &RaTerm, store: &RelStore) -> RaTerm {
    let mut current = term.clone();
    for _ in 0..8 {
        let next = pass(&current, store, &mut EstEnv::new());
        if next == current {
            break;
        }
        current = next;
    }
    current
}

fn pass(term: &RaTerm, store: &RelStore, env: &mut EstEnv) -> RaTerm {
    // Bottom-up. The estimation environment binds each fixpoint's base
    // estimate before descending into its step, so join reordering
    // inside a step sees the recursive input at its real cardinality.
    let term = match term {
        RaTerm::EdgeScan { .. } | RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => term.clone(),
        RaTerm::Join(a, b) => RaTerm::join(pass(a, store, env), pass(b, store, env)),
        RaTerm::Semijoin(a, b) => RaTerm::semijoin(pass(a, store, env), pass(b, store, env)),
        RaTerm::Union(a, b) => RaTerm::union(pass(a, store, env), pass(b, store, env)),
        RaTerm::Project { input, cols } => RaTerm::project(pass(input, store, env), cols.clone()),
        RaTerm::Rename { input, from, to } => RaTerm::Rename {
            input: Box::new(pass(input, store, env)),
            from: *from,
            to: *to,
        },
        RaTerm::Select { input, a, b } => RaTerm::Select {
            input: Box::new(pass(input, store, env)),
            a: *a,
            b: *b,
        },
        RaTerm::Fixpoint {
            var,
            base,
            step,
            stable,
        } => {
            let base = pass(base, store, env);
            let base_rows = estimate_with_env(&base, store, env).rows;
            let prev = env.bind(*var, base_rows);
            let step = pass(step, store, env);
            env.restore(*var, prev);
            RaTerm::Fixpoint {
                var: *var,
                base: Box::new(base),
                step: Box::new(step),
                stable: stable.clone(),
            }
        }
    };
    let term = push_semijoin(term);
    reorder_joins(term, store, env)
}

/// Rules 1 and 2: semi-join pushdown.
fn push_semijoin(term: RaTerm) -> RaTerm {
    match term {
        RaTerm::Semijoin(left, filter) => {
            let filter_cols = filter.cols();
            match *left {
                // Push through a join onto every side exposing the key.
                RaTerm::Join(a, b) => {
                    let a_has = filter_cols.iter().all(|c| a.cols().contains(c));
                    let b_has = filter_cols.iter().all(|c| b.cols().contains(c));
                    if a_has || b_has {
                        let a2 = if a_has {
                            push_semijoin(RaTerm::Semijoin(a, filter.clone()))
                        } else {
                            *a
                        };
                        let b2 = if b_has {
                            push_semijoin(RaTerm::Semijoin(b, filter))
                        } else {
                            *b
                        };
                        RaTerm::join(a2, b2)
                    } else {
                        RaTerm::Semijoin(Box::new(RaTerm::Join(a, b)), filter)
                    }
                }
                // Push through projections that keep the key columns.
                RaTerm::Project { input, cols } if filter_cols.iter().all(|c| cols.contains(c)) => {
                    RaTerm::project(push_semijoin(RaTerm::Semijoin(input, filter)), cols)
                }
                // Push into a fixpoint when the key is stable.
                RaTerm::Fixpoint {
                    var,
                    base,
                    step,
                    stable,
                } if filter_cols.iter().all(|c| stable.contains(c)) => RaTerm::Fixpoint {
                    var,
                    base: Box::new(push_semijoin(RaTerm::Semijoin(base, filter))),
                    step,
                    stable,
                },
                other => RaTerm::Semijoin(Box::new(other), filter),
            }
        }
        other => other,
    }
}

/// Rule 3: flatten join chains and rebuild greedily.
fn reorder_joins(term: RaTerm, store: &RelStore, env: &mut EstEnv) -> RaTerm {
    match term {
        RaTerm::Join(_, _) => {
            let mut parts: Vec<RaTerm> = Vec::new();
            flatten_joins(term, &mut parts);
            if parts.len() <= 2 {
                return rebuild(parts);
            }
            // Start from the smallest estimate; then repeatedly pick the
            // connected part minimising the joined estimate.
            let mut remaining = parts;
            let mut best_idx = 0;
            let mut best_rows = f64::INFINITY;
            for (i, p) in remaining.iter().enumerate() {
                let e = estimate_with_env(p, store, env);
                if e.rows < best_rows {
                    best_rows = e.rows;
                    best_idx = i;
                }
            }
            let mut acc = remaining.swap_remove(best_idx);
            while !remaining.is_empty() {
                let acc_cols = acc.cols();
                let mut pick = 0;
                let mut pick_score = (false, f64::INFINITY);
                for (i, p) in remaining.iter().enumerate() {
                    let connected = p.cols().iter().any(|c| acc_cols.contains(c));
                    let rows =
                        estimate_with_env(&RaTerm::join(acc.clone(), p.clone()), store, env).rows;
                    let score = (!connected, rows);
                    if score < pick_score {
                        pick_score = score;
                        pick = i;
                    }
                }
                let next = remaining.swap_remove(pick);
                acc = RaTerm::join(acc, next);
            }
            acc
        }
        other => other,
    }
}

fn flatten_joins(term: RaTerm, out: &mut Vec<RaTerm>) {
    match term {
        RaTerm::Join(a, b) => {
            flatten_joins(*a, out);
            flatten_joins(*b, out);
        }
        other => out.push(other),
    }
}

fn rebuild(parts: Vec<RaTerm>) -> RaTerm {
    parts
        .into_iter()
        .reduce(RaTerm::join)
        .expect("join chain is non-empty")
}

/// Collects the columns of every semi-join filter remaining at the top of
/// scans — used by tests to assert pushdown happened.
pub fn semijoin_positions(term: &RaTerm, out: &mut Vec<(&'static str, Vec<ColId>)>) {
    match term {
        RaTerm::Semijoin(left, filter) => {
            let kind = match **left {
                RaTerm::EdgeScan { .. } => "scan",
                RaTerm::Fixpoint { .. } => "fixpoint",
                _ => "other",
            };
            out.push((kind, filter.cols()));
            semijoin_positions(left, out);
            semijoin_positions(filter, out);
        }
        RaTerm::Join(a, b) | RaTerm::Union(a, b) => {
            semijoin_positions(a, out);
            semijoin_positions(b, out);
        }
        RaTerm::Project { input, .. }
        | RaTerm::Rename { input, .. }
        | RaTerm::Select { input, .. } => semijoin_positions(input, out),
        RaTerm::Fixpoint { base, step, .. } => {
            semijoin_positions(base, out);
            semijoin_positions(step, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{execute, ExecContext};
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    fn node(db: &sgq_graph::GraphDatabase, store: &RelStore, label: &str, col: &str) -> RaTerm {
        RaTerm::NodeScan {
            labels: vec![db.node_label_id(label).unwrap()],
            col: store.symbols.col(col),
        }
    }

    #[test]
    fn semijoin_pushes_through_join() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // (owns(x,y) ⋈ isLocatedIn(y,z)) ⋉ PROPERTY(y)
        let t = RaTerm::semijoin(
            RaTerm::join(
                scan(&db, &store, "owns", "x", "y"),
                scan(&db, &store, "isLocatedIn", "y", "z"),
            ),
            node(&db, &store, "PROPERTY", "y"),
        );
        let opt = optimize(&t, &store);
        let mut positions = Vec::new();
        semijoin_positions(&opt, &mut positions);
        assert!(
            positions.iter().any(|&(kind, _)| kind == "scan"),
            "filter should sit on a scan: {opt:?}"
        );
        // Equivalence.
        let mut ctx = ExecContext::new();
        let before = execute(&t, &store, &mut ctx).unwrap();
        let after = execute(&opt, &store, &mut ctx).unwrap();
        // Join reordering may reorder columns; compare on x,z.
        let xz = [store.symbols.col("x"), store.symbols.col("z")];
        assert_eq!(before.project(&xz), after.project(&xz));
    }

    #[test]
    fn semijoin_pushes_into_fixpoint_base() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let t = RaTerm::semijoin(f.clone(), node(&db, &store, "REGION", "x"));
        let opt = optimize(&t, &store);
        match &opt {
            RaTerm::Fixpoint { base, .. } => {
                assert!(
                    matches!(**base, RaTerm::Semijoin(..)),
                    "base should be filtered: {base:?}"
                );
            }
            other => panic!("expected bare fixpoint after pushdown, got {other:?}"),
        }
        // Equivalence.
        let mut ctx = ExecContext::new();
        let before = execute(&t, &store, &mut ctx).unwrap();
        let after = execute(&opt, &store, &mut ctx).unwrap();
        assert_eq!(before, after);
        // Grenoble -> France only.
        assert_eq!(before.len(), 1);
    }

    #[test]
    fn filter_on_unstable_col_stays_outside() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        // filter on the target column must NOT be pushed into the base
        let t = RaTerm::semijoin(f, node(&db, &store, "COUNTRY", "y"));
        let opt = optimize(&t, &store);
        assert!(
            matches!(opt, RaTerm::Semijoin(..)),
            "target filter must stay outside: {opt:?}"
        );
        let mut ctx = ExecContext::new();
        let r = execute(&opt, &store, &mut ctx).unwrap();
        // pairs reaching France: n1, n6, n4, n5 (ids 0, 5, 3, 4)
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn join_reordering_preserves_results() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let t = RaTerm::join(
            RaTerm::join(
                scan(&db, &store, "isMarriedTo", "x", "w"),
                scan(&db, &store, "livesIn", "x", "y"),
            ),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let opt = optimize(&t, &store);
        let mut ctx = ExecContext::new();
        let before = execute(&t, &store, &mut ctx).unwrap();
        let after = execute(&opt, &store, &mut ctx).unwrap();
        let s = &store.symbols;
        let cols = [s.col("x"), s.col("w"), s.col("y"), s.col("z")];
        assert_eq!(before.project(&cols), after.project(&cols));
    }
}
