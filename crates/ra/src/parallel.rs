//! Morsel-driven intra-query parallelism: the task scheduler and the
//! morsel partitioning helpers.
//!
//! The executor splits the probe side of a large join into fixed-size
//! **morsels** — contiguous row ranges over the shared `Arc`-backed row
//! buffer ([`crate::table::Relation`]), so partitioning is pointer
//! arithmetic, never a copy — and runs each morsel as one task on a
//! [`TaskScheduler`]. The scheduler is a deliberately small shared-queue
//! executor (no work stealing: morsels are uniform enough that a single
//! FIFO balances fine) built from the same `std::thread` +
//! `Mutex<VecDeque>` + `Condvar` pattern as the serving layer's worker
//! pool.
//!
//! **Ownership.** The scheduler is injectable through
//! [`crate::exec::ExecContext::set_scheduler`]: the query service lends
//! every query one shared, bounded scheduler (so intra-query threads
//! stay capped service-wide no matter how many queries run), while a
//! standalone [`crate::exec::execute_plan`] call falls back to a lazily
//! spawned process-global scheduler sized to
//! `std::thread::available_parallelism()`. A query's degree of
//! parallelism caps how many of its morsels are in flight at once
//! ([`TaskScheduler::run`]'s `dop`), not how many threads exist.
//!
//! **Cancellation.** Morsel tasks poll a shared cancel flag plus the
//! query deadline and row budget (see `exec`'s shared limits); the first
//! task to breach a limit trips the flag, and every other task exits at
//! its next poll with the `cancelled()` sentinel, which the caller
//! discards in favour of the real error.

use std::collections::VecDeque;
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread::JoinHandle;

use sgq_common::SgqError;

/// Default morsel size cap, in probe rows. Large enough that per-morsel
/// scheduling and merge overhead (~tens of µs) disappears against the
/// per-row operator work, small enough to keep a morsel's output in
/// cache and cancellation latency bounded.
pub const MORSEL_ROWS: usize = 65_536;

/// Smallest morsel worth scheduling: below this the per-morsel overhead
/// is measurable against the row work.
pub(crate) const MIN_MORSEL_ROWS: usize = 4_096;

/// Morsels targeted per worker, for load balancing: stragglers cost at
/// most 1/this of a worker's share.
pub(crate) const MORSELS_PER_WORKER: usize = 4;

/// The error a morsel task returns when it observed the shared cancel
/// flag (some other task already hit the real limit). Callers drop it
/// in favour of the first real error.
pub(crate) fn cancelled() -> SgqError {
    SgqError::Execution(CANCEL_SENTINEL.into())
}

/// Whether `e` is the cancellation sentinel (not a real failure).
pub(crate) fn is_cancelled(e: &SgqError) -> bool {
    matches!(e, SgqError::Execution(m) if m == CANCEL_SENTINEL)
}

const CANCEL_SENTINEL: &str = "parallel section cancelled";

/// Splits `rows` into contiguous `(start, end)` morsel ranges of at
/// most `morsel` rows (the last range may be shorter).
pub(crate) fn morsel_ranges(rows: usize, morsel: usize) -> Vec<(usize, usize)> {
    let morsel = morsel.max(1);
    (0..rows.div_ceil(morsel))
        .map(|i| (i * morsel, ((i + 1) * morsel).min(rows)))
        .collect()
}

/// The morsel size for a `rows`-row probe at degree-of-parallelism
/// `dop`, capped at `cap`: aim for [`MORSELS_PER_WORKER`] morsels per
/// worker, never below [`MIN_MORSEL_ROWS`] (unless the cap says so —
/// tests shrink the cap to force many morsels on tiny data).
pub(crate) fn morsel_size(rows: usize, dop: usize, cap: usize) -> usize {
    rows.div_ceil(dop.max(1) * MORSELS_PER_WORKER)
        .max(MIN_MORSEL_ROWS)
        .min(cap.max(1))
}

type Task = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    tasks: VecDeque<Task>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    /// Signalled when a task is enqueued or shutdown begins.
    available: Condvar,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, Queue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A fixed-size pool of morsel workers over one shared FIFO.
///
/// Unlike the serving pool there is no admission bound: tasks are
/// internal morsels submitted by [`TaskScheduler::run`], which already
/// caps how many are in flight per query, and every batch is awaited
/// before its parallel section returns.
pub struct TaskScheduler {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    workers: usize,
}

impl std::fmt::Debug for TaskScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskScheduler")
            .field("workers", &self.workers)
            .finish()
    }
}

impl TaskScheduler {
    /// Spawns `workers` morsel threads (clamped to at least 1).
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                tasks: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("sgq-morsel-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn morsel worker thread")
            })
            .collect();
        TaskScheduler {
            shared,
            handles: Mutex::new(handles),
            workers,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn submit(&self, task: Task) {
        self.shared.lock().tasks.push_back(task);
        self.shared.available.notify_one();
    }

    /// Scatter-gather: runs `tasks` on the workers with at most `dop`
    /// in flight at once, blocking until all complete, and returns their
    /// results in task order. The in-flight cap is what honours a
    /// query's degree of parallelism on a scheduler shared by many
    /// queries.
    pub fn run<T, F>(&self, dop: usize, tasks: Vec<F>) -> Vec<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let n = tasks.len();
        let cap = dop.max(1);
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut pending = tasks.into_iter().enumerate();
        let mut in_flight = 0usize;
        let mut done = 0usize;
        while done < n {
            while in_flight < cap {
                let Some((i, task)) = pending.next() else {
                    break;
                };
                let tx = tx.clone();
                self.submit(Box::new(move || {
                    // The receiver outlives the batch; a send only fails
                    // if the caller panicked, and then nobody is waiting.
                    let _ = tx.send((i, task()));
                }));
                in_flight += 1;
            }
            let (i, v) = rx.recv().expect("a morsel worker completes each task");
            out[i] = Some(v);
            in_flight -= 1;
            done += 1;
        }
        out.into_iter()
            .map(|v| v.expect("every task reported"))
            .collect()
    }

    /// Stops the workers once the queue drains and joins them.
    /// Idempotent; the process-global scheduler is never shut down.
    pub fn shutdown(&self) {
        self.shared.lock().shutdown = true;
        self.shared.available.notify_all();
        let handles: Vec<JoinHandle<()>> =
            std::mem::take(&mut self.handles.lock().unwrap_or_else(|e| e.into_inner()));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for TaskScheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let task = {
            let mut q = shared.lock();
            loop {
                if let Some(t) = q.tasks.pop_front() {
                    break Some(t);
                }
                if q.shutdown {
                    break None;
                }
                q = shared.available.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        match task {
            // A panicking morsel must not take the worker down: the
            // batch's sender is dropped by the unwind, so the waiting
            // query fails loudly instead of the whole scheduler dying.
            Some(t) => {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(t));
            }
            None => return,
        }
    }
}

/// The process-global scheduler standalone `execute_plan` calls fall
/// back on: spawned lazily on the first parallel section, sized to the
/// hardware thread count, never shut down.
pub(crate) fn global() -> Arc<TaskScheduler> {
    static GLOBAL: OnceLock<Arc<TaskScheduler>> = OnceLock::new();
    Arc::clone(GLOBAL.get_or_init(|| {
        let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
        Arc::new(TaskScheduler::new(workers))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_ranges_cover_exactly() {
        assert_eq!(morsel_ranges(10, 4), vec![(0, 4), (4, 8), (8, 10)]);
        assert_eq!(morsel_ranges(8, 4), vec![(0, 4), (4, 8)]);
        assert_eq!(morsel_ranges(3, 100), vec![(0, 3)]);
        assert!(morsel_ranges(0, 4).is_empty());
    }

    #[test]
    fn morsel_size_balances_and_respects_cap() {
        // Large probe: MORSELS_PER_WORKER morsels per worker.
        assert_eq!(morsel_size(500_000, 4, MORSEL_ROWS), 31_250);
        // Huge probe: capped at the configured morsel size.
        assert_eq!(morsel_size(10_000_000, 4, MORSEL_ROWS), MORSEL_ROWS);
        // Small probe: floored at MIN_MORSEL_ROWS so overhead stays paid off.
        assert_eq!(morsel_size(10_000, 8, MORSEL_ROWS), MIN_MORSEL_ROWS);
        // A tiny test cap wins over the floor (forces many morsels).
        assert_eq!(morsel_size(10, 2, 3), 3);
    }

    #[test]
    fn run_returns_results_in_task_order() {
        let sched = TaskScheduler::new(4);
        let tasks: Vec<_> = (0..37usize).map(|i| move || i * i).collect();
        let results = sched.run(4, tasks);
        assert_eq!(results, (0..37usize).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn run_caps_in_flight_tasks_at_dop() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sched = TaskScheduler::new(8);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..32)
            .map(|_| {
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                move || {
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                }
            })
            .collect();
        sched.run(2, tasks);
        assert!(
            peak.load(Ordering::SeqCst) <= 2,
            "dop=2 must bound concurrent morsels, saw {}",
            peak.load(Ordering::SeqCst)
        );
    }

    #[test]
    fn run_with_more_tasks_than_workers_completes() {
        let sched = TaskScheduler::new(1);
        let results = sched.run(7, (0..100usize).map(|i| move || i).collect());
        assert_eq!(results.len(), 100);
        assert!(results.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn global_scheduler_is_shared() {
        let a = global();
        let b = global();
        assert!(Arc::ptr_eq(&a, &b));
        assert!(a.workers() >= 1);
    }

    #[test]
    fn cancellation_sentinel_roundtrips() {
        assert!(is_cancelled(&cancelled()));
        assert!(!is_cancelled(&SgqError::Execution("other".into())));
        assert!(!is_cancelled(&SgqError::Timeout { limit_ms: 1 }));
    }
}
