//! The recursive relational algebra term language.
//!
//! Terms follow µ-RA: scans, projection `π`, renaming `ρ`, natural join
//! `⋈`, semi-join `⋉`, union `∪` and the fixpoint `µX. base ∪ step(X)`.
//! The fixpoint node records which of its columns are *stable* — produced
//! unchanged from the recursive reference in every iteration — which is
//! what licenses pushing joins/semi-joins into the fixpoint
//! (Jachiet et al.'s key rewriting, used by [`crate::optimize`]).

use sgq_common::{EdgeLabelId, NodeLabelId};

use crate::table::Col;

/// A recursive relational algebra term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaTerm {
    /// Scan of the edge table for `label`, columns named `src`/`tgt`.
    EdgeScan {
        /// Edge label.
        label: EdgeLabelId,
        /// Output name of the `Sr` column.
        src: Col,
        /// Output name of the `Tr` column.
        tgt: Col,
    },
    /// Scan of the union of node tables for `labels`, column named `col`.
    NodeScan {
        /// Node labels (unioned).
        labels: Vec<NodeLabelId>,
        /// Output column name.
        col: Col,
    },
    /// Natural join on shared column names.
    Join(Box<RaTerm>, Box<RaTerm>),
    /// Semi-join: left rows with a match in right (on shared columns).
    Semijoin(Box<RaTerm>, Box<RaTerm>),
    /// Union (schemas must agree).
    Union(Box<RaTerm>, Box<RaTerm>),
    /// Projection with set semantics.
    Project {
        /// Input term.
        input: Box<RaTerm>,
        /// Retained columns.
        cols: Vec<Col>,
    },
    /// Equality selection `σ_{a = b}` (keeps rows where the two columns
    /// coincide).
    Select {
        /// Input term.
        input: Box<RaTerm>,
        /// First column.
        a: Col,
        /// Second column.
        b: Col,
    },
    /// Column renaming `ρ_{from → to}`.
    Rename {
        /// Input term.
        input: Box<RaTerm>,
        /// Old column name.
        from: Col,
        /// New column name.
        to: Col,
    },
    /// Fixpoint `µ var. base ∪ step(var)` (step must be linear in `var`).
    Fixpoint {
        /// Recursion variable name.
        var: String,
        /// Base case.
        base: Box<RaTerm>,
        /// Inductive step; refers to the previous iteration via
        /// [`RaTerm::RecRef`].
        step: Box<RaTerm>,
        /// Columns that every iteration copies unchanged from the
        /// recursive reference (e.g. the source column of a transitive
        /// closure). Joins on these columns may be pushed into `base`.
        stable: Vec<Col>,
    },
    /// Reference to the enclosing fixpoint's current iteration, with its
    /// columns positionally renamed to `cols`.
    RecRef {
        /// Recursion variable name.
        var: String,
        /// Positional column renaming.
        cols: Vec<Col>,
    },
}

impl RaTerm {
    /// Convenience constructor: `Join`.
    pub fn join(a: RaTerm, b: RaTerm) -> RaTerm {
        RaTerm::Join(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `Semijoin`.
    pub fn semijoin(a: RaTerm, b: RaTerm) -> RaTerm {
        RaTerm::Semijoin(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `Union`.
    pub fn union(a: RaTerm, b: RaTerm) -> RaTerm {
        RaTerm::Union(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `Project`.
    pub fn project(input: RaTerm, cols: Vec<Col>) -> RaTerm {
        RaTerm::Project {
            input: Box::new(input),
            cols,
        }
    }

    /// Convenience constructor: `Select` (equality).
    pub fn select_eq(input: RaTerm, a: impl Into<Col>, b: impl Into<Col>) -> RaTerm {
        RaTerm::Select {
            input: Box::new(input),
            a: a.into(),
            b: b.into(),
        }
    }

    /// The output columns of the term. Recursive references resolve to
    /// their declared positional columns.
    pub fn cols(&self) -> Vec<Col> {
        match self {
            RaTerm::EdgeScan { src, tgt, .. } => vec![src.clone(), tgt.clone()],
            RaTerm::NodeScan { col, .. } => vec![col.clone()],
            RaTerm::Join(a, b) => {
                let mut out = a.cols();
                for c in b.cols() {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
            RaTerm::Semijoin(a, _) => a.cols(),
            RaTerm::Union(a, _) => a.cols(),
            RaTerm::Project { cols, .. } => cols.clone(),
            RaTerm::Select { input, .. } => input.cols(),
            RaTerm::Rename { input, from, to } => input
                .cols()
                .into_iter()
                .map(|c| if &c == from { to.clone() } else { c })
                .collect(),
            RaTerm::Fixpoint { base, .. } => base.cols(),
            RaTerm::RecRef { cols, .. } => cols.clone(),
        }
    }

    /// Whether the term contains a fixpoint (recursive query).
    pub fn is_recursive(&self) -> bool {
        match self {
            RaTerm::EdgeScan { .. } | RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => false,
            RaTerm::Fixpoint { .. } => true,
            RaTerm::Join(a, b) | RaTerm::Semijoin(a, b) | RaTerm::Union(a, b) => {
                a.is_recursive() || b.is_recursive()
            }
            RaTerm::Project { input, .. }
            | RaTerm::Rename { input, .. }
            | RaTerm::Select { input, .. } => input.is_recursive(),
        }
    }

    /// Number of operator nodes.
    pub fn size(&self) -> usize {
        match self {
            RaTerm::EdgeScan { .. } | RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => 1,
            RaTerm::Join(a, b) | RaTerm::Semijoin(a, b) | RaTerm::Union(a, b) => {
                1 + a.size() + b.size()
            }
            RaTerm::Project { input, .. }
            | RaTerm::Rename { input, .. }
            | RaTerm::Select { input, .. } => 1 + input.size(),
            RaTerm::Fixpoint { base, step, .. } => 1 + base.size() + step.size(),
        }
    }
}

/// Builds the canonical transitive-closure fixpoint for a binary term
/// `inner(src, tgt)`:
///
/// ```text
/// µX(src,tgt). inner ∪ π_{src,tgt}( X(src,m) ⋈ inner(m,tgt) )
/// ```
///
/// `src` is stable (every iteration keeps the original source), so
/// joins/semi-joins on `src` may later be pushed into the base.
pub fn closure_fixpoint(var: &str, inner: RaTerm, src: &str, tgt: &str, mid: &str) -> RaTerm {
    let step_inner = rename_binary(inner.clone(), src, tgt, mid, tgt);
    let step = RaTerm::project(
        RaTerm::join(
            RaTerm::RecRef {
                var: var.to_string(),
                cols: vec![src.to_string(), mid.to_string()],
            },
            step_inner,
        ),
        vec![src.to_string(), tgt.to_string()],
    );
    RaTerm::Fixpoint {
        var: var.to_string(),
        base: Box::new(inner),
        step: Box::new(step),
        stable: vec![src.to_string()],
    }
}

/// Renames the two columns of a binary term.
pub fn rename_binary(term: RaTerm, old_src: &str, old_tgt: &str, src: &str, tgt: &str) -> RaTerm {
    let mut t = term;
    if old_src != src {
        t = RaTerm::Rename {
            input: Box::new(t),
            from: old_src.to_string(),
            to: src.to_string(),
        };
    }
    if old_tgt != tgt {
        t = RaTerm::Rename {
            input: Box::new(t),
            from: old_tgt.to_string(),
            to: tgt.to_string(),
        };
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str, tgt: &str) -> RaTerm {
        RaTerm::EdgeScan {
            label: EdgeLabelId::new(0),
            src: src.into(),
            tgt: tgt.into(),
        }
    }

    #[test]
    fn cols_propagate() {
        let j = RaTerm::join(scan("x", "y"), scan("y", "z"));
        assert_eq!(j.cols(), vec!["x".to_string(), "y".into(), "z".into()]);
        let p = RaTerm::project(j, vec!["x".into(), "z".into()]);
        assert_eq!(p.cols(), vec!["x".to_string(), "z".into()]);
    }

    #[test]
    fn closure_shape() {
        let f = closure_fixpoint("X", scan("x", "y"), "x", "y", "m");
        assert!(f.is_recursive());
        assert_eq!(f.cols(), vec!["x".to_string(), "y".into()]);
        match &f {
            RaTerm::Fixpoint { stable, .. } => assert_eq!(stable, &["x".to_string()]),
            _ => panic!(),
        }
    }

    #[test]
    fn rename_cols() {
        let r = RaTerm::Rename {
            input: Box::new(scan("Sr", "Tr")),
            from: "Sr".into(),
            to: "x".into(),
        };
        assert_eq!(r.cols(), vec!["x".to_string(), "Tr".into()]);
    }

    #[test]
    fn size_counts_nodes() {
        let j = RaTerm::join(scan("x", "y"), scan("y", "z"));
        assert_eq!(j.size(), 3);
    }
}
