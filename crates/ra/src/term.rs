//! The recursive relational algebra term language.
//!
//! Terms follow µ-RA: scans, projection `π`, renaming `ρ`, natural join
//! `⋈`, semi-join `⋉`, union `∪` and the fixpoint `µX. base ∪ step(X)`.
//! The fixpoint node records which of its columns are *stable* — produced
//! unchanged from the recursive reference in every iteration — which is
//! what licenses pushing joins/semi-joins into the fixpoint
//! (Jachiet et al.'s key rewriting, used by [`crate::optimize`]).
//!
//! All column and recursion-variable names are interned ids (see
//! [`crate::symbols::SymbolTable`]): structural equality of terms — which
//! the optimiser's fixpoint loop computes up to eight times per query —
//! is pure integer comparison, and cloning a term never touches the heap
//! for its symbols.

use sgq_common::{ColId, EdgeLabelId, NodeLabelId, RecVarId};

/// A recursive relational algebra term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RaTerm {
    /// Scan of the edge table for `label`, columns named `src`/`tgt`.
    EdgeScan {
        /// Edge label.
        label: EdgeLabelId,
        /// Output id of the `Sr` column.
        src: ColId,
        /// Output id of the `Tr` column.
        tgt: ColId,
    },
    /// Scan of the union of node tables for `labels`, column named `col`.
    NodeScan {
        /// Node labels (unioned).
        labels: Vec<NodeLabelId>,
        /// Output column id.
        col: ColId,
    },
    /// Natural join on shared column ids.
    Join(Box<RaTerm>, Box<RaTerm>),
    /// Semi-join: left rows with a match in right (on shared columns).
    Semijoin(Box<RaTerm>, Box<RaTerm>),
    /// Union (schemas must agree).
    Union(Box<RaTerm>, Box<RaTerm>),
    /// Projection with set semantics.
    Project {
        /// Input term.
        input: Box<RaTerm>,
        /// Retained columns.
        cols: Vec<ColId>,
    },
    /// Equality selection `σ_{a = b}` (keeps rows where the two columns
    /// coincide).
    Select {
        /// Input term.
        input: Box<RaTerm>,
        /// First column.
        a: ColId,
        /// Second column.
        b: ColId,
    },
    /// Column renaming `ρ_{from → to}`.
    Rename {
        /// Input term.
        input: Box<RaTerm>,
        /// Old column id.
        from: ColId,
        /// New column id.
        to: ColId,
    },
    /// Fixpoint `µ var. base ∪ step(var)` (step must be linear in `var`).
    Fixpoint {
        /// Recursion variable.
        var: RecVarId,
        /// Base case.
        base: Box<RaTerm>,
        /// Inductive step; refers to the previous iteration via
        /// [`RaTerm::RecRef`].
        step: Box<RaTerm>,
        /// Columns that every iteration copies unchanged from the
        /// recursive reference (e.g. the source column of a transitive
        /// closure). Joins on these columns may be pushed into `base`.
        stable: Vec<ColId>,
    },
    /// Reference to the enclosing fixpoint's current iteration, with its
    /// columns positionally renamed to `cols`.
    RecRef {
        /// Recursion variable.
        var: RecVarId,
        /// Positional column renaming.
        cols: Vec<ColId>,
    },
}

impl RaTerm {
    /// Convenience constructor: `Join`.
    pub fn join(a: RaTerm, b: RaTerm) -> RaTerm {
        RaTerm::Join(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `Semijoin`.
    pub fn semijoin(a: RaTerm, b: RaTerm) -> RaTerm {
        RaTerm::Semijoin(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `Union`.
    pub fn union(a: RaTerm, b: RaTerm) -> RaTerm {
        RaTerm::Union(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `Project`.
    pub fn project(input: RaTerm, cols: Vec<ColId>) -> RaTerm {
        RaTerm::Project {
            input: Box::new(input),
            cols,
        }
    }

    /// Convenience constructor: `Select` (equality).
    pub fn select_eq(input: RaTerm, a: ColId, b: ColId) -> RaTerm {
        RaTerm::Select {
            input: Box::new(input),
            a,
            b,
        }
    }

    /// The output columns of the term. Recursive references resolve to
    /// their declared positional columns.
    pub fn cols(&self) -> Vec<ColId> {
        match self {
            RaTerm::EdgeScan { src, tgt, .. } => vec![*src, *tgt],
            RaTerm::NodeScan { col, .. } => vec![*col],
            RaTerm::Join(a, b) => {
                let mut out = a.cols();
                for c in b.cols() {
                    if !out.contains(&c) {
                        out.push(c);
                    }
                }
                out
            }
            RaTerm::Semijoin(a, _) => a.cols(),
            RaTerm::Union(a, _) => a.cols(),
            RaTerm::Project { cols, .. } => cols.clone(),
            RaTerm::Select { input, .. } => input.cols(),
            RaTerm::Rename { input, from, to } => input
                .cols()
                .into_iter()
                .map(|c| if c == *from { *to } else { c })
                .collect(),
            RaTerm::Fixpoint { base, .. } => base.cols(),
            RaTerm::RecRef { cols, .. } => cols.clone(),
        }
    }

    /// Whether the term contains a fixpoint (recursive query).
    pub fn is_recursive(&self) -> bool {
        match self {
            RaTerm::EdgeScan { .. } | RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => false,
            RaTerm::Fixpoint { .. } => true,
            RaTerm::Join(a, b) | RaTerm::Semijoin(a, b) | RaTerm::Union(a, b) => {
                a.is_recursive() || b.is_recursive()
            }
            RaTerm::Project { input, .. }
            | RaTerm::Rename { input, .. }
            | RaTerm::Select { input, .. } => input.is_recursive(),
        }
    }

    /// Number of operator nodes.
    pub fn size(&self) -> usize {
        match self {
            RaTerm::EdgeScan { .. } | RaTerm::NodeScan { .. } | RaTerm::RecRef { .. } => 1,
            RaTerm::Join(a, b) | RaTerm::Semijoin(a, b) | RaTerm::Union(a, b) => {
                1 + a.size() + b.size()
            }
            RaTerm::Project { input, .. }
            | RaTerm::Rename { input, .. }
            | RaTerm::Select { input, .. } => 1 + input.size(),
            RaTerm::Fixpoint { base, step, .. } => 1 + base.size() + step.size(),
        }
    }
}

/// Builds the canonical transitive-closure fixpoint for a binary term
/// `inner(src, tgt)`:
///
/// ```text
/// µX(src,tgt). inner ∪ π_{src,tgt}( X(src,m) ⋈ inner(m,tgt) )
/// ```
///
/// `src` is stable (every iteration keeps the original source), so
/// joins/semi-joins on `src` may later be pushed into the base.
pub fn closure_fixpoint(
    var: RecVarId,
    inner: RaTerm,
    src: ColId,
    tgt: ColId,
    mid: ColId,
) -> RaTerm {
    let step_inner = rename_binary(inner.clone(), src, tgt, mid, tgt);
    let step = RaTerm::project(
        RaTerm::join(
            RaTerm::RecRef {
                var,
                cols: vec![src, mid],
            },
            step_inner,
        ),
        vec![src, tgt],
    );
    RaTerm::Fixpoint {
        var,
        base: Box::new(inner),
        step: Box::new(step),
        stable: vec![src],
    }
}

/// Renames the two columns of a binary term.
pub fn rename_binary(
    term: RaTerm,
    old_src: ColId,
    old_tgt: ColId,
    src: ColId,
    tgt: ColId,
) -> RaTerm {
    let mut t = term;
    if old_src != src {
        t = RaTerm::Rename {
            input: Box::new(t),
            from: old_src,
            to: src,
        };
    }
    if old_tgt != tgt {
        t = RaTerm::Rename {
            input: Box::new(t),
            from: old_tgt,
            to: tgt,
        };
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbols::SymbolTable;

    fn scan(s: &SymbolTable, src: &str, tgt: &str) -> RaTerm {
        RaTerm::EdgeScan {
            label: EdgeLabelId::new(0),
            src: s.col(src),
            tgt: s.col(tgt),
        }
    }

    #[test]
    fn cols_propagate() {
        let s = SymbolTable::new();
        let (x, y, z) = (s.col("x"), s.col("y"), s.col("z"));
        let j = RaTerm::join(scan(&s, "x", "y"), scan(&s, "y", "z"));
        assert_eq!(j.cols(), vec![x, y, z]);
        let p = RaTerm::project(j, vec![x, z]);
        assert_eq!(p.cols(), vec![x, z]);
    }

    #[test]
    fn closure_shape() {
        let s = SymbolTable::new();
        let (x, y, m) = (s.col("x"), s.col("y"), s.col("m"));
        let f = closure_fixpoint(s.recvar("X"), scan(&s, "x", "y"), x, y, m);
        assert!(f.is_recursive());
        assert_eq!(f.cols(), vec![x, y]);
        match &f {
            RaTerm::Fixpoint { stable, .. } => assert_eq!(stable, &[x]),
            _ => panic!(),
        }
    }

    #[test]
    fn rename_cols() {
        let s = SymbolTable::new();
        let x = s.col("x");
        let r = RaTerm::Rename {
            input: Box::new(scan(&s, "Sr", "Tr")),
            from: SymbolTable::SR,
            to: x,
        };
        assert_eq!(r.cols(), vec![x, SymbolTable::TR]);
    }

    #[test]
    fn size_counts_nodes() {
        let s = SymbolTable::new();
        let j = RaTerm::join(scan(&s, "x", "y"), scan(&s, "y", "z"));
        assert_eq!(j.size(), 3);
    }
}
