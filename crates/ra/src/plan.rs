//! Lowering optimised [`RaTerm`]s into a physical plan.
//!
//! The logical optimiser ([`crate::optimize`]) decides *what* to
//! compute; this module decides *how*. Operator selection exploits two
//! properties the logical layer cannot see:
//!
//! * **Order.** Every [`crate::table::Relation`] is canonical — rows
//!   sorted lexicographically in column order — so whenever a join's
//!   shared columns form the leading prefix of *both* inputs' schemas,
//!   the join (or semi-join) runs as a linear merge with no hash table
//!   at all.
//! * **Cost.** For the remaining hash joins the build side is chosen by
//!   [`crate::cost::estimate`]-style cardinalities instead of being
//!   rediscovered at run time, with ties broken towards the
//!   recursion-independent side so a fixpoint can cache the built table
//!   across rounds (see below).
//!
//! Two further physical rewrites:
//!
//! * a semi-join landing directly on an edge scan fuses into a
//!   [`PhysOp::FilteredEdgeScan`], so the unfiltered table is never
//!   materialised as a separate operator output;
//! * a [`PhysOp::Fixpoint`] pre-plans its step once, and every node of
//!   the step that does not depend on the recursion variable (tracked
//!   by [`PhysPlan::free_rec`]) is marked for caching: the executor
//!   computes static inputs — and static build-side hash tables — in
//!   the first round and rebuilds only the delta probe afterwards.
//!
//! Every node carries its output columns and an [`Estimate`], which is
//! what the physical `EXPLAIN` ([`crate::explain`]) renders.

use sgq_common::{ColId, EdgeLabelId, NodeLabelId, RecVarId, Result, SgqError};

use crate::cost::{self, EstEnv, Estimate};
use crate::storage::RelStore;
use crate::term::RaTerm;

/// A physical plan node: operator, output schema, estimate and the
/// recursion variables it (transitively) references.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// Dense node id (preorder of lowering), used to key per-fixpoint
    /// caches and `EXPLAIN ANALYZE` row counters.
    pub id: u32,
    /// Output column ids, in order.
    pub cols: Vec<ColId>,
    /// Estimated output rows and cumulative cost.
    pub est: Estimate,
    /// Free recursion variables: empty means the subtree is static —
    /// inside a fixpoint step it is computed once and cached across
    /// rounds.
    pub free_rec: Vec<RecVarId>,
    /// The physical operator.
    pub op: PhysOp,
}

/// Physical operators. Join and semi-join strategies are fixed at plan
/// time; the executor ([`crate::exec`]) only interprets.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Sequential scan of an edge table (columns renamed positionally to
    /// the node's `cols`).
    EdgeScan {
        /// Edge label.
        label: EdgeLabelId,
    },
    /// An edge scan fused with a semi-join filter: only the filtered
    /// rows are ever materialised.
    FilteredEdgeScan {
        /// Edge label.
        label: EdgeLabelId,
        /// The filter input (right side of the fused semi-join).
        filter: Box<PhysPlan>,
        /// Shared (key) columns, in scan-schema order.
        key: Vec<ColId>,
        /// Whether the key is a sorted prefix of both sides, enabling a
        /// merge filter instead of a hashed key set.
        merge: bool,
    },
    /// Scan of the union of node tables.
    NodeScan {
        /// Node labels (unioned with a single normalisation pass).
        labels: Vec<NodeLabelId>,
    },
    /// Merge join: both inputs are canonically sorted on the shared
    /// `key` prefix, so no hash table is built and the output needs no
    /// re-sort.
    MergeJoin {
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Shared key columns (the common schema prefix).
        key: Vec<ColId>,
    },
    /// Hash join with the build side fixed by the cost model.
    HashJoin {
        /// Left input (its columns lead the output schema).
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Shared key columns (empty = cartesian product).
        key: Vec<ColId>,
        /// Whether the left input is the build side.
        build_left: bool,
    },
    /// Merge semi-join on a shared sorted key prefix.
    MergeSemiJoin {
        /// Left (filtered) input.
        left: Box<PhysPlan>,
        /// Right (filter) input.
        right: Box<PhysPlan>,
        /// Shared key columns.
        key: Vec<ColId>,
    },
    /// Hash semi-join: the right side's keys are hashed, the left side
    /// is filtered in order.
    HashSemiJoin {
        /// Left (filtered) input.
        left: Box<PhysPlan>,
        /// Right (filter) input.
        right: Box<PhysPlan>,
        /// Shared key columns (empty = keep all iff right is non-empty).
        key: Vec<ColId>,
    },
    /// Merge union of two canonical inputs.
    Union {
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
    },
    /// Projection onto the node's `cols` (set semantics).
    Project {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Equality selection on two column positions.
    Select {
        /// Input plan.
        input: Box<PhysPlan>,
        /// First column (display).
        a: ColId,
        /// Second column (display).
        b: ColId,
        /// Position of `a` in the input schema.
        ia: usize,
        /// Position of `b` in the input schema.
        ib: usize,
    },
    /// Positional column renaming — zero-copy at execution time.
    Rename {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Semi-naive fixpoint with a pre-planned step and static-input
    /// caching across rounds.
    Fixpoint {
        /// Recursion variable.
        var: RecVarId,
        /// Base-case plan.
        base: Box<PhysPlan>,
        /// Step plan, re-evaluated per round against the current delta.
        step: Box<PhysPlan>,
    },
    /// Reference to the enclosing fixpoint's current delta.
    RecRef {
        /// Recursion variable.
        var: RecVarId,
    },
}

impl PhysPlan {
    /// Child plans, for rendering and cost splitting.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match &self.op {
            PhysOp::EdgeScan { .. } | PhysOp::NodeScan { .. } | PhysOp::RecRef { .. } => vec![],
            PhysOp::FilteredEdgeScan { filter, .. } => vec![filter],
            PhysOp::MergeJoin { left, right, .. }
            | PhysOp::HashJoin { left, right, .. }
            | PhysOp::MergeSemiJoin { left, right, .. }
            | PhysOp::HashSemiJoin { left, right, .. }
            | PhysOp::Union { left, right } => vec![left, right],
            PhysOp::Project { input } | PhysOp::Select { input, .. } | PhysOp::Rename { input } => {
                vec![input]
            }
            PhysOp::Fixpoint { base, step, .. } => vec![base, step],
        }
    }

    /// Number of nodes (ids are dense, so this is `max id + 1`).
    pub fn node_count(&self) -> usize {
        let mut max = self.id;
        let mut stack = self.children();
        while let Some(p) = stack.pop() {
            max = max.max(p.id);
            stack.extend(p.children());
        }
        max as usize + 1
    }

    /// Whether the subtree references no recursion variable (and can
    /// therefore be cached across fixpoint rounds).
    pub fn is_static(&self) -> bool {
        self.free_rec.is_empty()
    }
}

/// Lowers an (ideally [`crate::optimize`]d) term into a physical plan.
///
/// Fails when the term is malformed — a selection or projection names a
/// column its input does not produce.
pub fn plan(term: &RaTerm, store: &RelStore) -> Result<PhysPlan> {
    let mut planner = Planner {
        store,
        env: EstEnv::new(),
        next_id: 0,
    };
    planner.lower(term)
}

struct Planner<'a> {
    store: &'a RelStore,
    /// Base-case cardinalities of enclosing fixpoints.
    env: EstEnv,
    next_id: u32,
}

impl Planner<'_> {
    fn node(
        &mut self,
        cols: Vec<ColId>,
        est: Estimate,
        free_rec: Vec<RecVarId>,
        op: PhysOp,
    ) -> PhysPlan {
        let id = self.next_id;
        self.next_id += 1;
        PhysPlan {
            id,
            cols,
            est,
            free_rec,
            op,
        }
    }

    /// Estimated output rows of `term` under the current fixpoint
    /// environment — the single source of cardinalities for every plan
    /// node, so plan and term estimates agree by construction.
    ///
    /// Each call re-estimates the whole subterm, making lowering
    /// quadratic in term size. Catalog terms are tens of nodes
    /// (microseconds per plan, and the service caches plans); if huge
    /// machine-generated terms ever matter, thread the estimator's
    /// per-node `Card` through `lower` instead.
    fn rows(&mut self, term: &RaTerm) -> f64 {
        cost::term_rows(term, self.store, &mut self.env)
    }

    fn lower(&mut self, term: &RaTerm) -> Result<PhysPlan> {
        match term {
            RaTerm::EdgeScan { label, src, tgt } => {
                let rows = self.rows(term);
                Ok(self.node(
                    vec![*src, *tgt],
                    Estimate { rows, cost: rows },
                    vec![],
                    PhysOp::EdgeScan { label: *label },
                ))
            }
            RaTerm::NodeScan { labels, col } => {
                let rows = self.rows(term);
                Ok(self.node(
                    vec![*col],
                    Estimate { rows, cost: rows },
                    vec![],
                    PhysOp::NodeScan {
                        labels: labels.clone(),
                    },
                ))
            }
            RaTerm::Join(a, b) => {
                let rows = self.rows(term);
                let left = self.lower(a)?;
                let right = self.lower(b)?;
                Ok(self.lower_join(left, right, rows))
            }
            RaTerm::Semijoin(a, b) => self.lower_semijoin(term, a, b),
            RaTerm::Union(a, b) => {
                let rows = self.rows(term);
                let left = self.lower(a)?;
                let right = self.lower(b)?;
                let est = Estimate {
                    rows,
                    cost: left.est.cost + right.est.cost + rows,
                };
                let cols = left.cols.clone();
                let free = union_free(&left.free_rec, &right.free_rec);
                Ok(self.node(
                    cols,
                    est,
                    free,
                    PhysOp::Union {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                ))
            }
            RaTerm::Project { input, cols } => {
                let rows = self.rows(term);
                let child = self.lower(input)?;
                for c in cols {
                    if !child.cols.contains(c) {
                        return Err(SgqError::Execution(format!(
                            "projection column {c} missing from input schema"
                        )));
                    }
                }
                let est = Estimate {
                    rows,
                    cost: child.est.cost + child.est.rows,
                };
                let free = child.free_rec.clone();
                Ok(self.node(
                    cols.clone(),
                    est,
                    free,
                    PhysOp::Project {
                        input: Box::new(child),
                    },
                ))
            }
            RaTerm::Select { input, a, b } => {
                let rows = self.rows(term);
                let child = self.lower(input)?;
                let ia = child
                    .cols
                    .iter()
                    .position(|c| c == a)
                    .ok_or_else(|| SgqError::Execution(format!("unknown column {a}")))?;
                let ib = child
                    .cols
                    .iter()
                    .position(|c| c == b)
                    .ok_or_else(|| SgqError::Execution(format!("unknown column {b}")))?;
                let est = Estimate {
                    rows,
                    cost: child.est.cost + child.est.rows,
                };
                let cols = child.cols.clone();
                let free = child.free_rec.clone();
                Ok(self.node(
                    cols,
                    est,
                    free,
                    PhysOp::Select {
                        input: Box::new(child),
                        a: *a,
                        b: *b,
                        ia,
                        ib,
                    },
                ))
            }
            RaTerm::Rename { input, from, to } => {
                let child = self.lower(input)?;
                if !child.cols.contains(from) {
                    return Err(SgqError::Execution(format!("unknown column {from}")));
                }
                let cols: Vec<ColId> = child
                    .cols
                    .iter()
                    .map(|&c| if c == *from { *to } else { c })
                    .collect();
                // Zero-copy at execution: the rename adds no cost.
                let est = child.est;
                let free = child.free_rec.clone();
                Ok(self.node(
                    cols,
                    est,
                    free,
                    PhysOp::Rename {
                        input: Box::new(child),
                    },
                ))
            }
            RaTerm::Fixpoint {
                var, base, step, ..
            } => {
                let base_plan = self.lower(base)?;
                let prev = self.env.bind(*var, base_plan.est.rows);
                let step_plan = self.lower(step);
                self.env.restore(*var, prev);
                let step_plan = step_plan?;
                // Growth from the measured closure depth bound of the
                // labels the fixpoint iterates over (constant in v1 mode).
                let growth = cost::fixpoint_growth(term, self.store);
                let rows = base_plan.est.rows * growth;
                // Static step inputs are cached across rounds, so only
                // the delta-dependent cost multiplies with the growth.
                let (st, dy) = split_cost(&step_plan);
                let est = Estimate {
                    rows,
                    cost: base_plan.est.cost + st + dy * growth + rows,
                };
                let cols = base_plan.cols.clone();
                let mut free = union_free(&base_plan.free_rec, &step_plan.free_rec);
                free.retain(|v| v != var);
                Ok(self.node(
                    cols,
                    est,
                    free,
                    PhysOp::Fixpoint {
                        var: *var,
                        base: Box::new(base_plan),
                        step: Box::new(step_plan),
                    },
                ))
            }
            RaTerm::RecRef { var, cols } => {
                let rows = self.env.rows(*var).unwrap_or(1.0);
                Ok(self.node(
                    cols.clone(),
                    Estimate { rows, cost: 0.0 },
                    vec![*var],
                    PhysOp::RecRef { var: *var },
                ))
            }
        }
    }

    /// Join strategy selection: merge when the shared columns lead both
    /// schemas, otherwise hash with the cost-chosen build side. `rows` is
    /// the term-level estimate of the join's output.
    fn lower_join(&mut self, left: PhysPlan, right: PhysPlan, rows: f64) -> PhysPlan {
        let key = shared_cols(&left.cols, &right.cols);
        let k = key.len();
        let cols: Vec<ColId> = left
            .cols
            .iter()
            .chain(right.cols.iter().filter(|c| !left.cols.contains(c)))
            .copied()
            .collect();
        let free = union_free(&left.free_rec, &right.free_rec);
        if k >= 1 && is_prefix(&key, &left.cols) && is_prefix(&key, &right.cols) {
            // Both inputs arrive sorted on the key: skip hashing entirely.
            let est = Estimate {
                rows,
                cost: left.est.cost + right.est.cost + rows,
            };
            return self.node(
                cols,
                est,
                free,
                PhysOp::MergeJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    key,
                },
            );
        }
        let est = Estimate {
            rows,
            cost: left.est.cost + right.est.cost + left.est.rows + right.est.rows + rows,
        };
        // Build the estimated-smaller side; break ties towards the
        // recursion-independent side, whose table a fixpoint can cache.
        let build_left = if left.est.rows < right.est.rows {
            true
        } else if right.est.rows < left.est.rows {
            false
        } else {
            left.is_static() || !right.is_static()
        };
        self.node(
            cols,
            est,
            free,
            PhysOp::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                key,
                build_left,
            },
        )
    }

    /// Semi-join strategy selection: fuse onto bare edge scans, merge on
    /// sorted key prefixes, hash otherwise. `term` is the original
    /// semi-join term, whose label-aware estimate every strategy shares.
    fn lower_semijoin(&mut self, term: &RaTerm, a: &RaTerm, b: &RaTerm) -> Result<PhysPlan> {
        let rows = self.rows(term);
        if let RaTerm::EdgeScan { label, src, tgt } = a {
            let filter = self.lower(b)?;
            let scan_cols = vec![*src, *tgt];
            let key = shared_cols(&scan_cols, &filter.cols);
            let merge =
                !key.is_empty() && is_prefix(&key, &scan_cols) && is_prefix(&key, &filter.cols);
            let scan_rows = self.store.stats.edge_cardinality(*label) as f64;
            let est = Estimate {
                rows,
                cost: scan_rows + filter.est.cost + filter.est.rows,
            };
            let free = filter.free_rec.clone();
            return Ok(self.node(
                scan_cols,
                est,
                free,
                PhysOp::FilteredEdgeScan {
                    label: *label,
                    filter: Box::new(filter),
                    key,
                    merge,
                },
            ));
        }
        let left = self.lower(a)?;
        let right = self.lower(b)?;
        let key = shared_cols(&left.cols, &right.cols);
        let cols = left.cols.clone();
        let free = union_free(&left.free_rec, &right.free_rec);
        if !key.is_empty() && is_prefix(&key, &left.cols) && is_prefix(&key, &right.cols) {
            let est = Estimate {
                rows,
                cost: left.est.cost + right.est.cost + rows,
            };
            return Ok(self.node(
                cols,
                est,
                free,
                PhysOp::MergeSemiJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    key,
                },
            ));
        }
        let est = Estimate {
            rows,
            cost: left.est.cost + right.est.cost + left.est.rows + right.est.rows,
        };
        Ok(self.node(
            cols,
            est,
            free,
            PhysOp::HashSemiJoin {
                left: Box::new(left),
                right: Box::new(right),
                key,
            },
        ))
    }
}

/// Shared columns in left-schema order.
fn shared_cols(left: &[ColId], right: &[ColId]) -> Vec<ColId> {
    left.iter().filter(|c| right.contains(c)).copied().collect()
}

/// Whether `key` is the leading prefix of `cols`.
fn is_prefix(key: &[ColId], cols: &[ColId]) -> bool {
    cols.len() >= key.len() && &cols[..key.len()] == key
}

fn union_free(a: &[RecVarId], b: &[RecVarId]) -> Vec<RecVarId> {
    let mut out = a.to_vec();
    for v in b {
        if !out.contains(v) {
            out.push(*v);
        }
    }
    out
}

/// Splits a step plan's cost into (static, per-round) parts: a static
/// subtree's full cost lands in the first bucket because the executor
/// caches its result, while every recursion-dependent node's local cost
/// recurs each round.
fn split_cost(p: &PhysPlan) -> (f64, f64) {
    if p.is_static() {
        return (p.est.cost, 0.0);
    }
    let mut st = 0.0;
    let mut dy = 0.0;
    let mut child_cost = 0.0;
    for c in p.children() {
        let (s, d) = split_cost(c);
        st += s;
        dy += d;
        child_cost += c.est.cost;
    }
    dy += (p.est.cost - child_cost).max(0.0);
    (st, dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    #[test]
    fn prefix_aligned_join_lowers_to_merge() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // Both scans lead with x: canonical order matches the key.
        let t = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "owns", "x", "z"),
        );
        let p = plan(&t, &store).unwrap();
        assert!(
            matches!(p.op, PhysOp::MergeJoin { .. }),
            "expected merge join: {p:?}"
        );
    }

    #[test]
    fn misaligned_join_lowers_to_hash_with_cost_chosen_build() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // owns(x,y) ⋈ isLocatedIn(y,z): y is not a prefix of the left.
        let t = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::HashJoin { build_left, .. } => {
                // owns (1 row) is estimated smaller than isLocatedIn (4).
                assert!(*build_left, "smaller side must build: {p:?}");
            }
            other => panic!("expected hash join, got {other:?}"),
        }
    }

    #[test]
    fn semijoin_on_scan_fuses() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let t = RaTerm::semijoin(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("x"),
            },
        );
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::FilteredEdgeScan { merge, .. } => {
                assert!(*merge, "x leads both schemas: {p:?}");
            }
            other => panic!("expected fused filtered scan, got {other:?}"),
        }
    }

    #[test]
    fn fixpoint_step_marks_static_subtrees() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p = plan(&f, &store).unwrap();
        assert!(p.is_static(), "a closed fixpoint has no free recvars");
        let PhysOp::Fixpoint { step, .. } = &p.op else {
            panic!("expected fixpoint, got {p:?}");
        };
        assert!(!step.is_static(), "the step depends on the delta");
        // The renamed inner scan inside the step is recursion-free.
        fn any_static_scan(p: &PhysPlan) -> bool {
            (matches!(p.op, PhysOp::EdgeScan { .. }) && p.is_static())
                || p.children().iter().any(|c| any_static_scan(c))
        }
        assert!(any_static_scan(step), "{step:?}");
    }

    #[test]
    fn recref_estimate_inherits_base() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p = plan(&f, &store).unwrap();
        let PhysOp::Fixpoint { step, .. } = &p.op else {
            panic!()
        };
        fn find_recref(p: &PhysPlan) -> Option<&PhysPlan> {
            if matches!(p.op, PhysOp::RecRef { .. }) {
                return Some(p);
            }
            p.children().into_iter().find_map(find_recref)
        }
        let r = find_recref(step).expect("step contains the recursive ref");
        assert_eq!(r.est.rows, 4.0, "inherits isLocatedIn's base estimate");
    }

    #[test]
    fn malformed_terms_fail_at_plan_time() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::select_eq(
            scan(&db, &store, "owns", "x", "y"),
            s.col("x"),
            s.col("nope"),
        );
        assert!(plan(&t, &store).is_err());
    }

    #[test]
    fn node_ids_are_dense() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let t = RaTerm::project(
            RaTerm::join(
                scan(&db, &store, "owns", "x", "y"),
                scan(&db, &store, "isLocatedIn", "y", "z"),
            ),
            vec![store.symbols.col("x"), store.symbols.col("z")],
        );
        let p = plan(&t, &store).unwrap();
        assert_eq!(p.node_count(), 4);
    }
}
