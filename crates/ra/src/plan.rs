//! Lowering optimised [`RaTerm`]s into a physical plan.
//!
//! The logical optimiser ([`crate::optimize`]) decides *what* to
//! compute; this module decides *how*. Operator selection exploits
//! three properties the logical layer cannot see:
//!
//! * **Order.** Every [`crate::table::Relation`] is canonical — rows
//!   sorted lexicographically in column order — so whenever a join's
//!   shared columns form the leading prefix of *both* inputs' schemas,
//!   the join (or semi-join) runs as a linear merge with no hash table
//!   at all.
//! * **Cost.** For the remaining hash joins the build side is chosen by
//!   [`crate::cost::estimate`]-style cardinalities instead of being
//!   rediscovered at run time, with ties broken towards the
//!   recursion-independent side so a fixpoint can cache the built table
//!   across rounds (see below).
//!
//! * **Indexes.** The store carries per-edge-label forward/reverse CSR
//!   adjacency indexes. When one side of a join is a (possibly renamed
//!   and/or node-label-filtered) base edge scan sharing exactly one
//!   endpoint column with the other side, the planner may replace the
//!   scan with direct CSR probes ([`PhysOp::IndexJoin`] /
//!   [`PhysOp::IndexSemiJoin`]): the edge table is never materialised
//!   and no hash table is built. The choice between merge, hash and
//!   index is by estimated cost — probe rows × (1 + measured average
//!   degree) against scanning + building — and can be disabled with
//!   [`RelStore::index_joins`] for ablation.
//!
//! Two further physical rewrites:
//!
//! * a semi-join landing directly on an edge scan fuses into a
//!   [`PhysOp::FilteredEdgeScan`], so the unfiltered table is never
//!   materialised as a separate operator output;
//! * a [`PhysOp::Fixpoint`] pre-plans its step once, and every node of
//!   the step that does not depend on the recursion variable (tracked
//!   by [`PhysPlan::free_rec`]) is marked for caching: the executor
//!   computes static inputs — and static build-side hash tables — in
//!   the first round and rebuilds only the delta probe afterwards.
//!   An [`PhysOp::IndexJoin`] against the store's CSR needs no caching
//!   at all: the "build side" is the index built once at load time.
//!
//! Every node carries its output columns and an [`Estimate`], which is
//! what the physical `EXPLAIN` ([`crate::explain`]) renders.

use sgq_common::{ColId, EdgeLabelId, NodeLabelId, RecVarId, Result, SgqError};

use crate::cost::{self, EstEnv, Estimate, NodeEst};
use crate::storage::RelStore;
use crate::term::RaTerm;

/// A physical plan node: operator, output schema, estimate and the
/// recursion variables it (transitively) references.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// Dense node id (preorder of lowering), used to key per-fixpoint
    /// caches and `EXPLAIN ANALYZE` row counters.
    pub id: u32,
    /// Output column ids, in order.
    pub cols: Vec<ColId>,
    /// Estimated output rows and cumulative cost.
    pub est: Estimate,
    /// Rename-invariant structural fingerprint of the logical subtree
    /// this node computes — the key execution uses to feed observed
    /// cardinalities back into the memo ([`crate::feedback`]).
    pub fp: u64,
    /// Whether `est.rows` came from a feedback-memo observation rather
    /// than the static formulas (`EXPLAIN` renders it as `[memo]`).
    pub memo_est: bool,
    /// Free recursion variables: empty means the subtree is static —
    /// inside a fixpoint step it is computed once and cached across
    /// rounds.
    pub free_rec: Vec<RecVarId>,
    /// The physical operator.
    pub op: PhysOp,
}

/// Physical operators. Join and semi-join strategies are fixed at plan
/// time; the executor ([`crate::exec`]) only interprets.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysOp {
    /// Sequential scan of an edge table (columns renamed positionally to
    /// the node's `cols`).
    EdgeScan {
        /// Edge label.
        label: EdgeLabelId,
    },
    /// An edge scan fused with a semi-join filter: only the filtered
    /// rows are ever materialised.
    FilteredEdgeScan {
        /// Edge label.
        label: EdgeLabelId,
        /// The filter input (right side of the fused semi-join).
        filter: Box<PhysPlan>,
        /// Shared (key) columns, in scan-schema order.
        key: Vec<ColId>,
        /// Whether the key is a sorted prefix of both sides, enabling a
        /// merge filter instead of a hashed key set.
        merge: bool,
    },
    /// Masked multi-label scan over the polymorphic layout's single
    /// edge table: the union of several labels' tables emitted in one
    /// pass over the global `(Sr, Tr)` rows instead of a union-all of
    /// per-label scans. Only lowered when the loaded layout supports it
    /// ([`RelStore::supports_multi_scan`]) and the masked pass is
    /// estimated cheaper.
    MultiEdgeScan {
        /// Edge labels whose union the scan emits.
        labels: Vec<EdgeLabelId>,
    },
    /// Scan of a denormalised endpoint-label slice: an edge table
    /// restricted to rows whose endpoints carry the given node labels,
    /// materialised at load by the denormalised layout so the label
    /// semi-join is free at scan time. Only lowered when the slice
    /// exists ([`RelStore::has_filtered_table`]).
    DenormEdgeScan {
        /// Edge label.
        label: EdgeLabelId,
        /// Required source node label (`None` = unrestricted).
        src_label: Option<NodeLabelId>,
        /// Required target node label (`None` = unrestricted).
        tgt_label: Option<NodeLabelId>,
    },
    /// Scan of the union of node tables.
    NodeScan {
        /// Node labels (unioned with a single normalisation pass).
        labels: Vec<NodeLabelId>,
    },
    /// Merge join: both inputs are canonically sorted on the shared
    /// `key` prefix, so no hash table is built and the output needs no
    /// re-sort.
    MergeJoin {
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Shared key columns (the common schema prefix).
        key: Vec<ColId>,
    },
    /// Hash join with the build side fixed by the cost model.
    HashJoin {
        /// Left input (its columns lead the output schema).
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
        /// Shared key columns (empty = cartesian product).
        key: Vec<ColId>,
        /// Whether the left input is the build side.
        build_left: bool,
    },
    /// Merge semi-join on a shared sorted key prefix.
    MergeSemiJoin {
        /// Left (filtered) input.
        left: Box<PhysPlan>,
        /// Right (filter) input.
        right: Box<PhysPlan>,
        /// Shared key columns.
        key: Vec<ColId>,
    },
    /// Hash semi-join: the right side's keys are hashed, the left side
    /// is filtered in order.
    HashSemiJoin {
        /// Left (filtered) input.
        left: Box<PhysPlan>,
        /// Right (filter) input.
        right: Box<PhysPlan>,
        /// Shared key columns (empty = keep all iff right is non-empty).
        key: Vec<ColId>,
    },
    /// CSR index nested-loop join: one join side was a base edge scan
    /// (possibly renamed and node-label-filtered); instead of
    /// materialising and hashing it, each probe row's key value expands
    /// directly into the store's per-label CSR neighbour list.
    IndexJoin {
        /// The evaluated (probe) input — the non-scan side.
        probe: Box<PhysPlan>,
        /// The indexed edge label.
        label: EdgeLabelId,
        /// The shared column: its value in each probe row is the node
        /// whose neighbour list is read.
        key: ColId,
        /// The column produced from the neighbour list (the scan's other
        /// endpoint).
        out: ColId,
        /// `true`: `key` is the edge source (forward CSR, neighbours are
        /// targets); `false`: `key` is the target (reverse CSR).
        forward: bool,
        /// Node-label restriction on the edge's source endpoint (the
        /// node's label must be in the list; `None` = unrestricted).
        src_labels: Option<Vec<NodeLabelId>>,
        /// Node-label restriction on the edge's target endpoint.
        tgt_labels: Option<Vec<NodeLabelId>>,
    },
    /// CSR index semi-join: keeps the left rows whose key value has at
    /// least one (label-filtered) neighbour in the edge label's CSR —
    /// an O(1) degree lookup per row, no scan and no key-set build.
    IndexSemiJoin {
        /// Left (filtered) input.
        left: Box<PhysPlan>,
        /// The indexed edge label (the semi-join's right side).
        label: EdgeLabelId,
        /// The shared column probed into the CSR.
        key: ColId,
        /// `true`: `key` matches edge sources (forward CSR).
        forward: bool,
        /// Node-label restriction on the edge's source endpoint.
        src_labels: Option<Vec<NodeLabelId>>,
        /// Node-label restriction on the edge's target endpoint.
        tgt_labels: Option<Vec<NodeLabelId>>,
    },
    /// Merge union of two canonical inputs.
    Union {
        /// Left input.
        left: Box<PhysPlan>,
        /// Right input.
        right: Box<PhysPlan>,
    },
    /// Projection onto the node's `cols` (set semantics).
    Project {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Equality selection on two column positions.
    Select {
        /// Input plan.
        input: Box<PhysPlan>,
        /// First column (display).
        a: ColId,
        /// Second column (display).
        b: ColId,
        /// Position of `a` in the input schema.
        ia: usize,
        /// Position of `b` in the input schema.
        ib: usize,
    },
    /// Positional column renaming — zero-copy at execution time.
    Rename {
        /// Input plan.
        input: Box<PhysPlan>,
    },
    /// Semi-naive fixpoint with a pre-planned step and static-input
    /// caching across rounds.
    Fixpoint {
        /// Recursion variable.
        var: RecVarId,
        /// Base-case plan.
        base: Box<PhysPlan>,
        /// Step plan, re-evaluated per round against the current delta.
        step: Box<PhysPlan>,
    },
    /// Reference to the enclosing fixpoint's current delta.
    RecRef {
        /// Recursion variable.
        var: RecVarId,
    },
}

impl PhysOp {
    /// The operator kind as a static string — the key the observability
    /// layer profiles by (`sgq_obs::OpKindProfile`) and the name an
    /// exported operator span carries.
    pub fn kind(&self) -> &'static str {
        match self {
            PhysOp::EdgeScan { .. } => "EdgeScan",
            PhysOp::FilteredEdgeScan { .. } => "FilteredEdgeScan",
            PhysOp::MultiEdgeScan { .. } => "MultiEdgeScan",
            PhysOp::DenormEdgeScan { .. } => "DenormEdgeScan",
            PhysOp::NodeScan { .. } => "NodeScan",
            PhysOp::MergeJoin { .. } => "MergeJoin",
            PhysOp::HashJoin { .. } => "HashJoin",
            PhysOp::MergeSemiJoin { .. } => "MergeSemiJoin",
            PhysOp::HashSemiJoin { .. } => "HashSemiJoin",
            PhysOp::IndexJoin { .. } => "IndexJoin",
            PhysOp::IndexSemiJoin { .. } => "IndexSemiJoin",
            PhysOp::Union { .. } => "Union",
            PhysOp::Project { .. } => "Project",
            PhysOp::Select { .. } => "Select",
            PhysOp::Rename { .. } => "Rename",
            PhysOp::Fixpoint { .. } => "Fixpoint",
            PhysOp::RecRef { .. } => "RecRef",
        }
    }
}

impl PhysPlan {
    /// Child plans, for rendering and cost splitting.
    pub fn children(&self) -> Vec<&PhysPlan> {
        match &self.op {
            PhysOp::EdgeScan { .. }
            | PhysOp::MultiEdgeScan { .. }
            | PhysOp::DenormEdgeScan { .. }
            | PhysOp::NodeScan { .. }
            | PhysOp::RecRef { .. } => vec![],
            PhysOp::FilteredEdgeScan { filter, .. } => vec![filter],
            PhysOp::IndexJoin { probe, .. } => vec![probe],
            PhysOp::IndexSemiJoin { left, .. } => vec![left],
            PhysOp::MergeJoin { left, right, .. }
            | PhysOp::HashJoin { left, right, .. }
            | PhysOp::MergeSemiJoin { left, right, .. }
            | PhysOp::HashSemiJoin { left, right, .. }
            | PhysOp::Union { left, right } => vec![left, right],
            PhysOp::Project { input } | PhysOp::Select { input, .. } | PhysOp::Rename { input } => {
                vec![input]
            }
            PhysOp::Fixpoint { base, step, .. } => vec![base, step],
        }
    }

    /// Number of nodes (ids are dense, so this is `max id + 1`).
    pub fn node_count(&self) -> usize {
        let mut max = self.id;
        let mut stack = self.children();
        while let Some(p) = stack.pop() {
            max = max.max(p.id);
            stack.extend(p.children());
        }
        max as usize + 1
    }

    /// Whether the subtree references no recursion variable (and can
    /// therefore be cached across fixpoint rounds).
    pub fn is_static(&self) -> bool {
        self.free_rec.is_empty()
    }

    /// Whether any node of the subtree carries a memo-sourced estimate —
    /// i.e. the planner consulted runtime feedback for this plan. The
    /// service counts such prepares as `feedback_hits`.
    pub fn uses_memo(&self) -> bool {
        self.memo_est || self.children().iter().any(|c| c.uses_memo())
    }

    /// Whether any node of the subtree satisfies `pred` — how tests,
    /// benches and the harness assert a plan contains a strategy.
    pub fn contains_op(&self, pred: &dyn Fn(&PhysOp) -> bool) -> bool {
        pred(&self.op) || self.children().iter().any(|c| c.contains_op(pred))
    }

    /// The estimated rows of this operator's morsel-partitionable probe
    /// side, if the operator has one: the probe input of hash/index
    /// joins, the filtered left of hash/index semi-joins, and the scan
    /// side of a hashed filtered edge scan. `EXPLAIN` compares this
    /// against [`crate::cost::PARALLEL_ROW_THRESHOLD`] to annotate which
    /// operators a `dop > 1` execution would actually split.
    pub fn parallel_probe_rows(&self) -> Option<f64> {
        match &self.op {
            PhysOp::HashJoin {
                left,
                right,
                build_left,
                ..
            } => Some(if *build_left { &right.est } else { &left.est }.rows),
            PhysOp::IndexJoin { probe, .. } => Some(probe.est.rows),
            PhysOp::IndexSemiJoin { left, .. } | PhysOp::HashSemiJoin { left, .. } => {
                Some(left.est.rows)
            }
            // The hashed (non-merge) variant scans the full edge table;
            // its output estimate is the conservative proxy for that.
            PhysOp::FilteredEdgeScan { merge: false, .. } => Some(self.est.rows),
            _ => None,
        }
    }
}

/// Lowers an (ideally [`crate::optimize`]d) term into a physical plan.
///
/// Fails when the term is malformed — a selection or projection names a
/// column its input does not produce.
pub fn plan(term: &RaTerm, store: &RelStore) -> Result<PhysPlan> {
    let mut planner = Planner {
        store,
        env: EstEnv::new(),
        next_id: 0,
    };
    planner.lower(term)
}

struct Planner<'a> {
    store: &'a RelStore,
    /// Base-case cardinalities of enclosing fixpoints.
    env: EstEnv,
    next_id: u32,
}

impl Planner<'_> {
    fn node(
        &mut self,
        cols: Vec<ColId>,
        est: Estimate,
        src: NodeEst,
        free_rec: Vec<RecVarId>,
        op: PhysOp,
    ) -> PhysPlan {
        let id = self.next_id;
        self.next_id += 1;
        PhysPlan {
            id,
            cols,
            est,
            fp: src.fp,
            memo_est: src.memo,
            free_rec,
            op,
        }
    }

    /// Estimate of `term` under the current fixpoint environment — rows,
    /// structural fingerprint and memo provenance, the single source of
    /// cardinalities for every plan node, so plan and term estimates
    /// agree by construction.
    ///
    /// Each call re-estimates the whole subterm, making lowering
    /// quadratic in term size. Catalog terms are tens of nodes
    /// (microseconds per plan, and the service caches plans); if huge
    /// machine-generated terms ever matter, thread the estimator's
    /// per-node `Card` through `lower` instead.
    fn est_node(&mut self, term: &RaTerm) -> NodeEst {
        cost::node_est(term, self.store, &mut self.env)
    }

    fn lower(&mut self, term: &RaTerm) -> Result<PhysPlan> {
        match term {
            RaTerm::EdgeScan { label, src, tgt } => {
                let e = self.est_node(term);
                let rows = e.rows;
                Ok(self.node(
                    vec![*src, *tgt],
                    Estimate { rows, cost: rows },
                    e,
                    vec![],
                    PhysOp::EdgeScan { label: *label },
                ))
            }
            RaTerm::NodeScan { labels, col } => {
                let e = self.est_node(term);
                let rows = e.rows;
                Ok(self.node(
                    vec![*col],
                    Estimate { rows, cost: rows },
                    e,
                    vec![],
                    PhysOp::NodeScan {
                        labels: labels.clone(),
                    },
                ))
            }
            RaTerm::Join(a, b) => {
                let e = self.est_node(term);
                if let Some(p) = self.try_index_join(a, b, e)? {
                    return Ok(p);
                }
                let left = self.lower(a)?;
                let right = self.lower(b)?;
                Ok(self.lower_join(left, right, e))
            }
            RaTerm::Semijoin(a, b) => self.lower_semijoin(term, a, b),
            RaTerm::Union(a, b) => {
                let e = self.est_node(term);
                if let Some(p) = self.try_multi_scan(term, e) {
                    return Ok(p);
                }
                let left = self.lower(a)?;
                let right = self.lower(b)?;
                let est = Estimate {
                    rows: e.rows,
                    cost: left.est.cost + right.est.cost + e.rows,
                };
                let cols = left.cols.clone();
                let free = union_free(&left.free_rec, &right.free_rec);
                Ok(self.node(
                    cols,
                    est,
                    e,
                    free,
                    PhysOp::Union {
                        left: Box::new(left),
                        right: Box::new(right),
                    },
                ))
            }
            RaTerm::Project { input, cols } => {
                let e = self.est_node(term);
                let child = self.lower(input)?;
                for c in cols {
                    if !child.cols.contains(c) {
                        return Err(SgqError::Execution(format!(
                            "projection column {c} missing from input schema"
                        )));
                    }
                }
                let est = Estimate {
                    rows: e.rows,
                    cost: child.est.cost + child.est.rows,
                };
                let free = child.free_rec.clone();
                Ok(self.node(
                    cols.clone(),
                    est,
                    e,
                    free,
                    PhysOp::Project {
                        input: Box::new(child),
                    },
                ))
            }
            RaTerm::Select { input, a, b } => {
                let e = self.est_node(term);
                let child = self.lower(input)?;
                let ia = child
                    .cols
                    .iter()
                    .position(|c| c == a)
                    .ok_or_else(|| SgqError::Execution(format!("unknown column {a}")))?;
                let ib = child
                    .cols
                    .iter()
                    .position(|c| c == b)
                    .ok_or_else(|| SgqError::Execution(format!("unknown column {b}")))?;
                let est = Estimate {
                    rows: e.rows,
                    cost: child.est.cost + child.est.rows,
                };
                let cols = child.cols.clone();
                let free = child.free_rec.clone();
                Ok(self.node(
                    cols,
                    est,
                    e,
                    free,
                    PhysOp::Select {
                        input: Box::new(child),
                        a: *a,
                        b: *b,
                        ia,
                        ib,
                    },
                ))
            }
            RaTerm::Rename { input, from, to } => {
                let child = self.lower(input)?;
                if !child.cols.contains(from) {
                    return Err(SgqError::Execution(format!("unknown column {from}")));
                }
                let cols: Vec<ColId> = child
                    .cols
                    .iter()
                    .map(|&c| if c == *from { *to } else { c })
                    .collect();
                // Zero-copy at execution: the rename adds no cost, and
                // the fingerprint is the child's (renames are invisible
                // to the position-based hash).
                let est = child.est;
                let e = NodeEst {
                    rows: child.est.rows,
                    fp: child.fp,
                    memo: child.memo_est,
                };
                let free = child.free_rec.clone();
                Ok(self.node(
                    cols,
                    est,
                    e,
                    free,
                    PhysOp::Rename {
                        input: Box::new(child),
                    },
                ))
            }
            RaTerm::Fixpoint {
                var, base, step, ..
            } => {
                // Estimated before lowering so a memoised observation of
                // the whole closure overrides the growth extrapolation.
                let e = self.est_node(term);
                let base_plan = self.lower(base)?;
                let prev = self.env.bind(*var, base_plan.est.rows);
                let step_plan = self.lower(step);
                self.env.restore(*var, prev);
                let step_plan = step_plan?;
                // Growth from the measured closure depth bound of the
                // labels the fixpoint iterates over (constant in v1 mode).
                let growth = cost::fixpoint_growth(term, self.store);
                let rows = e.rows;
                // Static step inputs are cached across rounds, so only
                // the delta-dependent cost multiplies with the growth.
                let (st, dy) = split_cost(&step_plan);
                let est = Estimate {
                    rows,
                    cost: base_plan.est.cost + st + dy * growth + rows,
                };
                let cols = base_plan.cols.clone();
                let mut free = union_free(&base_plan.free_rec, &step_plan.free_rec);
                free.retain(|v| v != var);
                Ok(self.node(
                    cols,
                    est,
                    e,
                    free,
                    PhysOp::Fixpoint {
                        var: *var,
                        base: Box::new(base_plan),
                        step: Box::new(step_plan),
                    },
                ))
            }
            RaTerm::RecRef { var, cols } => {
                let e = self.est_node(term);
                Ok(self.node(
                    cols.clone(),
                    Estimate {
                        rows: e.rows,
                        cost: 0.0,
                    },
                    e,
                    vec![*var],
                    PhysOp::RecRef { var: *var },
                ))
            }
        }
    }

    /// Join strategy selection: merge when the shared columns lead both
    /// schemas, otherwise hash with the cost-chosen build side. `e` is
    /// the term-level estimate of the join's output.
    fn lower_join(&mut self, left: PhysPlan, right: PhysPlan, e: NodeEst) -> PhysPlan {
        let rows = e.rows;
        let key = shared_cols(&left.cols, &right.cols);
        let k = key.len();
        let cols: Vec<ColId> = left
            .cols
            .iter()
            .chain(right.cols.iter().filter(|c| !left.cols.contains(c)))
            .copied()
            .collect();
        let free = union_free(&left.free_rec, &right.free_rec);
        if k >= 1 && is_prefix(&key, &left.cols) && is_prefix(&key, &right.cols) {
            // Both inputs arrive sorted on the key: skip hashing entirely.
            let est = Estimate {
                rows,
                cost: left.est.cost + right.est.cost + rows,
            };
            return self.node(
                cols,
                est,
                e,
                free,
                PhysOp::MergeJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    key,
                },
            );
        }
        let est = Estimate {
            rows,
            cost: left.est.cost + right.est.cost + left.est.rows + right.est.rows + rows,
        };
        // Build the estimated-smaller side; break ties towards the
        // recursion-independent side, whose table a fixpoint can cache.
        let build_left = if left.est.rows < right.est.rows {
            true
        } else if right.est.rows < left.est.rows {
            false
        } else {
            left.is_static() || !right.is_static()
        };
        self.node(
            cols,
            est,
            e,
            free,
            PhysOp::HashJoin {
                left: Box::new(left),
                right: Box::new(right),
                key,
                build_left,
            },
        )
    }

    /// Attempts to lower `a ⋈ b` as a CSR index join. One side must be
    /// an indexable base-edge scan ([`indexable_scan`]) sharing exactly
    /// one column — one of its endpoints — with the other side, and the
    /// cost model must prefer probing the CSR (probe rows × (1 + avg
    /// degree)) over the best scan-based strategy (merge or hash) for
    /// the same term. When both sides qualify, the cheaper probe
    /// orientation competes.
    fn try_index_join(&mut self, a: &RaTerm, b: &RaTerm, e: NodeEst) -> Result<Option<PhysPlan>> {
        if !self.store.index_joins {
            return Ok(None);
        }
        let rows = e.rows;
        // Indexable orientations: (scan, scan-on-the-left, forward).
        let mut candidates: Vec<(IndexableScan, bool, bool)> = Vec::new();
        for (scan_term, probe_term, scan_left) in [(a, b, true), (b, a, false)] {
            let Some(s) = indexable_scan(scan_term) else {
                continue;
            };
            let probe_cols = probe_term.cols();
            let forward = match (probe_cols.contains(&s.src), probe_cols.contains(&s.tgt)) {
                (true, false) => true,
                (false, true) => false,
                // No shared endpoint, or both shared (a two-column key):
                // not an index-join shape.
                _ => continue,
            };
            candidates.push((s, scan_left, forward));
        }
        if candidates.is_empty() {
            return Ok(None);
        }
        // One estimate per side serves every candidate's probe cost and
        // the scan-based alternative below.
        let ea = cost::estimate_with_env(a, self.store, &mut self.env);
        let eb = cost::estimate_with_env(b, self.store, &mut self.env);
        let mut best: Option<(IndexableScan, bool, bool, f64)> = None;
        for (s, scan_left, forward) in candidates {
            let probe = if scan_left { &eb } else { &ea };
            let deg = cost::index_degree(self.store, s.label, forward);
            let c = cost::index_join_cost(probe, deg, rows);
            if best.as_ref().is_none_or(|&(_, _, _, bc)| c < bc) {
                best = Some((s, scan_left, forward, c));
            }
        }
        let Some((s, scan_left, forward, index_cost)) = best else {
            unreachable!("at least one candidate was scored");
        };
        // The scan-based alternative this term would otherwise lower to.
        let (a_cols, b_cols) = (a.cols(), b.cols());
        let key_cols = shared_cols(&a_cols, &b_cols);
        let merge_ok =
            !key_cols.is_empty() && is_prefix(&key_cols, &a_cols) && is_prefix(&key_cols, &b_cols);
        let scan_based = if merge_ok {
            ea.cost + eb.cost + rows
        } else {
            ea.cost + eb.cost + ea.rows + eb.rows + rows
        };
        if index_cost >= scan_based {
            return Ok(None);
        }
        let probe = self.lower(if scan_left { b } else { a })?;
        let (key, out) = if forward {
            (s.src, s.tgt)
        } else {
            (s.tgt, s.src)
        };
        // Output schema stays the standard join layout (left's columns,
        // then the right side's non-shared columns), so sibling plans —
        // e.g. the two arms of a union — agree on column order no matter
        // which strategy each picked.
        let cols: Vec<ColId> = if scan_left {
            [s.src, s.tgt]
                .into_iter()
                .chain(probe.cols.iter().copied().filter(|&c| c != key))
                .collect()
        } else {
            probe.cols.iter().copied().chain([out]).collect()
        };
        let est = Estimate {
            rows,
            cost: index_cost,
        };
        let free = probe.free_rec.clone();
        Ok(Some(self.node(
            cols,
            est,
            e,
            free,
            PhysOp::IndexJoin {
                probe: Box::new(probe),
                label: s.label,
                key,
                out,
                forward,
                src_labels: s.src_labels,
                tgt_labels: s.tgt_labels,
            },
        )))
    }

    /// Attempts to lower `a ⋉ b` as a CSR index semi-join: `b` must be
    /// an indexable base-edge scan sharing exactly one endpoint column
    /// with `a`, and the per-row degree probe must beat collecting the
    /// scan's key set.
    fn try_index_semijoin(
        &mut self,
        a: &RaTerm,
        b: &RaTerm,
        e: NodeEst,
    ) -> Result<Option<PhysPlan>> {
        if !self.store.index_joins {
            return Ok(None);
        }
        let rows = e.rows;
        let Some(s) = indexable_scan(b) else {
            return Ok(None);
        };
        let a_cols = a.cols();
        let forward = match (a_cols.contains(&s.src), a_cols.contains(&s.tgt)) {
            (true, false) => true,
            (false, true) => false,
            _ => return Ok(None),
        };
        let key = if forward { s.src } else { s.tgt };
        let ea = cost::estimate_with_env(a, self.store, &mut self.env);
        let eb = cost::estimate_with_env(b, self.store, &mut self.env);
        let index_cost = cost::index_semijoin_cost(&ea);
        // Merge filtering needs the key to lead both sides; the scan side
        // leads with its source column.
        let merge_ok = a_cols.first() == Some(&key) && forward;
        let scan_based = if merge_ok {
            ea.cost + eb.cost + rows
        } else {
            ea.cost + eb.cost + ea.rows + eb.rows
        };
        if index_cost >= scan_based {
            return Ok(None);
        }
        let left = self.lower(a)?;
        let cols = left.cols.clone();
        let est = Estimate {
            rows,
            cost: index_cost,
        };
        let free = left.free_rec.clone();
        Ok(Some(self.node(
            cols,
            est,
            e,
            free,
            PhysOp::IndexSemiJoin {
                left: Box::new(left),
                label: s.label,
                key,
                forward,
                src_labels: s.src_labels,
                tgt_labels: s.tgt_labels,
            },
        )))
    }

    /// Semi-join strategy selection: fuse onto bare edge scans, probe the
    /// CSR when the filter is an indexable scan, merge on sorted key
    /// prefixes, hash otherwise. `term` is the original semi-join term,
    /// whose label-aware estimate every strategy shares.
    fn lower_semijoin(&mut self, term: &RaTerm, a: &RaTerm, b: &RaTerm) -> Result<PhysPlan> {
        let e = self.est_node(term);
        let rows = e.rows;
        // A node-label filter on a scan whose slice the denormalised
        // layout precomputed needs no filtering at all — it is a strict
        // improvement over every strategy below, so no cost race.
        if let Some(p) = self.try_denorm_scan(term, e) {
            return Ok(p);
        }
        if let RaTerm::EdgeScan { label, src, tgt } = a {
            let filter = self.lower(b)?;
            let scan_cols = vec![*src, *tgt];
            let key = shared_cols(&scan_cols, &filter.cols);
            let merge =
                !key.is_empty() && is_prefix(&key, &scan_cols) && is_prefix(&key, &filter.cols);
            let scan_rows = self.store.stats.edge_cardinality(*label) as f64;
            let est = Estimate {
                rows,
                cost: scan_rows + filter.est.cost + filter.est.rows,
            };
            let free = filter.free_rec.clone();
            // The fused node computes the whole semi-join term, so it
            // carries the semi-join's fingerprint.
            return Ok(self.node(
                scan_cols,
                est,
                e,
                free,
                PhysOp::FilteredEdgeScan {
                    label: *label,
                    filter: Box::new(filter),
                    key,
                    merge,
                },
            ));
        }
        if let Some(p) = self.try_index_semijoin(a, b, e)? {
            return Ok(p);
        }
        let left = self.lower(a)?;
        let right = self.lower(b)?;
        let key = shared_cols(&left.cols, &right.cols);
        let cols = left.cols.clone();
        let free = union_free(&left.free_rec, &right.free_rec);
        if !key.is_empty() && is_prefix(&key, &left.cols) && is_prefix(&key, &right.cols) {
            let est = Estimate {
                rows,
                cost: left.est.cost + right.est.cost + rows,
            };
            return Ok(self.node(
                cols,
                est,
                e,
                free,
                PhysOp::MergeSemiJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    key,
                },
            ));
        }
        let est = Estimate {
            rows,
            cost: left.est.cost + right.est.cost + left.est.rows + right.est.rows,
        };
        Ok(self.node(
            cols,
            est,
            e,
            free,
            PhysOp::HashSemiJoin {
                left: Box::new(left),
                right: Box::new(right),
                key,
            },
        ))
    }

    /// Attempts to lower a union tree whose leaves are all plain
    /// (possibly renamed, unfiltered) edge scans exposing the same
    /// `(src, tgt)` column pair into one [`PhysOp::MultiEdgeScan`] over
    /// the polymorphic layout's global table. Fires only when the
    /// layout supports it and the masked single pass is estimated
    /// cheaper than the union-all of per-label scans.
    fn try_multi_scan(&mut self, term: &RaTerm, e: NodeEst) -> Option<PhysPlan> {
        if !self.store.supports_multi_scan() {
            return None;
        }
        let poly_rows = self.store.poly_rows()?;
        let mut leaves = Vec::new();
        if !collect_union_scans(term, &mut leaves) || leaves.len() < 2 {
            return None;
        }
        let (src, tgt) = (leaves[0].1, leaves[0].2);
        if leaves.iter().any(|&(_, s, t)| s != src || t != tgt) {
            return None;
        }
        let mut labels: Vec<EdgeLabelId> = Vec::new();
        for &(l, _, _) in &leaves {
            if !labels.contains(&l) {
                labels.push(l);
            }
        }
        let label_rows: f64 = labels
            .iter()
            .map(|&l| self.store.stats.edge_cardinality(l) as f64)
            .sum();
        let masked = cost::multi_scan_cost(poly_rows, e.rows);
        if masked >= cost::union_all_cost(label_rows) {
            return None;
        }
        let est = Estimate {
            rows: e.rows,
            cost: masked,
        };
        Some(self.node(
            vec![src, tgt],
            est,
            e,
            vec![],
            PhysOp::MultiEdgeScan { labels },
        ))
    }

    /// Attempts to lower a node-label semi-join over a base edge scan
    /// into a [`PhysOp::DenormEdgeScan`]: when the denormalised layout
    /// precomputed the endpoint-label slice, the whole term is a single
    /// scan of exactly its output rows — the filter costs nothing.
    /// Restricted to single-label filters per endpoint (the only slices
    /// the layout materialises).
    fn try_denorm_scan(&mut self, term: &RaTerm, e: NodeEst) -> Option<PhysPlan> {
        let s = indexable_scan(term)?;
        let single = |labels: &Option<Vec<NodeLabelId>>| match labels {
            None => Some(None),
            Some(v) if v.len() == 1 => Some(Some(v[0])),
            Some(_) => None,
        };
        let src_label = single(&s.src_labels)?;
        let tgt_label = single(&s.tgt_labels)?;
        if src_label.is_none() && tgt_label.is_none() {
            return None;
        }
        if !self.store.has_filtered_table(s.label, src_label, tgt_label) {
            return None;
        }
        let stats = &self.store.stats;
        let slice_rows = match (src_label, tgt_label) {
            (Some(a), Some(b)) => stats.triple_cardinality(a, s.label, b) as f64,
            (Some(a), None) => stats.source_group(a, s.label).count as f64,
            (None, Some(b)) => stats.target_group(s.label, b).count as f64,
            (None, None) => unreachable!("at least one endpoint is filtered"),
        };
        let est = Estimate {
            rows: e.rows,
            cost: cost::denorm_scan_cost(slice_rows),
        };
        Some(self.node(
            vec![s.src, s.tgt],
            est,
            e,
            vec![],
            PhysOp::DenormEdgeScan {
                label: s.label,
                src_label,
                tgt_label,
            },
        ))
    }
}

/// Collects the leaves of a union tree when every leaf is a plain
/// (possibly renamed, unfiltered) base edge scan; returns `false` as
/// soon as any leaf is not, so the union lowers operator by operator.
fn collect_union_scans(term: &RaTerm, out: &mut Vec<(EdgeLabelId, ColId, ColId)>) -> bool {
    match term {
        RaTerm::Union(a, b) => collect_union_scans(a, out) && collect_union_scans(b, out),
        _ => match indexable_scan(term) {
            Some(s) if s.src_labels.is_none() && s.tgt_labels.is_none() => {
                out.push((s.label, s.src, s.tgt));
                true
            }
            _ => false,
        },
    }
}

/// A join side the planner can replace with CSR index probes: a base
/// edge scan, optionally renamed and filtered by node-label semi-joins
/// on its endpoints. `src`/`tgt` are the column ids the scan exposes
/// after renames; the label lists use intersection semantics across
/// stacked filters (a node passes when its label is in the list).
struct IndexableScan {
    label: EdgeLabelId,
    src: ColId,
    tgt: ColId,
    src_labels: Option<Vec<NodeLabelId>>,
    tgt_labels: Option<Vec<NodeLabelId>>,
}

/// Recognises the indexable-scan shape (see [`IndexableScan`]). Renames
/// of columns the scan does not expose, filters that are not node scans
/// on an endpoint, and degenerate scans (`src == tgt`) all return `None`
/// so the term falls back to the scan-based strategies.
fn indexable_scan(term: &RaTerm) -> Option<IndexableScan> {
    match term {
        RaTerm::EdgeScan { label, src, tgt } if src != tgt => Some(IndexableScan {
            label: *label,
            src: *src,
            tgt: *tgt,
            src_labels: None,
            tgt_labels: None,
        }),
        RaTerm::Rename { input, from, to } => {
            let mut s = indexable_scan(input)?;
            if s.src == *from {
                s.src = *to;
            } else if s.tgt == *from {
                s.tgt = *to;
            } else {
                return None;
            }
            (s.src != s.tgt).then_some(s)
        }
        RaTerm::Semijoin(left, filter) => {
            let mut s = indexable_scan(left)?;
            let RaTerm::NodeScan { labels, col } = &**filter else {
                return None;
            };
            let slot = if *col == s.src {
                &mut s.src_labels
            } else if *col == s.tgt {
                &mut s.tgt_labels
            } else {
                return None;
            };
            *slot = Some(match slot.take() {
                Some(prev) => prev.into_iter().filter(|l| labels.contains(l)).collect(),
                None => labels.clone(),
            });
            Some(s)
        }
        _ => None,
    }
}

/// Shared columns in left-schema order.
fn shared_cols(left: &[ColId], right: &[ColId]) -> Vec<ColId> {
    left.iter().filter(|c| right.contains(c)).copied().collect()
}

/// Whether `key` is the leading prefix of `cols`.
fn is_prefix(key: &[ColId], cols: &[ColId]) -> bool {
    cols.len() >= key.len() && &cols[..key.len()] == key
}

fn union_free(a: &[RecVarId], b: &[RecVarId]) -> Vec<RecVarId> {
    let mut out = a.to_vec();
    for v in b {
        if !out.contains(v) {
            out.push(*v);
        }
    }
    out
}

/// Splits a step plan's cost into (static, per-round) parts: a static
/// subtree's full cost lands in the first bucket because the executor
/// caches its result, while every recursion-dependent node's local cost
/// recurs each round.
fn split_cost(p: &PhysPlan) -> (f64, f64) {
    if p.is_static() {
        return (p.est.cost, 0.0);
    }
    let mut st = 0.0;
    let mut dy = 0.0;
    let mut child_cost = 0.0;
    for c in p.children() {
        let (s, d) = split_cost(c);
        st += s;
        dy += d;
        child_cost += c.est.cost;
    }
    dy += (p.est.cost - child_cost).max(0.0);
    (st, dy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    #[test]
    fn prefix_aligned_join_lowers_to_merge() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.index_joins = false;
        // Both scans lead with x: canonical order matches the key.
        let t = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "owns", "x", "z"),
        );
        let p = plan(&t, &store).unwrap();
        assert!(
            matches!(p.op, PhysOp::MergeJoin { .. }),
            "expected merge join: {p:?}"
        );
    }

    #[test]
    fn misaligned_join_lowers_to_hash_with_cost_chosen_build() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        store.index_joins = false;
        // owns(x,y) ⋈ isLocatedIn(y,z): y is not a prefix of the left.
        let t = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::HashJoin { build_left, .. } => {
                // owns (1 row) is estimated smaller than isLocatedIn (4).
                assert!(*build_left, "smaller side must build: {p:?}");
            }
            other => panic!("expected hash join, got {other:?}"),
        }
    }

    #[test]
    fn selective_probe_lowers_to_index_join() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // owns(x,y) ⋈ isLocatedIn(y,z): the 1-row owns side probes the
        // isLocatedIn forward CSR on y instead of hashing the 4-row scan.
        let t = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::IndexJoin {
                probe,
                forward,
                key,
                out,
                ..
            } => {
                assert!(*forward, "y is isLocatedIn's source: forward CSR");
                assert_eq!(*key, store.symbols.col("y"));
                assert_eq!(*out, store.symbols.col("z"));
                assert!(
                    matches!(probe.op, PhysOp::EdgeScan { .. }),
                    "owns is the probe: {probe:?}"
                );
            }
            other => panic!("expected index join, got {other:?}"),
        }
        // Output schema keeps the standard join layout.
        let s = &store.symbols;
        assert_eq!(p.cols, vec![s.col("x"), s.col("y"), s.col("z")]);
    }

    #[test]
    fn label_filtered_scan_side_absorbs_into_index_join() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // owns(x,y) ⋈ (isLocatedIn(y,z) ⋉ CITY(y) ⋉ REGION(z)): the
        // node-label filters become membership checks on the CSR probe.
        let filtered = RaTerm::semijoin(
            RaTerm::semijoin(
                scan(&db, &store, "isLocatedIn", "y", "z"),
                RaTerm::NodeScan {
                    labels: vec![db.node_label_id("CITY").unwrap()],
                    col: store.symbols.col("y"),
                },
            ),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("z"),
            },
        );
        let t = RaTerm::join(scan(&db, &store, "owns", "x", "y"), filtered);
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::IndexJoin {
                src_labels,
                tgt_labels,
                ..
            } => {
                assert_eq!(
                    src_labels.as_deref(),
                    Some(&[db.node_label_id("CITY").unwrap()][..])
                );
                assert_eq!(
                    tgt_labels.as_deref(),
                    Some(&[db.node_label_id("REGION").unwrap()][..])
                );
            }
            other => panic!("expected label-filtered index join, got {other:?}"),
        }
    }

    #[test]
    fn semijoin_against_scan_lowers_to_index_semijoin() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        // (owns ⋈ livesIn) ⋉ isLocatedIn(y,z'): the filter side is a base
        // scan — an O(1) degree probe per left row, no key-set build.
        let left = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "livesIn", "w", "x"),
        );
        let t = RaTerm::semijoin(left, scan(&db, &store, "isLocatedIn", "y", "q"));
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::IndexSemiJoin { key, forward, .. } => {
                assert_eq!(*key, store.symbols.col("y"));
                assert!(*forward);
            }
            other => panic!("expected index semi-join, got {other:?}"),
        }
    }

    #[test]
    fn index_join_disabled_by_the_ablation_knob() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        let t = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        assert!(matches!(
            plan(&t, &store).unwrap().op,
            PhysOp::IndexJoin { .. }
        ));
        store.index_joins = false;
        assert!(matches!(
            plan(&t, &store).unwrap().op,
            PhysOp::HashJoin { .. }
        ));
    }

    #[test]
    fn semijoin_on_scan_fuses() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let t = RaTerm::semijoin(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("x"),
            },
        );
        let p = plan(&t, &store).unwrap();
        match &p.op {
            PhysOp::FilteredEdgeScan { merge, .. } => {
                assert!(*merge, "x leads both schemas: {p:?}");
            }
            other => panic!("expected fused filtered scan, got {other:?}"),
        }
    }

    #[test]
    fn fixpoint_step_marks_static_subtrees() {
        let db = fig2_yago_database();
        let mut store = RelStore::load(&db);
        // Ablate index joins: with them on, the step's static scan is
        // absorbed into an IndexJoin and nothing needs caching.
        store.index_joins = false;
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p = plan(&f, &store).unwrap();
        assert!(p.is_static(), "a closed fixpoint has no free recvars");
        let PhysOp::Fixpoint { step, .. } = &p.op else {
            panic!("expected fixpoint, got {p:?}");
        };
        assert!(!step.is_static(), "the step depends on the delta");
        // The renamed inner scan inside the step is recursion-free.
        fn any_static_scan(p: &PhysPlan) -> bool {
            (matches!(p.op, PhysOp::EdgeScan { .. }) && p.is_static())
                || p.children().iter().any(|c| any_static_scan(c))
        }
        assert!(any_static_scan(step), "{step:?}");
    }

    #[test]
    fn recref_estimate_inherits_base() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p = plan(&f, &store).unwrap();
        let PhysOp::Fixpoint { step, .. } = &p.op else {
            panic!()
        };
        fn find_recref(p: &PhysPlan) -> Option<&PhysPlan> {
            if matches!(p.op, PhysOp::RecRef { .. }) {
                return Some(p);
            }
            p.children().into_iter().find_map(find_recref)
        }
        let r = find_recref(step).expect("step contains the recursive ref");
        assert_eq!(r.est.rows, 4.0, "inherits isLocatedIn's base estimate");
    }

    #[test]
    fn malformed_terms_fail_at_plan_time() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let s = &store.symbols;
        let t = RaTerm::select_eq(
            scan(&db, &store, "owns", "x", "y"),
            s.col("x"),
            s.col("nope"),
        );
        assert!(plan(&t, &store).is_err());
    }

    #[test]
    fn node_ids_are_dense() {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        let t = RaTerm::project(
            RaTerm::join(
                scan(&db, &store, "owns", "x", "y"),
                scan(&db, &store, "isLocatedIn", "y", "z"),
            ),
            vec![store.symbols.col("x"), store.symbols.col("z")],
        );
        // Project + IndexJoin + probe scan: the absorbed isLocatedIn scan
        // never allocates an id, so ids stay dense.
        let p = plan(&t, &store).unwrap();
        assert!(matches!(
            p.op,
            PhysOp::Project { ref input } if matches!(input.op, PhysOp::IndexJoin { .. })
        ));
        assert_eq!(p.node_count(), 3);
    }

    /// A database where three edge labels cover the same pair set, so
    /// the polymorphic global table (4 rows) is far smaller than the
    /// union-all of the per-label scans (12 rows scanned + merged).
    fn overlapping_labels_db() -> sgq_graph::GraphDatabase {
        let mut b = sgq_graph::GraphDatabase::standalone_builder();
        let nodes: Vec<_> = (0..5).map(|_| b.node("N", &[])).collect();
        for le in ["e0", "e1", "e2"] {
            for i in 0..4 {
                b.edge(nodes[i], le, nodes[i + 1]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn overlapping_label_union_lowers_to_multi_scan_on_polymorphic() {
        let db = overlapping_labels_db();
        let term = |store: &RelStore| {
            RaTerm::union(
                scan(&db, store, "e0", "x", "y"),
                RaTerm::union(
                    scan(&db, store, "e1", "x", "y"),
                    scan(&db, store, "e2", "x", "y"),
                ),
            )
        };
        let poly = RelStore::load_with_layout(&db, crate::layout::LayoutKind::Polymorphic);
        let p = plan(&term(&poly), &poly).unwrap();
        match &p.op {
            PhysOp::MultiEdgeScan { labels } => assert_eq!(labels.len(), 3, "{p:?}"),
            other => panic!("expected masked multi scan, got {other:?}"),
        }
        // The default layout cannot serve a masked pass: same term stays
        // a union-all of per-label scans.
        let per = RelStore::load(&db);
        let q = plan(&term(&per), &per).unwrap();
        assert!(!q.contains_op(&|op| matches!(op, PhysOp::MultiEdgeScan { .. })));
        assert!(q.contains_op(&|op| matches!(op, PhysOp::Union { .. })));
        // Both plans compute the same rows.
        let a = crate::exec::execute_plan(&p, &poly, &mut crate::exec::ExecContext::new()).unwrap();
        let b = crate::exec::execute_plan(&q, &per, &mut crate::exec::ExecContext::new()).unwrap();
        assert_eq!(a, b);
        // And the masked pass is the measurably cheaper plan.
        assert!(p.est.cost < q.est.cost, "{} vs {}", p.est.cost, q.est.cost);
    }

    #[test]
    fn disjoint_label_union_keeps_union_all_even_on_polymorphic() {
        // fig2's labels barely overlap: scanning the whole 9-row global
        // table to emit a 3-row union loses to two small scans, so the
        // cost race keeps the union-all.
        let db = fig2_yago_database();
        let poly = RelStore::load_with_layout(&db, crate::layout::LayoutKind::Polymorphic);
        let t = RaTerm::union(
            scan(&db, &poly, "owns", "x", "y"),
            scan(&db, &poly, "isMarriedTo", "x", "y"),
        );
        let p = plan(&t, &poly).unwrap();
        assert!(
            !p.contains_op(&|op| matches!(op, PhysOp::MultiEdgeScan { .. })),
            "{p:?}"
        );
    }

    #[test]
    fn label_filtered_scan_lowers_to_denorm_slice() {
        let db = fig2_yago_database();
        let city = db.node_label_id("CITY").unwrap();
        let term = |store: &RelStore| {
            RaTerm::semijoin(
                scan(&db, store, "isLocatedIn", "x", "y"),
                RaTerm::NodeScan {
                    labels: vec![city],
                    col: store.symbols.col("x"),
                },
            )
        };
        let den = RelStore::load_with_layout(&db, crate::layout::LayoutKind::Denormalized);
        let p = plan(&term(&den), &den).unwrap();
        match &p.op {
            PhysOp::DenormEdgeScan {
                src_label,
                tgt_label,
                ..
            } => {
                assert_eq!(*src_label, Some(city));
                assert_eq!(*tgt_label, None);
            }
            other => panic!("expected denorm scan, got {other:?}"),
        }
        // The default layout keeps the fused filtered scan.
        let per = RelStore::load(&db);
        let q = plan(&term(&per), &per).unwrap();
        assert!(
            q.contains_op(&|op| matches!(op, PhysOp::FilteredEdgeScan { .. })),
            "{q:?}"
        );
        // Same rows, and the precomputed slice plans strictly cheaper.
        let a = crate::exec::execute_plan(&p, &den, &mut crate::exec::ExecContext::new()).unwrap();
        let b = crate::exec::execute_plan(&q, &per, &mut crate::exec::ExecContext::new()).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2, "two isLocatedIn edges start from a CITY");
        assert!(p.est.cost < q.est.cost, "{} vs {}", p.est.cost, q.est.cost);
    }

    #[test]
    fn double_filtered_scan_lowers_to_triple_slice() {
        let db = fig2_yago_database();
        let city = db.node_label_id("CITY").unwrap();
        let region = db.node_label_id("REGION").unwrap();
        let den = RelStore::load_with_layout(&db, crate::layout::LayoutKind::Denormalized);
        let s = &den.symbols;
        // ((isLocatedIn ⋉ CITY on x) ⋉ REGION on y): both endpoint
        // filters collapse into one slice scan.
        let t = RaTerm::semijoin(
            RaTerm::semijoin(
                scan(&db, &den, "isLocatedIn", "x", "y"),
                RaTerm::NodeScan {
                    labels: vec![city],
                    col: s.col("x"),
                },
            ),
            RaTerm::NodeScan {
                labels: vec![region],
                col: s.col("y"),
            },
        );
        let p = plan(&t, &den).unwrap();
        match &p.op {
            PhysOp::DenormEdgeScan {
                src_label,
                tgt_label,
                ..
            } => {
                assert_eq!(*src_label, Some(city));
                assert_eq!(*tgt_label, Some(region));
            }
            other => panic!("expected denorm scan, got {other:?}"),
        }
        let out =
            crate::exec::execute_plan(&p, &den, &mut crate::exec::ExecContext::new()).unwrap();
        assert_eq!(out.len(), 2, "Fig. 2 has two CITY→REGION edges");
    }
}
