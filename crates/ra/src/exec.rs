//! Bottom-up evaluation of RA terms with semi-naive fixpoints.

use std::time::Instant;

use sgq_common::{FxHashMap, RecVarId, Result, SgqError};

use crate::table::Relation;
use crate::term::RaTerm;

/// Execution context: the fixpoint environment, a cooperative deadline and
/// work counters.
#[derive(Debug, Default)]
pub struct ExecContext {
    /// Fixpoint environment, keyed by interned recursion variable.
    env: FxHashMap<RecVarId, Relation>,
    /// Cooperative deadline (the paper's 30-minute protocol, scaled).
    pub deadline: Option<Instant>,
    /// Reported timeout budget in milliseconds.
    pub limit_ms: u64,
    /// Total rows materialised by all operators (each materialised row is
    /// counted exactly once).
    pub rows_materialized: usize,
    /// Fixpoint iterations run.
    pub fixpoint_rounds: usize,
    /// Abort once this many rows have been materialised (0 = unlimited).
    pub max_rows: usize,
}

impl ExecContext {
    /// A context with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context aborting with [`SgqError::Timeout`] after `limit_ms`.
    pub fn with_timeout(limit_ms: u64) -> Self {
        ExecContext {
            deadline: Some(Instant::now() + std::time::Duration::from_millis(limit_ms)),
            limit_ms,
            ..Default::default()
        }
    }

    fn check(&self) -> Result<()> {
        if self.max_rows > 0 && self.rows_materialized > self.max_rows {
            return Err(SgqError::Execution(format!(
                "row budget exhausted ({} rows)",
                self.rows_materialized
            )));
        }
        match self.deadline {
            Some(d) if Instant::now() > d => Err(SgqError::Timeout {
                limit_ms: self.limit_ms,
            }),
            _ => Ok(()),
        }
    }

    fn record(&mut self, rel: &Relation) {
        self.rows_materialized += rel.len();
    }
}

/// Evaluates `term` against `store`.
///
/// Joins and semi-joins poll the deadline periodically *inside* their
/// probe loops, so a timeout fires mid-operator instead of only between
/// operators.
pub fn execute(
    term: &RaTerm,
    store: &crate::storage::RelStore,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    ctx.check()?;
    let out = match term {
        RaTerm::EdgeScan { label, src, tgt } => {
            store.edge_table(*label).with_cols(vec![*src, *tgt])
        }
        RaTerm::NodeScan { labels, col } => {
            let mut acc: Option<Relation> = None;
            for &l in labels {
                let t = store.node_table(l).with_cols(vec![*col]);
                acc = Some(match acc {
                    None => t,
                    Some(a) => a.union(&t),
                });
            }
            acc.unwrap_or_else(|| Relation::empty(vec![*col]))
        }
        RaTerm::Join(a, b) => {
            let left = execute(a, store, ctx)?;
            let right = execute(b, store, ctx)?;
            left.join_checked(&right, &mut || ctx.check())?
        }
        RaTerm::Semijoin(a, b) => {
            let left = execute(a, store, ctx)?;
            let right = execute(b, store, ctx)?;
            left.semijoin_checked(&right, &mut || ctx.check())?
        }
        RaTerm::Union(a, b) => {
            let left = execute(a, store, ctx)?;
            let right = execute(b, store, ctx)?;
            left.union(&right)
        }
        RaTerm::Project { input, cols } => execute(input, store, ctx)?.project(cols),
        RaTerm::Select { input, a, b } => {
            let rel = execute(input, store, ctx)?;
            let ia = rel
                .col_index(*a)
                .ok_or_else(|| SgqError::Execution(format!("unknown column {a}")))?;
            let ib = rel
                .col_index(*b)
                .ok_or_else(|| SgqError::Execution(format!("unknown column {b}")))?;
            rel.select_eq_at(ia, ib)
        }
        RaTerm::Rename { input, from, to } => execute(input, store, ctx)?.rename(*from, *to),
        RaTerm::Fixpoint {
            var,
            base,
            step,
            stable: _,
        } => {
            // Semi-naive: step is linear in the recursion variable, so each
            // round only extends from the newly discovered delta.
            let base_rel = execute(base, store, ctx)?;
            let cols = base_rel.cols().to_vec();
            let mut acc = base_rel.clone();
            let mut delta = base_rel;
            while !delta.is_empty() {
                ctx.check()?;
                ctx.fixpoint_rounds += 1;
                ctx.env.insert(*var, delta);
                let stepped = execute(step, store, ctx)?;
                ctx.env.remove(var);
                // Align schema positionally (projections inside the step
                // are expected to produce the fixpoint's columns).
                let stepped = if stepped.cols() == cols.as_slice() {
                    stepped
                } else {
                    stepped.with_cols(cols.clone())
                };
                let fresh = stepped.difference(&acc);
                ctx.record(&fresh);
                acc = acc.union(&fresh);
                delta = fresh;
            }
            // The accumulated rows were already recorded delta by delta —
            // returning without the generic `record` below keeps every
            // materialised row counted exactly once.
            return Ok(acc);
        }
        RaTerm::RecRef { var, cols } => {
            let rel = ctx
                .env
                .get(var)
                .ok_or_else(|| SgqError::Execution(format!("unbound recursion variable {var}")))?;
            rel.with_cols(cols.clone())
        }
    };
    ctx.record(&out);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn store() -> (sgq_graph::GraphDatabase, RelStore) {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        (db, store)
    }

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    #[test]
    fn edge_scan() {
        let (db, store) = store();
        let mut ctx = ExecContext::new();
        let r = execute(&scan(&db, &store, "owns", "x", "y"), &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[1, 0]);
    }

    #[test]
    fn join_composes_paths() {
        // owns(x,y) ⋈ isLocatedIn(y,z): John's property is in Montbonnot
        let (db, store) = store();
        let (x, z) = (store.symbols.col("x"), store.symbols.col("z"));
        let t = RaTerm::project(
            RaTerm::join(
                scan(&db, &store, "owns", "x", "y"),
                scan(&db, &store, "isLocatedIn", "y", "z"),
            ),
            vec![x, z],
        );
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[1, 5]);
    }

    #[test]
    fn fixpoint_transitive_closure() {
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        // must match the reference semantics of isLocatedIn+
        let expect = sgq_algebra::eval::eval_path(
            &db,
            &sgq_algebra::parser::parse_path("isLocatedIn+", &db).unwrap(),
        );
        let got: Vec<(u32, u32)> = r.rows().map(|row| (row[0], row[1])).collect();
        let want: Vec<(u32, u32)> = expect.iter().map(|&(s, t)| (s.raw(), t.raw())).collect();
        assert_eq!(got, want);
        assert!(ctx.fixpoint_rounds >= 2);
    }

    #[test]
    fn fixpoint_on_cycle_terminates() {
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isMarriedTo", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 4); // {1,2}² as in the reference evaluator
    }

    #[test]
    fn fixpoint_rows_are_counted_once() {
        // Regression test for the rows_materialized double count: the
        // accumulated fixpoint result used to be recorded delta by delta
        // *and* again in full at the end.
        //
        // `owns` has a single edge (n2 → n1) that composes with nothing,
        // so the closure equals its base and one semi-naive round runs.
        // Materialisations: base scan (1 row) + per-round RecRef (1) +
        // inner scan (1) + rename (1) + empty join/project/delta (0) = 4.
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "owns", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(ctx.rows_materialized, 4);
    }

    #[test]
    fn node_scan_union() {
        let (db, store) = store();
        let t = RaTerm::NodeScan {
            labels: vec![
                db.node_label_id("CITY").unwrap(),
                db.node_label_id("REGION").unwrap(),
            ],
            col: store.symbols.col("n"),
        };
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 3); // two cities + one region
    }

    #[test]
    fn semijoin_with_node_table() {
        // isLocatedIn(x,y) ⋉ REGION(x): only region-sourced edges remain
        let (db, store) = store();
        let t = RaTerm::semijoin(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("x"),
            },
        );
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[4, 6]); // Grenoble -> France
    }

    #[test]
    fn timeout_aborts() {
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::with_timeout(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = execute(&f, &store, &mut ctx).unwrap_err();
        assert!(err.is_timeout());
    }

    #[test]
    fn unbound_recref_errors() {
        let (_, store) = store();
        let s = &store.symbols;
        let t = RaTerm::RecRef {
            var: s.recvar("X"),
            cols: vec![s.col("a"), s.col("b")],
        };
        let mut ctx = ExecContext::new();
        assert!(execute(&t, &store, &mut ctx).is_err());
    }
}
