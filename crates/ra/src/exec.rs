//! Execution: an interpreter over physical plans ([`mod@crate::plan`]).
//!
//! [`execute`] keeps the original term-level entry point (lower, then
//! interpret); [`execute_plan`] runs a pre-lowered plan, which is what
//! the harness uses to plan a query once and execute it per repetition.
//!
//! The interpreter keeps the two execution-protocol invariants of the
//! old term evaluator:
//!
//! * joins, semi-joins and index builds poll the cooperative deadline
//!   every few thousand rows, so timeouts fire *mid-operator*;
//! * `rows_materialized` counts every materialised row exactly once —
//!   which now includes *not* counting what is never materialised:
//!   renames are zero-copy, fused filtered scans materialise only the
//!   surviving rows, and intermediates cached across fixpoint rounds
//!   are counted in the round that computes them, not on reuse.
//!
//! Fixpoints are evaluated semi-naively against the pre-planned step.
//! Per [`mod@crate::plan`]'s marking, every recursion-independent input is
//! computed once and cached; a hash join whose build side is static
//! caches the *built hash table* ([`JoinIndex`]), so later rounds only
//! re-scan the delta probe; hash semi-join key sets ([`SemiKeys`])
//! cache the same way. Index (semi-)joins probe the store's load-time
//! CSR adjacency lists directly — the absorbed edge table is never
//! materialised, no hash table is built in any round, and node-label
//! endpoint filters run as binary searches in the store's sorted label
//! sets.
//!
//! **Intra-query parallelism.** With [`ExecContext::dop`] above 1, the
//! probe side of hash/index (semi-)joins and the scan side of hashed
//! filtered scans are split into morsels (see [`mod@crate::parallel`])
//! once the probe clears [`ExecContext::parallel_threshold`]. Each
//! morsel runs as an owned task (Arc-cloned probe buffer, shared
//! read-only build side) and the per-morsel outputs are merged back to
//! the canonical form — order-preserving filters concatenate, re-sorting
//! joins merge-dedup per-morsel sorted runs — so a parallel run is
//! bit-identical to the serial one. Inside a fixpoint this means each
//! round's delta probe parallelises against the round-cached static
//! build sides for free. The deadline and row budget become shared
//! atomics (`Limits`): the first morsel to breach trips a cancel flag
//! every other morsel polls, bounding overshoot to about one in-flight
//! morsel per worker.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use sgq_common::{
    faultpoint, relation_bytes, ColId, FxHashMap, NodeId, QueryBudget, RecVarId, Result, SgqError,
};
use sgq_obs::{OpSpan, OpTraceBuilder, TraceClock};

use crate::parallel::{self, TaskScheduler};
use crate::plan::{plan, PhysOp, PhysPlan};
use crate::table::{normalize_flat, JoinIndex, Relation, SemiKeys, POLL_MASK};
use crate::term::RaTerm;

/// Default mid-flight re-planning trigger: a hash-join build side whose
/// actual row count exceeds its estimate by at least this factor (and
/// exceeds the already-materialised probe side) flips the build side at
/// the materialisation boundary. See [`ExecContext::replan_factor`].
pub const REPLAN_FACTOR: f64 = 64.0;

/// Execution context: the fixpoint environment, a cooperative deadline,
/// work counters, and the degree-of-parallelism knob.
#[derive(Debug)]
pub struct ExecContext {
    /// Fixpoint environment, keyed by interned recursion variable.
    env: FxHashMap<RecVarId, Relation>,
    /// Cooperative deadline (the paper's 30-minute protocol, scaled).
    pub deadline: Option<Instant>,
    /// Reported timeout budget in milliseconds.
    pub limit_ms: u64,
    /// Total rows materialised by all operators, shared with parallel
    /// morsel workers (each materialised row is counted exactly once;
    /// cached fixpoint intermediates count in the round that computes
    /// them). Read it through [`ExecContext::rows_materialized`].
    rows: Arc<AtomicUsize>,
    /// Fixpoint iterations run.
    pub fixpoint_rounds: usize,
    /// Abort once this many rows have been materialised (0 = unlimited).
    pub max_rows: usize,
    /// Hash tables and semi-join key sets built.
    pub hash_builds: usize,
    /// Fixpoint-cache hits (a static input or build side reused).
    pub cache_hits: usize,
    /// Disables static-input caching across fixpoint rounds (every round
    /// re-evaluates the full step, like the old term interpreter).
    pub no_fixpoint_cache: bool,
    /// Degree of parallelism: how many morsels of one operator may run
    /// concurrently. 1 (the default) keeps execution fully serial with
    /// zero scheduler overhead.
    pub dop: usize,
    /// Morsel size cap in probe rows (default
    /// [`parallel::MORSEL_ROWS`]). Tests shrink it to force multi-morsel
    /// execution on small inputs.
    pub morsel_rows: usize,
    /// Probe sides below this many rows stay serial even at `dop > 1`
    /// (default [`crate::cost::PARALLEL_ROW_THRESHOLD`]).
    pub parallel_threshold: usize,
    /// Morsel tasks executed by parallel sections.
    pub morsels_executed: usize,
    /// Base-table scan operators evaluated (edge, node, filtered, masked
    /// multi-label and denormalised scans alike) — the service buckets
    /// this per storage layout (`scans_by_layout`).
    pub scans: usize,
    /// Mid-flight re-planning trigger: when a hash-join build side
    /// materialises at least `replan_factor` × its estimated rows *and*
    /// more rows than the already-materialised probe side, the executor
    /// flips the build side — both intermediates are spliced in as base
    /// relations of the corrected join. `0.0` disables re-planning.
    pub replan_factor: f64,
    /// Mid-flight re-plans performed (build sides flipped).
    pub replans: usize,
    /// The scheduler parallel sections run on: injected by the service
    /// (its shared, bounded scheduler) or lazily the process-global one.
    scheduler: Option<Arc<TaskScheduler>>,
    /// Trips when any morsel breaches the deadline or row budget, so
    /// sibling morsels stop at their next poll.
    cancelled: Arc<AtomicBool>,
    /// Memory budget charged at every materialisation point (rows ×
    /// arity × 4 bytes), shared with morsel workers. `None` (the
    /// default) skips memory accounting entirely.
    pub budget: Option<Arc<QueryBudget>>,
}

impl Default for ExecContext {
    fn default() -> Self {
        ExecContext {
            env: FxHashMap::default(),
            deadline: None,
            limit_ms: 0,
            rows: Arc::new(AtomicUsize::new(0)),
            fixpoint_rounds: 0,
            max_rows: 0,
            hash_builds: 0,
            cache_hits: 0,
            no_fixpoint_cache: false,
            dop: 1,
            morsel_rows: parallel::MORSEL_ROWS,
            parallel_threshold: crate::cost::PARALLEL_ROW_THRESHOLD,
            morsels_executed: 0,
            scans: 0,
            replan_factor: REPLAN_FACTOR,
            replans: 0,
            scheduler: None,
            cancelled: Arc::new(AtomicBool::new(false)),
            budget: None,
        }
    }
}

impl ExecContext {
    /// A context with no deadline.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context aborting with [`SgqError::Timeout`] after `limit_ms`.
    pub fn with_timeout(limit_ms: u64) -> Self {
        ExecContext {
            deadline: Some(Instant::now() + std::time::Duration::from_millis(limit_ms)),
            limit_ms,
            ..Default::default()
        }
    }

    /// Total rows materialised so far (shared with any morsel workers).
    pub fn rows_materialized(&self) -> usize {
        self.rows.load(Ordering::Relaxed)
    }

    /// Injects the scheduler parallel sections run on (the service lends
    /// its shared one); without this, the first parallel section falls
    /// back to the process-global scheduler.
    pub fn set_scheduler(&mut self, scheduler: Arc<TaskScheduler>) {
        self.scheduler = Some(scheduler);
    }

    fn check(&self) -> Result<()> {
        match self.deadline {
            Some(d) if Instant::now() > d => Err(SgqError::Timeout {
                limit_ms: self.limit_ms,
            }),
            _ => Ok(()),
        }
    }

    /// Accounts a materialised relation and enforces the row budget *at
    /// materialisation time*: the error fires on the batch that crosses
    /// the budget, so an oversized operator can overshoot by at most its
    /// own output (not until some later operator happens to poll — a
    /// top-level operator would never have been polled again at all).
    fn record(&mut self, rel: &Relation) -> Result<()> {
        let total = self.rows.fetch_add(rel.len(), Ordering::Relaxed) + rel.len();
        if self.max_rows > 0 && total > self.max_rows {
            return Err(SgqError::RowBudget {
                rows: total,
                budget: self.max_rows,
            });
        }
        if let Some(budget) = &self.budget {
            budget.charge(relation_bytes(rel.len(), rel.arity()))?;
        }
        Ok(())
    }

    /// The shareable view of this context's limits, handed to morsel
    /// workers.
    fn limits(&self) -> Limits {
        Limits {
            deadline: self.deadline,
            limit_ms: self.limit_ms,
            max_rows: self.max_rows,
            rows: Arc::clone(&self.rows),
            cancelled: Arc::clone(&self.cancelled),
            budget: self.budget.clone(),
        }
    }

    /// Opens a parallel section over a `probe_rows`-row probe side, or
    /// `None` when the operator should stay serial: `dop` is 1, the
    /// probe is under the cost threshold, or it fits a single morsel.
    /// The serial path never touches the scheduler at all.
    fn parallel_section(&mut self, probe_rows: usize) -> Option<ParSection> {
        if self.dop <= 1 || probe_rows < self.parallel_threshold {
            return None;
        }
        let morsel = parallel::morsel_size(probe_rows, self.dop, self.morsel_rows);
        if morsel >= probe_rows {
            return None;
        }
        let sched = match &self.scheduler {
            Some(s) => Arc::clone(s),
            None => {
                let s = parallel::global();
                self.scheduler = Some(Arc::clone(&s));
                s
            }
        };
        Some(ParSection {
            sched,
            morsel,
            dop: self.dop,
            limits: self.limits(),
        })
    }
}

/// The thread-shareable slice of [`ExecContext`]: deadline, row budget
/// and the shared counters every morsel worker polls and records into.
#[derive(Clone, Debug)]
struct Limits {
    deadline: Option<Instant>,
    limit_ms: u64,
    max_rows: usize,
    rows: Arc<AtomicUsize>,
    cancelled: Arc<AtomicBool>,
    budget: Option<Arc<QueryBudget>>,
}

impl Limits {
    /// The morsel-side cooperative check: exits fast once a sibling
    /// tripped the cancel flag, else checks the deadline (and trips the
    /// flag on breach so siblings stop too).
    fn poll(&self) -> Result<()> {
        if self.cancelled.load(Ordering::Relaxed) {
            return Err(parallel::cancelled());
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                self.cancelled.store(true, Ordering::Relaxed);
                return Err(SgqError::Timeout {
                    limit_ms: self.limit_ms,
                });
            }
        }
        Ok(())
    }

    /// Accounts one morsel's output rows against the shared row and
    /// memory budgets; a breach trips the cancel flag, so the overshoot
    /// is bounded by the morsels already in flight (about one per
    /// worker). Budget errors are *real* errors (not cancel sentinels),
    /// so [`ParSection::execute`] propagates them to the caller.
    fn record(&self, rows: usize, arity: usize) -> Result<()> {
        let total = self.rows.fetch_add(rows, Ordering::Relaxed) + rows;
        if self.max_rows > 0 && total > self.max_rows {
            self.cancelled.store(true, Ordering::Relaxed);
            return Err(SgqError::RowBudget {
                rows: total,
                budget: self.max_rows,
            });
        }
        if let Some(budget) = &self.budget {
            if let Err(e) = budget.charge(relation_bytes(rows, arity)) {
                self.cancelled.store(true, Ordering::Relaxed);
                return Err(e);
            }
        }
        Ok(())
    }
}

/// One operator's open parallel section: the scheduler to run on, the
/// chosen morsel size, and the shared limits.
struct ParSection {
    sched: Arc<TaskScheduler>,
    morsel: usize,
    dop: usize,
    limits: Limits,
}

impl ParSection {
    /// Runs the morsel tasks and collects their output runs in morsel
    /// order. Cancellation sentinels are dropped in favour of the first
    /// real error (the one from the morsel that actually breached).
    fn execute<F>(&self, tasks: Vec<F>) -> Result<Vec<Vec<u32>>>
    where
        F: FnOnce() -> Result<Vec<u32>> + Send + 'static,
    {
        let results = self.sched.run(self.dop, tasks);
        let mut runs = Vec::with_capacity(results.len());
        let mut cancel_err = None;
        for r in results {
            match r {
                Ok(run) => runs.push(run),
                Err(e) if parallel::is_cancelled(&e) => {
                    cancel_err.get_or_insert(e);
                }
                Err(e) => return Err(e),
            }
        }
        if let Some(e) = cancel_err {
            return Err(e);
        }
        Ok(runs)
    }
}

/// Evaluates `term` against `store`: lowers it to a physical plan
/// ([`plan`]) and interprets the plan.
pub fn execute(
    term: &RaTerm,
    store: &crate::storage::RelStore,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    let p = plan(term, store)?;
    execute_plan(&p, store, ctx)
}

/// Interprets a pre-lowered physical plan.
pub fn execute_plan(
    p: &PhysPlan,
    store: &crate::storage::RelStore,
    ctx: &mut ExecContext,
) -> Result<Relation> {
    Interp {
        store,
        ctx,
        ops: None,
    }
    .eval(p, None)
}

/// Per-node execution trace, indexed by [`PhysPlan::id`] — the "actual"
/// columns of `EXPLAIN ANALYZE` plus the operator spans the same
/// recording produced. `actuals[id]` always equals the sum of
/// `spans[..].rows` over that node's spans (spans past
/// [`sgq_obs::OP_SPAN_CAP`] stop being stored but keep counting), so the
/// explain path and the tracer can never disagree.
#[derive(Debug, Clone)]
pub struct ExecTrace {
    /// Total rows each operator produced (summed over fixpoint rounds).
    pub actuals: Vec<usize>,
    /// Whether each operator was re-planned mid-flight (its hash-join
    /// build side flipped after the estimate proved wrong).
    pub replanned: Vec<bool>,
    /// One span per operator evaluation: kind, est vs actual rows,
    /// inclusive and self time (a fixpoint's `RecRef` gets one span per
    /// round, carrying that round's delta).
    pub spans: Vec<OpSpan>,
}

/// [`execute_plan`] with per-node tracing: returns the result and an
/// [`ExecTrace`] of per-operator spans, actual rows and re-plan flags.
pub fn execute_plan_traced(
    p: &PhysPlan,
    store: &crate::storage::RelStore,
    ctx: &mut ExecContext,
) -> Result<(Relation, ExecTrace)> {
    execute_plan_traced_at(p, store, ctx, TraceClock::new())
}

/// [`execute_plan_traced`] with an explicit trace clock, so the service
/// can stamp operator spans on the same timeline as its phase spans.
pub fn execute_plan_traced_at(
    p: &PhysPlan,
    store: &crate::storage::RelStore,
    ctx: &mut ExecContext,
    clock: TraceClock,
) -> Result<(Relation, ExecTrace)> {
    let mut interp = Interp {
        store,
        ctx,
        ops: Some(OpTraceBuilder::new(p.node_count(), clock)),
    };
    let rel = interp.eval(p, None)?;
    let (actuals, replanned, spans) = interp.ops.take().expect("tracing was enabled").finish();
    Ok((
        rel,
        ExecTrace {
            actuals,
            replanned,
            spans,
        },
    ))
}

/// Intermediates cached across the rounds of one fixpoint, keyed by the
/// plan-node id that produced them.
enum Cached {
    /// A static subtree's full result.
    Rel(Relation),
    /// A static hash-join build side: the relation and its hash table
    /// (`Arc`-shared so parallel morsel workers probe it read-only).
    Build {
        rel: Relation,
        index: Arc<JoinIndex>,
    },
    /// A static semi-join filter's key set, shared the same way.
    Keys(Arc<SemiKeys>),
}

type StepCache = FxHashMap<u32, Cached>;

struct Interp<'a> {
    store: &'a crate::storage::RelStore,
    ctx: &'a mut ExecContext,
    /// Per-operator span recorder; `None` on the untraced path, where
    /// the only cost left is this `Option` check per operator.
    ops: Option<OpTraceBuilder>,
}

impl Interp<'_> {
    /// Whether `node` carries one of `labels` — binary search in the
    /// store's sorted node-label sets. An empty list (an impossible
    /// filter intersection) matches nothing.
    fn in_label_sets(&self, labels: &[sgq_common::NodeLabelId], node: u32) -> bool {
        labels
            .iter()
            .any(|&l| self.store.node_set(l).binary_search(&node).is_ok())
    }

    /// Evaluates one operator, recording a span (timing + rows) around
    /// it when tracing. Recording is two `Vec` pushes and an `Instant`
    /// read in the single-threaded interpreter — no locks or atomics.
    fn run_op(&mut self, p: &PhysPlan, cache: Option<&mut StepCache>) -> Result<Relation> {
        let Some(start) = self.ops.as_mut().map(OpTraceBuilder::enter) else {
            return self.eval_op(p, cache);
        };
        let result = self.eval_op(p, cache);
        let ops = self.ops.as_mut().expect("tracing was enabled");
        match &result {
            Ok(out) => ops.exit(p.id, p.op.kind(), p.est.rows, out.len(), start),
            Err(_) => ops.exit_err(start),
        }
        result
    }

    /// Feeds a static node's observed cardinality into the store's
    /// feedback memo — at the point the relation is materialised anyway,
    /// so feedback costs no extra pass. Dynamic nodes (those under a
    /// fixpoint's recursion variable) see per-round deltas, not their
    /// subtree's true cardinality, and are never recorded.
    fn observe(&mut self, p: &PhysPlan, rel: &Relation) {
        if p.is_static() {
            self.store.feedback.observe(p.fp, rel.len());
        }
    }

    /// Counts a mid-flight re-plan at node `p` (and flags it for
    /// `EXPLAIN ANALYZE` when tracing).
    fn mark_replanned(&mut self, p: &PhysPlan) {
        self.ctx.replans += 1;
        if let Some(ops) = self.ops.as_mut() {
            ops.mark_replanned(p.id);
        }
    }

    fn eval(&mut self, p: &PhysPlan, mut cache: Option<&mut StepCache>) -> Result<Relation> {
        self.ctx.check()?;
        // A maximal static subtree inside a fixpoint step is computed in
        // the first round and reused afterwards. (Dynamic hash joins and
        // semi-joins additionally cache their static build sides below.)
        if p.is_static() {
            if let Some(c) = cache.as_deref_mut() {
                if let Some(Cached::Rel(r)) = c.get(&p.id) {
                    self.ctx.cache_hits += 1;
                    // Not re-traced: "actual" rows count the round that
                    // computed the result, matching the Build/Keys cache
                    // paths. The clone hands the consumer an owned
                    // relation (operators like the zero-copy rename take
                    // ownership); hash-join build sides avoid this copy
                    // entirely by probing the cached index by reference.
                    return Ok(r.clone());
                }
                let out = self.run_op(p, None)?;
                c.insert(p.id, Cached::Rel(out.clone()));
                self.observe(p, &out);
                return Ok(out);
            }
        }
        let out = self.run_op(p, cache)?;
        self.observe(p, &out);
        Ok(out)
    }

    fn eval_op(&mut self, p: &PhysPlan, mut cache: Option<&mut StepCache>) -> Result<Relation> {
        let out = match &p.op {
            PhysOp::EdgeScan { label } => {
                self.ctx.scans += 1;
                faultpoint!("exec.scan");
                self.store.edge_table(*label).into_cols(p.cols.clone())
            }
            PhysOp::MultiEdgeScan { labels } => {
                self.ctx.scans += 1;
                faultpoint!("exec.scan");
                // One masked pass over the polymorphic table; a layout
                // without it degrades to the union-all the operator
                // replaced (same rows by construction).
                let rel = match self.store.multi_edge_table(labels) {
                    Some(rel) => rel,
                    None => Relation::union_many(
                        labels.iter().map(|&l| self.store.edge_table(l)).collect(),
                    ),
                };
                rel.into_cols(p.cols.clone())
            }
            PhysOp::DenormEdgeScan {
                label,
                src_label,
                tgt_label,
            } => {
                self.ctx.scans += 1;
                faultpoint!("exec.scan");
                // The precomputed endpoint-label slice; a layout without
                // it filters the base table through the sorted node sets
                // (same rows, just not free).
                let rel = match self
                    .store
                    .filtered_edge_table(*label, *src_label, *tgt_label)
                {
                    Some(rel) => rel,
                    None => crate::layout::filter_edges_by_sets(
                        &self.store.edge_table(*label),
                        src_label.map(|l| self.store.node_set(l)),
                        tgt_label.map(|l| self.store.node_set(l)),
                    ),
                };
                rel.into_cols(p.cols.clone())
            }
            PhysOp::NodeScan { labels } => {
                self.ctx.scans += 1;
                faultpoint!("exec.scan");
                if labels.is_empty() {
                    Relation::empty(p.cols.clone())
                } else {
                    // One normalisation pass over all label tables instead
                    // of k successive pairwise merges.
                    let tables: Vec<Relation> = labels
                        .iter()
                        .map(|&l| self.store.node_table(l).into_cols(p.cols.clone()))
                        .collect();
                    Relation::union_many(tables)
                }
            }
            PhysOp::FilteredEdgeScan {
                label,
                filter,
                key,
                merge,
            } => {
                self.ctx.scans += 1;
                faultpoint!("exec.scan");
                let edges = self.store.edge_table(*label).into_cols(p.cols.clone());
                if *merge {
                    let frel = self.eval(filter, cache.as_deref_mut())?;
                    let ctx = &mut *self.ctx;
                    edges.merge_semijoin_checked(&frel, key.len(), &mut || ctx.check())?
                } else {
                    let edge_key_pos = positions(&p.cols, key);
                    let filter_key_pos = positions(&filter.cols, key);
                    let (data, recorded) = self.hash_semi_filter(
                        p.id,
                        &edges,
                        &edge_key_pos,
                        filter,
                        &filter_key_pos,
                        cache,
                    )?;
                    let out = Relation::from_flat_sorted(p.cols.clone(), data);
                    if recorded {
                        // A parallel scan already recorded per morsel.
                        return Ok(out);
                    }
                    out
                }
            }
            PhysOp::MergeJoin { left, right, key } => {
                let l = self.eval(left, cache.as_deref_mut())?;
                let r = self.eval(right, cache)?;
                let ctx = &mut *self.ctx;
                l.merge_join_checked(&r, key.len(), &mut || ctx.check())?
            }
            PhysOp::HashJoin {
                left,
                right,
                key,
                build_left,
            } => {
                let (build_plan, probe_plan): (&PhysPlan, &PhysPlan) = if *build_left {
                    (left, right)
                } else {
                    (right, left)
                };
                let probe_rel = self.eval(probe_plan, cache.as_deref_mut())?;
                let probe_key_pos = positions(&probe_plan.cols, key);
                let build_key_pos = positions(&build_plan.cols, key);
                let right_extra_pos: Vec<usize> = right
                    .cols
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !left.cols.contains(c))
                    .map(|(i, _)| i)
                    .collect();
                // A static build side inside a fixpoint: build the hash
                // table once, probe it with every round's delta.
                if build_plan.is_static() {
                    if let Some(c) = cache.as_deref_mut() {
                        match c.entry(p.id) {
                            std::collections::hash_map::Entry::Occupied(_) => {
                                self.ctx.cache_hits += 1;
                            }
                            std::collections::hash_map::Entry::Vacant(slot) => {
                                let rel = self.eval(build_plan, None)?;
                                faultpoint!("exec.hash_build");
                                let ctx = &mut *self.ctx;
                                let index =
                                    Arc::new(JoinIndex::build(&rel, &build_key_pos, &mut || {
                                        ctx.check()
                                    })?);
                                self.ctx.hash_builds += 1;
                                slot.insert(Cached::Build { rel, index });
                            }
                        }
                        let Some(Cached::Build { rel, index }) = c.get(&p.id) else {
                            unreachable!("just inserted")
                        };
                        return self.probe_join(
                            p,
                            left,
                            rel,
                            index,
                            &probe_rel,
                            *build_left,
                            &probe_key_pos,
                            &right_extra_pos,
                        );
                    }
                }
                let rel = self.eval(build_plan, cache)?;
                // Mid-flight re-planning at the materialisation boundary:
                // both join inputs are relations now, so if the planned
                // build side blew past its estimate by the replan factor
                // and is larger than the probe actually is, hash the
                // smaller side instead — the materialised intermediates
                // are spliced into the corrected join as base relations.
                // (The cached static-build path above is exempt: its hash
                // table amortises over every fixpoint round.)
                let flip = self.ctx.replan_factor > 0.0
                    && rel.len() as f64 >= build_plan.est.rows.max(1.0) * self.ctx.replan_factor
                    && probe_rel.len() < rel.len();
                let (build_rel, build_pos, probe_rel, probe_pos, build_left) = if flip {
                    self.mark_replanned(p);
                    (probe_rel, probe_key_pos, rel, build_key_pos, !*build_left)
                } else {
                    (rel, build_key_pos, probe_rel, probe_key_pos, *build_left)
                };
                faultpoint!("exec.hash_build");
                let ctx = &mut *self.ctx;
                let index = Arc::new(JoinIndex::build(&build_rel, &build_pos, &mut || {
                    ctx.check()
                })?);
                self.ctx.hash_builds += 1;
                return self.probe_join(
                    p,
                    left,
                    &build_rel,
                    &index,
                    &probe_rel,
                    build_left,
                    &probe_pos,
                    &right_extra_pos,
                );
            }
            PhysOp::IndexJoin {
                probe,
                label,
                key,
                out,
                forward,
                src_labels,
                tgt_labels,
            } => {
                let prel = self.eval(probe, cache)?;
                faultpoint!("exec.csr_probe");
                let csr = if *forward {
                    self.store.forward_csr(*label)
                } else {
                    self.store.reverse_csr(*label)
                };
                let key_pos = prel
                    .col_index(*key)
                    .expect("index-join key is a probe column (ensured at plan time)");
                // Where each output column comes from: a probe position,
                // or the expanded neighbour (`None`).
                let layout: Vec<Option<usize>> = p
                    .cols
                    .iter()
                    .map(|c| {
                        if c == out {
                            None
                        } else {
                            Some(prel.col_index(*c).expect("output column from probe"))
                        }
                    })
                    .collect();
                // Probe rows ascend and CSR neighbour lists are strictly
                // sorted (set semantics), so a probe-leading layout emits
                // in canonical order and skips the re-sort.
                let probe_leading = p.cols.len() == prel.arity() + 1
                    && p.cols[..prel.arity()] == *prel.cols()
                    && p.cols.last() == Some(out);
                let (key_filter, emit_filter) = if *forward {
                    (src_labels.as_deref(), tgt_labels.as_deref())
                } else {
                    (tgt_labels.as_deref(), src_labels.as_deref())
                };
                if csr.is_some() {
                    if let Some(section) = self.ctx.parallel_section(prel.len()) {
                        let csr = if *forward {
                            self.store.forward_csr_shared(*label)
                        } else {
                            self.store.reverse_csr_shared(*label)
                        }
                        .expect("csr checked in range");
                        // Label filters travel as shared node-table
                        // handles (their flat data is the sorted id set).
                        let key_sets = self.label_set_tables(key_filter);
                        let emit_sets = self.label_set_tables(emit_filter);
                        let arity = p.cols.len();
                        let tasks: Vec<_> = parallel::morsel_ranges(prel.len(), section.morsel)
                            .into_iter()
                            .map(|(start, end)| {
                                let probe = prel.clone();
                                let csr = Arc::clone(&csr);
                                let key_sets = key_sets.clone();
                                let emit_sets = emit_sets.clone();
                                let layout = layout.clone();
                                let limits = section.limits.clone();
                                move || -> Result<Vec<u32>> {
                                    // Poll up front: a morsel queued behind a
                                    // cancellation exits before doing any work,
                                    // bounding budget overshoot to the morsels
                                    // already in flight.
                                    limits.poll()?;
                                    let mut data: Vec<u32> = Vec::new();
                                    let mut steps = 0usize;
                                    for prow in probe.rows_range(start, end) {
                                        steps += 1;
                                        if steps & POLL_MASK == 0 {
                                            limits.poll()?;
                                        }
                                        let v = prow[key_pos];
                                        if let Some(sets) = &key_sets {
                                            if !tables_contain(sets, v) {
                                                continue;
                                            }
                                        }
                                        for &n in csr.neighbors(NodeId::new(v)) {
                                            steps += 1;
                                            if steps & POLL_MASK == 0 {
                                                limits.poll()?;
                                            }
                                            let nv = n.raw();
                                            if let Some(sets) = &emit_sets {
                                                if !tables_contain(sets, nv) {
                                                    continue;
                                                }
                                            }
                                            for slot in &layout {
                                                data.push(match slot {
                                                    Some(i) => prow[*i],
                                                    None => nv,
                                                });
                                            }
                                        }
                                    }
                                    if !probe_leading {
                                        normalize_flat(arity, &mut data);
                                    }
                                    limits.record(data.len() / arity, arity)?;
                                    Ok(data)
                                }
                            })
                            .collect();
                        let runs = section.execute(tasks)?;
                        self.ctx.morsels_executed += runs.len();
                        // Probe-leading morsels emit disjoint ascending
                        // runs, so concatenation is already canonical;
                        // otherwise merge-dedup the per-morsel sorted runs.
                        return Ok(if probe_leading {
                            Relation::from_flat_sorted(p.cols.clone(), runs.concat())
                        } else {
                            Relation::merge_sorted_runs(p.cols.clone(), runs)
                        });
                    }
                }
                let mut data: Vec<u32> = Vec::new();
                let mut steps = 0usize;
                if let Some(csr) = csr {
                    for prow in prel.rows() {
                        steps += 1;
                        if steps & POLL_MASK == 0 {
                            self.ctx.check()?;
                        }
                        let v = prow[key_pos];
                        if let Some(ls) = key_filter {
                            if !self.in_label_sets(ls, v) {
                                continue;
                            }
                        }
                        for &n in csr.neighbors(NodeId::new(v)) {
                            steps += 1;
                            if steps & POLL_MASK == 0 {
                                self.ctx.check()?;
                            }
                            let nv = n.raw();
                            if let Some(ls) = emit_filter {
                                if !self.in_label_sets(ls, nv) {
                                    continue;
                                }
                            }
                            for slot in &layout {
                                data.push(match slot {
                                    Some(i) => prow[*i],
                                    None => nv,
                                });
                            }
                        }
                    }
                }
                if probe_leading {
                    Relation::from_flat_sorted(p.cols.clone(), data)
                } else {
                    Relation::from_flat(p.cols.clone(), data)
                }
            }
            PhysOp::IndexSemiJoin {
                left,
                label,
                key,
                forward,
                src_labels,
                tgt_labels,
            } => {
                let lrel = self.eval(left, cache)?;
                faultpoint!("exec.csr_probe");
                let csr = if *forward {
                    self.store.forward_csr(*label)
                } else {
                    self.store.reverse_csr(*label)
                };
                let key_pos = lrel
                    .col_index(*key)
                    .expect("index-semi-join key is a left column (ensured at plan time)");
                let (key_filter, far_filter) = if *forward {
                    (src_labels.as_deref(), tgt_labels.as_deref())
                } else {
                    (tgt_labels.as_deref(), src_labels.as_deref())
                };
                if csr.is_some() {
                    if let Some(section) = self.ctx.parallel_section(lrel.len()) {
                        let csr = if *forward {
                            self.store.forward_csr_shared(*label)
                        } else {
                            self.store.reverse_csr_shared(*label)
                        }
                        .expect("csr checked in range");
                        let key_sets = self.label_set_tables(key_filter);
                        let far_sets = self.label_set_tables(far_filter);
                        let arity = p.cols.len();
                        let tasks: Vec<_> = parallel::morsel_ranges(lrel.len(), section.morsel)
                            .into_iter()
                            .map(|(start, end)| {
                                let left = lrel.clone();
                                let csr = Arc::clone(&csr);
                                let key_sets = key_sets.clone();
                                let far_sets = far_sets.clone();
                                let limits = section.limits.clone();
                                move || -> Result<Vec<u32>> {
                                    limits.poll()?;
                                    let mut data: Vec<u32> = Vec::new();
                                    for (i, row) in left.rows_range(start, end).enumerate() {
                                        if i & POLL_MASK == 0 {
                                            limits.poll()?;
                                        }
                                        let v = row[key_pos];
                                        if let Some(sets) = &key_sets {
                                            if !tables_contain(sets, v) {
                                                continue;
                                            }
                                        }
                                        let neigh = csr.neighbors(NodeId::new(v));
                                        let hit = match &far_sets {
                                            None => !neigh.is_empty(),
                                            Some(sets) => {
                                                neigh.iter().any(|&n| tables_contain(sets, n.raw()))
                                            }
                                        };
                                        if hit {
                                            data.extend_from_slice(row);
                                        }
                                    }
                                    limits.record(data.len() / arity, arity)?;
                                    Ok(data)
                                }
                            })
                            .collect();
                        let runs = section.execute(tasks)?;
                        self.ctx.morsels_executed += runs.len();
                        // Filtering preserves canonical order; morsels
                        // cover disjoint ascending ranges, so the runs
                        // concatenate straight into canonical form.
                        return Ok(Relation::from_flat_sorted(p.cols.clone(), runs.concat()));
                    }
                }
                let mut data: Vec<u32> = Vec::new();
                if let Some(csr) = csr {
                    for (i, row) in lrel.rows().enumerate() {
                        if i & POLL_MASK == 0 {
                            self.ctx.check()?;
                        }
                        let v = row[key_pos];
                        if let Some(ls) = key_filter {
                            if !self.in_label_sets(ls, v) {
                                continue;
                            }
                        }
                        let neigh = csr.neighbors(NodeId::new(v));
                        let hit = match far_filter {
                            None => !neigh.is_empty(),
                            Some(ls) => neigh.iter().any(|&n| self.in_label_sets(ls, n.raw())),
                        };
                        if hit {
                            data.extend_from_slice(row);
                        }
                    }
                }
                // Filtering preserves canonical order.
                Relation::from_flat_sorted(p.cols.clone(), data)
            }
            PhysOp::MergeSemiJoin { left, right, key } => {
                let l = self.eval(left, cache.as_deref_mut())?;
                let r = self.eval(right, cache)?;
                let ctx = &mut *self.ctx;
                l.merge_semijoin_checked(&r, key.len(), &mut || ctx.check())?
            }
            PhysOp::HashSemiJoin { left, right, key } => {
                let l = self.eval(left, cache.as_deref_mut())?;
                let left_key_pos = positions(&left.cols, key);
                let filter_key_pos = positions(&right.cols, key);
                let (data, recorded) =
                    self.hash_semi_filter(p.id, &l, &left_key_pos, right, &filter_key_pos, cache)?;
                let out = Relation::from_flat_sorted(p.cols.clone(), data);
                if recorded {
                    // A parallel filter already recorded per morsel.
                    return Ok(out);
                }
                out
            }
            PhysOp::Union { left, right } => {
                let l = self.eval(left, cache.as_deref_mut())?;
                let r = self.eval(right, cache)?;
                l.union(&r)
            }
            PhysOp::Project { input } => self.eval(input, cache)?.project(&p.cols),
            PhysOp::Select { input, ia, ib, .. } => self.eval(input, cache)?.select_eq_at(*ia, *ib),
            PhysOp::Rename { input } => {
                // Zero-copy: positional renaming of an owned relation
                // materialises nothing, so it is not recorded.
                let rel = self.eval(input, cache)?;
                return Ok(rel.into_cols(p.cols.clone()));
            }
            PhysOp::Fixpoint { var, base, step } => {
                // Semi-naive: the step is linear in the recursion
                // variable, so each round only extends from the newly
                // discovered delta.
                let base_rel = self.eval(base, cache)?;
                let cols = base_rel.cols().to_vec();
                let mut acc = base_rel.clone();
                let mut delta = base_rel;
                let mut step_cache = StepCache::default();
                while !delta.is_empty() {
                    self.ctx.check()?;
                    faultpoint!("exec.fixpoint_round");
                    self.ctx.fixpoint_rounds += 1;
                    self.ctx.env.insert(*var, delta);
                    let round_cache = if self.ctx.no_fixpoint_cache {
                        None
                    } else {
                        Some(&mut step_cache)
                    };
                    let stepped = self.eval(step, round_cache)?;
                    self.ctx.env.remove(var);
                    // Align schema positionally (projections inside the
                    // step produce the fixpoint's columns).
                    let stepped = if stepped.cols() == cols.as_slice() {
                        stepped
                    } else {
                        stepped.into_cols(cols.clone())
                    };
                    let fresh = stepped.difference(&acc);
                    self.ctx.record(&fresh)?;
                    acc = acc.union(&fresh);
                    delta = fresh;
                }
                // Accumulated rows were recorded delta by delta; skip the
                // generic record below to count each row exactly once.
                return Ok(acc);
            }
            PhysOp::RecRef { var } => {
                let rel = self.ctx.env.get(var).ok_or_else(|| {
                    SgqError::Execution(format!("unbound recursion variable {var}"))
                })?;
                rel.with_cols(p.cols.clone())
            }
        };
        self.ctx.record(&out)?;
        Ok(out)
    }

    /// Shared node-table handles for a label filter (their flat data is
    /// the sorted id set), so morsel tasks can own the membership sets.
    fn label_set_tables(
        &self,
        labels: Option<&[sgq_common::NodeLabelId]>,
    ) -> Option<Vec<Relation>> {
        labels.map(|ls| ls.iter().map(|&l| self.store.node_table(l)).collect())
    }

    /// Probes a (possibly cached) hash-join build side with the probe
    /// relation, emitting in left-then-right-extras schema order. Above
    /// the parallel threshold the probe is split into morsels; each
    /// worker sorts its own output and the runs merge-dedup back to
    /// exactly the canonical relation the serial path produces.
    #[allow(clippy::too_many_arguments)]
    fn probe_join(
        &mut self,
        p: &PhysPlan,
        left: &PhysPlan,
        build_rel: &Relation,
        index: &Arc<JoinIndex>,
        probe_rel: &Relation,
        build_left: bool,
        probe_key_pos: &[usize],
        right_extra_pos: &[usize],
    ) -> Result<Relation> {
        let left_arity = left.cols.len();
        if let Some(section) = self.ctx.parallel_section(probe_rel.len()) {
            let arity = p.cols.len();
            let tasks: Vec<_> = parallel::morsel_ranges(probe_rel.len(), section.morsel)
                .into_iter()
                .map(|(start, end)| {
                    let probe = probe_rel.clone();
                    let build = build_rel.clone();
                    let index = Arc::clone(index);
                    let key_pos = probe_key_pos.to_vec();
                    let extras = right_extra_pos.to_vec();
                    let limits = section.limits.clone();
                    move || -> Result<Vec<u32>> {
                        limits.poll()?;
                        let mut data: Vec<u32> = Vec::new();
                        for (i, prow) in probe.rows_range(start, end).enumerate() {
                            if i & POLL_MASK == 0 {
                                limits.poll()?;
                            }
                            for &bi in index.probe(prow, &key_pos) {
                                let brow = build.row(bi as usize);
                                let (lrow, rrow) = if build_left {
                                    (brow, prow)
                                } else {
                                    (prow, brow)
                                };
                                data.extend_from_slice(lrow);
                                for &ri in &extras {
                                    data.push(rrow[ri]);
                                }
                            }
                        }
                        normalize_flat(arity, &mut data);
                        limits.record(data.len() / arity, arity)?;
                        Ok(data)
                    }
                })
                .collect();
            let runs = section.execute(tasks)?;
            self.ctx.morsels_executed += runs.len();
            return Ok(Relation::merge_sorted_runs(p.cols.clone(), runs));
        }
        let mut data: Vec<u32> = Vec::new();
        for (i, prow) in probe_rel.rows().enumerate() {
            if i & POLL_MASK == 0 {
                self.ctx.check()?;
            }
            for &bi in index.probe(prow, probe_key_pos) {
                let brow = build_rel.row(bi as usize);
                let (lrow, rrow) = if build_left {
                    (brow, prow)
                } else {
                    (prow, brow)
                };
                debug_assert_eq!(lrow.len(), left_arity);
                data.extend_from_slice(lrow);
                for &ri in right_extra_pos {
                    data.push(rrow[ri]);
                }
            }
        }
        let out = Relation::from_flat(p.cols.clone(), data);
        self.ctx.record(&out)?;
        Ok(out)
    }

    /// Filters `left_rel` by a (possibly cached) key set collected from
    /// `filter_plan`, returning the surviving rows' flat data (canonical:
    /// filtering preserves order) and whether the rows were already
    /// recorded (a parallel scan records per morsel; the serial path
    /// leaves recording to the caller's operator epilogue).
    fn hash_semi_filter(
        &mut self,
        node_id: u32,
        left_rel: &Relation,
        left_key_pos: &[usize],
        filter_plan: &PhysPlan,
        filter_key_pos: &[usize],
        mut cache: Option<&mut StepCache>,
    ) -> Result<(Vec<u32>, bool)> {
        if filter_plan.is_static() {
            if let Some(c) = cache.as_deref_mut() {
                match c.entry(node_id) {
                    std::collections::hash_map::Entry::Occupied(_) => {
                        self.ctx.cache_hits += 1;
                    }
                    std::collections::hash_map::Entry::Vacant(slot) => {
                        let frel = self.eval(filter_plan, None)?;
                        faultpoint!("exec.hash_build");
                        let ctx = &mut *self.ctx;
                        let keys =
                            Arc::new(SemiKeys::build(&frel, filter_key_pos, &mut || ctx.check())?);
                        self.ctx.hash_builds += 1;
                        slot.insert(Cached::Keys(keys));
                    }
                }
                let Some(Cached::Keys(keys)) = c.get(&node_id) else {
                    unreachable!("just inserted")
                };
                let keys = Arc::clone(keys);
                return filter_by_keys(left_rel, left_key_pos, &keys, self.ctx);
            }
        }
        let frel = self.eval(filter_plan, cache)?;
        faultpoint!("exec.hash_build");
        let ctx = &mut *self.ctx;
        let keys = Arc::new(SemiKeys::build(&frel, filter_key_pos, &mut || ctx.check())?);
        self.ctx.hash_builds += 1;
        filter_by_keys(left_rel, left_key_pos, &keys, self.ctx)
    }
}

/// Whether `v` is in any of the node tables' sorted id sets — the
/// owned-handle counterpart of `Interp::in_label_sets` used by morsel
/// workers (an empty list matches nothing, like the serial path).
fn tables_contain(sets: &[Relation], v: u32) -> bool {
    sets.iter().any(|s| s.flat().binary_search(&v).is_ok())
}

/// Filters `left` by the shared key set, splitting into morsels above
/// the parallel threshold. Returns the surviving flat rows and whether
/// they were already recorded against the row budget (true on the
/// parallel path, which records per morsel).
fn filter_by_keys(
    left: &Relation,
    key_pos: &[usize],
    keys: &Arc<SemiKeys>,
    ctx: &mut ExecContext,
) -> Result<(Vec<u32>, bool)> {
    if let Some(section) = ctx.parallel_section(left.len()) {
        let arity = left.arity();
        let tasks: Vec<_> = parallel::morsel_ranges(left.len(), section.morsel)
            .into_iter()
            .map(|(start, end)| {
                let left = left.clone();
                let keys = Arc::clone(keys);
                let key_pos = key_pos.to_vec();
                let limits = section.limits.clone();
                move || -> Result<Vec<u32>> {
                    limits.poll()?;
                    let mut data: Vec<u32> = Vec::new();
                    for (i, row) in left.rows_range(start, end).enumerate() {
                        if i & POLL_MASK == 0 {
                            limits.poll()?;
                        }
                        if keys.contains(row, &key_pos) {
                            data.extend_from_slice(row);
                        }
                    }
                    limits.record(data.len() / arity, arity)?;
                    Ok(data)
                }
            })
            .collect();
        let runs = section.execute(tasks)?;
        ctx.morsels_executed += runs.len();
        // Disjoint ascending ranges filtered in order: plain concat.
        return Ok((runs.concat(), true));
    }
    let mut data = Vec::new();
    for (i, row) in left.rows().enumerate() {
        if i & POLL_MASK == 0 {
            ctx.check()?;
        }
        if keys.contains(row, key_pos) {
            data.extend_from_slice(row);
        }
    }
    Ok((data, false))
}

/// Positions of `key` columns within `cols`.
fn positions(cols: &[ColId], key: &[ColId]) -> Vec<usize> {
    key.iter()
        .map(|k| {
            cols.iter()
                .position(|c| c == k)
                .expect("key column present in schema (ensured at plan time)")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::RelStore;
    use crate::term::closure_fixpoint;
    use sgq_graph::database::fig2_yago_database;

    fn store() -> (sgq_graph::GraphDatabase, RelStore) {
        let db = fig2_yago_database();
        let store = RelStore::load(&db);
        (db, store)
    }

    fn scan(
        db: &sgq_graph::GraphDatabase,
        store: &RelStore,
        label: &str,
        src: &str,
        tgt: &str,
    ) -> RaTerm {
        RaTerm::EdgeScan {
            label: db.edge_label_id(label).unwrap(),
            src: store.symbols.col(src),
            tgt: store.symbols.col(tgt),
        }
    }

    #[test]
    fn edge_scan() {
        let (db, store) = store();
        let mut ctx = ExecContext::new();
        let r = execute(&scan(&db, &store, "owns", "x", "y"), &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[1, 0]);
    }

    #[test]
    fn join_composes_paths() {
        // owns(x,y) ⋈ isLocatedIn(y,z): John's property is in Montbonnot
        let (db, store) = store();
        let (x, z) = (store.symbols.col("x"), store.symbols.col("z"));
        let t = RaTerm::project(
            RaTerm::join(
                scan(&db, &store, "owns", "x", "y"),
                scan(&db, &store, "isLocatedIn", "y", "z"),
            ),
            vec![x, z],
        );
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[1, 5]);
    }

    #[test]
    fn merge_join_composes_paths() {
        // isLocatedIn(x,y) ⋈ owns(x,z): both lead with x, so (with index
        // joins ablated) the planner selects a merge join; results must
        // match the hash path.
        let (db, mut store) = store();
        store.index_joins = false;
        let t = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "owns", "x", "z"),
        );
        let p = plan(&t, &store).unwrap();
        assert!(matches!(p.op, crate::plan::PhysOp::MergeJoin { .. }));
        let mut ctx = ExecContext::new();
        let r = execute_plan(&p, &store, &mut ctx).unwrap();
        // owns: (1, 0); isLocatedIn from node 1: none. Via x=1: isLocatedIn
        // has no (1, _) row? n2=1 owns n1=0; isLocatedIn(1,_) is empty, so
        // the join is empty — cross-check against the nested-loop result.
        let edges_a = store.edge_table(db.edge_label_id("isLocatedIn").unwrap());
        let edges_b = store.edge_table(db.edge_label_id("owns").unwrap());
        let expect: usize = edges_a
            .rows()
            .flat_map(|a| edges_b.rows().filter(move |b| b[0] == a[0]))
            .count();
        assert_eq!(r.len(), expect);
    }

    #[test]
    fn fixpoint_transitive_closure() {
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        // must match the reference semantics of isLocatedIn+
        let expect = sgq_algebra::eval::eval_path(
            &db,
            &sgq_algebra::parser::parse_path("isLocatedIn+", &db).unwrap(),
        );
        let got: Vec<(u32, u32)> = r.rows().map(|row| (row[0], row[1])).collect();
        let want: Vec<(u32, u32)> = expect.iter().map(|&(s, t)| (s.raw(), t.raw())).collect();
        assert_eq!(got, want);
        assert!(ctx.fixpoint_rounds >= 2);
    }

    #[test]
    fn fixpoint_on_cycle_terminates() {
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isMarriedTo", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 4); // {1,2}² as in the reference evaluator
    }

    #[test]
    fn fixpoint_rows_are_counted_once() {
        // Regression test for rows_materialized accounting: every
        // materialised row counts exactly once, and zero-copy renames
        // count nothing.
        //
        // `owns` has a single edge (n2 → n1) that composes with nothing,
        // so the closure equals its base and one semi-naive round runs.
        // With index joins ablated (the hash path under test here):
        // base scan (1 row) + per-round RecRef (1) + inner scan (1) +
        // rename (0: zero-copy) + empty join/project/delta (0) = 3.
        let (db, mut store) = store();
        store.index_joins = false;
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "owns", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(ctx.rows_materialized(), 3);
    }

    #[test]
    fn fixpoint_caches_static_build_sides() {
        // The closure's step joins the delta against the static renamed
        // scan: its hash table must be built once, not once per round.
        // (Index joins ablated — with them on, no hash table is built at
        // all; see `index_join_inside_fixpoint_builds_nothing`.)
        let (db, mut store) = store();
        store.index_joins = false;
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p = plan(&f, &store).unwrap();

        let mut cached = ExecContext::new();
        let r_cached = execute_plan(&p, &store, &mut cached).unwrap();
        let mut uncached = ExecContext::new();
        uncached.no_fixpoint_cache = true;
        let r_uncached = execute_plan(&p, &store, &mut uncached).unwrap();

        assert_eq!(r_cached, r_uncached, "caching must not change results");
        assert!(cached.fixpoint_rounds >= 2, "closure iterates");
        assert_eq!(cached.fixpoint_rounds, uncached.fixpoint_rounds);
        assert!(
            cached.hash_builds < uncached.hash_builds,
            "caching must reduce hash builds: {} !< {}",
            cached.hash_builds,
            uncached.hash_builds
        );
        assert!(cached.cache_hits > 0);
        assert_eq!(uncached.cache_hits, 0);
    }

    #[test]
    fn index_join_matches_hash_join() {
        // owns(x,y) ⋈ isLocatedIn(y,z) plans as an index join by
        // default; the result must equal the hash plan's bit for bit.
        let (db, mut store) = store();
        let t = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        let p_index = plan(&t, &store).unwrap();
        assert!(
            matches!(p_index.op, PhysOp::IndexJoin { .. }),
            "{p_index:?}"
        );
        store.index_joins = false;
        let p_hash = plan(&t, &store).unwrap();
        assert!(matches!(p_hash.op, PhysOp::HashJoin { .. }));
        let mut ctx = ExecContext::new();
        let r_index = execute_plan(&p_index, &store, &mut ctx).unwrap();
        assert_eq!(ctx.hash_builds, 0, "the CSR replaces the hash build");
        let mut ctx = ExecContext::new();
        let r_hash = execute_plan(&p_hash, &store, &mut ctx).unwrap();
        assert_eq!(r_index, r_hash);
        assert_eq!(r_index.len(), 1);
        assert_eq!(r_index.row(0), &[1, 0, 5]); // John owns n1, located in Montbonnot
    }

    #[test]
    fn label_filtered_index_join_matches_reference() {
        // owns(x,y) ⋈ (isLocatedIn(y,z) ⋉ CITY(y)): the label filter is
        // a membership check against the sorted CITY node set. n1 (a
        // PROPERTY) sources the only matching isLocatedIn edge for owns,
        // so the CITY restriction must empty the result.
        let (db, mut store) = store();
        let filtered = RaTerm::semijoin(
            scan(&db, &store, "isLocatedIn", "y", "z"),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("CITY").unwrap()],
                col: store.symbols.col("y"),
            },
        );
        let t = RaTerm::join(scan(&db, &store, "owns", "x", "y"), filtered);
        let p = plan(&t, &store).unwrap();
        assert!(
            matches!(p.op, PhysOp::IndexJoin { ref src_labels, .. } if src_labels.is_some()),
            "{p:?}"
        );
        let mut ctx = ExecContext::new();
        let r_index = execute_plan(&p, &store, &mut ctx).unwrap();
        store.index_joins = false;
        let p_ref = plan(&t, &store).unwrap();
        let mut ctx = ExecContext::new();
        let r_ref = execute_plan(&p_ref, &store, &mut ctx).unwrap();
        assert_eq!(r_index, r_ref);
        assert!(r_index.is_empty(), "n1 is a PROPERTY, not a CITY");
    }

    #[test]
    fn index_semijoin_matches_hash_semijoin() {
        // (owns ⋈ livesIn) ⋉ isLocatedIn(y,_): keep pairs whose y has at
        // least one out-edge — an O(1) degree check per row.
        let (db, mut store) = store();
        let left = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "livesIn", "w", "x"),
        );
        let t = RaTerm::semijoin(left, scan(&db, &store, "isLocatedIn", "y", "q"));
        let p = plan(&t, &store).unwrap();
        assert!(
            p.contains_op(&|op| matches!(op, PhysOp::IndexSemiJoin { .. })),
            "{p:?}"
        );
        let mut ctx = ExecContext::new();
        let r_index = execute_plan(&p, &store, &mut ctx).unwrap();
        store.index_joins = false;
        let p_ref = plan(&t, &store).unwrap();
        let mut ctx = ExecContext::new();
        let r_ref = execute_plan(&p_ref, &store, &mut ctx).unwrap();
        assert_eq!(r_index, r_ref);
    }

    #[test]
    fn index_join_inside_fixpoint_builds_nothing() {
        // The closure's step joins each round's delta against the static
        // isLocatedIn scan. With index joins the "build side" is the CSR
        // computed at load time: no hash table is ever built, in any
        // round, and results match the hash + build-cache path exactly.
        let (db, mut store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p_index = plan(&f, &store).unwrap();
        assert!(
            p_index.contains_op(&|op| matches!(op, PhysOp::IndexJoin { .. })),
            "step probes the CSR: {p_index:?}"
        );
        let mut ctx_index = ExecContext::new();
        let r_index = execute_plan(&p_index, &store, &mut ctx_index).unwrap();
        assert_eq!(ctx_index.hash_builds, 0, "no per-query build at all");
        assert!(ctx_index.fixpoint_rounds >= 2, "closure iterates");

        store.index_joins = false;
        let p_hash = plan(&f, &store).unwrap();
        let mut ctx_hash = ExecContext::new();
        let r_hash = execute_plan(&p_hash, &store, &mut ctx_hash).unwrap();
        assert_eq!(r_index, r_hash, "index joins must not change results");
        assert_eq!(ctx_index.fixpoint_rounds, ctx_hash.fixpoint_rounds);
        assert!(ctx_hash.hash_builds > 0, "the ablation still builds");
    }

    #[test]
    fn executed_scan_shares_the_base_table_buffer() {
        // The zero-copy pin, end to end: executing a bare edge scan hands
        // back the store's own buffer — no row was copied anywhere
        // between the load and the query result.
        let (db, store) = store();
        let le = db.edge_label_id("isLocatedIn").unwrap();
        let mut ctx = ExecContext::new();
        let r = execute(
            &scan(&db, &store, "isLocatedIn", "x", "y"),
            &store,
            &mut ctx,
        )
        .unwrap();
        assert!(r.shares_data(&store.edge_table(le)));
    }

    #[test]
    fn node_scan_union() {
        let (db, store) = store();
        let t = RaTerm::NodeScan {
            labels: vec![
                db.node_label_id("CITY").unwrap(),
                db.node_label_id("REGION").unwrap(),
            ],
            col: store.symbols.col("n"),
        };
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 3); // two cities + one region
    }

    #[test]
    fn semijoin_with_node_table() {
        // isLocatedIn(x,y) ⋉ REGION(x): only region-sourced edges remain
        // (fused into a filtered scan by the planner)
        let (db, store) = store();
        let t = RaTerm::semijoin(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            RaTerm::NodeScan {
                labels: vec![db.node_label_id("REGION").unwrap()],
                col: store.symbols.col("x"),
            },
        );
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[4, 6]); // Grenoble -> France
    }

    #[test]
    fn row_budget_enforced_at_materialisation_time() {
        // A cartesian product at the plan *root*: 4 × 4 = 16 output rows
        // from two 4-row scans. With the budget checked only at the next
        // operator poll (the old behaviour), the root's oversized output
        // would never be noticed — there is no later poll. Enforcing at
        // record time, the error fires on the batch that crosses the
        // budget, overshooting by at most that one batch.
        let (db, store) = store();
        let t = RaTerm::join(
            scan(&db, &store, "isLocatedIn", "x", "y"),
            scan(&db, &store, "isLocatedIn", "z", "w"),
        );
        let budget = 5usize;
        let mut ctx = ExecContext::new();
        ctx.max_rows = budget;
        let err = execute(&t, &store, &mut ctx).unwrap_err();
        assert!(
            matches!(err, SgqError::RowBudget { budget: 5, .. }),
            "{err}"
        );
        // One batch here is an input scan (4 rows) or the join output
        // (16): the second scan (cumulative 8 > 5) must already trip it.
        assert!(
            ctx.rows_materialized() <= budget + 4,
            "budget {budget} overshot by more than one batch: {} rows",
            ctx.rows_materialized()
        );

        // A budget large enough for the inputs but not the join output
        // still fails on the join's own batch, within one batch of slack.
        let mut ctx = ExecContext::new();
        ctx.max_rows = 10;
        let err = execute(&t, &store, &mut ctx).unwrap_err();
        assert!(err.is_row_budget());
        assert!(ctx.rows_materialized() <= 10 + 16);

        // And a sufficient budget still succeeds, counting exactly the
        // materialised rows.
        let mut ctx = ExecContext::new();
        ctx.max_rows = 24;
        let r = execute(&t, &store, &mut ctx).unwrap();
        assert_eq!(r.len(), 16);
        assert_eq!(ctx.rows_materialized(), 24);
    }

    #[test]
    fn execution_feeds_the_feedback_memo() {
        // Executing a plan observes every static node's true cardinality
        // under its structural fingerprint, so a re-prepared plan
        // estimates from measurements.
        let (db, store) = store();
        let t = RaTerm::join(
            scan(&db, &store, "owns", "x", "y"),
            scan(&db, &store, "isLocatedIn", "y", "z"),
        );
        assert!(store.feedback.is_empty());
        let mut ctx = ExecContext::new();
        let r = execute(&t, &store, &mut ctx).unwrap();
        let fp = crate::cost::fingerprint(&t, &store);
        let obs = store.feedback.lookup(fp).expect("join output was observed");
        assert_eq!(obs.rows, r.len() as f64);
        // Re-planning now carries the observed cardinality.
        let p = plan(&t, &store).unwrap();
        assert!(p.memo_est && p.uses_memo(), "{p:?}");
        assert_eq!(p.est.rows, r.len() as f64);
    }

    #[test]
    fn fixpoint_deltas_are_not_observed() {
        // Dynamic nodes see per-round deltas, not their subtree's true
        // cardinality: only static nodes may feed the memo. The closure's
        // root (static) is observed with its final size; re-planning then
        // estimates the fixpoint exactly.
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::new();
        let r = execute(&f, &store, &mut ctx).unwrap();
        assert!(ctx.fixpoint_rounds >= 2);
        let obs = store
            .feedback
            .lookup(crate::cost::fingerprint(&f, &store))
            .expect("closure output was observed");
        assert_eq!(obs.rows, r.len() as f64);
        assert_eq!(
            obs.weight, 1.0,
            "one observation despite multiple rounds: the fixpoint node \
             records its final accumulator, not per-round deltas"
        );
        let p = plan(&f, &store).unwrap();
        assert!(p.memo_est);
        assert_eq!(p.est.rows, r.len() as f64);
    }

    #[test]
    fn poisoned_estimate_triggers_mid_flight_replan() {
        // A hash join whose planned build side blows past its estimate
        // (here: a memo poisoned with a 0-row observation) is corrected
        // at the materialisation boundary: the executor flips the build
        // side, splicing both materialised inputs into the corrected
        // join. Results stay bit-identical.
        let (db, mut store) = store();
        store.index_joins = false;
        let inner = scan(&db, &store, "isLocatedIn", "y", "z");
        let t = RaTerm::join(scan(&db, &store, "owns", "x", "y"), inner.clone());
        store
            .feedback
            .observe(crate::cost::fingerprint(&inner, &store), 0);
        let p = plan(&t, &store).unwrap();
        let PhysOp::HashJoin { build_left, .. } = &p.op else {
            panic!("hash plan expected: {p:?}")
        };
        assert!(
            !build_left,
            "the poisoned 0-row estimate wins the build side: {p:?}"
        );
        let mut ctx = ExecContext::new();
        // 4 actual rows against a sub-1 estimate: trip at 2×.
        ctx.replan_factor = 2.0;
        let (r, trace) = execute_plan_traced(&p, &store, &mut ctx).unwrap();
        assert_eq!(ctx.replans, 1, "the build side was flipped once");
        assert!(trace.replanned[p.id as usize]);
        // Bit-identical to the reference executed without feedback.
        store.feedback.clear();
        let p_ref = plan(&t, &store).unwrap();
        let mut ctx_ref = ExecContext::new();
        let r_ref = execute_plan(&p_ref, &store, &mut ctx_ref).unwrap();
        assert_eq!(ctx_ref.replans, 0);
        assert_eq!(r, r_ref);
    }

    #[test]
    fn traced_spans_agree_with_actuals_bit_for_bit() {
        // The explain path and the tracer share one recording: summing
        // span rows per node reproduces `actuals` exactly, fixpoint
        // rounds included, and every span names a real operator kind.
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let p = plan(&f, &store).unwrap();
        let mut ctx = ExecContext::new();
        let (r, trace) = execute_plan_traced(&p, &store, &mut ctx).unwrap();
        assert!(!r.is_empty());
        assert!(ctx.fixpoint_rounds >= 2, "closure iterates");
        assert_eq!(trace.actuals.len(), p.node_count());
        assert!(!trace.spans.is_empty());
        let mut per_node = vec![0usize; p.node_count()];
        for span in &trace.spans {
            per_node[span.node as usize] += span.rows;
            assert!(!span.kind.is_empty());
            assert!(span.self_us <= span.dur_us);
        }
        assert_eq!(per_node, trace.actuals);
        // The root span's inclusive time bounds every other span.
        let root = trace
            .spans
            .iter()
            .find(|sp| sp.node == p.id)
            .expect("root evaluated");
        for span in &trace.spans {
            assert!(root.start_us <= span.start_us && span.end_us() <= root.end_us());
        }
        // Untraced execution of the same plan is bit-identical.
        let mut ctx2 = ExecContext::new();
        assert_eq!(execute_plan(&p, &store, &mut ctx2).unwrap(), r);
    }

    #[test]
    fn timeout_aborts() {
        let (db, store) = store();
        let s = &store.symbols;
        let f = closure_fixpoint(
            s.recvar("X"),
            scan(&db, &store, "isLocatedIn", "x", "y"),
            s.col("x"),
            s.col("y"),
            s.col("m"),
        );
        let mut ctx = ExecContext::with_timeout(0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let err = execute(&f, &store, &mut ctx).unwrap_err();
        assert!(err.is_timeout());
    }

    #[test]
    fn unbound_recref_errors() {
        let (_, store) = store();
        let s = &store.symbols;
        let t = RaTerm::RecRef {
            var: s.recvar("X"),
            cols: vec![s.col("a"), s.col("b")],
        };
        let mut ctx = ExecContext::new();
        assert!(execute(&t, &store, &mut ctx).is_err());
    }
}
