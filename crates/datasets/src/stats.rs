//! Dataset characteristics: the reproduction of Tab. 3.

use sgq_common::FxHashMap;
use sgq_graph::GraphDatabase;

/// One row of the Tab. 3 summary.
#[derive(Debug, Clone)]
pub struct DatasetStats {
    /// Dataset name (`YAGO`, `LDBC-SNB`).
    pub name: String,
    /// Scale factor, if applicable.
    pub scale_factor: Option<f64>,
    /// Number of node relations (`#NR`), with LDBC's place/organisation
    /// subtypes grouped as in the paper.
    pub node_relations: usize,
    /// Number of edge relations (`#ER`).
    pub edge_relations: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Total edges.
    pub edges: usize,
}

/// Labels grouped into one "relation" for the paper-style counts: LDBC
/// stores City/Country/Continent as one `Place` table and
/// Company/University as one `Organisation` table.
const GROUPS: [(&str, &[&str]); 2] = [
    ("Place", &["City", "Country", "Continent"]),
    ("Organisation", &["Company", "University"]),
];

/// Computes the Tab. 3 row for a database.
pub fn dataset_stats(name: &str, scale_factor: Option<f64>, db: &GraphDatabase) -> DatasetStats {
    let mut groups: FxHashMap<&str, &str> = FxHashMap::default();
    for (group, members) in GROUPS {
        for m in members {
            groups.insert(*m, group);
        }
    }
    let mut node_relations: Vec<&str> = Vec::new();
    for idx in 0..db.node_label_count() {
        let label = db.node_label_name(sgq_common::NodeLabelId::new(idx as u32));
        let grouped = groups.get(label).copied().unwrap_or(label);
        if !node_relations.contains(&grouped) {
            node_relations.push(grouped);
        }
    }
    DatasetStats {
        name: name.to_string(),
        scale_factor,
        node_relations: node_relations.len(),
        edge_relations: db.edge_label_count(),
        nodes: db.node_count(),
        edges: db.edge_count(),
    }
}

impl DatasetStats {
    /// Renders the row in Tab. 3's column order.
    pub fn row(&self) -> String {
        let sf = self
            .scale_factor
            .map(|s| format!("{s}"))
            .unwrap_or_else(|| "N/A".to_string());
        format!(
            "{:<10} {:>5} {:>5} {:>5} {:>10} {:>10}",
            self.name, sf, self.node_relations, self.edge_relations, self.nodes, self.edges
        )
    }

    /// The Tab. 3 header.
    pub fn header() -> String {
        format!(
            "{:<10} {:>5} {:>5} {:>5} {:>10} {:>10}",
            "Name", "SF", "#NR", "#ER", "#Nodes", "#Edges"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldbc;
    use crate::yago;

    #[test]
    fn yago_row_shape() {
        let (_, db) = yago::generate(yago::YagoConfig::tiny());
        let s = dataset_stats("YAGO", None, &db);
        assert_eq!(s.node_relations, 7, "Tab. 3: YAGO #NR = 7");
        assert!(s.edge_relations >= 10);
        assert!(s.row().contains("YAGO"));
        assert!(s.row().contains("N/A"));
    }

    #[test]
    fn ldbc_row_groups_place_and_organisation() {
        let (_, db) = ldbc::generate(ldbc::LdbcConfig::at_scale(0.1));
        let s = dataset_stats("LDBC-SNB", Some(0.1), &db);
        assert_eq!(
            s.node_relations, 8,
            "Tab. 3: LDBC #NR = 8 after grouping place/organisation subtypes"
        );
        assert_eq!(s.edge_relations, 15);
    }

    #[test]
    fn header_aligns() {
        assert!(DatasetStats::header().contains("#NR"));
    }
}
