//! Synthetic datasets and query catalogs for the paper's evaluation (§5.1).
//!
//! * [`yago`] — a YAGO-like knowledge graph: the paper's Fig. 1 schema
//!   extended with the taxonomy/organisation labels needed by the 18
//!   recursive YAGO queries, plus a seeded generator,
//! * [`ldbc`] — an LDBC-SNB-like property graph with scale factors
//!   (§5.1.1, Tab. 3) and the full 30-query catalog of Tab. 4,
//! * [`catalog`] — query-catalog types shared by both datasets,
//! * [`stats`] — the Tab. 3 dataset-characteristics summary.

#![warn(missing_docs)]

pub mod catalog;
pub mod ldbc;
pub mod stats;
pub mod yago;

pub use catalog::{CatalogQuery, QueryOrigin};
pub use stats::DatasetStats;
