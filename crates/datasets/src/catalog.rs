//! Query-catalog types.

use sgq_algebra::ast::PathExpr;
use sgq_algebra::parser::parse_path;
use sgq_common::Result;
use sgq_graph::GraphSchema;
use sgq_query::cqt::{QueryKind, Ucqt};

/// Which benchmark family a query was taken from (Tab. 4's labels).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryOrigin {
    /// LDBC interactive complex reads (`IC*`).
    InteractiveComplex,
    /// LDBC interactive short reads (`IS*`).
    InteractiveShort,
    /// LDBC business intelligence (`BI*`).
    BusinessIntelligence,
    /// Large-scale subgraph query benchmark (`LSQB*`).
    Lsqb,
    /// YAGO-style queries proposed by the paper (`Y*`).
    YagoStyle,
}

impl std::fmt::Display for QueryOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryOrigin::InteractiveComplex => write!(f, "IC"),
            QueryOrigin::InteractiveShort => write!(f, "IS"),
            QueryOrigin::BusinessIntelligence => write!(f, "BI"),
            QueryOrigin::Lsqb => write!(f, "LSQB"),
            QueryOrigin::YagoStyle => write!(f, "Y"),
        }
    }
}

/// One catalog entry: a named path query.
#[derive(Debug, Clone)]
pub struct CatalogQuery {
    /// Query label as in Tab. 4 (e.g. `IC13`).
    pub name: &'static str,
    /// Origin family.
    pub origin: QueryOrigin,
    /// The path expression in this crate's text syntax.
    pub text: &'static str,
    /// Parsed expression.
    pub expr: PathExpr,
}

impl CatalogQuery {
    /// Parses a catalog entry against `schema`.
    pub fn parse(
        name: &'static str,
        origin: QueryOrigin,
        text: &'static str,
        schema: &GraphSchema,
    ) -> Result<Self> {
        let expr = parse_path(text, schema)?;
        Ok(CatalogQuery {
            name,
            origin,
            text,
            expr,
        })
    }

    /// The binary UCQT `{(α, β) | (α, ϕ, β)}` for this entry.
    pub fn ucqt(&self) -> Ucqt {
        Ucqt::path_query(self.expr.clone())
    }

    /// Recursive (RQ) or non-recursive (NQ), per §2.4.2.
    pub fn kind(&self) -> QueryKind {
        if self.expr.is_recursive() {
            QueryKind::Recursive
        } else {
            QueryKind::NonRecursive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_graph::schema::fig1_yago_schema;

    #[test]
    fn parse_and_classify() {
        let schema = fig1_yago_schema();
        let q = CatalogQuery::parse(
            "T1",
            QueryOrigin::YagoStyle,
            "livesIn/isLocatedIn+",
            &schema,
        )
        .unwrap();
        assert_eq!(q.kind(), QueryKind::Recursive);
        assert!(q.ucqt().validate().is_ok());
        let q = CatalogQuery::parse("T2", QueryOrigin::Lsqb, "owns", &schema).unwrap();
        assert_eq!(q.kind(), QueryKind::NonRecursive);
    }

    #[test]
    fn origin_display() {
        assert_eq!(QueryOrigin::InteractiveComplex.to_string(), "IC");
        assert_eq!(QueryOrigin::YagoStyle.to_string(), "Y");
    }
}
