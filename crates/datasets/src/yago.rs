//! The YAGO-like knowledge graph (§5.1.1).
//!
//! The real YAGO2s dump is a 26 GB proprietary download; per the
//! substitution policy (DESIGN.md) we generate a synthetic knowledge graph
//! that conforms to the paper's YAGO schema — Fig. 1 extended with the
//! organisation/taxonomy labels its 18 recursive queries need. What the
//! optimisation depends on is preserved exactly: the *acyclic*
//! `isLocatedIn` hierarchy (PROPERTY → CITY → REGION → COUNTRY), the
//! *cyclic* `dealsWith` and `influences` relations, and edge labels whose
//! relative sizes differ by orders of magnitude.

use sgq_common::{NodeId, Result, Rng};
use sgq_graph::{DataType, GraphDatabase, GraphSchema, Value};

use crate::catalog::{CatalogQuery, QueryOrigin};

/// Size knobs for the YAGO generator.
#[derive(Debug, Clone, Copy)]
pub struct YagoConfig {
    /// Number of PERSON nodes.
    pub persons: usize,
    /// Number of PROPERTY nodes.
    pub properties: usize,
    /// Number of CITY nodes.
    pub cities: usize,
    /// Number of REGION nodes.
    pub regions: usize,
    /// Number of COUNTRY nodes.
    pub countries: usize,
    /// Number of ORGANISATION nodes.
    pub organisations: usize,
    /// Number of CLASS nodes (taxonomy).
    pub classes: usize,
    /// RNG seed (generation is deterministic per seed).
    pub seed: u64,
}

impl Default for YagoConfig {
    fn default() -> Self {
        YagoConfig {
            persons: 4000,
            properties: 2500,
            cities: 400,
            regions: 60,
            countries: 24,
            organisations: 200,
            classes: 48,
            seed: 0xa60_5eed,
        }
    }
}

impl YagoConfig {
    /// A miniature configuration for unit tests.
    pub fn tiny() -> Self {
        YagoConfig {
            persons: 60,
            properties: 40,
            cities: 12,
            regions: 5,
            countries: 3,
            organisations: 8,
            classes: 6,
            seed: 42,
        }
    }

    /// Scales every entity count by `factor`.
    pub fn scaled(factor: f64) -> Self {
        let d = YagoConfig::default();
        let s = |n: usize| ((n as f64 * factor).ceil() as usize).max(3);
        YagoConfig {
            persons: s(d.persons),
            properties: s(d.properties),
            cities: s(d.cities),
            regions: s(d.regions),
            countries: s(d.countries),
            organisations: s(d.organisations),
            classes: s(d.classes),
            seed: d.seed,
        }
    }
}

/// The extended YAGO schema: 7 node labels (the paper's Tab. 3 reports 7
/// node relations for YAGO) and 12 edge labels.
pub fn schema() -> GraphSchema {
    let mut b = GraphSchema::builder();
    b.node(
        "PERSON",
        &[("name", DataType::String), ("age", DataType::Int)],
    );
    b.node("CITY", &[("name", DataType::String)]);
    b.node(
        "PROPERTY",
        &[("address", DataType::String), ("name", DataType::String)],
    );
    b.node("REGION", &[("name", DataType::String)]);
    b.node("COUNTRY", &[("name", DataType::String)]);
    b.node("ORGANISATION", &[("name", DataType::String)]);
    b.node("CLASS", &[("name", DataType::String)]);
    // Fig. 1 edges
    b.edge("PERSON", "isMarriedTo", "PERSON");
    b.edge("PERSON", "livesIn", "CITY");
    b.edge("PERSON", "owns", "PROPERTY");
    b.edge("PROPERTY", "isLocatedIn", "CITY");
    b.edge("CITY", "isLocatedIn", "REGION");
    b.edge("REGION", "isLocatedIn", "COUNTRY");
    b.edge("COUNTRY", "dealsWith", "COUNTRY");
    // Extension for the recursive query set
    b.edge("ORGANISATION", "isLocatedIn", "CITY");
    b.edge("PERSON", "isCitizenOf", "COUNTRY");
    b.edge("PERSON", "worksAt", "ORGANISATION");
    b.edge("PERSON", "graduatedFrom", "ORGANISATION");
    b.edge("PERSON", "influences", "PERSON");
    b.edge("PERSON", "hasType", "CLASS");
    b.edge("PROPERTY", "hasType", "CLASS");
    b.edge("ORGANISATION", "hasType", "CLASS");
    b.edge("CLASS", "isSubClassOf", "CLASS");
    b.build().expect("YAGO schema is well-formed")
}

/// Generates a conforming YAGO-like database.
pub fn generate(config: YagoConfig) -> (GraphSchema, GraphDatabase) {
    let schema = schema();
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = GraphDatabase::builder(&schema);

    let name_key = b.intern_key("name");
    let person_l = b.intern_node_label("PERSON");
    let city_l = b.intern_node_label("CITY");
    let property_l = b.intern_node_label("PROPERTY");
    let region_l = b.intern_node_label("REGION");
    let country_l = b.intern_node_label("COUNTRY");
    let organisation_l = b.intern_node_label("ORGANISATION");
    let class_l = b.intern_node_label("CLASS");

    let mk = |label, count: usize, prefix: &str, b: &mut sgq_graph::DatabaseBuilder| {
        (0..count)
            .map(|i| {
                b.node_with_label_id(label, vec![(name_key, Value::str(format!("{prefix}{i}")))])
            })
            .collect::<Vec<NodeId>>()
    };
    let persons = mk(person_l, config.persons, "person", &mut b);
    let cities = mk(city_l, config.cities, "city", &mut b);
    let properties = mk(property_l, config.properties, "property", &mut b);
    let regions = mk(region_l, config.regions, "region", &mut b);
    let countries = mk(country_l, config.countries, "country", &mut b);
    let organisations = mk(organisation_l, config.organisations, "org", &mut b);
    let classes = mk(class_l, config.classes, "class", &mut b);

    let is_married_to = b.intern_edge_label("isMarriedTo");
    let lives_in = b.intern_edge_label("livesIn");
    let owns = b.intern_edge_label("owns");
    let is_located_in = b.intern_edge_label("isLocatedIn");
    let deals_with = b.intern_edge_label("dealsWith");
    let is_citizen_of = b.intern_edge_label("isCitizenOf");
    let works_at = b.intern_edge_label("worksAt");
    let graduated_from = b.intern_edge_label("graduatedFrom");
    let influences = b.intern_edge_label("influences");
    let has_type = b.intern_edge_label("hasType");
    let is_sub_class_of = b.intern_edge_label("isSubClassOf");

    let pick = |rng: &mut Rng, v: &[NodeId]| v[rng.gen_range(0..v.len())];

    // The place hierarchy (acyclic): property -> city -> region -> country.
    for &p in &properties {
        b.edge_with_label_id(p, is_located_in, pick(&mut rng, &cities));
    }
    for &c in &cities {
        b.edge_with_label_id(c, is_located_in, pick(&mut rng, &regions));
    }
    for &r in &regions {
        b.edge_with_label_id(r, is_located_in, pick(&mut rng, &countries));
    }
    for &o in &organisations {
        b.edge_with_label_id(o, is_located_in, pick(&mut rng, &cities));
    }
    // dealsWith: a cyclic international-trade graph.
    for &c in &countries {
        for _ in 0..3 {
            let other = pick(&mut rng, &countries);
            if other != c {
                b.edge_with_label_id(c, deals_with, other);
            }
        }
    }
    // The taxonomy: a tree under the root class (data is acyclic although
    // the schema allows cycles — exactly YAGO's situation).
    for (i, &cl) in classes.iter().enumerate().skip(1) {
        let parent = classes[rng.gen_range(0..i)];
        b.edge_with_label_id(cl, is_sub_class_of, parent);
    }
    // People.
    for (i, &p) in persons.iter().enumerate() {
        b.edge_with_label_id(p, lives_in, pick(&mut rng, &cities));
        b.edge_with_label_id(p, is_citizen_of, pick(&mut rng, &countries));
        if rng.gen_bool(0.4) {
            // marriages are symmetric
            let spouse = pick(&mut rng, &persons);
            if spouse != p {
                b.edge_with_label_id(p, is_married_to, spouse);
                b.edge_with_label_id(spouse, is_married_to, p);
            }
        }
        if rng.gen_bool(0.5) {
            b.edge_with_label_id(p, owns, pick(&mut rng, &properties));
        }
        if rng.gen_bool(0.6) {
            b.edge_with_label_id(p, works_at, pick(&mut rng, &organisations));
        }
        if rng.gen_bool(0.3) {
            b.edge_with_label_id(p, graduated_from, pick(&mut rng, &organisations));
        }
        // influences: a sparse, cyclic social graph with locality
        for _ in 0..2 {
            let span = (config.persons / 10).max(2);
            let j = (i + rng.gen_range(1..span)) % config.persons;
            b.edge_with_label_id(p, influences, persons[j]);
        }
        if rng.gen_bool(0.7) {
            b.edge_with_label_id(p, has_type, pick(&mut rng, &classes));
        }
    }
    for &pr in &properties {
        if rng.gen_bool(0.5) {
            b.edge_with_label_id(pr, has_type, pick(&mut rng, &classes));
        }
    }
    for &o in &organisations {
        b.edge_with_label_id(o, has_type, pick(&mut rng, &classes));
    }

    let db = b.build().expect("generator produces well-formed edges");
    (schema, db)
}

/// The 18 recursive YAGO queries (§5.1.3: all RQ; 16 allow transitive
/// closure elimination; Y7 reverts, matching the paper's "query 7").
pub fn queries(schema: &GraphSchema) -> Result<Vec<CatalogQuery>> {
    let defs: [(&'static str, &'static str); 18] = [
        ("Y1", "livesIn/isLocatedIn+/dealsWith+"),
        ("Y2", "owns/isLocatedIn+"),
        ("Y3", "livesIn/isLocatedIn+"),
        ("Y4", "worksAt/isLocatedIn+"),
        ("Y5", "owns/isLocatedIn+/dealsWith+"),
        ("Y6", "isLocatedIn+"),
        ("Y7", "influences+"),
        ("Y8", "isMarriedTo/livesIn/isLocatedIn+"),
        ("Y9", "(owns | worksAt)/isLocatedIn+"),
        ("Y10", "-owns/livesIn/isLocatedIn+"),
        ("Y11", "worksAt/isLocatedIn+/dealsWith+"),
        ("Y12", "isMarriedTo+/livesIn/isLocatedIn+"),
        ("Y13", "graduatedFrom/isLocatedIn+"),
        ("Y14", "[isMarriedTo]owns/isLocatedIn+"),
        ("Y15", "[worksAt]livesIn/isLocatedIn+"),
        ("Y16", "dealsWith+/-isLocatedIn"),
        ("Y17", "(livesIn/isLocatedIn+) & isCitizenOf"),
        ("Y18", "owns/isLocatedIn+[dealsWith]"),
    ];
    defs.iter()
        .map(|&(name, text)| CatalogQuery::parse(name, QueryOrigin::YagoStyle, text, schema))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_core::pipeline::{rewrite_path, RewriteOptions};
    use sgq_graph::check_consistency;
    use sgq_query::cqt::QueryKind;

    #[test]
    fn generated_database_conforms() {
        let (schema, db) = generate(YagoConfig::tiny());
        let report = check_consistency(&schema, &db);
        assert!(
            report.is_consistent(),
            "{:?}",
            &report.violations[..3.min(report.violations.len())]
        );
        assert!(db.node_count() > 100);
        assert!(db.edge_count() > 100);
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, db1) = generate(YagoConfig::tiny());
        let (_, db2) = generate(YagoConfig::tiny());
        assert_eq!(db1.node_count(), db2.node_count());
        assert_eq!(db1.edge_count(), db2.edge_count());
    }

    #[test]
    fn all_18_queries_parse_and_are_recursive() {
        let schema = schema();
        let qs = queries(&schema).unwrap();
        assert_eq!(qs.len(), 18);
        for q in &qs {
            assert_eq!(q.kind(), QueryKind::Recursive, "{} must be RQ", q.name);
        }
    }

    #[test]
    fn rewrite_profile_matches_paper() {
        // §5.2: exactly one query reverts; Tab. 6: 16 of 18 queries get
        // fixed-length replacements for a transitive closure.
        let schema = schema();
        let qs = queries(&schema).unwrap();
        let mut reverted = Vec::new();
        let mut eliminated = 0usize;
        for q in &qs {
            let r = rewrite_path(&schema, &q.expr, RewriteOptions::default());
            if r.outcome.is_reverted() {
                reverted.push(q.name);
            } else if !r.report.plus_stats.path_lengths.is_empty() {
                eliminated += 1;
            }
        }
        assert_eq!(
            reverted,
            vec!["Y7"],
            "only Y7 reverts (the paper's query 7)"
        );
        assert_eq!(
            eliminated, 16,
            "16 of 18 queries replace a closure (Tab. 6)"
        );
    }

    #[test]
    fn schema_has_paper_shape() {
        let s = schema();
        assert_eq!(s.node_count(), 7, "Tab. 3: YAGO has 7 node relations");
        let isl = s.edge_label("isLocatedIn").unwrap();
        assert_eq!(s.triples_for_edge_label(isl).len(), 4);
    }
}
