//! The LDBC-SNB-like property graph (§5.1.1) and the 30 queries of Tab. 4.
//!
//! The official SNB CSV dumps are multi-gigabyte downloads; per the
//! substitution policy we generate a scale-factor-parameterised synthetic
//! social network with the same schema digraph: a `knows` small-world
//! graph, `replyOf` reply trees, an `isSubclassOf` tag taxonomy, an
//! `isPartOf` place hierarchy, organisations and forums. Entity counts
//! scale linearly with the scale factor like SNB's do, so the feasibility
//! behaviour (Tab. 5) reproduces in shape.
//!
//! Node labels: the paper's Tab. 3 counts 8 node relations — `Place` and
//! `Organisation` are single tables with a type column in LDBC. Our type
//! inference needs the subtypes distinct, so the schema uses `City`,
//! `Country`, `Continent`, `Company` and `University` as separate labels;
//! [`crate::stats`] groups them back for the Tab. 3 display.

use sgq_common::{NodeId, Result, Rng};
use sgq_graph::{DataType, GraphDatabase, GraphSchema, Value};

use crate::catalog::{CatalogQuery, QueryOrigin};

/// The scale factors used in the paper's Tab. 3/5.
pub const SCALE_FACTORS: [f64; 6] = [0.1, 0.3, 1.0, 3.0, 10.0, 30.0];

/// Size knobs for the LDBC generator.
#[derive(Debug, Clone, Copy)]
pub struct LdbcConfig {
    /// Scale factor (entity counts scale linearly).
    pub scale_factor: f64,
    /// RNG seed.
    pub seed: u64,
    /// Persons at scale factor 1.0.
    pub persons_per_sf: usize,
}

impl LdbcConfig {
    /// The configuration for scale factor `sf`.
    pub fn at_scale(sf: f64) -> Self {
        LdbcConfig {
            scale_factor: sf,
            seed: 0x1dbc_5eed,
            persons_per_sf: 500,
        }
    }

    fn persons(&self) -> usize {
        ((self.persons_per_sf as f64 * self.scale_factor) as usize).max(30)
    }
}

/// The LDBC-SNB schema: 11 node labels (8 paper-style node relations, see
/// module docs) and 15 edge labels.
pub fn schema() -> GraphSchema {
    let mut b = GraphSchema::builder();
    b.node(
        "Person",
        &[("name", DataType::String), ("birthday", DataType::Date)],
    );
    b.node("Forum", &[("title", DataType::String)]);
    b.node("Post", &[("content", DataType::String)]);
    b.node("Comment", &[("content", DataType::String)]);
    b.node("Tag", &[("name", DataType::String)]);
    b.node("TagClass", &[("name", DataType::String)]);
    b.node("City", &[("name", DataType::String)]);
    b.node("Country", &[("name", DataType::String)]);
    b.node("Continent", &[("name", DataType::String)]);
    b.node("Company", &[("name", DataType::String)]);
    b.node("University", &[("name", DataType::String)]);

    b.edge("Person", "knows", "Person");
    b.edge("Person", "likes", "Post");
    b.edge("Person", "likes", "Comment");
    b.edge("Post", "hasCreator", "Person");
    b.edge("Comment", "hasCreator", "Person");
    b.edge("Comment", "replyOf", "Post");
    b.edge("Comment", "replyOf", "Comment");
    b.edge("Forum", "containerOf", "Post");
    b.edge("Forum", "hasMember", "Person");
    b.edge("Forum", "hasModerator", "Person");
    b.edge("Post", "hasTag", "Tag");
    b.edge("Comment", "hasTag", "Tag");
    b.edge("Forum", "hasTag", "Tag");
    b.edge("Person", "hasInterest", "Tag");
    b.edge("Tag", "hasType", "TagClass");
    b.edge("TagClass", "isSubclassOf", "TagClass");
    b.edge("Person", "isLocatedIn", "City");
    b.edge("Company", "isLocatedIn", "Country");
    b.edge("University", "isLocatedIn", "City");
    b.edge("Post", "isLocatedIn", "Country");
    b.edge("Comment", "isLocatedIn", "Country");
    b.edge("City", "isPartOf", "Country");
    b.edge("Country", "isPartOf", "Continent");
    b.edge("Person", "workAt", "Company");
    b.edge("Person", "studyAt", "University");
    b.build().expect("LDBC schema is well-formed")
}

/// Generates a conforming LDBC-SNB-like database at the given scale.
pub fn generate(config: LdbcConfig) -> (GraphSchema, GraphDatabase) {
    let schema = schema();
    let mut rng = Rng::seed_from_u64(config.seed);
    let mut b = GraphDatabase::builder(&schema);

    let persons_n = config.persons();
    let forums_n = (persons_n / 2).max(4);
    let posts_n = persons_n * 3;
    let comments_n = persons_n * 6;
    let tags_n = ((30.0 + 20.0 * config.scale_factor) as usize).clamp(20, 400);
    let tagclasses_n = 20;
    let cities_n = 60;
    let countries_n = 20;
    let continents_n = 6;
    let companies_n = 40;
    let universities_n = 30;

    let name_key = b.intern_key("name");
    let title_key = b.intern_key("title");
    let content_key = b.intern_key("content");
    let birthday_key = b.intern_key("birthday");

    let person_l = b.intern_node_label("Person");
    let forum_l = b.intern_node_label("Forum");
    let post_l = b.intern_node_label("Post");
    let comment_l = b.intern_node_label("Comment");
    let tag_l = b.intern_node_label("Tag");
    let tagclass_l = b.intern_node_label("TagClass");
    let city_l = b.intern_node_label("City");
    let country_l = b.intern_node_label("Country");
    let continent_l = b.intern_node_label("Continent");
    let company_l = b.intern_node_label("Company");
    let university_l = b.intern_node_label("University");

    let persons: Vec<NodeId> = (0..persons_n)
        .map(|i| {
            b.node_with_label_id(
                person_l,
                vec![
                    (name_key, Value::str(format!("person{i}"))),
                    (birthday_key, Value::Date(7000 + (i as i64 % 15000))),
                ],
            )
        })
        .collect();
    let mk = |label, count: usize, key, prefix: &str, b: &mut sgq_graph::DatabaseBuilder| {
        (0..count)
            .map(|i| b.node_with_label_id(label, vec![(key, Value::str(format!("{prefix}{i}")))]))
            .collect::<Vec<NodeId>>()
    };
    let forums = mk(forum_l, forums_n, title_key, "forum", &mut b);
    let posts = mk(post_l, posts_n, content_key, "post", &mut b);
    let comments = mk(comment_l, comments_n, content_key, "comment", &mut b);
    let tags = mk(tag_l, tags_n, name_key, "tag", &mut b);
    let tagclasses = mk(tagclass_l, tagclasses_n, name_key, "tagclass", &mut b);
    let cities = mk(city_l, cities_n, name_key, "city", &mut b);
    let countries = mk(country_l, countries_n, name_key, "country", &mut b);
    let continents = mk(continent_l, continents_n, name_key, "continent", &mut b);
    let companies = mk(company_l, companies_n, name_key, "company", &mut b);
    let universities = mk(university_l, universities_n, name_key, "university", &mut b);

    let knows = b.intern_edge_label("knows");
    let likes = b.intern_edge_label("likes");
    let has_creator = b.intern_edge_label("hasCreator");
    let reply_of = b.intern_edge_label("replyOf");
    let container_of = b.intern_edge_label("containerOf");
    let has_member = b.intern_edge_label("hasMember");
    let has_moderator = b.intern_edge_label("hasModerator");
    let has_tag = b.intern_edge_label("hasTag");
    let has_interest = b.intern_edge_label("hasInterest");
    let has_type = b.intern_edge_label("hasType");
    let is_subclass_of = b.intern_edge_label("isSubclassOf");
    let is_located_in = b.intern_edge_label("isLocatedIn");
    let is_part_of = b.intern_edge_label("isPartOf");
    let work_at = b.intern_edge_label("workAt");
    let study_at = b.intern_edge_label("studyAt");

    let pick = |rng: &mut Rng, v: &[NodeId]| v[rng.gen_range(0..v.len())];
    // Zipf-ish skew towards low indexes (hub creators / popular tags).
    let skewed = |rng: &mut Rng, v: &[NodeId]| {
        let r: f64 = rng.gen_f64();
        v[((r * r) * v.len() as f64) as usize]
    };

    // Place hierarchy (acyclic).
    for &c in &cities {
        b.edge_with_label_id(c, is_part_of, pick(&mut rng, &countries));
    }
    for &c in &countries {
        b.edge_with_label_id(c, is_part_of, pick(&mut rng, &continents));
    }
    for &c in &companies {
        b.edge_with_label_id(c, is_located_in, pick(&mut rng, &countries));
    }
    for &u in &universities {
        b.edge_with_label_id(u, is_located_in, pick(&mut rng, &cities));
    }
    // Tag taxonomy (tree in the data, self-loop in the schema).
    for (i, &tc) in tagclasses.iter().enumerate().skip(1) {
        b.edge_with_label_id(tc, is_subclass_of, tagclasses[rng.gen_range(0..i)]);
    }
    for &t in &tags {
        b.edge_with_label_id(t, has_type, pick(&mut rng, &tagclasses));
    }
    // People: a symmetric small-world knows graph with locality.
    for (i, &p) in persons.iter().enumerate() {
        b.edge_with_label_id(p, is_located_in, pick(&mut rng, &cities));
        let degree = rng.gen_range(3..9);
        for _ in 0..degree {
            let span = (persons_n / 8).max(2);
            let j = (i + rng.gen_range(1..span)) % persons_n;
            b.edge_with_label_id(p, knows, persons[j]);
            b.edge_with_label_id(persons[j], knows, p);
        }
        for _ in 0..4 {
            b.edge_with_label_id(p, has_interest, skewed(&mut rng, &tags));
        }
        for _ in 0..5 {
            if rng.gen_bool(0.6) {
                b.edge_with_label_id(p, likes, pick(&mut rng, &posts));
            } else {
                b.edge_with_label_id(p, likes, pick(&mut rng, &comments));
            }
        }
        if rng.gen_bool(0.4) {
            b.edge_with_label_id(p, work_at, pick(&mut rng, &companies));
        }
        if rng.gen_bool(0.5) {
            b.edge_with_label_id(p, study_at, pick(&mut rng, &universities));
        }
    }
    // Forums.
    for &f in &forums {
        b.edge_with_label_id(f, has_moderator, pick(&mut rng, &persons));
        for _ in 0..10 {
            b.edge_with_label_id(f, has_member, pick(&mut rng, &persons));
        }
        for _ in 0..2 {
            b.edge_with_label_id(f, has_tag, skewed(&mut rng, &tags));
        }
    }
    // Posts.
    for &p in &posts {
        b.edge_with_label_id(p, has_creator, skewed(&mut rng, &persons));
        b.edge_with_label_id(p, is_located_in, pick(&mut rng, &countries));
        b.edge_with_label_id(pick(&mut rng, &forums), container_of, p);
        for _ in 0..2 {
            b.edge_with_label_id(p, has_tag, skewed(&mut rng, &tags));
        }
    }
    // Comments: reply trees (acyclic data).
    for (i, &c) in comments.iter().enumerate() {
        b.edge_with_label_id(c, has_creator, skewed(&mut rng, &persons));
        b.edge_with_label_id(c, is_located_in, pick(&mut rng, &countries));
        b.edge_with_label_id(c, has_tag, skewed(&mut rng, &tags));
        if i == 0 || rng.gen_bool(0.6) {
            b.edge_with_label_id(c, reply_of, pick(&mut rng, &posts));
        } else {
            b.edge_with_label_id(c, reply_of, comments[rng.gen_range(0..i)]);
        }
    }

    let db = b.build().expect("generator produces well-formed edges");
    (schema, db)
}

/// The 30 LDBC queries of Tab. 4, verbatim (bounded repetitions `knows1..3`
/// written with this crate's `knows{1,3}` sugar).
pub fn queries(schema: &GraphSchema) -> Result<Vec<CatalogQuery>> {
    use QueryOrigin::*;
    let defs: [(&'static str, QueryOrigin, &'static str); 30] = [
        ("IC1", InteractiveComplex, "knows{1,3}/(isLocatedIn | (workAt|studyAt)/isLocatedIn)"),
        ("IC2", InteractiveComplex, "knows/-hasCreator"),
        ("IC6", InteractiveComplex, "knows{1,2}/(-hasCreator[hasTag])[hasTag]"),
        ("IC7", InteractiveComplex, "(-hasCreator/-likes) | ((-hasCreator/-likes) & knows)"),
        ("IC8", InteractiveComplex, "-hasCreator/-replyOf/hasCreator"),
        ("IC9", InteractiveComplex, "knows{1,2}/-hasCreator"),
        ("IC11", InteractiveComplex, "knows{1,2}/workAt/isLocatedIn"),
        ("IC12", InteractiveComplex, "knows/-hasCreator/replyOf/hasTag/hasType/isSubclassOf+"),
        ("IC13", InteractiveComplex, "knows+"),
        ("IC14", InteractiveComplex, "(knows & (-hasCreator/replyOf/hasCreator))+"),
        ("Y1", YagoStyle, "knows+/studyAt/isLocatedIn+/isPartOf+"),
        ("Y2", YagoStyle, "likes/hasCreator/knows+/isLocatedIn+"),
        ("Y3", YagoStyle, "likes/replyOf+/isLocatedIn+/isPartOf+"),
        ("Y4", YagoStyle, "hasMember/(studyAt|workAt)/isLocatedIn+/isPartOf+"),
        ("Y5", YagoStyle, "-hasMember/([containerOf]hasTag)/hasType/isSubclassOf+"),
        ("Y6", YagoStyle, "replyOf+/isLocatedIn+/isPartOf+"),
        ("Y7", YagoStyle, "hasModerator/hasInterest/hasType/isSubclassOf+"),
        ("Y8", YagoStyle, "([containerOf/hasCreator]hasMember)/isLocatedIn/isPartOf+"),
        ("IS2", InteractiveShort, "-hasCreator/replyOf+/hasCreator"),
        ("IS6", InteractiveShort, "replyOf+/-containerOf/hasMember"),
        ("IS7", InteractiveShort, "(-hasCreator/replyOf/hasCreator) | ((-hasCreator/replyOf/hasCreator) & knows)"),
        ("BI11", BusinessIntelligence, "(([isLocatedIn/isPartOf]knows)[isLocatedIn/isPartOf]) & (knows/([isLocatedIn/isPartOf]knows))"),
        ("BI10", BusinessIntelligence, "(knows+[isLocatedIn/isPartOf])/(-hasCreator[hasTag])/hasTag/hasType"),
        ("BI3", BusinessIntelligence, "-isPartOf/-isLocatedIn/-hasModerator/containerOf/-replyOf+/hasTag/hasType"),
        ("BI9", BusinessIntelligence, "replyOf+/hasCreator"),
        ("BI20", BusinessIntelligence, "(knows & (studyAt/-studyAt))+"),
        ("LSQB1", Lsqb, "-isPartOf/-isLocatedIn/-hasMember/containerOf/-replyOf+/hasTag/hasType"),
        ("LSQB4", Lsqb, "((likes[hasTag])[-replyOf])/hasCreator"),
        ("LSQB5", Lsqb, "-hasTag/-replyOf/hasTag"),
        ("LSQB6", Lsqb, "knows/knows/hasInterest"),
    ];
    defs.iter()
        .map(|&(name, origin, text)| CatalogQuery::parse(name, origin, text, schema))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_core::pipeline::{rewrite_path, RewriteOptions};
    use sgq_graph::check_consistency;
    use sgq_query::cqt::QueryKind;

    #[test]
    fn generated_database_conforms() {
        let (schema, db) = generate(LdbcConfig::at_scale(0.1));
        let report = check_consistency(&schema, &db);
        assert!(
            report.is_consistent(),
            "{:?}",
            &report.violations[..3.min(report.violations.len())]
        );
    }

    #[test]
    fn scale_factor_scales_linearly() {
        let (_, small) = generate(LdbcConfig::at_scale(0.3));
        let (_, large) = generate(LdbcConfig::at_scale(3.0));
        let ratio = large.node_count() as f64 / small.node_count() as f64;
        assert!(ratio > 5.0, "nodes should grow ~10x, got {ratio:.1}x");
        assert!(large.edge_count() > small.edge_count() * 5);
    }

    #[test]
    fn table4_has_12_nq_and_18_rq() {
        // Tab. 4: 12 non-recursive and 18 recursive queries.
        let schema = schema();
        let qs = queries(&schema).unwrap();
        assert_eq!(qs.len(), 30);
        let rq = qs
            .iter()
            .filter(|q| q.kind() == QueryKind::Recursive)
            .count();
        let nq = qs
            .iter()
            .filter(|q| q.kind() == QueryKind::NonRecursive)
            .count();
        assert_eq!(rq, 18, "Tab. 4 has 18 RQ");
        assert_eq!(nq, 12, "Tab. 4 has 12 NQ");
    }

    #[test]
    fn all_queries_are_satisfiable_under_the_schema() {
        // The rewrite never proves a Tab. 4 query empty.
        let schema = schema();
        for q in queries(&schema).unwrap() {
            let r = rewrite_path(&schema, &q.expr, RewriteOptions::default());
            assert!(
                !matches!(r.outcome, sgq_core::pipeline::RewriteOutcome::Empty),
                "{} must be satisfiable",
                q.name
            );
        }
    }

    #[test]
    fn revert_set_matches_paper_section_5_2() {
        // §5.2: ten queries return to their initial path expressions:
        // IC2, IC6, IC7, IC9, IC13, Y7, BI11, BI9, BI20, LSQB6.
        // Our pipeline additionally reverts IC14 and LSQB4 (their only
        // annotations are implied on both sides); see DESIGN.md.
        let schema = schema();
        let mut reverted: Vec<&str> = Vec::new();
        for q in queries(&schema).unwrap() {
            let r = rewrite_path(&schema, &q.expr, RewriteOptions::default());
            if r.outcome.is_reverted() {
                reverted.push(q.name);
            }
        }
        for expected in [
            "IC2", "IC6", "IC7", "IC9", "IC13", "Y7", "BI11", "BI9", "BI20", "LSQB6",
        ] {
            assert!(
                reverted.contains(&expected),
                "{expected} should revert; reverted = {reverted:?}"
            );
        }
        for must_enrich in [
            "IC1", "IC11", "IC12", "IS2", "Y1", "Y3", "Y6", "BI10", "BI3",
        ] {
            assert!(
                !reverted.contains(&must_enrich),
                "{must_enrich} should be enriched; reverted = {reverted:?}"
            );
        }
    }

    #[test]
    fn tc_elimination_touches_the_ispartof_queries() {
        // §5.4: "the transitive closure operation can only be removed in 5
        // out of the 30 LDBC queries" — exactly the isPartOf+ ones.
        let schema = schema();
        let mut with_elimination: Vec<&str> = Vec::new();
        for q in queries(&schema).unwrap() {
            let r = rewrite_path(&schema, &q.expr, RewriteOptions::default());
            if !r.outcome.is_reverted() && !r.report.plus_stats.path_lengths.is_empty() {
                with_elimination.push(q.name);
            }
        }
        for expected in ["Y1", "Y3", "Y4", "Y6", "Y8"] {
            assert!(
                with_elimination.contains(&expected),
                "{expected} eliminates isPartOf+/isLocatedIn+; got {with_elimination:?}"
            );
        }
    }
}
