//! Conjunctive queries with Tarski's algebra (Definition 4) and their
//! unions (UCQT).
//!
//! A [`Cqt`] is `{H | ∃B  r1 ∧ ... ∧ rl ∧ a1 ∧ ... ∧ ak}` where the `ri`
//! are relations `(x, ψ, y)` over (annotated) path expressions and the `ai`
//! are node-label atoms `ηA(v) ∈ L`. A [`Ucqt`] is a union of
//! union-compatible CQTs (same head).

use sgq_algebra::ast::PathExpr;
use sgq_common::{FxHashSet, NodeLabelId, Result, SgqError, VarId};
use sgq_graph::GraphSchema;

use crate::annotated::{AnnotatedPath, LabelSet};

/// A relation `(src, ψ, tgt)`: a directed edge/path constraint between two
/// node variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Relation {
    /// Source variable.
    pub src: VarId,
    /// The (possibly annotated) path expression.
    pub path: AnnotatedPath,
    /// Target variable.
    pub tgt: VarId,
}

impl Relation {
    /// A relation over a plain path expression.
    pub fn plain(src: VarId, path: PathExpr, tgt: VarId) -> Self {
        Relation {
            src,
            path: AnnotatedPath::Plain(path),
            tgt,
        }
    }
}

/// A node-label atom `ηA(var) ∈ labels`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LabelAtom {
    /// The constrained variable.
    pub var: VarId,
    /// Allowed labels (sorted). An empty set is unsatisfiable.
    pub labels: LabelSet,
}

/// A conjunctive query with Tarski's algebra (Definition 4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cqt {
    /// Head (answer) variables `H`.
    pub head: Vec<VarId>,
    /// Node-label atoms `A`.
    pub atoms: Vec<LabelAtom>,
    /// Relations `Rel`.
    pub relations: Vec<Relation>,
}

/// Recursive / non-recursive classification (§2.4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Contains a transitive closure (RQ).
    Recursive,
    /// Transitive-closure free (NQ).
    NonRecursive,
}

impl std::fmt::Display for QueryKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryKind::Recursive => write!(f, "RQ"),
            QueryKind::NonRecursive => write!(f, "NQ"),
        }
    }
}

impl Cqt {
    /// All variables appearing in relations or atoms (sorted, deduped).
    pub fn vars(&self) -> Vec<VarId> {
        let mut v: Vec<VarId> = self
            .relations
            .iter()
            .flat_map(|r| [r.src, r.tgt])
            .chain(self.atoms.iter().map(|a| a.var))
            .collect();
        sgq_common::sorted::normalize(&mut v);
        v
    }

    /// Existentially quantified body variables `B = vars \ H`.
    pub fn body_vars(&self) -> Vec<VarId> {
        let head: FxHashSet<VarId> = self.head.iter().copied().collect();
        self.vars()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Whether any relation is recursive.
    pub fn kind(&self) -> QueryKind {
        if self.relations.iter().any(|r| r.path.is_recursive()) {
            QueryKind::Recursive
        } else {
            QueryKind::NonRecursive
        }
    }

    /// Whether any schema annotation (label atom or path annotation)
    /// survives in the query.
    pub fn has_schema_info(&self) -> bool {
        !self.atoms.is_empty() || self.relations.iter().any(|r| r.path.has_annotations())
    }

    /// Checks well-formedness: non-empty head, head variables used in some
    /// relation, at least one relation.
    pub fn validate(&self) -> Result<()> {
        if self.head.is_empty() {
            return Err(SgqError::Query("CQT has an empty head".into()));
        }
        if self.relations.is_empty() {
            return Err(SgqError::Query("CQT has no relations".into()));
        }
        let vars: FxHashSet<VarId> = self.relations.iter().flat_map(|r| [r.src, r.tgt]).collect();
        for h in &self.head {
            if !vars.contains(h) {
                return Err(SgqError::Query(format!(
                    "head variable {h} does not occur in any relation"
                )));
            }
        }
        let mut seen = FxHashSet::default();
        for h in &self.head {
            if !seen.insert(*h) {
                return Err(SgqError::Query(format!("duplicate head variable {h}")));
            }
        }
        Ok(())
    }
}

/// A union of conjunctive queries with Tarski's algebra.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ucqt {
    /// Shared head of all disjuncts.
    pub head: Vec<VarId>,
    /// The union's disjuncts `C1 ∪ ... ∪ Cn`.
    pub disjuncts: Vec<Cqt>,
}

impl Ucqt {
    /// The standard binary path query `{(α, β) | (α, ϕ, β)}` used by the
    /// paper's experiments (Tab. 4): head variables 0 and 1.
    pub fn path_query(expr: PathExpr) -> Self {
        let alpha = VarId::new(0);
        let beta = VarId::new(1);
        Ucqt {
            head: vec![alpha, beta],
            disjuncts: vec![Cqt {
                head: vec![alpha, beta],
                atoms: Vec::new(),
                relations: vec![Relation::plain(alpha, expr, beta)],
            }],
        }
    }

    /// A single-disjunct UCQT.
    pub fn single(cqt: Cqt) -> Self {
        Ucqt {
            head: cqt.head.clone(),
            disjuncts: vec![cqt],
        }
    }

    /// Recursive iff any disjunct is recursive.
    pub fn kind(&self) -> QueryKind {
        if self
            .disjuncts
            .iter()
            .any(|c| c.kind() == QueryKind::Recursive)
        {
            QueryKind::Recursive
        } else {
            QueryKind::NonRecursive
        }
    }

    /// Whether any schema annotation survives anywhere in the union.
    pub fn has_schema_info(&self) -> bool {
        self.disjuncts.iter().any(Cqt::has_schema_info)
    }

    /// Checks well-formedness plus union compatibility (§2.4.1).
    pub fn validate(&self) -> Result<()> {
        if self.disjuncts.is_empty() {
            return Err(SgqError::Query("UCQT has no disjuncts".into()));
        }
        for c in &self.disjuncts {
            c.validate()?;
            if c.head != self.head {
                return Err(SgqError::Query(
                    "disjuncts are not union-compatible (different heads)".into(),
                ));
            }
        }
        Ok(())
    }

    /// If this UCQT is exactly a binary path query (every disjunct a single
    /// relation between the two head variables with no atoms), returns the
    /// union of the disjunct expressions.
    pub fn as_single_path(&self) -> Option<PathExpr> {
        if self.head.len() != 2 {
            return None;
        }
        let mut parts = Vec::with_capacity(self.disjuncts.len());
        for c in &self.disjuncts {
            if !c.atoms.is_empty() || c.relations.len() != 1 {
                return None;
            }
            let r = &c.relations[0];
            if r.src != self.head[0] || r.tgt != self.head[1] || r.path.has_annotations() {
                return None;
            }
            parts.push(r.path.strip());
        }
        PathExpr::union_all(parts)
    }
}

/// Renders an annotated path expression, e.g. `owns/{PROPERTY}isLocatedIn`.
pub fn annotated_to_string(psi: &AnnotatedPath, schema: &GraphSchema) -> String {
    fn labels(ls: &[NodeLabelId], schema: &GraphSchema) -> String {
        let names: Vec<&str> = ls.iter().map(|&l| schema.node_label_name(l)).collect();
        format!("{{{}}}", names.join(","))
    }
    match psi {
        AnnotatedPath::Plain(e) => {
            let s = sgq_algebra::display::path_to_string(e, schema);
            // Only unions/conjunctions are ambiguous next to the rendered
            // annotation slashes; everything else reads unparenthesised.
            if matches!(e, PathExpr::Union(..) | PathExpr::Conj(..)) {
                format!("({s})")
            } else {
                s
            }
        }
        AnnotatedPath::Concat(a, ann, b) => {
            let a = annotated_to_string(a, schema);
            let b = annotated_to_string(b, schema);
            match ann {
                None => format!("{a}/{b}"),
                Some(ls) => format!("{a}/{}{b}", labels(ls, schema)),
            }
        }
        AnnotatedPath::BranchR(a, b) => format!(
            "{}[{}]",
            annotated_to_string(a, schema),
            annotated_to_string(b, schema)
        ),
        AnnotatedPath::BranchL(a, b) => format!(
            "[{}]{}",
            annotated_to_string(a, schema),
            annotated_to_string(b, schema)
        ),
        AnnotatedPath::Conj(a, b) => format!(
            "({} & {})",
            annotated_to_string(a, schema),
            annotated_to_string(b, schema)
        ),
    }
}

/// Renders a CQT in the paper's notation.
pub fn cqt_to_string(cqt: &Cqt, schema: &GraphSchema) -> String {
    let head: Vec<String> = cqt.head.iter().map(|v| v.to_string()).collect();
    let mut parts: Vec<String> = cqt
        .relations
        .iter()
        .map(|r| {
            format!(
                "({}, {}, {})",
                r.src,
                annotated_to_string(&r.path, schema),
                r.tgt
            )
        })
        .collect();
    for a in &cqt.atoms {
        let names: Vec<&str> = a
            .labels
            .iter()
            .map(|&l| schema.node_label_name(l))
            .collect();
        parts.push(format!("η({}) ∈ {{{}}}", a.var, names.join(",")));
    }
    format!("{{({}) | {}}}", head.join(", "), parts.join(" ∧ "))
}

/// Renders a UCQT in the paper's notation.
pub fn ucqt_to_string(q: &Ucqt, schema: &GraphSchema) -> String {
    let parts: Vec<String> = q
        .disjuncts
        .iter()
        .map(|c| cqt_to_string(c, schema))
        .collect();
    parts.join(" ∪ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    fn pe(s: &str) -> PathExpr {
        parse_path(s, &fig1_yago_schema()).unwrap()
    }

    #[test]
    fn path_query_shape() {
        let q = Ucqt::path_query(pe("livesIn/isLocatedIn+"));
        assert!(q.validate().is_ok());
        assert_eq!(q.kind(), QueryKind::Recursive);
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.as_single_path(), Some(pe("livesIn/isLocatedIn+")));
    }

    #[test]
    fn union_splits_into_path() {
        let a = VarId::new(0);
        let b = VarId::new(1);
        let q = Ucqt {
            head: vec![a, b],
            disjuncts: vec![
                Cqt {
                    head: vec![a, b],
                    atoms: vec![],
                    relations: vec![Relation::plain(a, pe("owns"), b)],
                },
                Cqt {
                    head: vec![a, b],
                    atoms: vec![],
                    relations: vec![Relation::plain(a, pe("livesIn"), b)],
                },
            ],
        };
        assert_eq!(q.as_single_path(), Some(pe("owns | livesIn")));
    }

    #[test]
    fn example5_c1_query() {
        // C1 = {Y | ∃(Z,M) (Y, livesIn/isLocatedIn+, M) ∧ (Y, owns, Z)}
        let y = VarId::new(0);
        let z = VarId::new(1);
        let m = VarId::new(2);
        let c1 = Cqt {
            head: vec![y],
            atoms: vec![],
            relations: vec![
                Relation::plain(y, pe("livesIn/isLocatedIn+"), m),
                Relation::plain(y, pe("owns"), z),
            ],
        };
        assert!(c1.validate().is_ok());
        assert_eq!(c1.body_vars(), vec![z, m]);
        assert_eq!(c1.kind(), QueryKind::Recursive);
        let q = Ucqt::single(c1);
        assert!(q.validate().is_ok());
        assert!(q.as_single_path().is_none(), "C1 is not a bare path query");
    }

    #[test]
    fn validation_errors() {
        let a = VarId::new(0);
        let bad_head = Cqt {
            head: vec![VarId::new(9)],
            atoms: vec![],
            relations: vec![Relation::plain(a, pe("owns"), VarId::new(1))],
        };
        assert!(bad_head.validate().is_err());
        let empty = Cqt {
            head: vec![],
            atoms: vec![],
            relations: vec![],
        };
        assert!(empty.validate().is_err());
        let dup = Cqt {
            head: vec![a, a],
            atoms: vec![],
            relations: vec![Relation::plain(a, pe("owns"), a)],
        };
        assert!(dup.validate().is_err());
    }

    #[test]
    fn union_compatibility_enforced() {
        let a = VarId::new(0);
        let b = VarId::new(1);
        let q = Ucqt {
            head: vec![a, b],
            disjuncts: vec![Cqt {
                head: vec![b, a],
                atoms: vec![],
                relations: vec![Relation::plain(a, pe("owns"), b)],
            }],
        };
        assert!(q.validate().is_err());
    }

    #[test]
    fn display_forms() {
        let schema = fig1_yago_schema();
        let q = Ucqt::path_query(pe("owns/isLocatedIn"));
        let s = ucqt_to_string(&q, &schema);
        assert!(s.contains("owns/isLocatedIn"), "{s}");
        let property = schema.node_label("PROPERTY").unwrap();
        let annotated = AnnotatedPath::concat(
            AnnotatedPath::plain(pe("owns")),
            Some(vec![property]),
            AnnotatedPath::plain(pe("isLocatedIn")),
        );
        assert_eq!(
            annotated_to_string(&annotated, &schema),
            "owns/{PROPERTY}isLocatedIn"
        );
    }

    #[test]
    fn schema_info_detection() {
        let q = Ucqt::path_query(pe("owns"));
        assert!(!q.has_schema_info());
        let mut q2 = q.clone();
        q2.disjuncts[0].atoms.push(LabelAtom {
            var: VarId::new(0),
            labels: vec![NodeLabelId::new(0)],
        });
        assert!(q2.has_schema_info());
    }
}
