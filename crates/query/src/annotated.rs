//! Annotated path expressions (§3.1.1) and their semantics.
//!
//! An annotated path expression `ψ` follows the grammar of Fig. 3 except
//! that a concatenation may carry a node-label annotation: `ψ1 /ln ψ2`
//! matches paths that follow `ψ1`, arrive at a node labeled `ln`, and
//! continue through `ψ2`. After merging (Def. 9) annotations become label
//! *sets*, and after redundant-annotation removal (§3.2.2) they may
//! disappear (`None`).
//!
//! Per the syntactic observations of §3.2.3, expressions produced by the
//! inference system are either plain, a concatenation, a branching or a
//! conjunction — unions and transitive closures only occur inside the
//! [`AnnotatedPath::Plain`] leaf, never with annotations beneath them.

use sgq_algebra::ast::PathExpr;
use sgq_algebra::eval::{self, PairSet};
use sgq_common::{sorted, FxHashMap, NodeId, NodeLabelId};
use sgq_graph::GraphDatabase;

/// A sorted, deduplicated set of node labels.
pub type LabelSet = Vec<NodeLabelId>;

/// An annotated path expression `ψ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AnnotatedPath {
    /// A plain sub-expression with no annotations inside.
    Plain(PathExpr),
    /// `ψ1 /L ψ2` — `None` means un-annotated, `Some(L)` restricts the
    /// intermediate node's label to `L`.
    Concat(Box<AnnotatedPath>, Option<LabelSet>, Box<AnnotatedPath>),
    /// `ψ1[ψ2]`.
    BranchR(Box<AnnotatedPath>, Box<AnnotatedPath>),
    /// `[ψ1]ψ2`.
    BranchL(Box<AnnotatedPath>, Box<AnnotatedPath>),
    /// `ψ1 ∩ ψ2`.
    Conj(Box<AnnotatedPath>, Box<AnnotatedPath>),
}

impl AnnotatedPath {
    /// Wraps a plain expression.
    pub fn plain(e: PathExpr) -> Self {
        AnnotatedPath::Plain(e)
    }

    /// `a /L b`.
    pub fn concat(a: AnnotatedPath, ann: Option<LabelSet>, b: AnnotatedPath) -> Self {
        AnnotatedPath::Concat(Box::new(a), ann, Box::new(b))
    }

    /// `a[b]`.
    pub fn branch_r(a: AnnotatedPath, b: AnnotatedPath) -> Self {
        AnnotatedPath::BranchR(Box::new(a), Box::new(b))
    }

    /// `[a]b`.
    pub fn branch_l(a: AnnotatedPath, b: AnnotatedPath) -> Self {
        AnnotatedPath::BranchL(Box::new(a), Box::new(b))
    }

    /// `a ∩ b`.
    pub fn conj(a: AnnotatedPath, b: AnnotatedPath) -> Self {
        AnnotatedPath::Conj(Box::new(a), Box::new(b))
    }

    /// The *underlying* plain path expression: `ψ` with every annotation
    /// dropped. Merging (Def. 9) groups triples by this value.
    pub fn strip(&self) -> PathExpr {
        match self {
            AnnotatedPath::Plain(e) => e.clone(),
            AnnotatedPath::Concat(a, _, b) => PathExpr::concat(a.strip(), b.strip()),
            AnnotatedPath::BranchR(a, b) => PathExpr::branch_r(a.strip(), b.strip()),
            AnnotatedPath::BranchL(a, b) => PathExpr::branch_l(a.strip(), b.strip()),
            AnnotatedPath::Conj(a, b) => PathExpr::conj(a.strip(), b.strip()),
        }
    }

    /// Whether any annotation survives in the expression.
    pub fn has_annotations(&self) -> bool {
        match self {
            AnnotatedPath::Plain(_) => false,
            AnnotatedPath::Concat(a, ann, b) => {
                ann.is_some() || a.has_annotations() || b.has_annotations()
            }
            AnnotatedPath::BranchR(a, b)
            | AnnotatedPath::BranchL(a, b)
            | AnnotatedPath::Conj(a, b) => a.has_annotations() || b.has_annotations(),
        }
    }

    /// Whether the underlying expression contains transitive closure.
    pub fn is_recursive(&self) -> bool {
        match self {
            AnnotatedPath::Plain(e) => e.is_recursive(),
            AnnotatedPath::Concat(a, _, b)
            | AnnotatedPath::BranchR(a, b)
            | AnnotatedPath::BranchL(a, b)
            | AnnotatedPath::Conj(a, b) => a.is_recursive() || b.is_recursive(),
        }
    }

    /// Structurally merges two annotated expressions with the same
    /// underlying plain expression, unioning annotations position-wise
    /// (Def. 9). Returns `None` if the structures differ.
    ///
    /// `None` annotations absorb: merging an un-annotated position with an
    /// annotated one yields the un-annotated (weaker) position, since the
    /// merged triple must accept everything either input accepts.
    pub fn merge_with(&self, other: &AnnotatedPath) -> Option<AnnotatedPath> {
        match (self, other) {
            (AnnotatedPath::Plain(a), AnnotatedPath::Plain(b)) if a == b => {
                Some(AnnotatedPath::Plain(a.clone()))
            }
            (AnnotatedPath::Concat(a1, n1, b1), AnnotatedPath::Concat(a2, n2, b2)) => {
                let a = a1.merge_with(a2)?;
                let b = b1.merge_with(b2)?;
                let ann = match (n1, n2) {
                    (Some(l1), Some(l2)) => Some(sorted::union(l1, l2)),
                    _ => None,
                };
                Some(AnnotatedPath::concat(a, ann, b))
            }
            (AnnotatedPath::BranchR(a1, b1), AnnotatedPath::BranchR(a2, b2)) => Some(
                AnnotatedPath::branch_r(a1.merge_with(a2)?, b1.merge_with(b2)?),
            ),
            (AnnotatedPath::BranchL(a1, b1), AnnotatedPath::BranchL(a2, b2)) => Some(
                AnnotatedPath::branch_l(a1.merge_with(a2)?, b1.merge_with(b2)?),
            ),
            (AnnotatedPath::Conj(a1, b1), AnnotatedPath::Conj(a2, b2)) => {
                Some(AnnotatedPath::conj(a1.merge_with(a2)?, b1.merge_with(b2)?))
            }
            _ => None,
        }
    }
}

impl From<PathExpr> for AnnotatedPath {
    fn from(e: PathExpr) -> Self {
        AnnotatedPath::Plain(e)
    }
}

/// Evaluates `JψKD` — the annotated semantics of §3.1.1 — as a reference
/// implementation (sorted pair sets).
pub fn eval_annotated(db: &GraphDatabase, psi: &AnnotatedPath) -> PairSet {
    match psi {
        AnnotatedPath::Plain(e) => eval::eval_path(db, e),
        AnnotatedPath::Concat(a, ann, b) => {
            let a = eval_annotated(db, a);
            let b = eval_annotated(db, b);
            compose_filtered(db, &a, ann.as_deref(), &b)
        }
        AnnotatedPath::BranchR(a, b) => {
            let a = eval_annotated(db, a);
            let b = eval_annotated(db, b);
            let sources = eval::source_set(&b);
            a.into_iter()
                .filter(|&(_, m)| sorted::contains(&sources, &m))
                .collect()
        }
        AnnotatedPath::BranchL(a, b) => {
            let a = eval_annotated(db, a);
            let b = eval_annotated(db, b);
            let sources = eval::source_set(&a);
            b.into_iter()
                .filter(|&(n, _)| sorted::contains(&sources, &n))
                .collect()
        }
        AnnotatedPath::Conj(a, b) => {
            sorted::intersect(&eval_annotated(db, a), &eval_annotated(db, b))
        }
    }
}

/// `{(n,m) | ∃z (n,z) ∈ a ∧ (z,m) ∈ b ∧ ηD(z) ∈ ann}` — the annotated
/// composition of §3.1.1 (`ann = None` means no restriction).
fn compose_filtered(
    db: &GraphDatabase,
    a: &PairSet,
    ann: Option<&[NodeLabelId]>,
    b: &PairSet,
) -> PairSet {
    let mut by_src: FxHashMap<NodeId, Vec<NodeId>> = FxHashMap::default();
    for &(s, t) in b {
        if let Some(labels) = ann {
            if !sorted::contains(labels, &db.node_label(s)) {
                continue;
            }
        }
        by_src.entry(s).or_default().push(t);
    }
    let mut out = Vec::new();
    for &(n, z) in a {
        if let Some(labels) = ann {
            if !sorted::contains(labels, &db.node_label(z)) {
                continue;
            }
        }
        if let Some(ms) = by_src.get(&z) {
            for &m in ms {
                out.push((n, m));
            }
        }
    }
    sorted::normalize(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::database::fig2_yago_database;
    use sgq_graph::schema::fig1_yago_schema;

    fn plain(s: &str) -> AnnotatedPath {
        AnnotatedPath::plain(parse_path(s, &fig1_yago_schema()).unwrap())
    }

    fn label(name: &str) -> NodeLabelId {
        fig1_yago_schema().node_label(name).unwrap()
    }

    #[test]
    fn strip_removes_annotations() {
        let psi = AnnotatedPath::concat(
            plain("owns"),
            Some(vec![label("PROPERTY")]),
            plain("isLocatedIn"),
        );
        let schema = fig1_yago_schema();
        assert_eq!(
            psi.strip(),
            parse_path("owns/isLocatedIn", &schema).unwrap()
        );
        assert!(psi.has_annotations());
        assert!(!AnnotatedPath::plain(psi.strip()).has_annotations());
    }

    #[test]
    fn annotated_concat_filters_midpoint() {
        let db = fig2_yago_database();
        // livesIn /CITY isLocatedIn keeps everything (all livesIn targets are cities)
        let all = eval_annotated(
            &db,
            &AnnotatedPath::concat(
                plain("livesIn"),
                Some(vec![label("CITY")]),
                plain("isLocatedIn"),
            ),
        );
        let un = eval_annotated(
            &db,
            &AnnotatedPath::concat(plain("livesIn"), None, plain("isLocatedIn")),
        );
        assert_eq!(all, un);
        // livesIn /REGION isLocatedIn keeps nothing
        let none = eval_annotated(
            &db,
            &AnnotatedPath::concat(
                plain("livesIn"),
                Some(vec![label("REGION")]),
                plain("isLocatedIn"),
            ),
        );
        assert!(none.is_empty());
    }

    #[test]
    fn unannotated_matches_plain_semantics() {
        let db = fig2_yago_database();
        let schema = fig1_yago_schema();
        for s in [
            "owns/isLocatedIn",
            "livesIn/isLocatedIn+",
            "isMarriedTo/livesIn",
        ] {
            let e = parse_path(s, &schema).unwrap();
            let (a, b) = match &e {
                PathExpr::Concat(a, b) => (a.as_ref().clone(), b.as_ref().clone()),
                _ => unreachable!(),
            };
            let annotated = AnnotatedPath::concat(a.into(), None, b.into());
            assert_eq!(
                eval_annotated(&db, &annotated),
                sgq_algebra::eval::eval_path(&db, &e),
                "mismatch for {s}"
            );
        }
    }

    #[test]
    fn merge_unions_annotations() {
        // Example 11: (m, a+/nb/ld, p) + (m, a+/qb/rd, l)
        // merged inner annotations {n,q} and {l,r}.
        let n = NodeLabelId::new(10);
        let q = NodeLabelId::new(11);
        let l = NodeLabelId::new(12);
        let r = NodeLabelId::new(13);
        let a_plus = plain("isMarriedTo+");
        let b = plain("owns");
        let d = plain("livesIn");
        let t1 = AnnotatedPath::concat(
            AnnotatedPath::concat(a_plus.clone(), Some(vec![n]), b.clone()),
            Some(vec![l]),
            d.clone(),
        );
        let t2 = AnnotatedPath::concat(
            AnnotatedPath::concat(a_plus.clone(), Some(vec![q]), b.clone()),
            Some(vec![r]),
            d.clone(),
        );
        let merged = t1.merge_with(&t2).unwrap();
        match &merged {
            AnnotatedPath::Concat(inner, ann, _) => {
                assert_eq!(ann.as_deref(), Some(&[l, r][..]));
                match inner.as_ref() {
                    AnnotatedPath::Concat(_, inner_ann, _) => {
                        assert_eq!(inner_ann.as_deref(), Some(&[n, q][..]));
                    }
                    _ => panic!("wrong shape"),
                }
            }
            _ => panic!("wrong shape"),
        }
    }

    #[test]
    fn merge_requires_same_structure() {
        assert!(plain("owns").merge_with(&plain("livesIn")).is_none());
        let c = AnnotatedPath::concat(plain("owns"), None, plain("livesIn"));
        assert!(c.merge_with(&plain("owns")).is_none());
    }

    #[test]
    fn merge_none_absorbs() {
        let some = AnnotatedPath::concat(
            plain("owns"),
            Some(vec![label("PROPERTY")]),
            plain("isLocatedIn"),
        );
        let none = AnnotatedPath::concat(plain("owns"), None, plain("isLocatedIn"));
        let merged = some.merge_with(&none).unwrap();
        match merged {
            AnnotatedPath::Concat(_, ann, _) => assert!(ann.is_none()),
            _ => panic!(),
        }
    }
}
