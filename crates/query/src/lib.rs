//! The CQT/UCQT query formalism (Definition 4) and annotated path
//! expressions (§3.1.1).
//!
//! * [`annotated`] — path expressions whose concatenations carry node-label
//!   annotations (`ψ1 /ln ψ2`), with their reference semantics,
//! * [`cqt`] — conjunctive queries with Tarski's algebra and their unions,
//! * [`vars`] — query-variable allocation.

#![warn(missing_docs)]

pub mod annotated;
pub mod cqt;
pub mod vars;

pub use annotated::{eval_annotated, AnnotatedPath, LabelSet};
pub use cqt::{Cqt, LabelAtom, QueryKind, Relation, Ucqt};
pub use vars::VarGen;
