//! Query-variable allocation.

use sgq_common::VarId;

/// Hands out fresh query variables, never reusing an id.
#[derive(Debug, Clone, Default)]
pub struct VarGen {
    next: u32,
}

impl VarGen {
    /// A generator starting at variable 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// A generator whose first id is greater than every variable in `used`.
    pub fn above(used: impl IntoIterator<Item = VarId>) -> Self {
        let next = used.into_iter().map(|v| v.raw() + 1).max().unwrap_or(0);
        Self { next }
    }

    /// Allocates a fresh variable.
    pub fn fresh(&mut self) -> VarId {
        let v = VarId::new(self.next);
        self.next += 1;
        v
    }

    /// Number of variables allocated so far (next raw id).
    pub fn allocated(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_is_monotonic() {
        let mut g = VarGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert!(a.raw() < b.raw());
    }

    #[test]
    fn above_skips_used() {
        let mut g = VarGen::above([VarId::new(3), VarId::new(1)]);
        assert_eq!(g.fresh(), VarId::new(4));
    }

    #[test]
    fn above_empty_starts_at_zero() {
        let mut g = VarGen::above([]);
        assert_eq!(g.fresh(), VarId::new(0));
    }
}
