//! Micro-benchmarks of the statistics and cardinality-estimation layer:
//! statistics collection (one pass + per-label SCC condensation), the
//! O(1) `source_selectivity` fast path, the front-end cost of
//! optimising + planning the full LDBC catalog under the stats-v2
//! estimator vs the v1 heuristics, and the feedback-memo sweep —
//! prepare+execute of the catalog with the memo cold vs warmed by one
//! prior execution of every query.

use sgq_bench::{black_box, criterion_group, criterion_main, Criterion};
use sgq_common::{EdgeLabelId, NodeLabelId};
use sgq_core::pipeline::RewriteOptions;
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_graph::GraphStats;
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_ra::optimize::optimize;
use sgq_ra::{plan, RaTerm, RelStore};
use sgq_translate::ucqt2rra::{ucqt_to_term, NameGen};

fn bench(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.3));
    let store = RelStore::load(&db);
    let mut store_v1 = RelStore::load(&db);
    store_v1.v1_estimates = true;

    // Every catalog query, schema-rewritten and translated once outside
    // the timed loops — what is measured is estimation + planning.
    let terms: Vec<RaTerm> = ldbc::queries(&schema)
        .expect("catalog parses")
        .iter()
        .filter_map(|q| {
            let ucqt = sgq_harness::runner::query_for(
                &schema,
                &q.expr,
                sgq_harness::runner::Approach::Schema,
                RewriteOptions::default(),
            )?;
            let mut names = NameGen::new(&store.symbols);
            ucqt_to_term(&ucqt, &mut names).ok()
        })
        .collect();
    assert!(terms.len() >= 25, "catalog should mostly translate");

    let mut group = c.benchmark_group("cardinality_estimates");
    group.bench_function("graphstats_compute_sf03", |b| {
        // One pass over the database plus one SCC condensation per edge
        // label (the closure depth bounds).
        b.iter(|| black_box(GraphStats::compute(&db)))
    });
    group.bench_function("source_selectivity_all_pairs", |b| {
        // The satellite fix: per-(src label, edge label) aggregates make
        // this an O(1) lookup; at SF 0.3 the old path scanned every
        // observed triple per call.
        let stats = &store.stats;
        b.iter(|| {
            let mut acc = 0.0f64;
            for le in 0..db.edge_label_count() {
                for l in 0..db.node_label_count() {
                    acc += stats.source_selectivity(
                        NodeLabelId::new(l as u32),
                        EdgeLabelId::new(le as u32),
                    );
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("optimize_plan_catalog_stats_v2", |b| {
        b.iter(|| {
            for t in &terms {
                let p = plan(&optimize(t, &store), &store).expect("plans");
                black_box(p.est.rows);
            }
        })
    });
    group.bench_function("optimize_plan_catalog_v1_heuristics", |b| {
        b.iter(|| {
            for t in &terms {
                let p = plan(&optimize(t, &store_v1), &store_v1).expect("plans");
                black_box(p.est.rows);
            }
        })
    });

    // --- Feedback memo: prepare+execute the catalog cold vs warm. ---
    let prepare_execute = |store: &RelStore| {
        for t in &terms {
            let p = plan(&optimize(t, store), store).expect("plans");
            let mut ctx = ExecContext::new();
            black_box(execute_plan(&p, store, &mut ctx).expect("executes").len());
        }
    };
    store.feedback.set_enabled(false);
    group.bench_function("prepare_execute_catalog_cold", |b| {
        b.iter(|| prepare_execute(&store))
    });
    // Warm the memo: one recorded execution per catalog query, then
    // measure with estimation drawing from the observations (plans may
    // pick different physical strategies than the cold pass).
    store.feedback.clear();
    store.feedback.set_enabled(true);
    prepare_execute(&store);
    group.bench_function("prepare_execute_catalog_memo_warm", |b| {
        b.iter(|| prepare_execute(&store))
    });
    group.bench_function("optimize_plan_catalog_memo_warm", |b| {
        // Front-end only: the memo lookups ride the estimation pass.
        b.iter(|| {
            for t in &terms {
                let p = plan(&optimize(t, &store), &store).expect("plans");
                black_box(p.est.rows);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
