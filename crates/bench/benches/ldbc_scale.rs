//! Fig. 13 / Tab. 5 bench: LDBC runtimes across scale factors, baseline
//! vs schema-rewritten.

use sgq_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_harness::runner::{run_query, Approach, Backend, RunConfig, Session};

fn bench(c: &mut Criterion) {
    let config = RunConfig {
        timeout_ms: 10_000,
        repetitions: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("fig13_ldbc_scale");
    group.sample_size(10);
    for sf in [0.1, 0.3] {
        let (schema, db) = ldbc::generate(LdbcConfig::at_scale(sf));
        let session = Session::new(&schema, &db);
        let queries = ldbc::queries(&schema).expect("catalog parses");
        for q in queries
            .iter()
            .filter(|q| matches!(q.name, "IC11" | "IS2" | "Y1" | "Y6" | "BI9"))
        {
            for (approach, tag) in [(Approach::Baseline, "B"), (Approach::Schema, "S")] {
                group.bench_with_input(
                    BenchmarkId::new(format!("sf{sf}_{}", q.name), tag),
                    &approach,
                    |b, &approach| {
                        b.iter(|| run_query(&session, &q.expr, approach, Backend::Graph, &config))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
