//! Fig. 12 bench: per-query YAGO runtimes, baseline vs schema-rewritten,
//! on the relational backend.

use sgq_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_datasets::yago::{self, YagoConfig};
use sgq_harness::runner::{run_query, Approach, Backend, RunConfig, Session};

fn bench(c: &mut Criterion) {
    let (schema, db) = yago::generate(YagoConfig::scaled(0.1));
    let session = Session::new(&schema, &db);
    let config = RunConfig {
        timeout_ms: 30_000,
        repetitions: 1,
        ..Default::default()
    };
    let queries = yago::queries(&schema).expect("catalog parses");
    let mut group = c.benchmark_group("fig12_yago");
    group.sample_size(10);
    // A representative subset (the harness binary runs all 18).
    for q in queries
        .iter()
        .filter(|q| matches!(q.name, "Y1" | "Y2" | "Y6" | "Y7" | "Y12" | "Y16"))
    {
        for (approach, tag) in [
            (Approach::Baseline, "baseline"),
            (Approach::Schema, "schema"),
        ] {
            group.bench_with_input(BenchmarkId::new(q.name, tag), &approach, |b, &approach| {
                b.iter(|| run_query(&session, &q.expr, approach, Backend::Relational, &config))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
