//! Fig. 14 bench: the same chain-shaped queries on the graph backend
//! (Neo4j stand-in) and the relational backend (PostgreSQL stand-in).

use sgq_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_harness::runner::{run_query, Approach, Backend, RunConfig, Session};

fn bench(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.3));
    let session = Session::new(&schema, &db);
    let config = RunConfig {
        timeout_ms: 10_000,
        repetitions: 1,
        ..Default::default()
    };
    let queries = ldbc::queries(&schema).expect("catalog parses");
    let mut group = c.benchmark_group("fig14_backends");
    group.sample_size(10);
    for q in queries.iter().filter(|q| {
        sgq_translate::cypher_expressible(&q.ucqt())
            && matches!(q.name, "IC2" | "IC11" | "IS2" | "BI9")
    }) {
        for (backend, tag) in [(Backend::Graph, "G"), (Backend::Relational, "P")] {
            for (approach, atag) in [(Approach::Baseline, "B"), (Approach::Schema, "S")] {
                group.bench_with_input(
                    BenchmarkId::new(q.name, format!("{tag}{atag}")),
                    &(backend, approach),
                    |b, &(backend, approach)| {
                        b.iter(|| run_query(&session, &q.expr, approach, backend, &config))
                    },
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
