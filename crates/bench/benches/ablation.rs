//! Ablation bench: which part of the rewrite buys the speedup?
//! Full pipeline vs no-TC-elimination vs no-annotations vs no-simplify,
//! on recursive YAGO queries (relational backend).

use sgq_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_core::pipeline::RewriteOptions;
use sgq_core::RedundancyRule;
use sgq_datasets::yago::{self, YagoConfig};
use sgq_harness::runner::{run_query, Approach, Backend, RunConfig, Session};

fn bench(c: &mut Criterion) {
    let (schema, db) = yago::generate(YagoConfig::scaled(0.1));
    let session = Session::new(&schema, &db);
    let variants: [(&str, RewriteOptions); 5] = [
        ("full", RewriteOptions::default()),
        (
            "no-tc-elimination",
            RewriteOptions {
                tc_elimination: false,
                ..Default::default()
            },
        ),
        (
            "no-annotations",
            RewriteOptions {
                annotations: false,
                ..Default::default()
            },
        ),
        (
            "no-redundancy-removal",
            RewriteOptions {
                redundancy: RedundancyRule::Never,
                ..Default::default()
            },
        ),
        (
            "no-simplify",
            RewriteOptions {
                simplify: false,
                ..Default::default()
            },
        ),
    ];
    let queries = yago::queries(&schema).expect("catalog parses");
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for q in queries.iter().filter(|q| matches!(q.name, "Y1" | "Y6")) {
        for (tag, rewrite) in variants {
            let config = RunConfig {
                timeout_ms: 30_000,
                repetitions: 1,
                rewrite,
                ..Default::default()
            };
            group.bench_with_input(BenchmarkId::new(q.name, tag), &config, |b, config| {
                b.iter(|| {
                    run_query(
                        &session,
                        &q.expr,
                        Approach::Schema,
                        Backend::Relational,
                        config,
                    )
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
