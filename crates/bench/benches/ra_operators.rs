//! Micro-benchmarks of the relational substrate: hash and merge joins,
//! semi-joins and the semi-naive transitive-closure fixpoint with and
//! without static build-side caching.
//!
//! All terms are built from interned [`sgq_common::ColId`]s resolved
//! through the store's symbol table, so the joins here key on single
//! `u32`s (the arity-2 fast path) — the configuration the optimiser
//! produces for every path query. Execution goes through the physical
//! plan layer; the plans are pre-lowered outside the timed loop, as the
//! harness does.

use sgq_bench::{criterion_group, criterion_main, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_ra::term::{closure_fixpoint, RaTerm};
use sgq_ra::{plan, RelStore};

fn bench(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.3));
    let mut store = RelStore::load(&db);
    // This bench measures the scan-based operators (hash/merge joins and
    // cached fixpoint builds); CSR index joins are ablated here and
    // measured in `scan_join_strategies`.
    store.index_joins = false;
    let knows = schema.edge_label("knows").unwrap();
    let is_located_in = schema.edge_label("isLocatedIn").unwrap();
    let is_part_of = schema.edge_label("isPartOf").unwrap();
    let city = schema.node_label("City").unwrap();
    let s = &store.symbols;
    let (x, y, z, m) = (s.col("x"), s.col("y"), s.col("z"), s.col("m"));

    let scan = |label, src, tgt| RaTerm::EdgeScan { label, src, tgt };

    let mut group = c.benchmark_group("ra_operators");
    group.bench_function("hash_join_knows_isLocatedIn", |b| {
        let t = RaTerm::join(scan(knows, x, y), scan(is_located_in, y, z));
        let p = plan(&t, &store).unwrap();
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("merge_join_knows_isLocatedIn", |b| {
        // Shared column x leads both schemas: the planner picks a merge
        // join over the same data volume as the hash variant above.
        let t = RaTerm::join(scan(knows, x, y), scan(is_located_in, x, z));
        let p = plan(&t, &store).unwrap();
        assert!(matches!(p.op, sgq_ra::PhysOp::MergeJoin { .. }));
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("semijoin_isLocatedIn_city", |b| {
        let t = RaTerm::semijoin(
            scan(is_located_in, x, y),
            RaTerm::NodeScan {
                labels: vec![city],
                col: y,
            },
        );
        let p = plan(&t, &store).unwrap();
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("fixpoint_isPartOf_closure", |b| {
        let t = closure_fixpoint(s.recvar("X"), scan(is_part_of, x, y), x, y, m);
        let p = plan(&t, &store).unwrap();
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("parallel_fixpoint_isPartOf_closure", |b| {
        // The same closure with each round's delta probe split into
        // morsels against the cached static build side (DOP 4; the
        // threshold is lowered so every round parallelises even as the
        // delta shrinks).
        let t = closure_fixpoint(s.recvar("X"), scan(is_part_of, x, y), x, y, m);
        let p = plan(&t, &store).unwrap();
        b.iter(|| {
            let mut ctx = ExecContext::new();
            ctx.dop = 4;
            ctx.parallel_threshold = 1024;
            execute_plan(&p, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("fixpoint_isPartOf_closure_uncached", |b| {
        // Same plan with static build-side caching disabled: every round
        // rebuilds the isPartOf hash table.
        let t = closure_fixpoint(s.recvar("X"), scan(is_part_of, x, y), x, y, m);
        let p = plan(&t, &store).unwrap();
        b.iter(|| {
            let mut ctx = ExecContext::new();
            ctx.no_fixpoint_cache = true;
            execute_plan(&p, &store, &mut ctx).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
