//! Micro-benchmarks of the relational substrate: hash join, semi-join and
//! the semi-naive transitive-closure fixpoint.
//!
//! All terms are built from interned [`sgq_common::ColId`]s resolved
//! through the store's symbol table, so the joins here key on single
//! `u32`s (the arity-2 fast path) — the configuration the optimiser
//! produces for every path query.

use sgq_bench::{criterion_group, criterion_main, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_ra::exec::{execute, ExecContext};
use sgq_ra::term::{closure_fixpoint, RaTerm};
use sgq_ra::RelStore;

fn bench(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.3));
    let store = RelStore::load(&db);
    let knows = schema.edge_label("knows").unwrap();
    let is_located_in = schema.edge_label("isLocatedIn").unwrap();
    let is_part_of = schema.edge_label("isPartOf").unwrap();
    let city = schema.node_label("City").unwrap();
    let s = &store.symbols;
    let (x, y, z, m) = (s.col("x"), s.col("y"), s.col("z"), s.col("m"));

    let scan = |label, src, tgt| RaTerm::EdgeScan { label, src, tgt };

    let mut group = c.benchmark_group("ra_operators");
    group.bench_function("hash_join_knows_isLocatedIn", |b| {
        let t = RaTerm::join(scan(knows, x, y), scan(is_located_in, y, z));
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute(&t, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("semijoin_isLocatedIn_city", |b| {
        let t = RaTerm::semijoin(
            scan(is_located_in, x, y),
            RaTerm::NodeScan {
                labels: vec![city],
                col: y,
            },
        );
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute(&t, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("fixpoint_isPartOf_closure", |b| {
        let t = closure_fixpoint(s.recvar("X"), scan(is_part_of, x, y), x, y, m);
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute(&t, &store, &mut ctx).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
