//! Micro-benchmarks of the relational substrate: hash join, semi-join and
//! the semi-naive transitive-closure fixpoint.

use criterion::{criterion_group, criterion_main, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_ra::exec::{execute, ExecContext};
use sgq_ra::term::{closure_fixpoint, RaTerm};
use sgq_ra::RelStore;

fn bench(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.3));
    let store = RelStore::load(&db);
    let knows = schema.edge_label("knows").unwrap();
    let is_located_in = schema.edge_label("isLocatedIn").unwrap();
    let is_part_of = schema.edge_label("isPartOf").unwrap();
    let city = schema.node_label("City").unwrap();

    let scan = |label, src: &str, tgt: &str| RaTerm::EdgeScan {
        label,
        src: src.into(),
        tgt: tgt.into(),
    };

    let mut group = c.benchmark_group("ra_operators");
    group.bench_function("hash_join_knows_isLocatedIn", |b| {
        let t = RaTerm::join(scan(knows, "x", "y"), scan(is_located_in, "y", "z"));
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute(&t, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("semijoin_isLocatedIn_city", |b| {
        let t = RaTerm::semijoin(
            scan(is_located_in, "x", "y"),
            RaTerm::NodeScan {
                labels: vec![city],
                col: "y".into(),
            },
        );
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute(&t, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("fixpoint_isPartOf_closure", |b| {
        let t = closure_fixpoint("X", scan(is_part_of, "x", "y"), "x", "y", "m");
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute(&t, &store, &mut ctx).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
