//! Rewriter-cost bench: how long the schema-based rewrite itself takes
//! (the paper's optimisation must be cheap relative to execution).

use sgq_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_core::pipeline::{rewrite_path, RewriteOptions};
use sgq_datasets::{ldbc, yago};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("rewrite_pipeline");
    let lschema = ldbc::schema();
    for q in ldbc::queries(&lschema).expect("catalog parses") {
        if !matches!(q.name, "IC1" | "IC13" | "Y1" | "BI11") {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("ldbc", q.name), &q.expr, |b, expr| {
            b.iter(|| rewrite_path(&lschema, expr, RewriteOptions::default()))
        });
    }
    let yschema = yago::schema();
    for q in yago::queries(&yschema).expect("catalog parses") {
        if !matches!(q.name, "Y1" | "Y6" | "Y9") {
            continue;
        }
        group.bench_with_input(BenchmarkId::new("yago", q.name), &q.expr, |b, expr| {
            b.iter(|| rewrite_path(&yschema, expr, RewriteOptions::default()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
