//! Multi-threaded serving throughput: worker sweep × plan-cache ablation.
//!
//! Closed loop over the LDBC smoke workload (SF 0.1 catalog, 8 client
//! threads, each keeping one query in flight — the shared
//! `sgq_harness::experiments::run_clients` driver): for 1/2/4/8 workers
//! and cached vs uncached plans, times one full client pass and prints a
//! QPS summary with the 1 → 4 worker scaling factor. On a single-CPU
//! host the pool time-slices one core, so QPS stays flat while p50
//! drops; the scaling factor materialises with ≥ 4 hardware threads.

use std::sync::Arc;
use std::time::Instant;

use sgq_bench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_harness::experiments::run_clients;
use sgq_service::{QueryOptions, Service, ServiceConfig};

const CLIENTS: usize = 8;

fn service_throughput(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.1));
    let schema = Arc::new(schema);
    let db = Arc::new(db);
    // One relational load shared by every service in the sweep.
    let store = Arc::new(sgq_ra::RelStore::load(&db));
    let queries: Vec<String> = ldbc::queries(&schema)
        .expect("catalog parses")
        .iter()
        .map(|q| q.text.to_string())
        .collect();

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(3);
    let mut qps_table: Vec<(usize, bool, f64)> = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        for cached in [false, true] {
            let service = Service::with_store(
                Arc::clone(&schema),
                Arc::clone(&db),
                Arc::clone(&store),
                ServiceConfig {
                    workers,
                    queue_capacity: CLIENTS * 2,
                    ..Default::default()
                },
            );
            let opts = QueryOptions {
                use_cache: cached,
                ..Default::default()
            };
            if cached {
                // Warm the plan cache so the ablation measures execution.
                let session = service.session();
                for q in &queries {
                    session.prepare(q, &opts).expect("warmup prepares");
                }
            }
            group.bench_with_input(
                BenchmarkId::new(
                    format!("workers/{workers}"),
                    if cached { "cached" } else { "uncached" },
                ),
                &(),
                |b, ()| b.iter(|| run_clients(&service, &queries, CLIENTS, 1, &opts)),
            );
            // One dedicated pass for the QPS summary.
            let start = Instant::now();
            let (completed, _busy) = run_clients(&service, &queries, CLIENTS, 1, &opts);
            assert_eq!(service.metrics().errors, 0, "bench queries must succeed");
            qps_table.push((
                workers,
                cached,
                completed as f64 / start.elapsed().as_secs_f64(),
            ));
            service.shutdown();
        }
    }
    // --- Intra-query DOP sweep: a fixed 2-worker pool, each query
    //     fanning its morsels across the shared exec scheduler via
    //     `QueryOptions::dop`. The threshold is lowered so the smoke
    //     catalog's probes actually parallelise at SF 0.1. ---
    let mut dop_table: Vec<(usize, f64)> = Vec::new();
    for dop in [1usize, 2, 4, 8] {
        let service = Service::with_store(
            Arc::clone(&schema),
            Arc::clone(&db),
            Arc::clone(&store),
            ServiceConfig {
                workers: 2,
                queue_capacity: CLIENTS * 2,
                max_dop: 8,
                parallel_row_threshold: 1024,
                ..Default::default()
            },
        );
        let opts = QueryOptions {
            dop: Some(dop),
            ..Default::default()
        };
        let session = service.session();
        for q in &queries {
            session.prepare(q, &opts).expect("warmup prepares");
        }
        group.bench_with_input(BenchmarkId::new("dop", dop), &(), |b, ()| {
            b.iter(|| run_clients(&service, &queries, CLIENTS, 1, &opts))
        });
        let start = Instant::now();
        let (completed, _busy) = run_clients(&service, &queries, CLIENTS, 1, &opts);
        let m = service.metrics();
        assert_eq!(m.errors, 0, "bench queries must succeed");
        dop_table.push((dop, completed as f64 / start.elapsed().as_secs_f64()));
        if dop > 1 {
            println!(
                "  dop={dop}: {} of {} queries ran parallel sections ({} morsels)",
                m.parallel_queries, m.completed, m.morsels_executed
            );
        }
        service.shutdown();
    }
    group.finish();

    println!("\nservice_throughput summary ({CLIENTS} clients, LDBC SF0.1 catalog):");
    for &(workers, cached, qps) in &qps_table {
        println!(
            "  {workers} workers, cache {}: {qps:.1} qps",
            if cached { "on " } else { "off" }
        );
    }
    let qps_of = |w: usize, cached: bool| {
        qps_table
            .iter()
            .find(|&&(wk, c, _)| wk == w && c == cached)
            .map(|&(_, _, q)| q)
            .unwrap_or(0.0)
    };
    println!(
        "  scaling 1 -> 4 workers: {:.2}x cached, {:.2}x uncached ({} hardware threads)",
        qps_of(4, true) / qps_of(1, true).max(1e-9),
        qps_of(4, false) / qps_of(1, false).max(1e-9),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
    let dop1 = dop_table.first().map_or(0.0, |&(_, q)| q).max(1e-9);
    for &(dop, qps) in &dop_table {
        println!(
            "  intra-query dop={dop} (2 workers): {qps:.1} qps, speedup {:.2}x",
            qps / dop1
        );
    }
}

criterion_group!(benches, service_throughput);
criterion_main!(benches);
