//! Micro-benchmarks of the zero-copy storage layer and the join
//! strategy triangle: CSR index joins vs hash vs merge, across probe
//! selectivities, plus the closure fixpoint with and without the
//! adjacency indexes.
//!
//! * `scan/*` pins the tentpole: handing out a base table is an O(1)
//!   shared handle (`edge_table`), against the pre-zero-copy behaviour
//!   (`deep_clone`, a full buffer copy) and full plan execution of a
//!   bare scan.
//! * `join/*` plans the same logical join `probe(w,y) ⋈ knows(y,z)`
//!   with the indexes on (→ `IndexJoin`) and ablated (→ `HashJoin`),
//!   for probe sides of decreasing selectivity (hasModerator ≪ workAt ≪
//!   likes), plus the aligned self-join where the ablated planner picks
//!   a merge join. The index plan must win on the selective probes —
//!   that is the acceptance gate this bench exists to measure.

use sgq_bench::{criterion_group, criterion_main, Criterion};
use sgq_datasets::ldbc::{self, LdbcConfig};
use sgq_ra::exec::{execute_plan, ExecContext};
use sgq_ra::term::{closure_fixpoint, RaTerm};
use sgq_ra::{plan, PhysOp, RelStore};

fn bench(c: &mut Criterion) {
    let (schema, db) = ldbc::generate(LdbcConfig::at_scale(0.3));
    let mut store = RelStore::load(&db);
    let knows = schema.edge_label("knows").unwrap();
    let is_part_of = schema.edge_label("isPartOf").unwrap();
    let s = &store.symbols;
    let (w, x, y, z, m) = (s.col("w"), s.col("x"), s.col("y"), s.col("z"), s.col("m"));
    let scan = |label, src, tgt| RaTerm::EdgeScan { label, src, tgt };

    let mut group = c.benchmark_group("scan_join_strategies");

    // --- Scans: shared handle vs the old copying path. ---
    let table = store.edge_table(knows);
    println!("knows table: {} rows", table.len());
    group.bench_function("scan/zero_copy_handle", |b| {
        b.iter(|| store.edge_table(knows))
    });
    group.bench_function("scan/deep_clone_old_path", |b| {
        b.iter(|| table.deep_clone())
    });
    let scan_plan = plan(&scan(knows, x, y), &store).unwrap();
    group.bench_function("scan/execute_plan", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&scan_plan, &store, &mut ctx).unwrap()
        })
    });

    // --- Index vs hash join across probe selectivities. ---
    // Each probe label targets persons, so `probe(w,y) ⋈ knows(y,z)`
    // expands person neighbourhoods; probe sizes span ~2 orders of
    // magnitude at SF 0.3.
    for probe_label in ["hasModerator", "workAt", "likes"] {
        let le = schema.edge_label(probe_label).unwrap();
        let t = RaTerm::join(scan(le, w, y), scan(knows, y, z));
        store.index_joins = true;
        let p_index = plan(&t, &store).unwrap();
        store.index_joins = false;
        let p_scan = plan(&t, &store).unwrap();
        store.index_joins = true;
        let indexed = p_index.contains_op(&|op| matches!(op, PhysOp::IndexJoin { .. }));
        println!(
            "join probe {probe_label}: {} rows, index plan uses IndexJoin = {indexed}",
            store.edge_table(le).len()
        );
        group.bench_function(format!("join/index/{probe_label}"), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::new();
                execute_plan(&p_index, &store, &mut ctx).unwrap()
            })
        });
        group.bench_function(format!("join/hash/{probe_label}"), |b| {
            assert!(p_scan.contains_op(&|op| matches!(op, PhysOp::HashJoin { .. })));
            b.iter(|| {
                let mut ctx = ExecContext::new();
                execute_plan(&p_scan, &store, &mut ctx).unwrap()
            })
        });
    }

    // --- Morsel-driven parallelism: DOP sweep over the largest probe.
    //     Results are asserted identical to serial before timing; the
    //     printed speedups are the intra-query scaling figure (expect
    //     >= 1.5x at DOP 4 on a multi-core host for these probes). ---
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("hardware threads: {hw}");
    let likes = schema.edge_label("likes").unwrap();
    let big = RaTerm::join(scan(likes, w, y), scan(knows, y, z));
    store.index_joins = true;
    let p_par_index = plan(&big, &store).unwrap();
    store.index_joins = false;
    let p_par_hash = plan(&big, &store).unwrap();
    store.index_joins = true;
    for (name, p) in [("index", &p_par_index), ("hash", &p_par_hash)] {
        let run = |dop: usize| {
            let mut ctx = ExecContext::new();
            ctx.dop = dop;
            // The sweep measures scaling, not the admission gate: force
            // parallel sections even if this scale sits near the default
            // 16K-row threshold.
            ctx.parallel_threshold = 1024;
            execute_plan(p, &store, &mut ctx).unwrap()
        };
        let serial = run(1);
        let mut base_s = 0.0;
        for dop in [1usize, 2, 4, 8] {
            assert_eq!(serial, run(dop), "DOP={dop} diverged on {name}/likes");
            let reps = 5;
            let start = std::time::Instant::now();
            for _ in 0..reps {
                std::hint::black_box(run(dop));
            }
            let per_run = start.elapsed().as_secs_f64() / reps as f64;
            if dop == 1 {
                base_s = per_run;
            }
            println!(
                "parallel/{name}/likes dop={dop}: {:.2} ms/run, speedup {:.2}x",
                per_run * 1e3,
                base_s / per_run
            );
            group.bench_function(format!("parallel/{name}/likes/dop{dop}"), |b| {
                b.iter(|| run(dop))
            });
        }
    }

    // --- Physical storage layouts: the same label-filtered scan under
    //     the per-label (fused hash filter), polymorphic (masked pass)
    //     and denormalised (precomputed slice) stores. `likes` spans two
    //     endpoint triples (Person→Post, Person→Comment), so the slice
    //     hands out only the Post half without touching node tables —
    //     it must plan strictly cheaper than the fused filter. ---
    let post = db.node_label_id("Post").unwrap();
    let likes_to_posts = RaTerm::semijoin(
        scan(likes, w, y),
        RaTerm::NodeScan {
            labels: vec![post],
            col: y,
        },
    );
    let mut layout_reference: Option<sgq_ra::Relation> = None;
    let mut layout_costs = Vec::new();
    for kind in sgq_ra::LayoutKind::ALL {
        let lstore = RelStore::load_with_layout(&db, kind);
        let p = plan(&likes_to_posts, &lstore).unwrap();
        println!(
            "layout {kind}: likes[Post] root op {} (cost {:.0})",
            p.op.kind(),
            p.est.cost
        );
        layout_costs.push(p.est.cost);
        let mut ctx = ExecContext::new();
        let out = execute_plan(&p, &lstore, &mut ctx).unwrap();
        match &layout_reference {
            Some(r) => assert_eq!(r, &out, "layout {kind} diverged on likes[Post]"),
            None => layout_reference = Some(out),
        }
        group.bench_function(format!("layout/{kind}/likes_to_posts"), |b| {
            b.iter(|| {
                let mut ctx = ExecContext::new();
                execute_plan(&p, &lstore, &mut ctx).unwrap()
            })
        });
    }
    assert!(
        layout_costs[2] < layout_costs[0],
        "the denormalised slice must plan cheaper than the fused filter: {layout_costs:?}"
    );

    // --- Aligned self-join: merge (ablated) vs whatever the cost model
    //     picks with the indexes on. ---
    let aligned = RaTerm::join(scan(knows, x, y), scan(knows, x, z));
    store.index_joins = false;
    let p_merge = plan(&aligned, &store).unwrap();
    assert!(matches!(p_merge.op, PhysOp::MergeJoin { .. }));
    store.index_joins = true;
    let p_default = plan(&aligned, &store).unwrap();
    group.bench_function("join/merge_ablated/knows_self", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p_merge, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("join/default/knows_self", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p_default, &store, &mut ctx).unwrap()
        })
    });

    // --- Mid-flight re-planning at the hash-join boundary. ---
    // Poison the feedback memo so the planner builds the big join side;
    // execution detects the blowup at the materialisation boundary and
    // flips the build side. The poisoned-vs-reference delta is the
    // plan-switch latency; on non-replanned queries the trigger check
    // must cost nothing (asserted < 5%).
    store.index_joins = false;
    store.feedback.clear();
    let join_t = RaTerm::join(scan(likes, w, y), scan(knows, y, z));
    let p_ref = plan(&join_t, &store).unwrap();
    let (big_term, big_len) = {
        let (l, k) = (store.edge_table(likes).len(), store.edge_table(knows).len());
        if l >= k {
            (scan(likes, w, y), l)
        } else {
            (scan(knows, y, z), k)
        }
    };
    store
        .feedback
        .observe(sgq_ra::cost::fingerprint(&big_term, &store), 0);
    let p_poisoned = plan(&join_t, &store).unwrap();
    store.feedback.clear();
    store.index_joins = true;
    let mut ctx = ExecContext::new();
    let flipped = execute_plan(&p_poisoned, &store, &mut ctx).unwrap();
    assert_eq!(
        ctx.replans, 1,
        "the poisoned build side ({big_len} rows, estimated 0) must flip"
    );
    let mut ctx = ExecContext::new();
    let reference = execute_plan(&p_ref, &store, &mut ctx).unwrap();
    assert_eq!(ctx.replans, 0);
    assert_eq!(flipped, reference, "the flip must not change results");
    let time_min = |p: &sgq_ra::PhysPlan, replan_factor: f64| {
        let reps = 20;
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            let mut ctx = ExecContext::new();
            ctx.replan_factor = replan_factor;
            let start = std::time::Instant::now();
            std::hint::black_box(execute_plan(p, &store, &mut ctx).unwrap());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };
    let t_poisoned = time_min(&p_poisoned, sgq_ra::exec::REPLAN_FACTOR);
    let t_reference = time_min(&p_ref, sgq_ra::exec::REPLAN_FACTOR);
    println!(
        "replan trigger: poisoned-plan flip {:.3} ms vs reference {:.3} ms \
         (plan-switch latency {:+.1}%)",
        t_poisoned * 1e3,
        t_reference * 1e3,
        (t_poisoned / t_reference - 1.0) * 100.0
    );
    let t_guarded = time_min(&p_ref, sgq_ra::exec::REPLAN_FACTOR);
    let t_unguarded = time_min(&p_ref, 0.0);
    let overhead = t_guarded / t_unguarded - 1.0;
    println!(
        "replan trigger overhead on a non-replanned query: {:+.2}% \
         (guarded {:.3} ms, unguarded {:.3} ms)",
        overhead * 100.0,
        t_guarded * 1e3,
        t_unguarded * 1e3
    );
    assert!(
        overhead < 0.05,
        "replan trigger must be free on non-replanned queries: {:+.2}%",
        overhead * 100.0
    );
    group.bench_function("replan/poisoned_build_flip", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p_poisoned, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("replan/reference_no_flip", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p_ref, &store, &mut ctx).unwrap()
        })
    });

    // --- The closure fixpoint: CSR probes vs cached hash builds. ---
    let closure = closure_fixpoint(s.recvar("X"), scan(is_part_of, x, y), x, y, m);
    let p_index = plan(&closure, &store).unwrap();
    assert!(p_index.contains_op(&|op| matches!(op, PhysOp::IndexJoin { .. })));
    store.index_joins = false;
    let p_hash = plan(&closure, &store).unwrap();
    store.index_joins = true;
    group.bench_function("fixpoint/isPartOf_closure_index", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p_index, &store, &mut ctx).unwrap()
        })
    });
    group.bench_function("fixpoint/isPartOf_closure_hash_cached", |b| {
        b.iter(|| {
            let mut ctx = ExecContext::new();
            execute_plan(&p_hash, &store, &mut ctx).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
