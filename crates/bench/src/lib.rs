//! placeholder (under construction)
