//! A std-only micro-benchmark harness with a `criterion`-compatible
//! surface.
//!
//! The workspace is dependency-free (no network at build time), so the
//! benches in `benches/` run on this ~150-line harness instead of the
//! `criterion` crate: same `Criterion` / `benchmark_group` /
//! `bench_function` / `bench_with_input` / `criterion_group!` /
//! `criterion_main!` shape, wall-clock timing via [`std::time::Instant`],
//! and a min/mean/max report per benchmark. Set `SGQ_BENCH_SAMPLES` to
//! change the per-benchmark sample count (default 10).

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub use std::hint::black_box;

/// Top-level benchmark driver (criterion-compatible shape).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("SGQ_BENCH_SAMPLES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }
}

/// A named benchmark group.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark identified by `id`.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.samples);
        self
    }

    /// Runs one parameterised benchmark.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        report(&self.name, &id.0, &b.samples);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// A `function/parameter` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter display.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`: one untimed warm-up call, then `sample_size` timed
    /// calls. The return value is passed through [`black_box`] so the
    /// optimiser cannot discard the work.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{group}/{id}: [min {} mean {} max {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

/// Collects benchmark functions into a runnable group function
/// (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the listed groups (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion { sample_size: 3 };
        let mut group = c.benchmark_group("t");
        let mut calls = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        // one warm-up + three timed calls
        assert_eq!(calls, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10ns");
        assert_eq!(fmt_duration(Duration::from_micros(2)), "2.00µs");
        assert_eq!(fmt_duration(Duration::from_millis(3)), "3.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(4)), "4.00s");
    }

    #[test]
    fn benchmark_id_joins_parts() {
        assert_eq!(BenchmarkId::new("f", "p").0, "f/p");
    }
}
