//! The lock-cheap tracer: decides *whether* to trace a query and keeps
//! the most recent traces in a fixed-capacity ring buffer.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::{QueryTrace, QueryTraceBuilder, TraceClock};

/// Decides per query whether to record a trace and retains the most
/// recent ones. Designed so the *disabled* path costs one relaxed
/// atomic load per query and nothing per operator:
///
/// * [`should_trace`](Tracer::should_trace) loads the enabled flag with
///   `Ordering::Relaxed` and returns before touching anything else;
/// * span ids come from a single shared `AtomicU64` so builders on
///   different worker threads never collide;
/// * the ring buffer behind a `Mutex` is touched once per *traced*
///   query, never on the per-operator path (operator spans accumulate
///   in the interpreter-owned [`crate::OpTraceBuilder`]).
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    /// Trace 1 in N queries when enabled (0 behaves like 1).
    sample_every: AtomicU64,
    /// Queries offered to the sampler since construction.
    offered: AtomicU64,
    /// Shared span-id sequence; 0 is reserved for "no parent".
    span_ids: Arc<AtomicU64>,
    trace_ids: AtomicU64,
    clock: TraceClock,
    capacity: usize,
    ring: Mutex<VecDeque<Arc<QueryTrace>>>,
}

impl Tracer {
    /// A tracer retaining up to `capacity` traces, initially disabled.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(1),
            offered: AtomicU64::new(0),
            span_ids: Arc::new(AtomicU64::new(1)),
            trace_ids: AtomicU64::new(1),
            clock: TraceClock::new(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    /// Turns tracing on or off; takes effect on the next query.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Sets the sampling knob: trace 1 in `n` queries (1 = every query).
    pub fn set_sample_every(&self, n: u64) {
        self.sample_every.store(n.max(1), Ordering::Relaxed);
    }

    pub fn sample_every(&self) -> u64 {
        self.sample_every.load(Ordering::Relaxed)
    }

    /// Per-query decision point. When tracing is disabled this is one
    /// relaxed load; when enabled it also bumps the sample counter.
    pub fn should_trace(&self) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let n = self.sample_every.load(Ordering::Relaxed).max(1);
        self.offered
            .fetch_add(1, Ordering::Relaxed)
            .is_multiple_of(n)
    }

    /// The clock all traces of this tracer are stamped against.
    pub fn clock(&self) -> TraceClock {
        self.clock
    }

    /// A builder for one query's trace, sharing this tracer's clock and
    /// span-id sequence.
    pub fn builder(&self, query: impl Into<String>) -> QueryTraceBuilder {
        let trace_id = self.trace_ids.fetch_add(1, Ordering::Relaxed);
        QueryTraceBuilder::new(
            self.clock,
            Arc::clone(&self.span_ids),
            trace_id,
            query.into(),
        )
    }

    /// Retains a finished trace, evicting the oldest past capacity.
    pub fn record(&self, trace: Arc<QueryTrace>) {
        let mut ring = self.ring.lock().expect("tracer ring poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(trace);
    }

    /// The retained traces, oldest first.
    pub fn recent(&self) -> Vec<Arc<QueryTrace>> {
        self.ring
            .lock()
            .expect("tracer ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Drains and returns the retained traces, oldest first.
    pub fn drain(&self) -> Vec<Arc<QueryTrace>> {
        self.ring
            .lock()
            .expect("tracer ring poisoned")
            .drain(..)
            .collect()
    }

    /// Number of retained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("tracer ring poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_never_samples() {
        let t = Tracer::new(4);
        assert!(!t.is_enabled());
        for _ in 0..100 {
            assert!(!t.should_trace());
        }
    }

    #[test]
    fn sampling_traces_one_in_n() {
        let t = Tracer::new(4);
        t.set_enabled(true);
        t.set_sample_every(3);
        let hits = (0..9).filter(|_| t.should_trace()).count();
        assert_eq!(hits, 3);
        t.set_sample_every(1);
        assert!((0..5).all(|_| t.should_trace()));
    }

    #[test]
    fn ring_evicts_oldest_at_capacity() {
        let t = Tracer::new(2);
        for i in 0..3u64 {
            let mut b = t.builder(format!("q{i}"));
            let s = b.begin("query");
            b.end(s);
            t.record(Arc::new(b.finish()));
        }
        let kept = t.recent();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].query, "q1");
        assert_eq!(kept[1].query, "q2");
        // Trace ids are unique and increasing.
        assert!(kept[0].trace_id < kept[1].trace_id);
        assert_eq!(t.drain().len(), 2);
        assert!(t.is_empty());
    }

    #[test]
    fn span_ids_are_unique_across_threads() {
        let t = Arc::new(Tracer::new(64));
        t.set_enabled(true);
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for j in 0..50 {
                        let mut b = t.builder(format!("t{i}q{j}"));
                        let s = b.begin("query");
                        b.end(s);
                        t.record(Arc::new(b.finish()));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut ids: Vec<u64> = t
            .recent()
            .iter()
            .flat_map(|tr| tr.phases.iter().map(|s| s.id))
            .collect();
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "span ids collided across threads");
    }
}
