//! Chrome-trace-event export: renders [`QueryTrace`]s as the JSON
//! object format (`{"traceEvents": [...]}`) that Perfetto and
//! `chrome://tracing` load directly.
//!
//! Every span becomes a complete (`"ph": "X"`) event with microsecond
//! `ts`/`dur` on the trace clock's timeline. Phase spans carry
//! `"cat": "phase"`, operator spans `"cat": "operator"`; each query
//! renders on its own track via `tid = trace_id`, so a multi-query
//! export shows concurrent queries stacked per track.

use std::sync::Arc;

use sgq_common::json::JsonValue;

use crate::span::{OpSpan, QueryTrace, Span, TagValue};

/// Process id used for all exported events (one logical process).
const PID: u64 = 1;

fn tag_value(v: &TagValue) -> JsonValue {
    match v {
        TagValue::Bool(b) => JsonValue::Bool(*b),
        TagValue::Int(n) => JsonValue::Int(*n),
        TagValue::Num(f) => JsonValue::Num(*f),
        TagValue::Str(s) => JsonValue::str(s.clone()),
    }
}

fn phase_event(trace: &QueryTrace, span: &Span) -> JsonValue {
    let mut args: Vec<(String, JsonValue)> = span
        .tags
        .iter()
        .map(|(k, v)| ((*k).to_string(), tag_value(v)))
        .collect();
    if span.parent == 0 {
        args.push(("query".to_string(), JsonValue::str(trace.query.clone())));
        args.push((
            "fingerprint".to_string(),
            JsonValue::str(format!("{:016x}", trace.fingerprint)),
        ));
    }
    JsonValue::obj([
        ("name", JsonValue::str(span.name)),
        ("cat", JsonValue::str("phase")),
        ("ph", JsonValue::str("X")),
        ("ts", JsonValue::Int(span.start_us)),
        ("dur", JsonValue::Int(span.dur_us)),
        ("pid", JsonValue::Int(PID)),
        ("tid", JsonValue::Int(trace.trace_id)),
        ("args", JsonValue::Obj(args)),
    ])
}

fn op_event(trace: &QueryTrace, op: &OpSpan) -> JsonValue {
    JsonValue::obj([
        ("name", JsonValue::str(op.kind)),
        ("cat", JsonValue::str("operator")),
        ("ph", JsonValue::str("X")),
        ("ts", JsonValue::Int(op.start_us)),
        ("dur", JsonValue::Int(op.dur_us)),
        ("pid", JsonValue::Int(PID)),
        ("tid", JsonValue::Int(trace.trace_id)),
        (
            "args",
            JsonValue::obj([
                ("node", JsonValue::Int(op.node as u64)),
                ("rows", JsonValue::Int(op.rows as u64)),
                ("est_rows", JsonValue::Num(op.est_rows)),
                ("self_us", JsonValue::Int(op.self_us)),
            ]),
        ),
    ])
}

/// Renders one trace as a Chrome-trace JSON document tree.
pub fn chrome_trace(trace: &QueryTrace) -> JsonValue {
    chrome_traces(std::slice::from_ref(trace))
}

/// Renders several traces into one document; each query occupies its
/// own `tid` track.
pub fn chrome_traces<T: std::borrow::Borrow<QueryTrace>>(traces: &[T]) -> JsonValue {
    let mut events = Vec::new();
    for t in traces {
        let t = t.borrow();
        for span in &t.phases {
            events.push(phase_event(t, span));
        }
        for op in &t.ops {
            events.push(op_event(t, op));
        }
    }
    JsonValue::obj([
        ("traceEvents", JsonValue::Arr(events)),
        ("displayTimeUnit", JsonValue::str("ms")),
    ])
}

/// Renders a batch of shared traces to the final JSON string.
pub fn chrome_traces_json(traces: &[Arc<QueryTrace>]) -> String {
    chrome_traces(traces).render()
}

impl QueryTrace {
    /// This trace as a Chrome-trace JSON string (Perfetto-loadable).
    pub fn to_chrome_json(&self) -> String {
        chrome_trace(self).render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::QueryTraceBuilder;
    use sgq_common::json::parse;

    #[test]
    fn export_parses_and_carries_both_categories() {
        let mut tb = QueryTraceBuilder::standalone("select *");
        tb.set_fingerprint(0xabcd);
        let root = tb.begin("query");
        let exec = tb.begin("execute");
        tb.end_tagged(exec, vec![("rows", 3usize.into())]);
        tb.end(root);
        tb.set_ops(vec![OpSpan {
            node: 2,
            kind: "HashJoin",
            start_us: 1,
            dur_us: 5,
            self_us: 4,
            est_rows: 2.5,
            rows: 3,
        }]);
        let trace = tb.finish();
        let doc = parse(&trace.to_chrome_json()).expect("chrome export parses");
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(events.len(), 3);
        for e in events {
            assert_eq!(e.get("ph").and_then(JsonValue::as_str), Some("X"));
            assert!(e.get("ts").and_then(JsonValue::as_u64).is_some());
            assert!(e.get("dur").and_then(JsonValue::as_u64).is_some());
            assert_eq!(e.get("tid").and_then(JsonValue::as_u64), Some(1));
        }
        let root_event = events
            .iter()
            .find(|e| e.get("name").and_then(JsonValue::as_str) == Some("query"))
            .unwrap();
        let args = root_event.get("args").unwrap();
        assert_eq!(
            args.get("query").and_then(JsonValue::as_str),
            Some("select *")
        );
        assert_eq!(
            args.get("fingerprint").and_then(JsonValue::as_str),
            Some("000000000000abcd")
        );
        let op = events
            .iter()
            .find(|e| e.get("cat").and_then(JsonValue::as_str) == Some("operator"))
            .unwrap();
        assert_eq!(op.get("name").and_then(JsonValue::as_str), Some("HashJoin"));
        assert_eq!(
            op.get("args")
                .unwrap()
                .get("rows")
                .and_then(JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn multi_trace_export_keeps_tracks_separate() {
        let tracer = crate::Tracer::new(8);
        let mk = |q: &str| {
            let mut tb = tracer.builder(q);
            let s = tb.begin("query");
            tb.end(s);
            Arc::new(tb.finish())
        };
        let json = chrome_traces_json(&[mk("a"), mk("b")]);
        let doc = parse(&json).unwrap();
        let events = doc.get("traceEvents").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        let tids: Vec<u64> = events
            .iter()
            .filter_map(|e| e.get("tid").and_then(JsonValue::as_u64))
            .collect();
        assert_ne!(tids[0], tids[1], "each query renders on its own track");
    }
}
