//! Per-operator-kind runtime profiles, aggregated across queries.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::span::OpSpan;

/// Aggregate runtime profile of one operator kind.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OpKindProfile {
    /// Operator kind, e.g. `"HashJoin"`.
    pub kind: String,
    /// Evaluations recorded (spans).
    pub evals: u64,
    /// Rows materialised across those evaluations.
    pub rows: u64,
    /// Exclusive (self) time in microseconds.
    pub self_us: u64,
}

/// Always-on registry of per-operator-kind totals, fed by every traced
/// execution and merged into the service's `MetricsSnapshot`. One mutex
/// acquisition per traced query (never per operator): the interpreter
/// accumulates spans locally and [`record`](ProfileRegistry::record)
/// folds the finished batch in.
#[derive(Debug, Default)]
pub struct ProfileRegistry {
    kinds: Mutex<BTreeMap<&'static str, Cell>>,
}

#[derive(Default, Debug)]
struct Cell {
    evals: u64,
    rows: u64,
    self_us: u64,
}

impl ProfileRegistry {
    pub fn new() -> Self {
        ProfileRegistry::default()
    }

    /// Folds one execution's operator spans into the registry.
    pub fn record(&self, spans: &[OpSpan]) {
        if spans.is_empty() {
            return;
        }
        let mut kinds = self.kinds.lock().expect("profile registry poisoned");
        for s in spans {
            let cell = kinds.entry(s.kind).or_default();
            cell.evals += 1;
            cell.rows += s.rows as u64;
            cell.self_us += s.self_us;
        }
    }

    /// The current totals, ordered by self time (descending) then kind.
    pub fn snapshot(&self) -> Vec<OpKindProfile> {
        let kinds = self.kinds.lock().expect("profile registry poisoned");
        let mut out: Vec<OpKindProfile> = kinds
            .iter()
            .map(|(kind, c)| OpKindProfile {
                kind: (*kind).to_string(),
                evals: c.evals,
                rows: c.rows,
                self_us: c.self_us,
            })
            .collect();
        out.sort_by(|a, b| b.self_us.cmp(&a.self_us).then(a.kind.cmp(&b.kind)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: &'static str, rows: usize, self_us: u64) -> OpSpan {
        OpSpan {
            node: 0,
            kind,
            start_us: 0,
            dur_us: self_us,
            self_us,
            est_rows: 0.0,
            rows,
        }
    }

    #[test]
    fn record_aggregates_by_kind() {
        let reg = ProfileRegistry::new();
        reg.record(&[span("HashJoin", 10, 50), span("NodeScan", 4, 5)]);
        reg.record(&[span("HashJoin", 6, 25)]);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, "HashJoin");
        assert_eq!(snap[0].evals, 2);
        assert_eq!(snap[0].rows, 16);
        assert_eq!(snap[0].self_us, 75);
        assert_eq!(snap[1].kind, "NodeScan");
    }

    #[test]
    fn empty_batch_is_free_and_snapshot_stable() {
        let reg = ProfileRegistry::new();
        reg.record(&[]);
        assert!(reg.snapshot().is_empty());
    }
}
