//! # sgq_obs — span-based observability
//!
//! The instrumentation layer under the service and the relational
//! executor: a lock-cheap [`Tracer`] that records **phase spans**
//! (queue wait → cache lookup → prepare → execute) and **per-operator
//! spans** (kind, est vs actual rows, self time) onto one shared
//! microsecond timeline, plus the consumers built on those spans —
//! an always-on per-operator-kind [`ProfileRegistry`], a
//! [`SlowQueryLog`], and a Chrome-trace-event JSON exporter
//! ([`chrome_trace`]) loadable in Perfetto / `chrome://tracing`.
//!
//! ## Cost model
//!
//! * Tracing disabled: one relaxed atomic load per query
//!   ([`Tracer::should_trace`]); the executor's per-operator path sees
//!   only its pre-existing `Option` check.
//! * Tracing enabled: per-operator recording is two `Vec` pushes plus
//!   an `Instant` read inside the single-threaded interpreter — no
//!   locks or atomics per operator. Shared structures (trace ring,
//!   profile registry, slow-query log) are touched once per traced
//!   query.
//! * Sampling ([`Tracer::set_sample_every`]) bounds the enabled cost
//!   to 1-in-N queries.
//!
//! The crate depends only on `sgq_common` (for JSON) so every layer —
//! executor, service, harness — can share the same span types without
//! dependency cycles.

pub mod chrome;
pub mod profile;
pub mod slowlog;
pub mod span;
pub mod tracer;

pub use chrome::{chrome_trace, chrome_traces, chrome_traces_json};
pub use profile::{OpKindProfile, ProfileRegistry};
pub use slowlog::SlowQueryLog;
pub use span::{
    OpSpan, OpTraceBuilder, PendingSpan, QueryTrace, QueryTraceBuilder, Span, SpanId, TagValue,
    TraceClock, OP_SPAN_CAP,
};
pub use tracer::Tracer;

#[cfg(test)]
mod audits {
    use super::*;

    /// The shared structures cross worker threads inside the service.
    #[test]
    fn shared_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tracer>();
        assert_send_sync::<ProfileRegistry>();
        assert_send_sync::<SlowQueryLog>();
        assert_send_sync::<QueryTrace>();
        assert_send_sync::<OpSpan>();
    }
}
