//! Slow-query log: a ring buffer of traces for queries whose total
//! latency crossed a configurable threshold.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::span::QueryTrace;

/// Retains the traces of recent slow queries. The threshold check is a
/// relaxed atomic load and an integer compare; the trace itself is only
/// built (by the caller's closure) when the query actually crossed the
/// line, so fast queries pay nothing beyond the compare.
#[derive(Debug)]
pub struct SlowQueryLog {
    /// Latency threshold in microseconds; 0 disables the log.
    threshold_us: AtomicU64,
    /// Slow queries evicted from the ring before being drained.
    dropped: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<Arc<QueryTrace>>>,
}

impl SlowQueryLog {
    /// A log capturing up to `capacity` traces of queries slower than
    /// `threshold_us` microseconds (0 = disabled).
    pub fn new(threshold_us: u64, capacity: usize) -> Self {
        SlowQueryLog {
            threshold_us: AtomicU64::new(threshold_us),
            dropped: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
        }
    }

    pub fn threshold_us(&self) -> u64 {
        self.threshold_us.load(Ordering::Relaxed)
    }

    /// Reconfigures the threshold (0 disables the log).
    pub fn set_threshold_us(&self, us: u64) {
        self.threshold_us.store(us, Ordering::Relaxed);
    }

    /// Whether a query of `total_us` microseconds should be captured.
    pub fn is_slow(&self, total_us: u64) -> bool {
        let t = self.threshold_us.load(Ordering::Relaxed);
        t > 0 && total_us >= t
    }

    /// Captures `make()`'s trace if `total_us` crosses the threshold.
    pub fn offer(&self, total_us: u64, make: impl FnOnce() -> Arc<QueryTrace>) {
        if self.is_slow(total_us) {
            self.push(make());
        }
    }

    /// Appends a trace, evicting (and counting) the oldest at capacity.
    pub fn push(&self, trace: Arc<QueryTrace>) {
        let mut ring = self.ring.lock().expect("slow-query log poisoned");
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(trace);
    }

    /// Drains the captured traces, oldest first.
    pub fn drain(&self) -> Vec<Arc<QueryTrace>> {
        self.ring
            .lock()
            .expect("slow-query log poisoned")
            .drain(..)
            .collect()
    }

    /// Number of captured-but-undrained traces.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("slow-query log poisoned").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Slow queries lost to ring eviction since construction.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::QueryTraceBuilder;

    fn trace(q: &str) -> Arc<QueryTrace> {
        Arc::new(QueryTraceBuilder::standalone(q).finish())
    }

    #[test]
    fn threshold_gates_capture_and_zero_disables() {
        let log = SlowQueryLog::new(1_000, 4);
        log.offer(999, || trace("fast"));
        log.offer(1_000, || trace("slow"));
        assert_eq!(log.len(), 1);
        log.set_threshold_us(0);
        log.offer(u64::MAX, || trace("ignored"));
        let got = log.drain();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].query, "slow");
        assert!(log.is_empty());
    }

    #[test]
    fn capacity_evictions_are_counted() {
        let log = SlowQueryLog::new(1, 2);
        for i in 0..5 {
            log.offer(10, || trace(&format!("q{i}")));
        }
        assert_eq!(log.len(), 2);
        assert_eq!(log.dropped(), 3);
        let got = log.drain();
        assert_eq!(got[0].query, "q3");
        assert_eq!(got[1].query, "q4");
    }
}
