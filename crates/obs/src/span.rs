//! Span types and the builders that record them.
//!
//! Two span shapes cover the whole query lifecycle:
//!
//! * [`Span`] — a named **phase** (queue wait, cache lookup, prepare,
//!   execute) with explicit parent links, recorded by the service worker
//!   or a harness experiment through a [`QueryTraceBuilder`].
//! * [`OpSpan`] — one **operator evaluation** inside the relational
//!   executor, recorded by an [`OpTraceBuilder`] that the interpreter
//!   drives from its existing materialisation points. A node evaluated
//!   several times (a `RecRef` under a fixpoint, say) gets one span per
//!   evaluation; summing `rows` per node reproduces the `explain_analyze`
//!   actuals exactly.
//!
//! All timestamps are microseconds relative to a [`TraceClock`] epoch, so
//! spans from the service worker and from the executor share one timeline
//! and a Chrome-trace export nests them by plain time containment.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Identifier of a recorded span; `0` means "no parent" (a root span).
pub type SpanId = u64;

/// A monotonic microsecond clock anchored at an epoch. Cheap to copy;
/// every builder that should share a timeline is handed the same clock.
#[derive(Clone, Copy, Debug)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// A clock anchored at "now".
    pub fn new() -> Self {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Microseconds between the epoch and `t` (0 when `t` predates it).
    pub fn us_of(&self, t: Instant) -> u64 {
        t.checked_duration_since(self.epoch)
            .map_or(0, |d| d.as_micros() as u64)
    }
}

impl Default for TraceClock {
    fn default() -> Self {
        TraceClock::new()
    }
}

/// A tag value attached to a phase span.
#[derive(Debug, Clone, PartialEq)]
pub enum TagValue {
    Bool(bool),
    Int(u64),
    Num(f64),
    Str(String),
}

impl From<bool> for TagValue {
    fn from(v: bool) -> Self {
        TagValue::Bool(v)
    }
}
impl From<u64> for TagValue {
    fn from(v: u64) -> Self {
        TagValue::Int(v)
    }
}
impl From<usize> for TagValue {
    fn from(v: usize) -> Self {
        TagValue::Int(v as u64)
    }
}
impl From<f64> for TagValue {
    fn from(v: f64) -> Self {
        TagValue::Num(v)
    }
}
impl From<&str> for TagValue {
    fn from(v: &str) -> Self {
        TagValue::Str(v.to_string())
    }
}
impl From<String> for TagValue {
    fn from(v: String) -> Self {
        TagValue::Str(v)
    }
}

/// One lifecycle phase of a query.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    pub id: SpanId,
    /// Parent span id; `0` for a root.
    pub parent: SpanId,
    /// Phase name: `"query"`, `"queue"`, `"cache"`, `"prepare"`,
    /// `"execute"` in the service; experiment-defined in the harness.
    pub name: &'static str,
    /// Start, microseconds since the trace clock's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    pub tags: Vec<(&'static str, TagValue)>,
}

impl Span {
    /// End timestamp (start + duration).
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }

    /// Whether `other` lies entirely within this span's time range.
    pub fn contains(&self, start_us: u64, end_us: u64) -> bool {
        self.start_us <= start_us && end_us <= self.end_us()
    }
}

/// One evaluation of one physical operator.
#[derive(Debug, Clone, PartialEq)]
pub struct OpSpan {
    /// Pre-order plan node id.
    pub node: u32,
    /// Operator kind (`PhysOp::kind()`), e.g. `"HashJoin"`.
    pub kind: &'static str,
    /// Start, microseconds since the trace clock's epoch.
    pub start_us: u64,
    /// Inclusive duration (this evaluation plus its children).
    pub dur_us: u64,
    /// Exclusive duration: `dur_us` minus time spent in child
    /// evaluations — what this operator itself cost.
    pub self_us: u64,
    /// The planner's row estimate for the node.
    pub est_rows: f64,
    /// Rows materialised by this evaluation (a fixpoint `RecRef` span
    /// carries that round's delta).
    pub rows: usize,
}

impl OpSpan {
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

/// A complete trace of one query: phase spans plus (for the relational
/// backend) per-operator spans, all on one clock.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Tracer-unique id, also the Chrome-trace `tid` so every query gets
    /// its own track in Perfetto.
    pub trace_id: u64,
    /// The query text (canonical form when traced by the service).
    pub query: String,
    /// Plan fingerprint (0 when unknown, e.g. graph-backend queries).
    pub fingerprint: u64,
    /// Phase spans, in recording order.
    pub phases: Vec<Span>,
    /// Per-operator spans (empty for non-relational execution).
    pub ops: Vec<OpSpan>,
    /// End-to-end duration of the traced query in microseconds.
    pub total_us: u64,
}

impl QueryTrace {
    /// The first phase span with the given name, if any.
    pub fn phase(&self, name: &str) -> Option<&Span> {
        self.phases.iter().find(|s| s.name == name)
    }

    /// Sum of `rows` over this node's operator spans — equals the
    /// `explain_analyze` actual for the node.
    pub fn op_rows(&self, node: u32) -> usize {
        self.ops
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.rows)
            .sum()
    }
}

/// An open phase span handed out by [`QueryTraceBuilder::begin`].
#[derive(Debug)]
#[must_use = "an unfinished span is silently dropped"]
pub struct PendingSpan {
    id: SpanId,
    parent: SpanId,
    name: &'static str,
    start_us: u64,
}

/// Records the phase spans of one query. Single-threaded and lock-free;
/// span ids come from a shared atomic sequence so ids stay unique across
/// concurrent workers of one tracer.
#[derive(Debug)]
pub struct QueryTraceBuilder {
    clock: TraceClock,
    ids: Arc<AtomicU64>,
    trace_id: u64,
    query: String,
    fingerprint: u64,
    spans: Vec<Span>,
    /// Stack of open span ids; `begin` nests under the top.
    open: Vec<SpanId>,
    ops: Vec<OpSpan>,
}

impl QueryTraceBuilder {
    pub(crate) fn new(
        clock: TraceClock,
        ids: Arc<AtomicU64>,
        trace_id: u64,
        query: String,
    ) -> Self {
        QueryTraceBuilder {
            clock,
            ids,
            trace_id,
            query,
            fingerprint: 0,
            spans: Vec::new(),
            open: Vec::new(),
            ops: Vec::new(),
        }
    }

    /// A builder with its own clock and id sequence, for standalone use
    /// (harness experiments) outside any [`crate::Tracer`].
    pub fn standalone(query: impl Into<String>) -> Self {
        QueryTraceBuilder::new(
            TraceClock::new(),
            Arc::new(AtomicU64::new(1)),
            1,
            query.into(),
        )
    }

    /// The clock this builder stamps spans with.
    pub fn clock(&self) -> TraceClock {
        self.clock
    }

    pub fn set_fingerprint(&mut self, fp: u64) {
        self.fingerprint = fp;
    }

    fn next_id(&self) -> SpanId {
        self.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Opens a phase span starting now, nested under the innermost open
    /// span (a root span when none is open).
    pub fn begin(&mut self, name: &'static str) -> PendingSpan {
        let id = self.next_id();
        let parent = self.open.last().copied().unwrap_or(0);
        self.open.push(id);
        PendingSpan {
            id,
            parent,
            name,
            start_us: self.clock.now_us(),
        }
    }

    /// Closes a span opened with [`begin`](Self::begin), returning its
    /// duration in microseconds.
    pub fn end(&mut self, pending: PendingSpan) -> u64 {
        self.end_tagged(pending, Vec::new())
    }

    /// Closes a span and attaches tags; returns the duration.
    pub fn end_tagged(&mut self, pending: PendingSpan, tags: Vec<(&'static str, TagValue)>) -> u64 {
        let end = self.clock.now_us();
        let dur = end.saturating_sub(pending.start_us);
        // Tolerate out-of-order ends: drop this id wherever it sits.
        if let Some(pos) = self.open.iter().rposition(|&id| id == pending.id) {
            self.open.remove(pos);
        }
        self.spans.push(Span {
            id: pending.id,
            parent: pending.parent,
            name: pending.name,
            start_us: pending.start_us,
            dur_us: dur,
            tags,
        });
        dur
    }

    /// Records a span from explicit timestamps — used by the service to
    /// back-fill phases it measured with plain `Instant`s (queue wait is
    /// only known at pickup). Returns the span id for use as a parent.
    pub fn add_span(
        &mut self,
        name: &'static str,
        parent: SpanId,
        start_us: u64,
        dur_us: u64,
        tags: Vec<(&'static str, TagValue)>,
    ) -> SpanId {
        let id = self.next_id();
        self.spans.push(Span {
            id,
            parent,
            name,
            start_us,
            dur_us,
            tags,
        });
        id
    }

    /// Attaches the per-operator spans of the execution.
    pub fn set_ops(&mut self, ops: Vec<OpSpan>) {
        self.ops = ops;
    }

    /// Finalises the trace. `total_us` is derived from the span extent
    /// so it covers back-filled spans too.
    pub fn finish(self) -> QueryTrace {
        let start = self.spans.iter().map(|s| s.start_us).min().unwrap_or(0);
        let end = self
            .spans
            .iter()
            .map(Span::end_us)
            .chain(self.ops.iter().map(OpSpan::end_us))
            .max()
            .unwrap_or(start);
        QueryTrace {
            trace_id: self.trace_id,
            query: self.query,
            fingerprint: self.fingerprint,
            phases: self.spans,
            ops: self.ops,
            total_us: end.saturating_sub(start),
        }
    }
}

/// Upper bound on stored operator spans per execution: a runaway
/// fixpoint keeps counting rows but stops allocating span memory.
pub const OP_SPAN_CAP: usize = 65_536;

/// Records per-operator spans inside the relational interpreter. Owned
/// by the (single-threaded) interpreter, so recording is two `Vec`
/// pushes and an `Instant` read per operator — no locks, no atomics.
///
/// The builder also maintains the per-node `actuals` and `replanned`
/// vectors that `explain_analyze` renders, which is what unifies the
/// explain path and the tracer on one recording.
#[derive(Debug)]
pub struct OpTraceBuilder {
    clock: TraceClock,
    actuals: Vec<usize>,
    replanned: Vec<bool>,
    spans: Vec<OpSpan>,
    /// Child-time accumulators for the open evaluations: `enter` pushes
    /// a zero, `exit` pops its own accumulator and adds its inclusive
    /// duration to the new top, so `self_us = dur - children`.
    stack: Vec<u64>,
}

impl OpTraceBuilder {
    /// A builder for a plan of `node_count` pre-order nodes, stamping
    /// spans against `clock`.
    pub fn new(node_count: usize, clock: TraceClock) -> Self {
        OpTraceBuilder {
            clock,
            actuals: vec![0; node_count],
            replanned: vec![false; node_count],
            spans: Vec::new(),
            stack: Vec::new(),
        }
    }

    /// Marks the start of one operator evaluation; returns the start
    /// timestamp to hand back to [`exit`](Self::exit).
    pub fn enter(&mut self) -> u64 {
        self.stack.push(0);
        self.clock.now_us()
    }

    /// Marks the end of a successful evaluation of node `node` that
    /// materialised `rows` rows.
    pub fn exit(
        &mut self,
        node: u32,
        kind: &'static str,
        est_rows: f64,
        rows: usize,
        start_us: u64,
    ) {
        let dur = self.clock.now_us().saturating_sub(start_us);
        let children = self.stack.pop().unwrap_or(0);
        if let Some(top) = self.stack.last_mut() {
            *top += dur;
        }
        if let Some(n) = self.actuals.get_mut(node as usize) {
            *n += rows;
        }
        if self.spans.len() < OP_SPAN_CAP {
            self.spans.push(OpSpan {
                node,
                kind,
                start_us,
                dur_us: dur,
                self_us: dur.saturating_sub(children),
                est_rows,
                rows,
            });
        }
    }

    /// Unwinds one evaluation frame after an error; the time still
    /// charges to the enclosing operator so outer self-times stay sane.
    pub fn exit_err(&mut self, start_us: u64) {
        let dur = self.clock.now_us().saturating_sub(start_us);
        self.stack.pop();
        if let Some(top) = self.stack.last_mut() {
            *top += dur;
        }
    }

    /// Flags node `node` as re-planned mid-flight.
    pub fn mark_replanned(&mut self, node: u32) {
        if let Some(b) = self.replanned.get_mut(node as usize) {
            *b = true;
        }
    }

    /// Rows recorded so far for `node`.
    pub fn rows_of(&self, node: u32) -> usize {
        self.actuals.get(node as usize).copied().unwrap_or(0)
    }

    /// Consumes the builder: `(actuals, replanned, spans)`.
    pub fn finish(self) -> (Vec<usize>, Vec<bool>, Vec<OpSpan>) {
        (self.actuals, self.replanned, self.spans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_nests_and_times_phases() {
        let mut tb = QueryTraceBuilder::standalone("q");
        let root = tb.begin("query");
        let inner = tb.begin("execute");
        std::thread::sleep(std::time::Duration::from_millis(2));
        tb.end(inner);
        tb.end(root);
        let trace = tb.finish();
        assert_eq!(trace.phases.len(), 2);
        let (exec, query) = (&trace.phases[0], &trace.phases[1]);
        assert_eq!(exec.name, "execute");
        assert_eq!(query.name, "query");
        assert_eq!(exec.parent, query.id);
        assert_eq!(query.parent, 0);
        assert!(exec.dur_us >= 2_000);
        assert!(query.contains(exec.start_us, exec.end_us()));
        assert!(trace.total_us >= query.dur_us);
    }

    #[test]
    fn add_span_backfills_with_explicit_times() {
        let mut tb = QueryTraceBuilder::standalone("q");
        let root = tb.add_span("query", 0, 10, 100, vec![("rows", 7usize.into())]);
        tb.add_span("queue", root, 10, 40, Vec::new());
        tb.add_span("execute", root, 50, 60, Vec::new());
        let trace = tb.finish();
        assert_eq!(trace.total_us, 100);
        let queue = trace.phase("queue").unwrap();
        assert_eq!(queue.parent, root);
        let query = trace.phase("query").unwrap();
        assert!(query.contains(queue.start_us, queue.end_us()));
        assert_eq!(query.tags, vec![("rows", TagValue::Int(7))],);
    }

    #[test]
    fn op_builder_accumulates_actuals_and_self_time() {
        let clock = TraceClock::new();
        let mut ob = OpTraceBuilder::new(3, clock);
        // Node 0 (parent) evaluates node 1 (child) twice inside it.
        let s0 = ob.enter();
        let s1 = ob.enter();
        ob.exit(1, "NodeScan", 4.0, 5, s1);
        let s1 = ob.enter();
        ob.exit(1, "NodeScan", 4.0, 3, s1);
        ob.exit(0, "HashJoin", 10.0, 8, s0);
        ob.mark_replanned(0);
        assert_eq!(ob.rows_of(1), 8);
        let (actuals, replanned, spans) = ob.finish();
        assert_eq!(actuals, vec![8, 8, 0]);
        assert_eq!(replanned, vec![true, false, false]);
        assert_eq!(spans.len(), 3);
        let parent = spans.last().unwrap();
        assert_eq!(parent.node, 0);
        assert_eq!(parent.rows, 8);
        // Parent inclusive time covers both child spans; self time is
        // inclusive minus children.
        let child_total: u64 = spans[..2].iter().map(|s| s.dur_us).sum();
        assert!(parent.dur_us >= child_total);
        assert_eq!(parent.self_us, parent.dur_us - child_total);
        // Summing span rows per node reproduces the actuals.
        let sum1: usize = spans.iter().filter(|s| s.node == 1).map(|s| s.rows).sum();
        assert_eq!(sum1, actuals[1]);
    }

    #[test]
    fn op_builder_error_unwind_keeps_stack_consistent() {
        let clock = TraceClock::new();
        let mut ob = OpTraceBuilder::new(2, clock);
        let s0 = ob.enter();
        let s1 = ob.enter();
        ob.exit_err(s1);
        ob.exit(0, "Union", 1.0, 2, s0);
        let (actuals, _, spans) = ob.finish();
        assert_eq!(actuals, vec![2, 0]);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].node, 0);
    }
}
