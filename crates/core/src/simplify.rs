//! Preliminary path simplification: the rewrite rules of Fig. 6.
//!
//! ```text
//! R1:  (ϕ+)+        → ϕ+
//! R2:  ϕ1[ϕ2+]      → ϕ1[ϕ2]         (closure in a right-branch test)
//! R3:  ϕ1[ϕ2/ϕ3]    → ϕ1[ϕ2[ϕ3]]
//! R4:  [ϕ2+]ϕ1      → [ϕ2]ϕ1         (closure in a left-branch test)
//! R5:  [ϕ2/ϕ3]ϕ1    → [ϕ2[ϕ3]]ϕ1
//! ```
//!
//! R2/R4 are implemented in their general sound form: the *outermost*
//! transitive closure of a branch *test* can always be dropped, because the
//! branch has existential semantics and the sources of `JϕKD` and `Jϕ+KD`
//! coincide (the paper states the rules with a `ϕ1+` context; the general
//! form is what its Fig. 7 example actually uses). Note that the paper's
//! Fig. 7 additionally drops the closure of `isMarriedTo+` — a *base*, not
//! a test — which is not semantics-preserving for chains; we keep base
//! closures intact (see DESIGN.md).
//!
//! R3/R5 first right-associate the test's concatenation spine so that a
//! left-associated parse `a/b/c` decomposes into the paper's
//! `ϕ1[a[b[c]]]` shape.

use sgq_algebra::ast::PathExpr;

/// Applies R1–R5 bottom-up to a fixpoint.
pub fn simplify(expr: &PathExpr) -> PathExpr {
    let mut current = expr.clone();
    loop {
        let next = pass(&current);
        if next == current {
            return current;
        }
        current = next;
    }
}

/// One bottom-up pass.
fn pass(e: &PathExpr) -> PathExpr {
    let e = match e {
        PathExpr::Label(_) | PathExpr::Reverse(_) => e.clone(),
        PathExpr::Concat(a, b) => PathExpr::concat(pass(a), pass(b)),
        PathExpr::Union(a, b) => PathExpr::union(pass(a), pass(b)),
        PathExpr::Conj(a, b) => PathExpr::conj(pass(a), pass(b)),
        PathExpr::BranchR(a, b) => PathExpr::branch_r(pass(a), pass(b)),
        PathExpr::BranchL(a, b) => PathExpr::branch_l(pass(a), pass(b)),
        PathExpr::Plus(a) => PathExpr::plus(pass(a)),
    };
    apply_rules(e)
}

/// Applies the rules at the root of `e`.
fn apply_rules(e: PathExpr) -> PathExpr {
    match e {
        // R1: (ϕ+)+ → ϕ+
        PathExpr::Plus(inner) if matches!(*inner, PathExpr::Plus(_)) => *inner,
        // R2 (test plus) and R3 (test concat)
        PathExpr::BranchR(base, test) => {
            let test = simplify_test(*test);
            PathExpr::BranchR(base, Box::new(test))
        }
        // R4 (test plus) and R5 (test concat)
        PathExpr::BranchL(test, rest) => {
            let test = simplify_test(*test);
            PathExpr::BranchL(Box::new(test), rest)
        }
        other => other,
    }
}

/// Simplifies an expression appearing in *test position* (the bracketed
/// part of a branch): drops its outermost closure (R2/R4) and turns its
/// top-level concatenation into nested right branches (R3/R5).
fn simplify_test(test: PathExpr) -> PathExpr {
    match test {
        // R2/R4: [ϕ+] ≡ [ϕ]
        PathExpr::Plus(inner) => simplify_test(*inner),
        // R3/R5: [ϕ2/ϕ3] ≡ [ϕ2[ϕ3]]; flatten the spine first so that a
        // left-associated (a/b)/c becomes a[b[c]].
        PathExpr::Concat(_, _) => {
            let mut parts = Vec::new();
            flatten_concat(test, &mut parts);
            // Build a[b[c[...]]] right-to-left: the innermost test is the
            // last segment (itself test-simplified).
            let mut iter = parts.into_iter().rev();
            let last = simplify_test(iter.next().expect("concat has parts"));
            let mut acc = last;
            for part in iter {
                acc = PathExpr::branch_r(part, acc);
            }
            acc
        }
        other => other,
    }
}

/// Flattens a concatenation spine into its sequential parts.
fn flatten_concat(e: PathExpr, out: &mut Vec<PathExpr>) {
    match e {
        PathExpr::Concat(a, b) => {
            flatten_concat(*a, out);
            flatten_concat(*b, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    fn pe(s: &str) -> PathExpr {
        parse_path(s, &fig1_yago_schema()).unwrap()
    }

    #[test]
    fn r1_collapses_nested_plus() {
        assert_eq!(simplify(&pe("isLocatedIn++")), pe("isLocatedIn+"));
        assert_eq!(simplify(&pe("((isLocatedIn+)+)+")), pe("isLocatedIn+"));
    }

    #[test]
    fn r2_drops_plus_in_right_test() {
        assert_eq!(simplify(&pe("owns[isMarriedTo+]")), pe("owns[isMarriedTo]"));
        // paper's context form ϕ1+[ϕ2+] → ϕ1+[ϕ2]
        assert_eq!(
            simplify(&pe("isLocatedIn+[dealsWith+]")),
            pe("isLocatedIn+[dealsWith]")
        );
    }

    #[test]
    fn r4_drops_plus_in_left_test() {
        assert_eq!(
            simplify(&pe("[isMarriedTo+]livesIn")),
            pe("[isMarriedTo]livesIn")
        );
    }

    #[test]
    fn r3_concat_to_branch() {
        assert_eq!(
            simplify(&pe("owns[isMarriedTo/livesIn]")),
            pe("owns[isMarriedTo[livesIn]]")
        );
        // three-way chains nest fully regardless of association
        assert_eq!(
            simplify(&pe("owns[(isMarriedTo/livesIn)/isLocatedIn]")),
            pe("owns[isMarriedTo[livesIn[isLocatedIn]]]")
        );
        assert_eq!(
            simplify(&pe("owns[isMarriedTo/(livesIn/isLocatedIn)]")),
            pe("owns[isMarriedTo[livesIn[isLocatedIn]]]")
        );
    }

    #[test]
    fn r5_concat_to_branch_left() {
        assert_eq!(
            simplify(&pe("[isMarriedTo/livesIn]owns")),
            pe("[isMarriedTo[livesIn]]owns")
        );
    }

    #[test]
    fn fig7_example() {
        // ϕred = (((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+
        let phi_red = pe("(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+");
        // Our sound ϕopt keeps the base closure isMarriedTo+ (the paper's
        // Fig. 7 drops it, which over-simplifies; see module docs):
        let phi_opt = pe("(owns[isMarriedTo+[livesIn[dealsWith]]]/isLocatedIn+)+");
        assert_eq!(simplify(&phi_red), phi_opt);
    }

    #[test]
    fn simplification_preserves_semantics() {
        use sgq_algebra::eval::eval_path;
        use sgq_graph::database::fig2_yago_database;
        let db = fig2_yago_database();
        for s in [
            "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+",
            "owns[isMarriedTo+]",
            "[isMarriedTo/livesIn]owns",
            "livesIn/isLocatedIn++",
            "owns[isMarriedTo/livesIn/isLocatedIn]",
            "[owns[isMarriedTo+]]livesIn",
            "(livesIn | owns/isLocatedIn)[isLocatedIn+]",
        ] {
            let e = pe(s);
            let simplified = simplify(&e);
            assert_eq!(
                eval_path(&db, &e),
                eval_path(&db, &simplified),
                "R1-R5 changed the semantics of {s}"
            );
        }
    }

    #[test]
    fn fixpoint_is_idempotent() {
        for s in [
            "owns",
            "(((owns[isMarriedTo+/livesIn/dealsWith+])/(isLocatedIn+)+)+)+",
            "owns[isMarriedTo/livesIn]",
        ] {
            let once = simplify(&pe(s));
            assert_eq!(simplify(&once), once);
        }
    }

    #[test]
    fn non_test_plus_kept() {
        // closures outside branch tests must be preserved
        assert_eq!(simplify(&pe("isLocatedIn+")), pe("isLocatedIn+"));
        assert_eq!(
            simplify(&pe("livesIn/isLocatedIn+")),
            pe("livesIn/isLocatedIn+")
        );
    }
}
