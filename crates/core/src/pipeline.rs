//! The end-to-end rewriter (the paper's Fig. 10 "Rewriter" module):
//! PPS → SQ-Rewriter → SQ-Merge, with revert detection (§5.2) and the
//! ablation switches exercised by the benchmark suite.

use sgq_algebra::ast::PathExpr;
use sgq_common::{FxHashMap, Result, VarId};
use sgq_graph::GraphSchema;
use sgq_query::annotated::{AnnotatedPath, LabelSet};
use sgq_query::cqt::{Cqt, LabelAtom, Relation, Ucqt};
use sgq_query::vars::VarGen;

use crate::infer::{infer_triples, InferOptions};
use crate::merge::{merge_triples, MergedTriple};
use crate::plc::{PlcOptions, PlusStats};
use crate::redundant::{remove_redundant_with, RedundancyRule};
use crate::simplify::simplify;
use crate::translate::q_translate;

/// Switches and budgets for the rewrite pipeline. The boolean switches are
/// the ablation axes benchmarked by `sgq-bench/benches/ablation.rs`.
#[derive(Debug, Clone, Copy)]
pub struct RewriteOptions {
    /// Apply the preliminary path simplification R1–R5 (Fig. 6).
    pub simplify: bool,
    /// Allow `PlC` to replace closures with fixed-length paths (Def. 8).
    pub tc_elimination: bool,
    /// Keep node-label annotations / atoms (the semi-join sources).
    pub annotations: bool,
    /// Which redundant annotations to remove (§3.2.2).
    pub redundancy: RedundancyRule,
    /// Budget: maximum `|TS(ϕ)|` before reverting.
    pub max_triples: usize,
    /// Budget: maximum simple paths enumerated by `PlC`.
    pub max_paths: usize,
    /// Budget: maximum disjuncts in the rewritten union before reverting.
    pub max_disjuncts: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            simplify: true,
            tc_elimination: true,
            annotations: true,
            redundancy: RedundancyRule::default(),
            max_triples: 4096,
            max_paths: 4096,
            max_disjuncts: 128,
        }
    }
}

impl RewriteOptions {
    fn infer_opts(&self) -> InferOptions {
        InferOptions {
            plc: PlcOptions {
                tc_elimination: self.tc_elimination,
                max_paths: self.max_paths,
            },
            max_triples: self.max_triples,
        }
    }
}

/// What the rewriter produced.
#[derive(Debug, Clone, PartialEq)]
pub enum RewriteOutcome {
    /// A genuinely schema-enriched query.
    Enriched(Ucqt),
    /// The rewrite reverted to the (simplified) original query — the
    /// schema offered nothing (§5.2); engines run the baseline plan.
    Reverted(Ucqt),
    /// The schema proves the query returns no results on any conforming
    /// database.
    Empty,
}

impl RewriteOutcome {
    /// The query to execute, if any.
    pub fn query(&self) -> Option<&Ucqt> {
        match self {
            RewriteOutcome::Enriched(q) | RewriteOutcome::Reverted(q) => Some(q),
            RewriteOutcome::Empty => None,
        }
    }

    /// Whether the rewrite reverted.
    pub fn is_reverted(&self) -> bool {
        matches!(self, RewriteOutcome::Reverted(_))
    }
}

/// Diagnostics produced alongside the rewrite (Tab. 6 statistics, §5.2
/// revert accounting).
#[derive(Debug, Clone, Default)]
pub struct RewriteReport {
    /// Aggregated fixed-length-path statistics over the final query.
    pub plus_stats: PlusStats,
    /// Whether the original query was recursive.
    pub was_recursive: bool,
    /// Whether the final query still contains a transitive closure.
    pub still_recursive: bool,
    /// Number of disjuncts in the final query.
    pub disjuncts: usize,
    /// Number of label atoms in the final query.
    pub atoms: usize,
    /// Why the rewrite reverted, when it did.
    pub revert_reason: Option<String>,
}

impl RewriteReport {
    /// Transitive closure fully eliminated (Tab. 6 accounting).
    pub fn closure_eliminated(&self) -> bool {
        self.was_recursive && !self.still_recursive
    }
}

/// Result of [`rewrite_ucqt`] / [`rewrite_path`].
#[derive(Debug, Clone)]
pub struct Rewritten {
    /// The produced query (or revert/empty marker).
    pub outcome: RewriteOutcome,
    /// Diagnostics.
    pub report: RewriteReport,
}

/// Rewrites a bare path query `{(α, β) | (α, ϕ, β)}`.
pub fn rewrite_path(schema: &GraphSchema, phi: &PathExpr, opts: RewriteOptions) -> Rewritten {
    rewrite_ucqt(schema, &Ucqt::path_query(phi.clone()), opts)
}

/// Rewrites an arbitrary UCQT: every relation of every disjunct is
/// simplified, type-inferred, merged and re-translated; the per-relation
/// alternatives are distributed into a union of CQTs.
pub fn rewrite_ucqt(schema: &GraphSchema, query: &Ucqt, opts: RewriteOptions) -> Rewritten {
    let baseline = simplify_query(query, opts.simplify);
    let was_recursive = query.kind() == sgq_query::cqt::QueryKind::Recursive;

    match try_rewrite(schema, &baseline, opts) {
        Ok(Some((enriched, stats))) => {
            if enriched.disjuncts.is_empty() {
                let report = RewriteReport {
                    plus_stats: stats,
                    was_recursive,
                    still_recursive: false,
                    disjuncts: 0,
                    atoms: 0,
                    revert_reason: None,
                };
                return Rewritten {
                    outcome: RewriteOutcome::Empty,
                    report,
                };
            }
            let trivial = is_trivial_rewrite(&enriched, &baseline);
            let still_recursive = enriched.kind() == sgq_query::cqt::QueryKind::Recursive;
            let atoms = enriched.disjuncts.iter().map(|c| c.atoms.len()).sum();
            let report = RewriteReport {
                plus_stats: stats,
                was_recursive,
                still_recursive,
                disjuncts: enriched.disjuncts.len(),
                atoms,
                revert_reason: trivial.then(|| "no exploitable schema information".into()),
            };
            let outcome = if trivial {
                RewriteOutcome::Reverted(baseline)
            } else {
                RewriteOutcome::Enriched(enriched)
            };
            Rewritten { outcome, report }
        }
        Ok(None) | Err(_) => {
            // Budget exceeded (or inference failed): revert, never degrade.
            let reason = "rewrite budget exceeded".to_string();
            let report = RewriteReport {
                plus_stats: PlusStats::default(),
                was_recursive,
                still_recursive: was_recursive,
                disjuncts: baseline.disjuncts.len(),
                atoms: 0,
                revert_reason: Some(reason),
            };
            Rewritten {
                outcome: RewriteOutcome::Reverted(baseline),
                report,
            }
        }
    }
}

/// Simplifies every relation of the query with R1–R5.
fn simplify_query(query: &Ucqt, enabled: bool) -> Ucqt {
    if !enabled {
        return query.clone();
    }
    let mut out = query.clone();
    for c in &mut out.disjuncts {
        for r in &mut c.relations {
            r.path = AnnotatedPath::Plain(simplify(&r.path.strip()));
        }
    }
    out
}

/// Core rewrite: returns `Ok(None)` when a budget was exceeded.
fn try_rewrite(
    schema: &GraphSchema,
    baseline: &Ucqt,
    opts: RewriteOptions,
) -> Result<Option<(Ucqt, PlusStats)>> {
    let mut disjuncts_out: Vec<Cqt> = Vec::new();
    let mut stats = PlusStats::default();

    for cqt in &baseline.disjuncts {
        // Per-relation merged alternatives.
        let mut per_relation: Vec<Vec<MergedTriple>> = Vec::with_capacity(cqt.relations.len());
        for rel in &cqt.relations {
            let phi = rel.path.strip();
            let triples = infer_triples(schema, &phi, opts.infer_opts())?;
            let mut merged: Vec<MergedTriple> = merge_triples(&triples)
                .iter()
                .map(|m| remove_redundant_with(schema, m, opts.redundancy))
                .collect();
            if !opts.annotations {
                merged = merged.into_iter().map(strip_annotations).collect();
            }
            for m in &merged {
                stats.path_lengths.extend_from_slice(&m.plus_paths);
                if m.psi.is_recursive() {
                    stats.closure_kept = true;
                }
            }
            per_relation.push(merged);
        }

        // Distribute: cartesian product of per-relation alternatives.
        if per_relation.iter().any(Vec::is_empty) {
            // Some relation is unsatisfiable: the whole disjunct is empty.
            continue;
        }
        let combos: usize = per_relation.iter().map(Vec::len).product();
        if combos + disjuncts_out.len() > opts.max_disjuncts {
            return Ok(None);
        }
        let mut indices = vec![0usize; per_relation.len()];
        loop {
            if let Some(new_cqt) = build_combo(cqt, &per_relation, &indices) {
                disjuncts_out.push(new_cqt);
            }
            if !advance(&mut indices, &per_relation) {
                break;
            }
        }
    }
    stats.path_lengths.sort_unstable();

    let enriched = Ucqt {
        head: baseline.head.clone(),
        disjuncts: disjuncts_out,
    };
    Ok(Some((enriched, stats)))
}

/// Advances a mixed-radix counter over the per-relation alternatives;
/// returns `false` once all combinations have been visited.
fn advance(indices: &mut [usize], radix: &[Vec<MergedTriple>]) -> bool {
    for i in (0..indices.len()).rev() {
        indices[i] += 1;
        if indices[i] < radix[i].len() {
            return true;
        }
        indices[i] = 0;
    }
    false
}

/// Builds one distributed disjunct: translates each relation's chosen
/// merged triple, merges label atoms per variable (intersections), and
/// drops the combination when some variable's label set becomes empty.
fn build_combo(
    original: &Cqt,
    per_relation: &[Vec<MergedTriple>],
    indices: &[usize],
) -> Option<Cqt> {
    let mut vars = VarGen::above(original.vars());
    let mut relations: Vec<Relation> = Vec::new();
    let mut constraints: FxHashMap<VarId, LabelSet> = FxHashMap::default();
    let add_constraint = |map: &mut FxHashMap<VarId, LabelSet>, var: VarId, labels: &LabelSet| {
        match map.entry(var) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let merged = sgq_common::sorted::intersect(e.get(), labels);
                e.insert(merged);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(labels.clone());
            }
        }
    };

    // Original atoms first.
    for atom in &original.atoms {
        add_constraint(&mut constraints, atom.var, &atom.labels);
    }

    for (rel_idx, rel) in original.relations.iter().enumerate() {
        let triple = &per_relation[rel_idx][indices[rel_idx]];
        let mut atoms = Vec::new();
        q_translate(
            &triple.psi,
            rel.src,
            rel.tgt,
            &mut vars,
            &mut relations,
            &mut atoms,
        );
        for atom in atoms {
            add_constraint(&mut constraints, atom.var, &atom.labels);
        }
        if let Some(labels) = &triple.src_labels {
            add_constraint(&mut constraints, rel.src, labels);
        }
        if let Some(labels) = &triple.tgt_labels {
            add_constraint(&mut constraints, rel.tgt, labels);
        }
    }

    // Unsatisfiable label constraint: drop this combination.
    if constraints.values().any(|l| l.is_empty()) {
        return None;
    }
    let mut atoms: Vec<LabelAtom> = constraints
        .into_iter()
        .map(|(var, labels)| LabelAtom { var, labels })
        .collect();
    atoms.sort_unstable_by_key(|a| a.var);
    Some(Cqt {
        head: original.head.clone(),
        atoms,
        relations,
    })
}

/// Drops all annotations and endpoint constraints (the "no annotations"
/// ablation) while keeping the structural rewrite (TC expansions).
fn strip_annotations(m: MergedTriple) -> MergedTriple {
    MergedTriple {
        src_labels: None,
        psi: AnnotatedPath::Plain(m.psi.strip()),
        tgt_labels: None,
        plus_paths: m.plus_paths,
    }
}

/// Revert detection (§5.2): the rewrite is trivial when no schema
/// information survives and the relations are (modulo union splitting and
/// distribution — the paper's "query factorization") those of the
/// baseline.
fn is_trivial_rewrite(enriched: &Ucqt, baseline: &Ucqt) -> bool {
    if enriched.has_schema_info() {
        return false;
    }
    if enriched == baseline {
        return true;
    }
    match (enriched.as_single_path(), baseline.as_single_path()) {
        (Some(e), Some(b)) => {
            let (Some(mut ec), Some(mut bc)) = (distribute_unions(&e), distribute_unions(&b))
            else {
                return false;
            };
            ec.sort_unstable();
            bc.sort_unstable();
            ec == bc
        }
        _ => false,
    }
}

/// Union-normal form: distributes `∪` through concatenation, conjunction
/// and branching (but not through `+`), returning the union-free
/// components. `None` when the expansion exceeds a safety cap.
fn distribute_unions(expr: &PathExpr) -> Option<Vec<PathExpr>> {
    const CAP: usize = 256;
    let cross = |xs: Vec<PathExpr>,
                 ys: Vec<PathExpr>,
                 f: fn(PathExpr, PathExpr) -> PathExpr|
     -> Option<Vec<PathExpr>> {
        if xs.len().saturating_mul(ys.len()) > CAP {
            return None;
        }
        let mut out = Vec::with_capacity(xs.len() * ys.len());
        for x in &xs {
            for y in &ys {
                out.push(f(x.clone(), y.clone()));
            }
        }
        Some(out)
    };
    match expr {
        PathExpr::Label(_) | PathExpr::Reverse(_) | PathExpr::Plus(_) => Some(vec![expr.clone()]),
        PathExpr::Union(a, b) => {
            let mut out = distribute_unions(a)?;
            out.extend(distribute_unions(b)?);
            (out.len() <= CAP).then_some(out)
        }
        PathExpr::Concat(a, b) => cross(
            distribute_unions(a)?,
            distribute_unions(b)?,
            PathExpr::concat,
        ),
        PathExpr::Conj(a, b) => cross(distribute_unions(a)?, distribute_unions(b)?, PathExpr::conj),
        PathExpr::BranchR(a, b) => cross(
            distribute_unions(a)?,
            distribute_unions(b)?,
            PathExpr::branch_r,
        ),
        PathExpr::BranchL(a, b) => cross(
            distribute_unions(a)?,
            distribute_unions(b)?,
            PathExpr::branch_l,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sgq_algebra::parser::parse_path;
    use sgq_graph::schema::fig1_yago_schema;

    fn pe(s: &str) -> PathExpr {
        parse_path(s, &fig1_yago_schema()).unwrap()
    }

    #[test]
    fn phi4_is_enriched_and_closure_partially_eliminated() {
        let schema = fig1_yago_schema();
        // Example 13 uses the either-side redundancy rule: exactly one
        // surviving atom, η(γ) ∈ {REGION}.
        let opts = RewriteOptions {
            redundancy: RedundancyRule::EitherSide,
            ..Default::default()
        };
        let r = rewrite_path(&schema, &pe("livesIn/isLocatedIn+/dealsWith+"), opts);
        match &r.outcome {
            RewriteOutcome::Enriched(q) => {
                assert_eq!(q.disjuncts.len(), 1);
                assert_eq!(r.report.atoms, 1);
            }
            other => panic!("expected enrichment, got {other:?}"),
        }
        assert!(r.report.was_recursive);
        assert!(r.report.still_recursive, "dealsWith+ survives");
        assert_eq!(r.report.plus_stats.path_lengths, vec![2]);
        // The default (both-sides) rule keeps the pre-filtering
        // annotations as well — more atoms, same semantics.
        let r2 = rewrite_path(
            &schema,
            &pe("livesIn/isLocatedIn+/dealsWith+"),
            RewriteOptions::default(),
        );
        match &r2.outcome {
            RewriteOutcome::Enriched(q) => {
                assert_eq!(q.disjuncts.len(), 1);
                assert!(r2.report.atoms >= 1);
            }
            other => panic!("expected enrichment, got {other:?}"),
        }
    }

    #[test]
    fn isolated_closure_is_fully_eliminated() {
        let schema = fig1_yago_schema();
        let r = rewrite_path(&schema, &pe("isLocatedIn+"), RewriteOptions::default());
        match &r.outcome {
            RewriteOutcome::Enriched(q) => assert_eq!(q.disjuncts.len(), 3),
            other => panic!("expected enrichment, got {other:?}"),
        }
        assert!(r.report.closure_eliminated());
    }

    #[test]
    fn dealswith_plus_reverts() {
        // dealsWith+ has a cyclic label graph and single-label endpoints:
        // the schema offers nothing.
        let schema = fig1_yago_schema();
        let r = rewrite_path(&schema, &pe("dealsWith+"), RewriteOptions::default());
        assert!(r.outcome.is_reverted(), "{:?}", r.outcome);
    }

    #[test]
    fn single_label_reverts() {
        let schema = fig1_yago_schema();
        let r = rewrite_path(&schema, &pe("owns"), RewriteOptions::default());
        assert!(r.outcome.is_reverted());
        assert!(r.report.revert_reason.is_some());
    }

    #[test]
    fn unsatisfiable_is_empty() {
        let schema = fig1_yago_schema();
        let r = rewrite_path(&schema, &pe("livesIn/owns"), RewriteOptions::default());
        assert_eq!(r.outcome, RewriteOutcome::Empty);
    }

    #[test]
    fn budget_exhaustion_reverts() {
        let schema = fig1_yago_schema();
        let opts = RewriteOptions {
            max_triples: 1,
            ..Default::default()
        };
        let r = rewrite_path(&schema, &pe("isLocatedIn+"), opts);
        assert!(r.outcome.is_reverted());
        assert_eq!(
            r.report.revert_reason.as_deref(),
            Some("rewrite budget exceeded")
        );
    }

    #[test]
    fn ablation_no_tc_elimination_keeps_closure() {
        let schema = fig1_yago_schema();
        let opts = RewriteOptions {
            tc_elimination: false,
            ..Default::default()
        };
        // isLocatedIn+ alone reverts (the closure covers everything), but
        // livesIn/isLocatedIn+ keeps an informative target-label atom.
        let r = rewrite_path(&schema, &pe("isLocatedIn+"), opts);
        assert!(r.outcome.is_reverted(), "{:?}", r.outcome);
        let r = rewrite_path(&schema, &pe("livesIn/isLocatedIn+"), opts);
        match &r.outcome {
            RewriteOutcome::Enriched(q) => {
                assert!(q.kind() == sgq_query::cqt::QueryKind::Recursive);
                assert!(q.has_schema_info());
            }
            other => panic!("expected enrichment, got {other:?}"),
        }
    }

    #[test]
    fn ablation_no_annotations_keeps_expansion() {
        let schema = fig1_yago_schema();
        let opts = RewriteOptions {
            annotations: false,
            ..Default::default()
        };
        let r = rewrite_path(&schema, &pe("isLocatedIn+"), opts);
        match &r.outcome {
            RewriteOutcome::Enriched(q) => {
                assert!(!q.has_schema_info());
                assert_eq!(q.disjuncts.len(), 3);
                assert!(q.kind() == sgq_query::cqt::QueryKind::NonRecursive);
            }
            other => panic!("expected enrichment, got {other:?}"),
        }
    }

    #[test]
    fn multi_relation_cqt_rewrites() {
        // C1 = {Y | (Y, livesIn/isLocatedIn+, M) ∧ (Y, owns, Z)}
        let schema = fig1_yago_schema();
        let y = VarId::new(0);
        let z = VarId::new(1);
        let m = VarId::new(2);
        let c1 = Cqt {
            head: vec![y],
            atoms: vec![],
            relations: vec![
                Relation::plain(y, pe("livesIn/isLocatedIn+"), m),
                Relation::plain(y, pe("owns"), z),
            ],
        };
        let q = Ucqt::single(c1);
        let r = rewrite_ucqt(&schema, &q, RewriteOptions::default());
        match &r.outcome {
            RewriteOutcome::Enriched(out) => {
                // livesIn/isLocatedIn+ has 2 merged triples; owns has 1
                assert_eq!(out.disjuncts.len(), 2);
                for d in &out.disjuncts {
                    assert_eq!(d.head, vec![y]);
                    d.validate().unwrap();
                }
            }
            other => panic!("expected enrichment, got {other:?}"),
        }
    }

    #[test]
    fn bounded_repetition_reverts() {
        // isMarriedTo{1,2} offers nothing (single-label endpoints), and the
        // union split alone must not count as enrichment (§5.2: IC9-style).
        let schema = fig1_yago_schema();
        let r = rewrite_path(&schema, &pe("isMarriedTo{1,2}"), RewriteOptions::default());
        assert!(r.outcome.is_reverted(), "{:?}", r.outcome);
    }

    #[test]
    fn rewrite_preserves_semantics_on_fig2() {
        use sgq_graph::database::fig2_yago_database;
        let schema = fig1_yago_schema();
        let db = fig2_yago_database();
        for s in [
            "livesIn/isLocatedIn+/dealsWith+",
            "isLocatedIn+",
            "owns/isLocatedIn",
            "livesIn/isLocatedIn+",
            "[owns]([isMarriedTo]livesIn)",
            "owns | livesIn",
            "isMarriedTo+",
            "-isLocatedIn/-livesIn",
        ] {
            let phi = pe(s);
            let baseline = sgq_algebra::eval::eval_path(&db, &phi);
            let r = rewrite_path(&schema, &phi, RewriteOptions::default());
            let rewritten_pairs = match &r.outcome {
                RewriteOutcome::Empty => Vec::new(),
                RewriteOutcome::Reverted(q) | RewriteOutcome::Enriched(q) => {
                    eval_ucqt_reference(&db, q)
                }
            };
            assert_eq!(baseline, rewritten_pairs, "semantics changed for {s}");
        }
    }

    /// Tiny reference UCQT evaluator (binary head) used only by tests:
    /// joins relations nested-loop style over the reference path semantics.
    type MaterializedRel = (VarId, Vec<(sgq_common::NodeId, sgq_common::NodeId)>, VarId);

    fn eval_ucqt_reference(
        db: &sgq_graph::GraphDatabase,
        q: &Ucqt,
    ) -> Vec<(sgq_common::NodeId, sgq_common::NodeId)> {
        use sgq_common::NodeId;
        let mut out: Vec<(NodeId, NodeId)> = Vec::new();
        for c in &q.disjuncts {
            // materialise each relation
            let rels: Vec<MaterializedRel> = c
                .relations
                .iter()
                .map(|r| {
                    (
                        r.src,
                        sgq_query::annotated::eval_annotated(db, &r.path),
                        r.tgt,
                    )
                })
                .collect();
            // brute-force join via recursive assignment
            let mut bindings: FxHashMap<VarId, NodeId> = FxHashMap::default();
            join(db, c, &rels, 0, &mut bindings, &mut out);
        }
        sgq_common::sorted::normalize(&mut out);
        out
    }

    fn join(
        db: &sgq_graph::GraphDatabase,
        c: &Cqt,
        rels: &[MaterializedRel],
        i: usize,
        bindings: &mut FxHashMap<VarId, sgq_common::NodeId>,
        out: &mut Vec<(sgq_common::NodeId, sgq_common::NodeId)>,
    ) {
        if i == rels.len() {
            for atom in &c.atoms {
                if let Some(n) = bindings.get(&atom.var) {
                    if !atom.labels.contains(&db.node_label(*n)) {
                        return;
                    }
                }
            }
            out.push((bindings[&c.head[0]], bindings[&c.head[1]]));
            return;
        }
        let (src, pairs, tgt) = &rels[i];
        for &(s, t) in pairs {
            if src == tgt && s != t {
                continue;
            }
            let s_ok = bindings.get(src).is_none_or(|&b| b == s);
            let t_ok = bindings.get(tgt).is_none_or(|&b| b == t);
            if s_ok && t_ok {
                let s_new = !bindings.contains_key(src);
                let t_new = !bindings.contains_key(tgt);
                bindings.insert(*src, s);
                bindings.insert(*tgt, t);
                join(db, c, rels, i + 1, bindings, out);
                if s_new {
                    bindings.remove(src);
                }
                if t_new {
                    bindings.remove(tgt);
                }
            }
        }
    }
}
